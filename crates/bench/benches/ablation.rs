//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! Pippenger vs naive MSM, fixed-base window width, NTT vs schoolbook
//! polynomial multiplication, and tracing overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zkperf_ec::bn254::{G1Affine, G1Params};
use zkperf_ec::{msm, FixedBaseTable, Projective};
use zkperf_ff::{bn254::Fr, Field};
use zkperf_poly::DensePolynomial;

fn setup_points(n: usize) -> (Vec<G1Affine>, Vec<Fr>) {
    let mut rng = zkperf_ff::test_rng();
    let table = FixedBaseTable::new(&Projective::<G1Params>::generator());
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    let bases = table.mul_batch(&scalars);
    (bases, scalars)
}

/// Pippenger against per-point double-and-add at growing sizes: shows the
/// crossover that justifies the bucket method for setup/proving.
fn ablate_msm_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_msm");
    group.sample_size(10);
    for n in [16usize, 256, 2048] {
        let (bases, scalars) = setup_points(n);
        group.bench_with_input(BenchmarkId::new("pippenger", n), &n, |b, _| {
            b.iter(|| msm(&bases, &scalars))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                bases
                    .iter()
                    .zip(&scalars)
                    .fold(Projective::<G1Params>::identity(), |acc, (p, s)| {
                        acc + p.to_projective() * *s
                    })
            })
        });
    }
    group.finish();
}

/// Fixed-base window width: table-build cost vs per-multiplication cost.
fn ablate_fixed_base_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fixed_base_window");
    group.sample_size(10);
    let g = Projective::<G1Params>::generator();
    let mut rng = zkperf_ff::test_rng();
    let scalars: Vec<Fr> = (0..512).map(|_| Fr::random(&mut rng)).collect();
    for bits in [4usize, 8, 12] {
        let table = FixedBaseTable::with_window_bits(&g, bits);
        group.bench_with_input(BenchmarkId::new("mul_batch", bits), &bits, |b, _| {
            b.iter(|| table.mul_batch(&scalars))
        });
        group.bench_with_input(BenchmarkId::new("build_table", bits), &bits, |b, _| {
            b.iter(|| FixedBaseTable::with_window_bits(&g, bits))
        });
    }
    group.finish();
}

/// NTT-based polynomial product vs schoolbook at the crossover sizes.
fn ablate_poly_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_poly_mul");
    let mut rng = zkperf_ff::test_rng();
    for n in [8usize, 64, 512] {
        let a = DensePolynomial::new((0..n).map(|_| Fr::random(&mut rng)).collect());
        let b = DensePolynomial::new((0..n).map(|_| Fr::random(&mut rng)).collect());
        group.bench_with_input(BenchmarkId::new("ntt_mul", n), &n, |bench, _| {
            bench.iter(|| a.mul(&b))
        });
        group.bench_with_input(BenchmarkId::new("schoolbook", n), &n, |bench, _| {
            bench.iter(|| {
                let mut out = vec![Fr::zero(); 2 * n - 1];
                for (i, &x) in a.coeffs().iter().enumerate() {
                    for (j, &y) in b.coeffs().iter().enumerate() {
                        out[i + j] += x * y;
                    }
                }
                DensePolynomial::new(out)
            })
        });
    }
    group.finish();
}

/// Cost of the always-on instrumentation: field multiplication with no
/// session, with a counting session, and with the full machine simulator.
fn ablate_tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tracing");
    let mut rng = zkperf_ff::test_rng();
    let xs: Vec<Fr> = (0..1024).map(|_| Fr::random(&mut rng)).collect();
    let work = |xs: &[Fr]| xs.iter().fold(Fr::one(), |acc, &x| acc * x);

    group.bench_function("untraced", |b| b.iter(|| work(&xs)));
    group.bench_function("counting_session", |b| {
        b.iter(|| {
            let session = zkperf_trace::Session::begin();
            let r = work(&xs);
            session.finish();
            r
        })
    });
    group.bench_function("machine_simulated", |b| {
        b.iter(|| {
            let (sink, _handle) = zkperf_machine::MachineSim::new(
                zkperf_machine::CpuProfile::i7_8650u(),
                zkperf_machine::ExecEnv::Native,
            )
            .shared();
            let session = zkperf_trace::Session::begin_with_sink(Box::new(sink));
            let r = work(&xs);
            session.finish();
            r
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablate_msm_algorithm,
    ablate_fixed_base_window,
    ablate_poly_mul,
    ablate_tracing_overhead
);
criterion_main!(ablations);
