//! Criterion microbenchmarks of the cryptographic kernels the protocol
//! stages are built from: field arithmetic, extension towers, MSM, NTT,
//! fixed-base tables, and the pairing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zkperf_circuit::library::exponentiate;
use zkperf_ec::bn254::{pairing, G1Affine, G2Affine};
use zkperf_ec::{msm, Bn254, FixedBaseTable, Projective};
use zkperf_ff::{bls12_381, bn254, BigUint, Field, PrimeField};
use zkperf_groth16::setup;
use zkperf_poly::Radix2Domain;

fn bench_fields(c: &mut Criterion) {
    let mut rng = zkperf_ff::test_rng();
    let mut group = c.benchmark_group("field");
    let (a, b) = (bn254::Fr::random(&mut rng), bn254::Fr::random(&mut rng));
    group.bench_function("bn254_fr_mul", |bench| bench.iter(|| std::hint::black_box(a) * b));
    group.bench_function("bn254_fr_add", |bench| bench.iter(|| std::hint::black_box(a) + b));
    group.bench_function("bn254_fr_inverse", |bench| {
        bench.iter(|| std::hint::black_box(a).inverse())
    });
    let (x, y) = (
        bls12_381::Fq::random(&mut rng),
        bls12_381::Fq::random(&mut rng),
    );
    group.bench_function("bls12_381_fq_mul", |bench| {
        bench.iter(|| std::hint::black_box(x) * y)
    });
    let (f, g) = (
        bn254::Fq12::random(&mut rng),
        bn254::Fq12::random(&mut rng),
    );
    group.bench_function("bn254_fq12_mul", |bench| {
        bench.iter(|| std::hint::black_box(f) * g)
    });
    group.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let p = bn254::Fq::modulus();
    let q = &p * &p;
    c.bench_function("bigint_divrem_508_by_254_bits", |bench| {
        bench.iter(|| std::hint::black_box(&q).divrem(&p))
    });
}

fn bench_msm(c: &mut Criterion) {
    let mut rng = zkperf_ff::test_rng();
    let mut group = c.benchmark_group("msm");
    group.sample_size(10);
    for log in [8u32, 10, 12] {
        let n = 1usize << log;
        let table = FixedBaseTable::new(&Projective::<zkperf_ec::bn254::G1Params>::generator());
        let scalars: Vec<bn254::Fr> = (0..n).map(|_| bn254::Fr::random(&mut rng)).collect();
        let bases: Vec<G1Affine> = table.mul_batch(&scalars);
        group.bench_with_input(BenchmarkId::new("pippenger_g1", n), &n, |bench, _| {
            bench.iter(|| msm(&bases, &scalars))
        });
        group.bench_with_input(BenchmarkId::new("fixed_base_g1", n), &n, |bench, _| {
            bench.iter(|| table.mul_batch(&scalars))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut rng = zkperf_ff::test_rng();
    let mut group = c.benchmark_group("ntt");
    for log in [10u32, 12, 14] {
        let domain = Radix2Domain::<bn254::Fr>::new(1 << log).unwrap();
        let values: Vec<bn254::Fr> = (0..domain.size())
            .map(|_| bn254::Fr::random(&mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("forward", 1usize << log), &log, |bench, _| {
            bench.iter(|| {
                let mut buf = values.clone();
                domain.fft_in_place(&mut buf);
                buf
            })
        });
    }
    group.finish();
}

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing");
    group.sample_size(10);
    let p = G1Affine::generator();
    let q = G2Affine::generator();
    group.bench_function("bn254_full_pairing", |bench| bench.iter(|| pairing(&p, &q)));
    let p2 = zkperf_ec::bls12_381::G1Affine::generator();
    let q2 = zkperf_ec::bls12_381::G2Affine::generator();
    group.bench_function("bls12_381_full_pairing", |bench| {
        bench.iter(|| zkperf_ec::bls12_381::pairing(&p2, &q2))
    });
    group.finish();
}

fn bench_scalar_mul(c: &mut Criterion) {
    let g = Projective::<zkperf_ec::bn254::G1Params>::generator();
    let e = BigUint::from_str_radix("123456789012345678901234567890123456789", 10).unwrap();
    c.bench_function("g1_scalar_mul_127bit", |bench| {
        bench.iter(|| g.mul_bigint(std::hint::black_box(&e)))
    });
}

fn bench_setup_small(c: &mut Criterion) {
    let circuit = exponentiate::<bn254::Fr>(256);
    let mut group = c.benchmark_group("groth16");
    group.sample_size(10);
    group.bench_function("setup_256_constraints", |bench| {
        bench.iter(|| {
            let mut rng = zkperf_ff::test_rng();
            setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fields,
    bench_bigint,
    bench_msm,
    bench_fft,
    bench_pairing,
    bench_scalar_mul,
    bench_setup_small
);
criterion_main!(benches);
