//! Criterion benchmarks of the five protocol stages themselves (untraced
//! wall time of this implementation): the substrate's own Figure-1
//! breakdown, complementing the simulated-machine experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zkperf_circuit::library::{exponentiate, exponentiate_source};
use zkperf_core::{Stage, Workload};
use zkperf_ec::Bn254;
use zkperf_ff::bn254::Fr;

const CONSTRAINTS: usize = 1 << 10;

fn bench_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("compile", CONSTRAINTS),
        &CONSTRAINTS,
        |b, &n| {
            let src = exponentiate_source(n);
            b.iter(|| zkperf_circuit::lang::compile::<Fr>(&src).unwrap())
        },
    );

    group.bench_with_input(
        BenchmarkId::new("setup", CONSTRAINTS),
        &CONSTRAINTS,
        |b, &n| {
            let circuit = exponentiate::<Fr>(n);
            b.iter(|| {
                let mut rng = zkperf_ff::test_rng();
                zkperf_groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("witness", CONSTRAINTS),
        &CONSTRAINTS,
        |b, &n| {
            let circuit = exponentiate::<Fr>(n);
            b.iter(|| {
                circuit
                    .generate_witness(&[zkperf_ff::Field::from_u64(3)], &[])
                    .unwrap()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("proving", CONSTRAINTS),
        &CONSTRAINTS,
        |b, &n| {
            let mut w = Workload::<zkperf_core::Groth16Backend<Bn254>>::exponentiate(n);
            w.prepare_for(Stage::Proving).expect("prerequisites run");
            let circuit = exponentiate::<Fr>(n);
            let mut rng = zkperf_ff::test_rng();
            let pk = zkperf_groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
            let witness = circuit
                .generate_witness(&[zkperf_ff::Field::from_u64(3)], &[])
                .unwrap();
            b.iter(|| {
                zkperf_groth16::prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)
                    .unwrap()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("verifying", CONSTRAINTS),
        &CONSTRAINTS,
        |b, &n| {
            let circuit = exponentiate::<Fr>(n);
            let mut rng = zkperf_ff::test_rng();
            let pk = zkperf_groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
            let witness = circuit
                .generate_witness(&[zkperf_ff::Field::from_u64(3)], &[])
                .unwrap();
            let proof =
                zkperf_groth16::prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)
                    .unwrap();
            b.iter(|| {
                zkperf_groth16::verify::<Bn254>(&pk.vk, &proof, witness.public()).unwrap()
            })
        },
    );

    group.finish();
}

criterion_group!(stage_benches, bench_stage);
criterion_main!(stage_benches);
