//! Regenerates every table and figure in one run (E0-E9), sharing the two
//! cached sweeps. See EXPERIMENTS.md for the paper-vs-measured record.

fn main() {
    zkperf_bench::experiments::all();
}
