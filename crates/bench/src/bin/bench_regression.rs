//! Wall-clock benchmark-regression harness.
//!
//! Unlike the instrumented experiment binaries (which count micro-ops under
//! the machine simulator), this harness measures *real* wall-clock time of
//! the uninstrumented release-mode kernels and protocol stages, emits a
//! machine-readable report, and optionally compares it against a committed
//! baseline with a configurable regression threshold.
//!
//! Modes:
//!
//! * full (default): kernel micro-benches plus the combined setup+prove
//!   path on the exponentiation workloads at 2^10..2^14 constraints.
//! * `--smoke`: kernel micro-benches only, at reduced sizes — fast enough
//!   for the tier-1 gate in `scripts/check.sh`.
//! * `--large`: adds the big-domain sweep — MSM at 2^18/2^20/2^22 and NTT
//!   at 2^18/2^20/2^22 (the four-step crossover and beyond). Off in
//!   tier-1; the small-size kernels keep their exact names so baseline
//!   comparisons stay like-for-like, and `compare` only gates entries
//!   present in both reports — a baseline refreshed with `--large`
//!   therefore gates the big kernels too.
//!
//! Exit codes: 0 ok, 1 usage/IO error, 2 regression past the threshold.

use std::process::ExitCode;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use zkperf_circuit::library::exponentiate;
use zkperf_ec::{msm, Bn254, Engine, FixedBaseTable, Projective};
use zkperf_ff::{bls12_381, bn254, Field};
use zkperf_groth16::{prove, setup, verify, verify_batch};
use zkperf_poly::Radix2Domain;

/// One timed kernel micro-benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelResult {
    name: String,
    /// Best-of-N wall time for one run of the kernel body, nanoseconds.
    nanos: u64,
}

/// One timed setup+prove cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageResult {
    curve: String,
    log2_constraints: u32,
    setup_ns: u64,
    prove_ns: u64,
    /// Combined setup + prove wall time: the headline number the perf
    /// trajectory is judged by.
    total_ns: u64,
    /// Tracking-allocator high-water mark across the setup+prove cell —
    /// the working set the `ZKPERF_MEM_BUDGET` streaming path bounds.
    peak_live_bytes: u64,
}

/// The report written to `BENCH_results.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    schema: u32,
    mode: String,
    /// Thread-pool size the run used (`ZKPERF_THREADS`, default 1).
    /// Comparisons are only meaningful like-for-like.
    threads: u64,
    /// Kernel-reported peak RSS (`VmHWM`) at the end of the run, 0 when
    /// the platform does not expose it. Informational — never gated (it
    /// covers the whole process, bench scaffolding included).
    peak_rss_bytes: u64,
    kernels: Vec<KernelResult>,
    stages: Vec<StageResult>,
}

/// Minimum over `reps` runs of `f`, in nanoseconds per run.
fn best_of<F: FnMut()>(reps: u32, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        best = best.min(ns);
    }
    best
}

fn kernel_benches(smoke: bool) -> Vec<KernelResult> {
    let mut rng = zkperf_ff::test_rng();
    let mut out = Vec::new();
    let reps = if smoke { 5 } else { 7 };

    // Field kernels: 4096 dependent ops amortize the clock reads.
    let a = bn254::Fr::random(&mut rng);
    let b = bn254::Fr::random(&mut rng);
    out.push(KernelResult {
        name: "bn254_fr_mul_x4096".into(),
        nanos: best_of(reps, || {
            let mut acc = a;
            for _ in 0..4096 {
                acc *= b;
            }
            std::hint::black_box(acc);
        }),
    });
    out.push(KernelResult {
        name: "bn254_fr_square_x4096".into(),
        nanos: best_of(reps, || {
            let mut acc = a;
            for _ in 0..4096 {
                acc = acc.square();
            }
            std::hint::black_box(acc);
        }),
    });
    out.push(KernelResult {
        name: "bn254_fr_inverse_x16".into(),
        nanos: best_of(reps, || {
            let mut acc = a;
            for _ in 0..16 {
                acc = acc.inverse().unwrap_or(b);
            }
            std::hint::black_box(acc);
        }),
    });
    let x = bls12_381::Fq::random(&mut rng);
    let y = bls12_381::Fq::random(&mut rng);
    out.push(KernelResult {
        name: "bls12_381_fq_square_x4096".into(),
        nanos: best_of(reps, || {
            let mut acc = x;
            for _ in 0..4096 {
                acc = acc.square();
            }
            std::hint::black_box(acc);
        }),
    });
    std::hint::black_box(y);

    // MSM kernels.
    let msm_logs: &[u32] = if smoke { &[10] } else { &[10, 12] };
    let table = FixedBaseTable::new(&Projective::<zkperf_ec::bn254::G1Params>::generator());
    for &log in msm_logs {
        let n = 1usize << log;
        let scalars: Vec<bn254::Fr> = (0..n).map(|_| bn254::Fr::random(&mut rng)).collect();
        let bases = table.mul_batch(&scalars);
        out.push(KernelResult {
            name: format!("bn254_msm_g1_2e{log}"),
            nanos: best_of(if smoke { 3 } else { 5 }, || {
                std::hint::black_box(msm(&bases, &scalars));
            }),
        });
    }
    if !smoke {
        let n = 1usize << 12;
        let scalars: Vec<bn254::Fr> = (0..n).map(|_| bn254::Fr::random(&mut rng)).collect();
        out.push(KernelResult {
            name: "bn254_fixed_base_g1_2e12".into(),
            nanos: best_of(3, || {
                std::hint::black_box(table.mul_batch(&scalars));
            }),
        });
        let tbl381 =
            FixedBaseTable::new(&Projective::<zkperf_ec::bls12_381::G1Params>::generator());
        let scalars381: Vec<bls12_381::Fr> = (0..1usize << 10)
            .map(|_| bls12_381::Fr::random(&mut rng))
            .collect();
        let bases381 = tbl381.mul_batch(&scalars381);
        out.push(KernelResult {
            name: "bls12_381_msm_g1_2e10".into(),
            nanos: best_of(3, || {
                std::hint::black_box(msm(&bases381, &scalars381));
            }),
        });
    }

    // Pairing and verification kernels: the per-request cost at serving
    // scale. The circuit is small on purpose — verification cost is
    // constraint-independent up to the public-input MSM, so these numbers
    // are the pairing substrate, not the prover.
    {
        let g1 = (Projective::<zkperf_ec::bn254::G1Params>::generator()
            * bn254::Fr::from_u64(20240808))
        .to_affine();
        let g2 = (Projective::<zkperf_ec::bn254::G2Params>::generator()
            * bn254::Fr::from_u64(4294967311))
        .to_affine();
        out.push(KernelResult {
            name: "bn254_pairing".into(),
            nanos: best_of(if smoke { 3 } else { 5 }, || {
                std::hint::black_box(Bn254::pairing(&g1, &g2));
            }),
        });

        let circuit = exponentiate::<bn254::Fr>(16);
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).expect("setup succeeds");
        let witness = circuit
            .generate_witness(&[bn254::Fr::from_u64(3)], &[])
            .expect("witness generation succeeds");
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)
            .expect("prove succeeds");
        out.push(KernelResult {
            name: "bn254_verify".into(),
            nanos: best_of(3, || {
                let ok = verify::<Bn254>(&pk.vk, &proof, witness.public())
                    .expect("well-formed inputs");
                assert!(ok, "bench proof must verify");
            }),
        });

        let items: Vec<_> = (0..16)
            .map(|i| {
                let w = circuit
                    .generate_witness(&[bn254::Fr::from_u64(2 + i)], &[])
                    .expect("witness generation succeeds");
                let p = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng)
                    .expect("prove succeeds");
                (p, w.public().to_vec())
            })
            .collect();
        out.push(KernelResult {
            name: "bn254_verify_batch_x16".into(),
            nanos: best_of(if smoke { 2 } else { 3 }, || {
                let mut batch_rng = zkperf_ff::test_rng();
                let ok = verify_batch::<Bn254, _>(&pk.vk, &items, &mut batch_rng)
                    .expect("well-formed inputs");
                assert!(ok, "bench batch must verify");
            }),
        });
    }

    // NTT kernels.
    let ntt_logs: &[u32] = if smoke { &[12] } else { &[12, 14] };
    for &log in ntt_logs {
        let domain = Radix2Domain::<bn254::Fr>::new(1 << log).expect("domain fits");
        let values: Vec<bn254::Fr> = (0..domain.size())
            .map(|_| bn254::Fr::random(&mut rng))
            .collect();
        let mut buf = values.clone();
        out.push(KernelResult {
            name: format!("bn254_ntt_2e{log}"),
            nanos: best_of(reps, || {
                buf.copy_from_slice(&values);
                domain.fft_in_place(&mut buf);
                std::hint::black_box(&buf);
            }),
        });
    }

    // STARK kernels: the transparent backend's prover and verifier at the
    // acceptance size, plus one bare FRI fold at a domain large enough
    // for the parallel grain to matter. Parameters are pinned (not
    // `from_env`) so the baseline is insensitive to ZKPERF_STARK_* knobs.
    {
        use zkperf_ff::Goldilocks;
        let params = zkperf_stark::StarkParams {
            blowup: 4,
            num_queries: 12,
        };
        let circuit = exponentiate::<Goldilocks>(1 << 14);
        let witness = circuit
            .generate_witness(&[Goldilocks::from_u64(3)], &[])
            .expect("witness generation succeeds");
        out.push(KernelResult {
            name: "stark_prove_2e14".into(),
            nanos: best_of(if smoke { 2 } else { 3 }, || {
                std::hint::black_box(
                    zkperf_stark::prove(circuit.r1cs(), witness.full(), &params)
                        .expect("prove succeeds"),
                );
            }),
        });
        let proof = zkperf_stark::prove(circuit.r1cs(), witness.full(), &params)
            .expect("prove succeeds");
        out.push(KernelResult {
            name: "stark_verify".into(),
            nanos: best_of(if smoke { 3 } else { 5 }, || {
                zkperf_stark::verify(circuit.r1cs(), witness.public(), &proof, &params)
                    .expect("bench proof must verify");
            }),
        });

        let fold_log = 18u32;
        let domain = Radix2Domain::<Goldilocks>::new(1 << fold_log).expect("domain fits");
        let layer = zkperf_stark::fri::LayerDomain {
            shift: domain.coset_shift(),
            omega: domain.group_gen(),
            size: domain.size(),
        };
        let values: Vec<Goldilocks> = (0..layer.size)
            .map(|_| Goldilocks::random(&mut rng))
            .collect();
        let beta = Goldilocks::random(&mut rng);
        out.push(KernelResult {
            name: format!("fri_fold_2e{fold_log}"),
            nanos: best_of(reps, || {
                std::hint::black_box(zkperf_stark::fri::fold_layer(&values, beta, &layer));
            }),
        });
    }
    out
}

/// The `--large` sweep: MSM and NTT at sizes where the GLV bucket sets
/// and the four-step crossover actually bite. Separate from
/// `kernel_benches` so the default suites keep their runtimes.
fn large_kernel_benches() -> Vec<KernelResult> {
    let mut rng = zkperf_ff::test_rng();
    let mut out = Vec::new();

    let table = FixedBaseTable::new(&Projective::<zkperf_ec::bn254::G1Params>::generator());
    for log in [18u32, 20, 22] {
        let n = 1usize << log;
        eprintln!("  preparing bn254_msm_g1_2e{log} ({n} points)...");
        let scalars: Vec<bn254::Fr> = (0..n).map(|_| bn254::Fr::random(&mut rng)).collect();
        let bases = table.mul_batch(&scalars);
        out.push(KernelResult {
            name: format!("bn254_msm_g1_2e{log}"),
            nanos: best_of(2, || {
                std::hint::black_box(msm(&bases, &scalars));
            }),
        });
        eprintln!("  kernel bn254_msm_g1_2e{log}: {} ns", out.last().expect("just pushed").nanos);
    }

    for log in [18u32, 20, 22] {
        let domain = Radix2Domain::<bn254::Fr>::new(1 << log).expect("domain fits");
        let values: Vec<bn254::Fr> = (0..domain.size())
            .map(|_| bn254::Fr::random(&mut rng))
            .collect();
        let mut buf = values.clone();
        out.push(KernelResult {
            name: format!("bn254_ntt_2e{log}"),
            nanos: best_of(3, || {
                buf.copy_from_slice(&values);
                domain.fft_in_place(&mut buf);
                std::hint::black_box(&buf);
            }),
        });
        eprintln!("  kernel bn254_ntt_2e{log}: {} ns", out.last().expect("just pushed").nanos);
    }
    out
}

fn stage_benches() -> Vec<StageResult> {
    let mut out = Vec::new();
    for log in [10u32, 12, 14] {
        let n = 1usize << log;
        let circuit = exponentiate::<bn254::Fr>(n);
        let mut rng = zkperf_ff::test_rng();
        zkperf_pool::mem::reset_peak();
        let start = Instant::now();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).expect("setup succeeds");
        let setup_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let witness = circuit
            .generate_witness(&[bn254::Fr::from_u64(3)], &[])
            .expect("witness generation succeeds");
        let start = Instant::now();
        let proof =
            prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng).expect("prove succeeds");
        let prove_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        std::hint::black_box(proof);
        let peak_live_bytes = zkperf_pool::mem::peak_live_bytes() as u64;
        out.push(StageResult {
            curve: "bn254".into(),
            log2_constraints: log,
            setup_ns,
            prove_ns,
            total_ns: setup_ns + prove_ns,
            peak_live_bytes,
        });
        eprintln!(
            "  stage bn254 2^{log}: setup {:.3}s prove {:.3}s peak-live {:.1} MiB",
            setup_ns as f64 / 1e9,
            prove_ns as f64 / 1e9,
            peak_live_bytes as f64 / (1u64 << 20) as f64,
        );
    }
    out
}

/// Compares `new` against `old`, printing one line per common entry.
/// Returns the names of entries slower than `1 + threshold` times the old
/// measurement.
fn compare(old: &BenchReport, new: &BenchReport, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let mut check = |name: &str, old_ns: u64, new_ns: u64| {
        let ratio = new_ns as f64 / old_ns.max(1) as f64;
        let speedup = old_ns as f64 / new_ns.max(1) as f64;
        println!("  {name}: {old_ns} -> {new_ns} ns ({speedup:.2}x vs baseline)");
        if ratio > 1.0 + threshold {
            regressions.push(name.to_string());
        }
    };
    for k in &new.kernels {
        if let Some(prev) = old.kernels.iter().find(|p| p.name == k.name) {
            check(&k.name, prev.nanos, k.nanos);
        }
    }
    for s in &new.stages {
        if let Some(prev) = old
            .stages
            .iter()
            .find(|p| p.curve == s.curve && p.log2_constraints == s.log2_constraints)
        {
            check(
                &format!("{}_setup_prove_2e{}", s.curve, s.log2_constraints),
                prev.total_ns,
                s.total_ns,
            );
        }
    }
    regressions
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_regression [--smoke] [--large] [--out FILE] [--baseline FILE] [--threshold FRACTION]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut large = false;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold = 0.25f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--large" => large = true,
            "--out" | "--baseline" | "--threshold" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--out" => out_path = Some(value.clone()),
                    "--baseline" => baseline_path = Some(value.clone()),
                    _ => match value.parse::<f64>() {
                        Ok(t) if t > 0.0 => threshold = t,
                        _ => return usage(),
                    },
                }
                i += 1;
            }
            _ => return usage(),
        }
        i += 1;
    }

    let mode = if smoke { "smoke" } else { "full" };
    let threads = zkperf_pool::current_threads() as u64;
    eprintln!("bench_regression: running {mode} suite at {threads} thread(s)");
    let mut kernels = kernel_benches(smoke);
    if large {
        eprintln!("bench_regression: --large sweep (MSM 2^18..2^22, NTT 2^18..2^22)");
        kernels.extend(large_kernel_benches());
    }
    let stages = if smoke { Vec::new() } else { stage_benches() };
    let report = BenchReport {
        schema: 2,
        mode: mode.into(),
        threads,
        peak_rss_bytes: zkperf_pool::mem::peak_rss_bytes().unwrap_or(0),
        kernels,
        stages,
    };
    for k in &report.kernels {
        eprintln!("  kernel {}: {} ns", k.name, k.nanos);
    }

    if let Some(path) = &out_path {
        let bytes = match serde_json::to_vec_pretty(&report) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_regression: serialize failed: {e}");
                return ExitCode::from(1);
            }
        };
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("bench_regression: writing {path} failed: {e}");
            return ExitCode::from(1);
        }
        eprintln!("bench_regression: wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let Ok(bytes) = std::fs::read(path) else {
            eprintln!("bench_regression: no baseline at {path}; skipping comparison");
            return ExitCode::SUCCESS;
        };
        let old: BenchReport = match serde_json::from_slice(&bytes) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("bench_regression: baseline {path} unreadable: {e}");
                return ExitCode::from(1);
            }
        };
        println!("comparison vs {path} (threshold {:.0}%):", threshold * 100.0);
        let regressions = compare(&old, &report, threshold);
        if old.threads != report.threads {
            // A 4-thread run beating a 1-thread baseline (or losing to it)
            // says nothing about the code; only like-for-like gates.
            println!(
                "note: baseline ran at {} thread(s), this run at {} — \
                 comparison is informational only, regression gate skipped",
                old.threads, report.threads
            );
            return ExitCode::SUCCESS;
        }
        if !regressions.is_empty() {
            eprintln!(
                "bench_regression: REGRESSION in {} entr{}: {}",
                regressions.len(),
                if regressions.len() == 1 { "y" } else { "ies" },
                regressions.join(", ")
            );
            return ExitCode::from(2);
        }
        println!("no regressions past the threshold");
    }
    ExitCode::SUCCESS
}
