//! E0 — §IV-B execution-time analysis: per-stage share of total time
//! (paper: setup 76.1%, proving 13.4%).

fn main() {
    zkperf_bench::experiments::exec_time();
}
