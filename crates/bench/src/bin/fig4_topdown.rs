//! E1 — Fig. 4: top-down microarchitecture analysis for the five stages
//! across CPUs, curves and constraint sizes.

fn main() {
    zkperf_bench::experiments::fig4_topdown();
}
