//! E2 — Fig. 5: loads and stores per stage vs. constraint count
//! (mean and min..max band across CPUs and curves).

fn main() {
    zkperf_bench::experiments::fig5_loads_stores();
}
