//! E7 — Fig. 6: strong scaling on the (simulated) i9-13900K — speedup vs.
//! thread count at fixed constraint counts.

fn main() {
    zkperf_bench::experiments::fig6_strong_scaling();
}
