//! E8 — Fig. 7: weak scaling on the (simulated) i9-13900K — threads and
//! constraint count double together.

fn main() {
    zkperf_bench::experiments::fig7_weak_scaling();
}
