//! E10 (extension) — the paper's §IV-A remark: "The proving time of PlonK
//! is twice as slow compared to Groth16." Measures both schemes' prove and
//! verify wall times on the same exponentiation circuits.

use std::time::Instant;

use serde::Serialize;
use zkperf_bench::emit;
use zkperf_circuit::library::exponentiate;
use zkperf_core::render;
use zkperf_ec::Bn254;
use zkperf_ff::{bn254::Fr, Field};

#[derive(Debug, Serialize)]
struct SchemeRow {
    constraints: usize,
    groth16_prove_ms: f64,
    plonk_prove_ms: f64,
    prove_ratio: f64,
    groth16_verify_ms: f64,
    plonk_verify_ms: f64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let max_log: u32 = std::env::var("ZKPERF_MAX_LOG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let mut rows = Vec::new();
    for log in 8..=max_log {
        let n = 1usize << log;
        let circuit = exponentiate::<Fr>(n);
        let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        let mut rng = zkperf_ff::test_rng();

        let g_pk = zkperf_groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let start = Instant::now();
        let g_proof =
            zkperf_groth16::prove::<Bn254, _>(&g_pk, circuit.r1cs(), &witness, &mut rng)
                .unwrap();
        let groth16_prove_ms = ms(start);
        let start = Instant::now();
        assert!(zkperf_groth16::verify::<Bn254>(&g_pk.vk, &g_proof, witness.public()).unwrap());
        let groth16_verify_ms = ms(start);

        let p_pk = zkperf_plonk::plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let start = Instant::now();
        let p_proof = zkperf_plonk::plonk_prove(&p_pk, witness.full()).unwrap();
        let plonk_prove_ms = ms(start);
        let start = Instant::now();
        assert!(zkperf_plonk::plonk_verify(p_pk.vk(), &p_proof, witness.public()));
        let plonk_verify_ms = ms(start);

        rows.push(SchemeRow {
            constraints: n,
            groth16_prove_ms,
            plonk_prove_ms,
            prove_ratio: plonk_prove_ms / groth16_prove_ms,
            groth16_verify_ms,
            plonk_verify_ms,
        });
        eprintln!("[zkperf] 2^{log} done");
    }
    let text = render::table(
        &[
            "constraints",
            "groth16 prove (ms)",
            "plonk prove (ms)",
            "plonk/groth16",
            "groth16 verify (ms)",
            "plonk verify (ms)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.constraints.to_string(),
                    render::f(r.groth16_prove_ms, 1),
                    render::f(r.plonk_prove_ms, 1),
                    render::f(r.prove_ratio, 2),
                    render::f(r.groth16_verify_ms, 1),
                    render::f(r.plonk_verify_ms, 1),
                ]
            })
            .collect::<Vec<_>>(),
    );
    emit("plonk_vs_groth16", &text, &rows);
}
