//! Measured vs simulated strong scaling — closing the loop on Fig. 6 and
//! Table VI.
//!
//! The experiment binaries predict multicore scaling from op counts: they
//! replay a stage's task graph on [`zkperf_scale::SimCores`] and fit the
//! resulting curve to Amdahl's law. This binary measures the *real* thing:
//! it runs the uninstrumented setup+prove pipeline on the work-stealing
//! pool at growing thread counts, fits the measured wall-clock speedups
//! with the same [`zkperf_scale::fit::amdahl`], and prints both fits side
//! by side.
//!
//! On a single-core host the measured column is honestly flat (speedup
//! ~1.0 everywhere — more workers, same core), while the simulated column
//! still shows the model's prediction for the i9; the point of the report
//! is that both columns come from the same estimator, so on a multicore
//! host they are directly comparable.
//!
//! `--sizes A,B,..` additionally runs the size-scaling trajectory: one
//! setup+prove round per listed `log₂(constraints)` at the current thread
//! count, reporting wall time, per-constraint cost, and the tracking
//! allocator's peak-live bytes — the 2^18–2^22 sweep the out-of-core
//! prover's memory claims are judged by (run it with `ZKPERF_MEM_BUDGET`
//! set to see the streamed path's bounded residency).
//!
//! `--backends N` runs the three-backend comparison instead: the same
//! `exponentiate 2^N` workload through Groth16, PLONK, and the
//! transparent STARK via the unified `ProverBackend` trait, one
//! setup/prove/verify round each, reporting trusted-setup requirement,
//! key and proof sizes, and per-stage wall time — the README comparison
//! table is generated from this mode.
//!
//! usage: `real_scaling [--log2 N] [--sim-log2 N] [--threads A,B,..]
//!         [--sizes A,B,..] [--backends N] [--out FILE]`
//!
//! Exit codes: 0 ok, 1 usage/IO error.

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;

use zkperf_circuit::library::exponentiate;
use zkperf_core::{
    measure_cell, stage_task_graph, Curve, Groth16Backend, PlonkBackend, ProverBackend, Stage,
    StarkBackend,
};
use zkperf_ec::Bn254;
use zkperf_ff::{bn254, Field};
use zkperf_groth16::{prove, setup};
use zkperf_machine::CpuProfile;
use zkperf_scale::{fit, ParallelismFit, SimCores};

/// One strong-scaling series plus its Amdahl fit.
#[derive(Debug, Clone, Serialize)]
struct ScalingSeries {
    /// `(threads, speedup)` points, threads ascending.
    points: Vec<(usize, f64)>,
    fit: ParallelismFit,
}

/// One point of the size-scaling trajectory.
#[derive(Debug, Clone, Serialize)]
struct SizeSweepPoint {
    log2_constraints: u32,
    nanos: u64,
    nanos_per_constraint: f64,
    /// Tracking-allocator high-water mark across the round.
    peak_live_bytes: u64,
    /// Bytes moved by the streaming chunk transport (0 unbudgeted).
    streamed_bytes: u64,
}

/// The report written by `--out`.
#[derive(Debug, Clone, Serialize)]
struct ScalingReport {
    schema: u32,
    log2_constraints: u32,
    sim_log2_constraints: u32,
    host_cores: usize,
    measured: ScalingSeries,
    simulated: ScalingSeries,
    /// The `--sizes` trajectory, empty when not requested.
    size_sweep: Vec<SizeSweepPoint>,
}

/// Wall time of one setup+prove round at `n` constraints: `(nanos,
/// peak_live_bytes, streamed_bytes)`.
fn time_setup_prove(n: usize) -> (u64, u64, u64) {
    let circuit = exponentiate::<bn254::Fr>(n);
    let mut rng = zkperf_ff::test_rng();
    let witness = circuit
        .generate_witness(&[bn254::Fr::from_u64(3)], &[])
        .expect("witness generation succeeds");
    zkperf_pool::mem::reset_peak();
    let streamed0 = zkperf_pool::mem::streamed_bytes();
    let start = Instant::now();
    let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).expect("setup succeeds");
    let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng).expect("prove succeeds");
    std::hint::black_box(proof);
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (
        nanos,
        zkperf_pool::mem::peak_live_bytes() as u64,
        zkperf_pool::mem::streamed_bytes().saturating_sub(streamed0),
    )
}

/// The `--sizes` trajectory: one round per size at the current thread
/// count, with per-constraint cost and peak-live residency.
fn size_scaling(logs: &[u32]) -> Vec<SizeSweepPoint> {
    let budget = zkperf_pool::mem::budget();
    match budget {
        Some(b) => eprintln!("  size sweep under ZKPERF_MEM_BUDGET={} bytes", b),
        None => eprintln!("  size sweep unbudgeted (in-memory fast path)"),
    }
    logs.iter()
        .map(|&log| {
            let n = 1usize << log;
            let (nanos, peak_live_bytes, streamed_bytes) = time_setup_prove(n);
            let point = SizeSweepPoint {
                log2_constraints: log,
                nanos,
                nanos_per_constraint: nanos as f64 / n as f64,
                peak_live_bytes,
                streamed_bytes,
            };
            eprintln!(
                "  size 2^{log}: {:.3}s ({:.0} ns/constraint), peak-live {:.1} MiB, streamed {:.1} MiB",
                nanos as f64 / 1e9,
                point.nanos_per_constraint,
                peak_live_bytes as f64 / (1u64 << 20) as f64,
                streamed_bytes as f64 / (1u64 << 20) as f64,
            );
            point
        })
        .collect()
}

/// One row of the three-backend comparison table.
struct BackendRow {
    label: &'static str,
    transparent: bool,
    keys_size: usize,
    proof_size: usize,
    setup_ns: u64,
    prove_ns: u64,
    verify_ns: u64,
}

/// One setup/prove/verify round of `exponentiate 2^log2` through a
/// backend, purely via the unified trait.
fn backend_round<B: ProverBackend>(log2: u32) -> BackendRow {
    use rand::SeedableRng;
    let circuit = exponentiate::<B::Fr>(1usize << log2);
    let witness = circuit
        .generate_witness(&[B::Fr::from_u64(3)], &[])
        .expect("witness generation succeeds");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_cafe);
    let start = Instant::now();
    let keys = B::setup(circuit.r1cs(), &mut rng).expect("setup succeeds");
    let setup_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let start = Instant::now();
    let proof = B::prove(&keys, circuit.r1cs(), &witness, &mut rng).expect("prove succeeds");
    let prove_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let start = Instant::now();
    let ok = B::verify(&keys, circuit.r1cs(), &proof, witness.public())
        .expect("verify well-formed");
    let verify_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    assert!(ok, "{}: comparison proof must verify", B::label());
    BackendRow {
        label: B::label(),
        transparent: B::transparent_setup(),
        keys_size: B::keys_size_bytes(&keys),
        proof_size: B::proof_size_bytes(&proof),
        setup_ns,
        prove_ns,
        verify_ns,
    }
}

/// The `--backends` mode: the same workload through all three proof
/// systems, printed as the markdown table the README embeds.
fn backend_comparison(log2: u32) {
    let rows = [
        backend_round::<Groth16Backend<Bn254>>(log2),
        backend_round::<PlonkBackend<Bn254>>(log2),
        backend_round::<StarkBackend>(log2),
    ];
    let ms = |ns: u64| format!("{:.1} ms", ns as f64 / 1e6);
    let kib = |b: usize| {
        if b >= 1 << 20 {
            format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
        } else {
            format!("{:.1} KiB", b as f64 / 1024.0)
        }
    };
    println!("three-backend comparison, exponentiate 2^{log2}, {} thread(s):", zkperf_pool::current_threads());
    println!();
    println!("| backend | trusted setup | key material | proof size | setup | prove | verify |");
    println!("|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            r.label,
            if r.transparent { "none (transparent)" } else { "required (SRS)" },
            kib(r.keys_size),
            kib(r.proof_size),
            ms(r.setup_ns),
            ms(r.prove_ns),
            ms(r.verify_ns),
        );
    }
}

/// Measures real strong scaling: best-of-2 setup+prove wall time at each
/// thread count, normalized to the 1-thread time.
fn measured_scaling(log2: u32, threads: &[usize]) -> ScalingSeries {
    let n = 1usize << log2;
    let mut times = Vec::new();
    for &t in threads {
        zkperf_pool::set_threads(t);
        let ns = time_setup_prove(n).0.min(time_setup_prove(n).0);
        eprintln!(
            "  measured {t:>2} thread(s): setup+prove 2^{log2} in {:.3}s",
            ns as f64 / 1e9
        );
        times.push((t, ns));
    }
    zkperf_pool::set_threads(1);
    let t1 = times
        .iter()
        .find(|&&(t, _)| t == 1)
        .map_or_else(|| times[0].1, |&(_, ns)| ns);
    let points: Vec<(usize, f64)> = times
        .iter()
        .map(|&(t, ns)| (t, t1 as f64 / ns.max(1) as f64))
        .collect();
    let fit = fit::amdahl(&points);
    ScalingSeries { points, fit }
}

/// Simulated strong scaling for the same pipeline: instruments one
/// setup+prove cell on the simulated i9, replays both stage task graphs
/// on `SimCores`, and combines them (the measured side times the two
/// stages back to back, so the simulated side must too).
fn simulated_scaling(sim_log2: u32, threads: &[usize]) -> ScalingSeries {
    let ms = measure_cell(
        Curve::Bn128,
        &CpuProfile::i9_13900k(),
        1 << sim_log2,
        &[Stage::Setup, Stage::Proving],
    )
    .expect("simulated setup+prove cell succeeds");
    let graphs: Vec<_> = ms.iter().map(stage_task_graph).collect();
    let machine = SimCores::i9_13900k();
    let total_at = |t: usize| -> f64 { graphs.iter().map(|g| machine.simulate(g, t)).sum() };
    let t1 = total_at(1);
    let points: Vec<(usize, f64)> = threads.iter().map(|&t| (t, t1 / total_at(t))).collect();
    let fit = fit::amdahl(&points);
    ScalingSeries { points, fit }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: real_scaling [--log2 N] [--sim-log2 N] [--threads A,B,..] \
         [--sizes A,B,..] [--backends N] [--out FILE]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut log2 = 14u32;
    let mut sim_log2 = 10u32;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut sizes: Vec<u32> = Vec::new();
    let mut backends_log2: Option<u32> = None;
    let mut out_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match args[i].as_str() {
            "--log2" => match value.parse() {
                // 2^22 constraints needs a 2^23 quotient domain — well
                // inside BN254's 2^28 two-adicity, and large enough to
                // drive the four-step NTT and GLV MSM paths end to end.
                Ok(v) if (4..=22).contains(&v) => log2 = v,
                _ => return usage(),
            },
            "--sim-log2" => match value.parse() {
                Ok(v) if (4..=16).contains(&v) => sim_log2 = v,
                _ => return usage(),
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> =
                    value.split(',').map(|s| s.trim().parse().ok()).collect();
                match parsed {
                    Some(list) if list.len() >= 2 && list.iter().all(|&t| (1..=64).contains(&t)) => {
                        threads = list;
                    }
                    _ => return usage(),
                }
            }
            "--sizes" => {
                let parsed: Option<Vec<u32>> =
                    value.split(',').map(|s| s.trim().parse().ok()).collect();
                match parsed {
                    Some(list)
                        if !list.is_empty() && list.iter().all(|&v| (4..=22).contains(&v)) =>
                    {
                        sizes = list;
                    }
                    _ => return usage(),
                }
            }
            "--backends" => match value.parse() {
                // 2^18 STARK traces at blowup 4 stay inside Goldilocks'
                // 2^32 two-adicity with plenty of headroom; the cap keeps
                // the comparison round interactive.
                Ok(v) if (4..=18).contains(&v) => backends_log2 = Some(v),
                _ => return usage(),
            },
            "--out" => out_path = Some(value.clone()),
            _ => return usage(),
        }
        i += 2;
    }

    if let Some(log2) = backends_log2 {
        backend_comparison(log2);
        return ExitCode::SUCCESS;
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "real_scaling: bn254 setup+prove, measured at 2^{log2}, simulated at 2^{sim_log2}, \
         host has {host_cores} core(s)"
    );

    let size_sweep = if sizes.is_empty() {
        Vec::new()
    } else {
        eprintln!("  size-scaling trajectory at {} thread(s)...", zkperf_pool::current_threads());
        size_scaling(&sizes)
    };

    let measured = measured_scaling(log2, &threads);
    eprintln!("  simulating i9 cell at 2^{sim_log2}...");
    let simulated = simulated_scaling(sim_log2, &threads);

    println!("strong scaling, bn254 setup+prove ({host_cores}-core host):");
    println!("  threads | measured speedup | simulated speedup (i9 model)");
    for (&(t, m), &(_, s)) in measured.points.iter().zip(&simulated.points) {
        println!("  {t:>7} | {m:>16.2} | {s:>17.2}");
    }
    println!(
        "  Amdahl fit: measured {:.1}% serial / {:.1}% parallel, \
         simulated {:.1}% serial / {:.1}% parallel",
        measured.fit.serial_pct,
        measured.fit.parallel_pct,
        simulated.fit.serial_pct,
        simulated.fit.parallel_pct,
    );
    if host_cores == 1 {
        println!(
            "  (single-core host: the measured curve cannot rise above 1.0; \
             rerun on a multicore machine for a meaningful comparison)"
        );
    }

    if let Some(path) = &out_path {
        let report = ScalingReport {
            schema: 2,
            log2_constraints: log2,
            sim_log2_constraints: sim_log2,
            host_cores,
            measured,
            simulated,
            size_sweep,
        };
        let bytes = match serde_json::to_vec_pretty(&report) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("real_scaling: serialize failed: {e}");
                return ExitCode::from(1);
            }
        };
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("real_scaling: writing {path} failed: {e}");
            return ExitCode::from(1);
        }
        eprintln!("real_scaling: wrote {path}");
    }
    ExitCode::SUCCESS
}
