//! Out-of-core proving smoke: byte-identity of the budgeted pipeline.
//!
//! Runs one circuit three ways and demands identical artifacts:
//!
//! 1. the unbudgeted in-memory reference (setup + prove, no
//!    `ZKPERF_MEM_BUDGET`),
//! 2. the budgeted resident path (same entry points, budget set — setup
//!    streams through a [`zkperf_groth16::MemorySink`], every prover MSM
//!    chunks its bases) at each requested thread count,
//! 3. the on-disk streamed pipeline (`setup_streamed` → streamed `.zkey`
//!    file → `prove_streamed`), where the key is never resident in full.
//!
//! The verification key and proof bytes must match across all of them —
//! the acceptance contract of the streaming CRS/MSM pipeline. The run
//! reports the tracking allocator's peak-live bytes per leg and the bytes
//! moved through the chunk transport, so the budget's effect on residency
//! is visible in the same output that proves byte-identity.
//!
//! usage: `stream_smoke [--log2 N] [--budget BYTES[K|M|G]] [--threads A,B,..]
//!         [--dir PATH]`
//!
//! Exit codes: 0 ok (byte-identical), 1 usage/IO error, 2 divergence.

use std::process::ExitCode;
use std::time::Instant;

use zkperf_circuit::library::exponentiate;
use zkperf_ec::Bn254;
use zkperf_ff::{bn254, Field};
use zkperf_groth16::{prove, prove_streamed, setup, setup_streamed};
use zkperf_io::{write_proof, write_vkey, StreamedZkeyReader, StreamedZkeyWriter};
use zkperf_pool::mem;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stream_smoke [--log2 N] [--budget BYTES[K|M|G]] [--threads A,B,..] [--dir PATH]"
    );
    ExitCode::from(1)
}

fn mib(b: u64) -> f64 {
    b as f64 / (1u64 << 20) as f64
}

/// Artifacts and accounting from one setup+prove leg.
struct Leg {
    vk_bytes: Vec<u8>,
    proof_bytes: Vec<u8>,
    peak_live: u64,
    streamed: u64,
    nanos: u64,
}

/// One setup+prove leg under the ambient budget/threads.
fn run_resident(
    circuit: &zkperf_circuit::Circuit<bn254::Fr>,
    witness: &zkperf_circuit::Witness<bn254::Fr>,
) -> Result<Leg, String> {
    mem::reset_peak();
    let streamed0 = mem::streamed_bytes();
    let start = Instant::now();
    let mut rng = zkperf_ff::test_rng();
    let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).map_err(|e| e.to_string())?;
    let proof =
        prove::<Bn254, _>(&pk, circuit.r1cs(), witness, &mut rng).map_err(|e| e.to_string())?;
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let peak = mem::peak_live_bytes() as u64;
    let streamed = mem::streamed_bytes().saturating_sub(streamed0);
    let mut vk_bytes = Vec::new();
    write_vkey::<Bn254>(&mut vk_bytes, &pk.vk).map_err(|e| e.to_string())?;
    let mut proof_bytes = Vec::new();
    write_proof::<Bn254>(&mut proof_bytes, &proof).map_err(|e| e.to_string())?;
    Ok(Leg { vk_bytes, proof_bytes, peak_live: peak, streamed, nanos })
}

fn main() -> ExitCode {
    let mut log2 = 16u32;
    let mut budget: u64 = 64 << 20;
    let mut threads: Vec<usize> = vec![1];
    let mut dir: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match args[i].as_str() {
            "--log2" => match value.parse() {
                Ok(v) if (4..=22).contains(&v) => log2 = v,
                _ => return usage(),
            },
            "--budget" => match mem::parse_budget(value) {
                Some(b) => budget = b,
                None => return usage(),
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> =
                    value.split(',').map(|s| s.trim().parse().ok()).collect();
                match parsed {
                    Some(list)
                        if !list.is_empty() && list.iter().all(|&t| (1..=64).contains(&t)) =>
                    {
                        threads = list;
                    }
                    _ => return usage(),
                }
            }
            "--dir" => dir = Some(value.clone()),
            _ => return usage(),
        }
        i += 2;
    }

    let n = 1usize << log2;
    eprintln!(
        "stream_smoke: bn254 2^{log2} constraints, budget {:.1} MiB, threads {threads:?}",
        mib(budget)
    );
    let circuit = exponentiate::<bn254::Fr>(n);
    let witness = match circuit.generate_witness(&[bn254::Fr::from_u64(3)], &[]) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("stream_smoke: witness generation failed: {e}");
            return ExitCode::from(1);
        }
    };

    // Budgeted legs first, so their peak-live numbers aren't inflated by a
    // resident reference key.
    let mut budgeted: Vec<(usize, Leg)> = Vec::new();
    for &t in &threads {
        zkperf_pool::set_threads(t);
        mem::set_budget(Some(budget));
        match run_resident(&circuit, &witness) {
            Ok(leg) => {
                eprintln!(
                    "  budgeted  {t} thread(s): {:.3}s, peak-live {:.1} MiB, streamed {:.1} MiB",
                    leg.nanos as f64 / 1e9,
                    mib(leg.peak_live),
                    mib(leg.streamed)
                );
                budgeted.push((t, leg));
            }
            Err(e) => {
                eprintln!("stream_smoke: budgeted run at {t} thread(s) failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // On-disk streamed pipeline at the first thread count: setup writes
    // the chunked .zkey, prove reads it back chunk by chunk.
    zkperf_pool::set_threads(threads[0]);
    mem::set_budget(Some(budget));
    let dir = dir.unwrap_or_else(|| std::env::temp_dir().display().to_string());
    let zkey_path = std::path::Path::new(&dir).join(format!("stream_smoke_2e{log2}.zks"));
    let chunk = zkperf_ec::tuning::stream_chunk_points(
        budget,
        std::mem::size_of::<zkperf_ec::bn254::G1Affine>(),
        std::mem::size_of::<bn254::Fr>(),
    );
    let file_leg = (|| -> Result<(Vec<u8>, Vec<u8>, u64, u64), String> {
        mem::reset_peak();
        let streamed0 = mem::streamed_bytes();
        let mut rng = zkperf_ff::test_rng();
        let mut writer =
            StreamedZkeyWriter::<Bn254>::create(&zkey_path).map_err(|e| e.to_string())?;
        let vk = setup_streamed::<Bn254, _, _>(circuit.r1cs(), &mut rng, chunk, &mut writer)
            .map_err(|e| e.to_string())?;
        let reader = StreamedZkeyReader::<Bn254>::open(&zkey_path).map_err(|e| e.to_string())?;
        let proof = prove_streamed::<Bn254, _, _>(&reader, circuit.r1cs(), &witness, &mut rng)
            .map_err(|e| e.to_string())?;
        let peak = mem::peak_live_bytes() as u64;
        let streamed = mem::streamed_bytes().saturating_sub(streamed0);
        let mut vk_bytes = Vec::new();
        write_vkey::<Bn254>(&mut vk_bytes, &vk).map_err(|e| e.to_string())?;
        let mut proof_bytes = Vec::new();
        write_proof::<Bn254>(&mut proof_bytes, &proof).map_err(|e| e.to_string())?;
        Ok((vk_bytes, proof_bytes, peak, streamed))
    })();
    let _ = std::fs::remove_file(&zkey_path);
    let (file_vk, file_proof, file_peak, file_streamed) = match file_leg {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stream_smoke: streamed-file pipeline failed: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "  streamed file ({} pts/chunk): peak-live {:.1} MiB, streamed {:.1} MiB",
        chunk,
        mib(file_peak),
        mib(file_streamed)
    );

    // Unbudgeted in-memory reference, serial.
    zkperf_pool::set_threads(1);
    mem::set_budget(None);
    let reference = match run_resident(&circuit, &witness) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stream_smoke: unbudgeted reference failed: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "  unbudgeted 1 thread(s): {:.3}s, peak-live {:.1} MiB (the in-memory working set)",
        reference.nanos as f64 / 1e9,
        mib(reference.peak_live)
    );

    let mut diverged = false;
    for (t, leg) in &budgeted {
        if leg.vk_bytes != reference.vk_bytes {
            eprintln!("stream_smoke: DIVERGENCE: vk bytes differ at {t} thread(s) under budget");
            diverged = true;
        }
        if leg.proof_bytes != reference.proof_bytes {
            eprintln!("stream_smoke: DIVERGENCE: proof bytes differ at {t} thread(s) under budget");
            diverged = true;
        }
    }
    if file_vk != reference.vk_bytes {
        eprintln!("stream_smoke: DIVERGENCE: streamed-file vk bytes differ");
        diverged = true;
    }
    if file_proof != reference.proof_bytes {
        eprintln!("stream_smoke: DIVERGENCE: streamed-file proof bytes differ");
        diverged = true;
    }
    if diverged {
        return ExitCode::from(2);
    }
    println!(
        "stream_smoke: byte-identical across unbudgeted, {} budgeted leg(s), and the \
         streamed-file pipeline (2^{log2}, budget {:.1} MiB, in-memory peak {:.1} MiB)",
        budgeted.len(),
        mib(budget),
        mib(reference.peak_live)
    );
    ExitCode::SUCCESS
}
