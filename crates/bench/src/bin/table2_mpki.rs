//! E3 — Table II: maximum LLC load MPKI per stage × CPU × curve.

fn main() {
    zkperf_bench::experiments::table2_mpki();
}
