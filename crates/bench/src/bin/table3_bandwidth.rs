//! E4 — Table III: maximum DRAM bandwidth per stage × curve, averaged
//! over constraint sizes and CPUs.

fn main() {
    zkperf_bench::experiments::table3_bandwidth();
}
