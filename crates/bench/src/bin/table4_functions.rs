//! E5 — Table IV: the most CPU-time-consuming functions per stage.

fn main() {
    zkperf_bench::experiments::table4_functions();
}
