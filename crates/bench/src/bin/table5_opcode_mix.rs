//! E6 — Table V: compute / control-flow / data-flow opcode mix per stage
//! and curve.

fn main() {
    zkperf_bench::experiments::table5_opcode_mix();
}
