//! E9 — Table VI: serial/parallel percentages per stage from Amdahl (SS)
//! and Gustafson (WS) fits, averaged over constraint sizes, on the i9.

fn main() {
    zkperf_bench::experiments::table6_parallelism();
}
