//! Quick sanity probe of per-stage metrics at one size (developer tool).
fn main() {
    for cpu in [zkperf_machine::CpuProfile::i7_8650u(), zkperf_machine::CpuProfile::i9_13900k()] {
        let name = cpu.name;
        let ms = zkperf_core::measure_cell(
            zkperf_core::Curve::Bn128,
            &cpu,
            1 << 12,
            &zkperf_core::Stage::ALL,
        )
        .expect("probe cell measures");
        for m in &ms {
            let td = m.machine.topdown();
            println!(
                "{name} {:<9} uops={:>11} mpki={:>6.2} peakBW={:>6.2} fe={:>4.1} bs={:>4.1} be={:>4.1} ret={:>4.1} mix={:.0}/{:.0}/{:.0}",
                m.stage.name(),
                m.counts.total_uops(),
                m.machine.llc_load_mpki(),
                m.machine.peak_dram_gbps,
                td.frontend_bound,
                td.bad_speculation,
                td.backend_bound,
                td.retiring,
                m.counts.class_percent(zkperf_trace::OpClass::Compute),
                m.counts.class_percent(zkperf_trace::OpClass::Control),
                m.counts.class_percent(zkperf_trace::OpClass::Data),
            );
        }
    }
}
