//! The ten experiments (E0-E9), callable as library functions so the
//! per-experiment binaries and `all_experiments` share one code path.

use std::collections::BTreeMap;

use zkperf_core::{analysis, Curve, Stage, StageMeasurement, SweepConfig};
use zkperf_machine::CpuProfile;
use zkperf_scale::SimCores;

use crate::{emit, sweep_cached};

fn main_sweep() -> Vec<StageMeasurement> {
    sweep_cached(&SweepConfig::default(), "main")
}

fn i9_sweep() -> Vec<StageMeasurement> {
    let config = SweepConfig::default().with_cpu(CpuProfile::i9_13900k());
    sweep_cached(&config, "i9")
}

/// E0 — §IV-B execution-time breakdown.
pub fn exec_time() {
    let ms = main_sweep();
    let rows = analysis::exec_time_breakdown(&ms);
    emit("exec_time", &analysis::render_exec_time(&rows), &rows);
}

/// E1 — Fig. 4 top-down microarchitecture analysis.
pub fn fig4_topdown() {
    let ms = main_sweep();
    let rows = analysis::topdown_rows(&ms);
    emit("fig4_topdown", &analysis::render_topdown(&rows), &rows);
}

/// E2 — Fig. 5 loads/stores bands.
pub fn fig5_loads_stores() {
    let ms = main_sweep();
    let rows = analysis::load_store_rows(&ms);
    emit("fig5_loads_stores", &analysis::render_load_store(&rows), &rows);
}

/// E3 — Table II max LLC load MPKI.
pub fn table2_mpki() {
    let ms = main_sweep();
    let rows = analysis::mpki_table(&ms);
    emit("table2_mpki", &analysis::render_mpki(&rows), &rows);
}

/// E4 — Table III peak DRAM bandwidth.
pub fn table3_bandwidth() {
    let ms = main_sweep();
    let rows = analysis::bandwidth_table(&ms);
    emit("table3_bandwidth", &analysis::render_bandwidth(&rows), &rows);
}

/// E5 — Table IV hot functions.
pub fn table4_functions() {
    let ms = main_sweep();
    let rows = analysis::hot_functions(&ms, 6);
    emit("table4_functions", &analysis::render_hot_functions(&rows), &rows);
}

/// E6 — Table V opcode mix.
pub fn table5_opcode_mix() {
    let ms = main_sweep();
    let rows = analysis::opcode_mix(&ms);
    emit("table5_opcode_mix", &analysis::render_opcode_mix(&rows), &rows);
}

/// E7 — Fig. 6 strong scaling (simulated i9).
pub fn fig6_strong_scaling() {
    let ms = i9_sweep();
    let machine = SimCores::i9_13900k();
    let curves = analysis::strong_scaling(&ms, &machine, &analysis::STRONG_SCALING_THREADS);
    emit("fig6_strong_scaling", &analysis::render_scaling(&curves), &curves);
}

fn weak_scaling_curves(ms: &[StageMeasurement]) -> Vec<analysis::ScalingCurve> {
    let machine = SimCores::i9_13900k();
    let mut curves = Vec::new();
    for curve in Curve::ALL {
        for stage in Stage::ALL {
            let mut series: Vec<&StageMeasurement> = ms
                .iter()
                .filter(|m| m.stage == stage && m.curve == curve)
                .collect();
            series.sort_by_key(|m| m.constraints);
            if series.len() < 2 {
                continue;
            }
            let threads: Vec<usize> = (0..series.len()).map(|i| 1 << i.min(5)).collect();
            curves.push(analysis::weak_scaling(&series, &machine, &threads));
        }
    }
    curves
}

/// E8 — Fig. 7 weak scaling (simulated i9).
pub fn fig7_weak_scaling() {
    let ms = i9_sweep();
    let curves = weak_scaling_curves(&ms);
    emit("fig7_weak_scaling", &analysis::render_scaling(&curves), &curves);
}

/// E9 — Table VI serial/parallel fits.
pub fn table6_parallelism() {
    let ms = i9_sweep();
    let machine = SimCores::i9_13900k();
    let ss = analysis::strong_scaling(&ms, &machine, &analysis::STRONG_SCALING_THREADS);
    let mut ss_fits: BTreeMap<(Stage, Curve), Vec<zkperf_scale::ParallelismFit>> = BTreeMap::new();
    for c in &ss {
        ss_fits
            .entry((c.stage, c.curve))
            .or_default()
            .push(zkperf_scale::fit::amdahl(&c.points));
    }
    let ws = weak_scaling_curves(&ms);
    let mut rows = Vec::new();
    for curve in Curve::ALL {
        for stage in Stage::ALL {
            let Some(fits) = ss_fits.get(&(stage, curve)) else {
                continue;
            };
            let avg = |f: &dyn Fn(&zkperf_scale::ParallelismFit) -> f64| {
                fits.iter().map(f).sum::<f64>() / fits.len() as f64
            };
            let strong = zkperf_scale::ParallelismFit {
                serial_pct: avg(&|x| x.serial_pct),
                parallel_pct: avg(&|x| x.parallel_pct),
            };
            let Some(ws_curve) = ws.iter().find(|c| c.stage == stage && c.curve == curve)
            else {
                continue;
            };
            let weak = zkperf_scale::fit::gustafson(&ws_curve.points);
            rows.push(analysis::ParallelismRow {
                stage,
                curve,
                strong,
                weak,
            });
        }
    }
    emit("table6_parallelism", &analysis::render_parallelism(&rows), &rows);
}

/// Regenerates all ten experiments, sharing the cached sweeps.
pub fn all() {
    exec_time();
    fig4_topdown();
    fig5_loads_stores();
    table2_mpki();
    table3_bandwidth();
    table4_functions();
    table5_opcode_mix();
    fig6_strong_scaling();
    fig7_weak_scaling();
    table6_parallelism();
    println!("all experiments regenerated under results/");
}
