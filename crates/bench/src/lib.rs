//! Shared harness for the experiment binaries: sweep caching, result
//! output, and the default configuration.
//!
//! Each binary regenerates one table or figure of the paper. They share a
//! measurement sweep cached under `results/` so that running all ten does
//! not re-simulate the matrix ten times. Delete `results/sweep-*.json` (or
//! change `ZKPERF_MIN_LOG`/`ZKPERF_MAX_LOG`) to force fresh measurements.
//!
//! The sweep runner is resilient: every cell runs under a bounded-retry
//! policy with a per-cell timeout, persistently failing cells are
//! quarantined instead of aborting the sweep, cache files are written
//! atomically (temp file + rename), and a sweep interrupted mid-run
//! resumes from the cells already recorded in the cache. A missing or
//! unwritable results directory degrades to running without a cache
//! rather than panicking.

pub mod experiments;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::{de::DeserializeOwned, Deserialize, Serialize};
use zkperf_core::{measure_cell, StageMeasurement, SweepConfig};
use zkperf_resilience::{run_with_retry, Quarantine, RetryPolicy, RunOutcome};

/// Bump when [`CachedSweep`]'s shape changes; older caches (including the
/// pre-versioned format) are treated as misses, never as parse errors.
const CACHE_FORMAT_VERSION: u32 = 2;

/// Directory all experiment outputs land in, or `None` (with a logged
/// warning) when it cannot be created — callers then run uncached.
pub fn try_results_dir() -> Option<PathBuf> {
    let dir = std::env::var("ZKPERF_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    match fs::create_dir_all(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "[zkperf] warning: cannot create results dir {}: {e}; running without cache",
                path.display()
            );
            None
        }
    }
}

/// Directory all experiment outputs land in.
///
/// Kept for callers that only build paths; the directory may not exist if
/// creation failed (a warning is printed and writes degrade gracefully).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ZKPERF_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    // Best-effort creation; on failure the warning is printed and later
    // reads simply miss.
    let _ = try_results_dir();
    path
}

fn config_fingerprint(config: &SweepConfig) -> String {
    let cpus: Vec<&str> = config.cpus.iter().map(|c| c.name).collect();
    format!(
        "logs={:?};cpus={:?};curves={:?};stages={:?};backends={:?}",
        config.log_sizes, cpus, config.curves, config.stages, config.backends
    )
}

#[derive(Serialize, Deserialize)]
struct CachedSweep {
    /// Cache format version; mismatches are cache misses, not errors.
    format_version: u32,
    fingerprint: String,
    /// Labels of cells already measured, so an interrupted sweep resumes
    /// where it stopped instead of starting over.
    completed_cells: Vec<String>,
    measurements: Vec<StageMeasurement>,
}

impl CachedSweep {
    fn empty(fingerprint: String) -> Self {
        CachedSweep {
            format_version: CACHE_FORMAT_VERSION,
            fingerprint,
            completed_cells: Vec::new(),
            measurements: Vec::new(),
        }
    }
}

/// Loads the cache state for `fingerprint`, treating unreadable files,
/// undeserializable bytes, version mismatches and fingerprint mismatches
/// all as (logged) cache misses.
fn load_cache(path: &Path, fingerprint: &str) -> CachedSweep {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(_) => return CachedSweep::empty(fingerprint.to_string()),
    };
    match serde_json::from_slice::<CachedSweep>(&bytes) {
        Ok(cached) if cached.format_version != CACHE_FORMAT_VERSION => {
            eprintln!(
                "[zkperf] warning: sweep cache {} has format v{} (want v{}); remeasuring",
                path.display(),
                cached.format_version,
                CACHE_FORMAT_VERSION
            );
            CachedSweep::empty(fingerprint.to_string())
        }
        Ok(cached) if cached.fingerprint != fingerprint => {
            CachedSweep::empty(fingerprint.to_string())
        }
        Ok(cached) => cached,
        Err(e) => {
            eprintln!(
                "[zkperf] warning: sweep cache {} is unreadable ({e}); remeasuring",
                path.display()
            );
            CachedSweep::empty(fingerprint.to_string())
        }
    }
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// is written in full and renamed over the target, so an interrupted run
/// can never leave a half-written cache behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Persists the cache state; failures are logged, not fatal (the sweep
/// result is still returned from memory).
fn store_cache(path: Option<&Path>, cached: &CachedSweep) {
    let Some(path) = path else { return };
    let bytes = match serde_json::to_vec(cached) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("[zkperf] warning: cannot serialize sweep cache: {e}");
            return;
        }
    };
    if let Err(e) = write_atomic(path, &bytes) {
        eprintln!(
            "[zkperf] warning: cannot write sweep cache {}: {e}",
            path.display()
        );
    }
}

/// The per-cell resilience settings of [`sweep_cached`].
fn cell_policy() -> RetryPolicy {
    // Large simulated cells are slow but not *that* slow; ten minutes per
    // attempt only trips on a genuine hang.
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_secs(2),
        jitter: 0.5,
        jitter_seed: 0x5eed_ce11,
        timeout: Some(Duration::from_secs(600)),
    }
}

/// Runs (or loads from cache) the measurement sweep for `config`, printing
/// progress to stderr.
///
/// Cells run one at a time under [`run_with_retry`]: a panicking, failing
/// or timed-out cell is retried with backoff, then quarantined and
/// skipped, so one bad cell costs its own measurements rather than the
/// whole sweep. Completed cells are checkpointed to the cache after every
/// cell, so re-running after an interruption resumes mid-sweep.
pub fn sweep_cached(config: &SweepConfig, cache_name: &str) -> Vec<StageMeasurement> {
    let path = try_results_dir().map(|d| d.join(format!("sweep-{cache_name}.json")));
    let fingerprint = config_fingerprint(config);
    let mut cached = match &path {
        Some(path) => load_cache(path, &fingerprint),
        None => CachedSweep::empty(fingerprint.clone()),
    };

    let cells: Vec<(zkperf_core::Curve, zkperf_machine::CpuProfile, u32)> = config
        .curves
        .iter()
        .flat_map(|&curve| {
            config.cpus.iter().flat_map(move |cpu| {
                config
                    .log_sizes
                    .iter()
                    .map(move |&log| (curve, cpu.clone(), log))
            })
        })
        .collect();
    let total = cells.len();
    let pending: Vec<_> = cells
        .into_iter()
        .filter(|(curve, cpu, log)| {
            !cached
                .completed_cells
                .contains(&cell_label(*curve, cpu.name, *log))
        })
        .collect();

    if pending.is_empty() {
        eprintln!(
            "[zkperf] loaded cached sweep ({} cells){}",
            total,
            path.as_deref()
                .map(|p| format!(" from {}", p.display()))
                .unwrap_or_default()
        );
        return cached.measurements;
    }
    if pending.len() < total {
        eprintln!(
            "[zkperf] resuming sweep: {}/{} cells already cached",
            total - pending.len(),
            total
        );
    } else {
        eprintln!("[zkperf] running sweep ({fingerprint})");
    }

    let policy = cell_policy();
    let mut quarantine = Quarantine::new(1);
    let mut done = total - pending.len();
    for (curve, cpu, log) in pending {
        let label = cell_label(curve, cpu.name, log);
        let stages = config.stages.clone();
        let outcome = run_with_retry(&policy, &label, &mut quarantine, move || {
            measure_cell(curve, &cpu, 1 << log, &stages)
        });
        done += 1;
        match outcome {
            RunOutcome::Ok { value, attempts } => {
                if attempts > 1 {
                    eprintln!("[zkperf]   cell {label} succeeded on attempt {attempts}");
                }
                cached.measurements.extend(value);
                cached.completed_cells.push(label);
                eprintln!("[zkperf]   cell {done}/{total}");
                // Checkpoint after every cell so interruption loses at
                // most the in-flight cell.
                store_cache(path.as_deref(), &cached);
            }
            RunOutcome::Failed { attempts, error } => {
                eprintln!(
                    "[zkperf]   cell {label} failed after {attempts} attempts: {error}; skipping"
                );
            }
            RunOutcome::TimedOut { attempts } => {
                eprintln!("[zkperf]   cell {label} timed out ({attempts} attempts); skipping");
            }
            RunOutcome::Panicked { attempts, message } => {
                eprintln!(
                    "[zkperf]   cell {label} panicked after {attempts} attempts ({message}); skipping"
                );
            }
            RunOutcome::Quarantined => {
                eprintln!("[zkperf]   cell {label} quarantined; skipping");
            }
        }
    }
    let skipped = quarantine.quarantined();
    if !skipped.is_empty() {
        eprintln!(
            "[zkperf] warning: {} cell(s) quarantined: {}",
            skipped.len(),
            skipped.join(", ")
        );
    }
    cached.measurements
}

fn cell_label(curve: zkperf_core::Curve, cpu: &str, log: u32) -> String {
    format!("{curve:?}/{cpu}/2^{log}")
}

/// Writes an experiment's text rendering and JSON rows side by side and
/// echoes the text to stdout. Output-file problems are logged warnings —
/// the console copy of the result is always produced.
pub fn emit<T: Serialize>(name: &str, text: &str, rows: &T) {
    if let Some(dir) = try_results_dir() {
        if let Err(e) = fs::write(dir.join(format!("{name}.txt")), text) {
            eprintln!("[zkperf] warning: cannot write {name}.txt: {e}");
        }
        match serde_json::to_vec_pretty(rows) {
            Ok(json) => {
                if let Err(e) = fs::write(dir.join(format!("{name}.json")), json) {
                    eprintln!("[zkperf] warning: cannot write {name}.json: {e}");
                }
            }
            Err(e) => eprintln!("[zkperf] warning: cannot serialize {name} rows: {e}"),
        }
    }
    println!("== {name} ==");
    println!("{text}");
}

/// Loads a previously emitted JSON artifact (used by tests).
pub fn load_rows<T: DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    read_json(&path)
}

fn read_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    let bytes = fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_core::{Curve, Stage};
    use zkperf_machine::CpuProfile;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            log_sizes: vec![3],
            cpus: vec![CpuProfile::i7_8650u()],
            curves: vec![Curve::Bn128],
            stages: vec![Stage::Witness],
            backends: vec![zkperf_core::BackendKind::Groth16],
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SweepConfig::default();
        let b = SweepConfig {
            log_sizes: vec![99],
            ..SweepConfig::default()
        };
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn cache_roundtrip_via_explicit_dir() {
        // Avoid env-var races with other tests by writing directly.
        let config = tiny_config();
        let first = sweep_cached(&config, "unittest");
        let second = sweep_cached(&config, "unittest");
        assert_eq!(first.len(), second.len());
        assert_eq!(first[0].constraints, second[0].constraints);
        assert_eq!(first[0].counts.total_uops(), second[0].counts.total_uops());
        let _ = fs::remove_file(results_dir().join("sweep-unittest.json"));
    }

    #[test]
    fn versionless_or_mismatched_cache_is_a_miss_not_an_error() {
        let fingerprint = config_fingerprint(&tiny_config());
        let dir = results_dir();
        // The old, pre-versioned cache shape.
        let legacy = format!(
            "{{\"fingerprint\":{fingerprint:?},\"measurements\":[]}}"
        );
        let path = dir.join("sweep-legacytest.json");
        fs::write(&path, legacy).unwrap();
        let loaded = load_cache(&path, &fingerprint);
        assert!(loaded.completed_cells.is_empty(), "legacy cache missed");
        // Garbage bytes are a miss too, never a panic.
        fs::write(&path, b"{not json").unwrap();
        let loaded = load_cache(&path, &fingerprint);
        assert!(loaded.measurements.is_empty());
        // A wrong version number is a miss.
        let wrong = CachedSweep {
            format_version: CACHE_FORMAT_VERSION + 1,
            ..CachedSweep::empty(fingerprint.clone())
        };
        fs::write(&path, serde_json::to_vec(&wrong).unwrap()).unwrap();
        let loaded = load_cache(&path, &fingerprint);
        assert_eq!(loaded.format_version, CACHE_FORMAT_VERSION);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn interrupted_sweep_resumes_from_partial_cache() {
        // Simulate an interruption: a valid cache holding one of two
        // cells. The resumed sweep must only measure the missing cell and
        // keep the recorded one.
        let mut config = tiny_config();
        config.log_sizes = vec![3, 4];
        let fingerprint = config_fingerprint(&config);
        let half = {
            let mut one_cell = config.clone();
            one_cell.log_sizes = vec![3];
            let ms = sweep_cached(&one_cell, "resumehalf");
            let _ = fs::remove_file(results_dir().join("sweep-resumehalf.json"));
            ms
        };
        let partial = CachedSweep {
            format_version: CACHE_FORMAT_VERSION,
            fingerprint: fingerprint.clone(),
            completed_cells: vec![cell_label(Curve::Bn128, CpuProfile::i7_8650u().name, 3)],
            measurements: half,
        };
        let path = results_dir().join("sweep-resumetest.json");
        fs::write(&path, serde_json::to_vec(&partial).unwrap()).unwrap();

        let full = sweep_cached(&config, "resumetest");
        assert_eq!(full.len(), 2, "one resumed cell + one fresh cell");
        assert_eq!(full[0].constraints, 8);
        assert_eq!(full[1].constraints, 16);
        // The checkpointed cache now records both cells.
        let reloaded = load_cache(&path, &fingerprint);
        assert_eq!(reloaded.completed_cells.len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = results_dir();
        let path = dir.join("atomictest.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("atomictest.json.tmp").exists());
        let _ = fs::remove_file(&path);
    }
}
