//! Shared harness for the experiment binaries: sweep caching, result
//! output, and the default configuration.
//!
//! Each binary regenerates one table or figure of the paper. They share a
//! measurement sweep cached under `results/` so that running all ten does
//! not re-simulate the matrix ten times. Delete `results/sweep-*.json` (or
//! change `ZKPERF_MIN_LOG`/`ZKPERF_MAX_LOG`) to force fresh measurements.

pub mod experiments;

use std::fs;
use std::path::{Path, PathBuf};

use serde::{de::DeserializeOwned, Deserialize, Serialize};
use zkperf_core::{run_sweep, StageMeasurement, SweepConfig};

/// Directory all experiment outputs land in.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ZKPERF_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create results directory");
    path
}

fn config_fingerprint(config: &SweepConfig) -> String {
    let cpus: Vec<&str> = config.cpus.iter().map(|c| c.name).collect();
    format!(
        "logs={:?};cpus={:?};curves={:?};stages={:?}",
        config.log_sizes, cpus, config.curves, config.stages
    )
}

#[derive(Serialize, Deserialize)]
struct CachedSweep {
    fingerprint: String,
    measurements: Vec<StageMeasurement>,
}

/// Runs (or loads from cache) the measurement sweep for `config`, printing
/// progress to stderr.
pub fn sweep_cached(config: &SweepConfig, cache_name: &str) -> Vec<StageMeasurement> {
    let path = results_dir().join(format!("sweep-{cache_name}.json"));
    let fingerprint = config_fingerprint(config);
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(cached) = serde_json::from_slice::<CachedSweep>(&bytes) {
            if cached.fingerprint == fingerprint {
                eprintln!("[zkperf] loaded cached sweep from {}", path.display());
                return cached.measurements;
            }
        }
    }
    eprintln!("[zkperf] running sweep ({fingerprint})");
    let measurements = run_sweep(config, |done, total| {
        eprintln!("[zkperf]   cell {done}/{total}");
    });
    let cached = CachedSweep {
        fingerprint,
        measurements,
    };
    fs::write(&path, serde_json::to_vec(&cached).expect("serialize sweep"))
        .expect("write sweep cache");
    cached.measurements
}

/// Writes an experiment's text rendering and JSON rows side by side and
/// echoes the text to stdout.
pub fn emit<T: Serialize>(name: &str, text: &str, rows: &T) {
    let dir = results_dir();
    fs::write(dir.join(format!("{name}.txt")), text).expect("write text output");
    fs::write(
        dir.join(format!("{name}.json")),
        serde_json::to_vec_pretty(rows).expect("serialize rows"),
    )
    .expect("write json output");
    println!("== {name} ==");
    println!("{text}");
}

/// Loads a previously emitted JSON artifact (used by tests).
pub fn load_rows<T: DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    read_json(&path)
}

fn read_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    let bytes = fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_core::{Curve, Stage};
    use zkperf_machine::CpuProfile;

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SweepConfig::default();
        let mut b = SweepConfig::default();
        b.log_sizes = vec![99];
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn cache_roundtrip_via_explicit_dir() {
        // Avoid env-var races with other tests by writing directly.
        let config = SweepConfig {
            log_sizes: vec![3],
            cpus: vec![CpuProfile::i7_8650u()],
            curves: vec![Curve::Bn128],
            stages: vec![Stage::Witness],
        };
        let first = sweep_cached(&config, "unittest");
        let second = sweep_cached(&config, "unittest");
        assert_eq!(first.len(), second.len());
        assert_eq!(first[0].constraints, second[0].constraints);
        assert_eq!(first[0].counts.total_uops(), second[0].counts.total_uops());
        let _ = fs::remove_file(results_dir().join("sweep-unittest.json"));
    }
}
