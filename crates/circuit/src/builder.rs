//! The gate-level circuit construction API (what circom templates lower to).

use zkperf_ff::PrimeField;
use zkperf_trace as trace;

use crate::circuit::{Circuit, Instruction};
use crate::lc::{LinearCombination, Variable};
use crate::r1cs::{Constraint, R1cs};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    One,
    Output,
    PublicInput,
    PrivateInput,
    Aux,
}

/// Incrementally builds an arithmetic circuit: allocate inputs, compose
/// linear combinations for free, pay one constraint per multiplication, and
/// [`finish`](CircuitBuilder::finish) into an immutable [`Circuit`].
///
/// # Examples
///
/// ```
/// use zkperf_circuit::CircuitBuilder;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// // y = x³ (the paper's Fig. 2 example).
/// let mut b = CircuitBuilder::<Fr>::new("cube");
/// let x = b.public_input("x");
/// let x2 = b.mul(&x.into(), &x.into());
/// let x3 = b.mul(&x2, &x.into());
/// b.output("y", x3);
/// let circuit = b.finish();
/// assert_eq!(circuit.r1cs().num_constraints(), 3);
/// let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
/// assert_eq!(w.public()[1], Fr::from_u64(27)); // the output wire
/// ```
#[derive(Debug)]
pub struct CircuitBuilder<F: PrimeField> {
    name: String,
    wires: Vec<WireKind>,
    wire_names: Vec<String>,
    constraints: Vec<Constraint<F>>,
    instructions: Vec<Instruction<F>>,
}

impl<F: PrimeField> CircuitBuilder<F> {
    /// Starts a new circuit with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            wires: vec![WireKind::One],
            wire_names: vec!["one".into()],
            constraints: Vec::new(),
            instructions: Vec::new(),
        }
    }

    fn alloc(&mut self, kind: WireKind, name: impl Into<String>) -> Variable {
        let v = Variable(u32::try_from(self.wires.len()).expect("too many wires"));
        self.wires.push(kind);
        self.wire_names.push(name.into());
        trace::alloc(std::mem::size_of::<F>());
        v
    }

    /// Allocates a public input wire.
    pub fn public_input(&mut self, name: impl Into<String>) -> Variable {
        self.alloc(WireKind::PublicInput, name)
    }

    /// Allocates a private input wire.
    pub fn private_input(&mut self, name: impl Into<String>) -> Variable {
        self.alloc(WireKind::PrivateInput, name)
    }

    /// Allocates an auxiliary wire whose value the witness solver computes
    /// with `instruction` (the instruction's target is patched in).
    pub(crate) fn alloc_aux(&mut self, name: impl Into<String>, make: impl FnOnce(Variable) -> Instruction<F>) -> Variable {
        let v = self.alloc(WireKind::Aux, name);
        self.instructions.push(make(v));
        v
    }

    /// Designates `value` as a named circuit output: allocates a public
    /// output wire constrained to equal the combination.
    pub fn output(&mut self, name: impl Into<String>, value: LinearCombination<F>) -> Variable {
        let v = self.alloc(WireKind::Output, name);
        self.instructions.push(Instruction::EvalLc {
            target: v,
            lc: value.clone(),
        });
        // value · 1 = out
        self.constraints.push(Constraint {
            a: value,
            b: LinearCombination::from_variable(Variable::ONE),
            c: LinearCombination::from_variable(v),
        });
        v
    }

    /// Adds the raw constraint `a·b = c`.
    pub fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.constraints.push(Constraint { a, b, c });
    }

    /// Constrains `a = b` (one rank-1 row).
    pub fn enforce_equal(&mut self, a: &LinearCombination<F>, b: &LinearCombination<F>) {
        self.enforce(
            a - b,
            LinearCombination::from_variable(Variable::ONE),
            LinearCombination::zero(),
        );
    }

    /// Constrains the combination to be 0 or 1.
    pub fn enforce_boolean(&mut self, bit: &LinearCombination<F>) {
        // bit · (bit − 1) = 0
        self.enforce(
            bit.clone(),
            bit - &LinearCombination::constant(F::one()),
            LinearCombination::zero(),
        );
    }

    /// Multiplies two combinations, spending a constraint unless one side is
    /// constant (in which case the product stays linear and free).
    pub fn mul(
        &mut self,
        a: &LinearCombination<F>,
        b: &LinearCombination<F>,
    ) -> LinearCombination<F> {
        if let Some(c) = a.as_constant() {
            return b.scale(c);
        }
        if let Some(c) = b.as_constant() {
            return a.scale(c);
        }
        let (a, b) = (a.clone(), b.clone());
        let prod = self.alloc_aux("mul", |v| Instruction::Mul {
            target: v,
            a: a.clone(),
            b: b.clone(),
        });
        self.constraints.push(Constraint {
            a,
            b,
            c: LinearCombination::from_variable(prod),
        });
        LinearCombination::from_variable(prod)
    }

    /// Decomposes `value` into `nbits` boolean wires (little-endian) and
    /// constrains the recomposition, i.e. proves `value < 2^nbits`.
    ///
    /// Costs `nbits + 1` constraints.
    pub fn decompose_bits(
        &mut self,
        value: &LinearCombination<F>,
        nbits: usize,
    ) -> Vec<LinearCombination<F>> {
        let mut bits = Vec::with_capacity(nbits);
        let mut recompose = LinearCombination::zero();
        let mut coeff = F::one();
        for i in 0..nbits {
            let src = value.clone();
            let bit = self.alloc_aux(format!("bit{i}"), |v| Instruction::Bit {
                target: v,
                of: src,
                bit: i,
            });
            let bit_lc = LinearCombination::from_variable(bit);
            self.enforce_boolean(&bit_lc);
            recompose.add_term(bit, coeff);
            coeff = coeff.double();
            bits.push(bit_lc);
        }
        self.enforce_equal(&recompose, value);
        bits
    }

    /// Returns `sel·a + (1−sel)·b`; `sel` must already be boolean.
    pub fn select(
        &mut self,
        sel: &LinearCombination<F>,
        a: &LinearCombination<F>,
        b: &LinearCombination<F>,
    ) -> LinearCombination<F> {
        // sel·(a − b) + b, one multiplication.
        let diff = a - b;
        let scaled = self.mul(sel, &diff);
        &scaled + b
    }

    /// Number of constraints emitted so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Freezes the builder into a [`Circuit`], renumbering wires into the
    /// canonical `[1, outputs, public inputs, private inputs, aux]` order.
    pub fn finish(self) -> Circuit<F> {
        let _g = trace::region_profile("compile_finalize");
        let count = |k: WireKind| self.wires.iter().filter(|&&w| w == k).count();
        let (n_out, n_pub, n_priv) = (
            count(WireKind::Output),
            count(WireKind::PublicInput),
            count(WireKind::PrivateInput),
        );
        let mut next = [
            0usize,                         // One
            1,                              // Output
            1 + n_out,                      // PublicInput
            1 + n_out + n_pub,              // PrivateInput
            1 + n_out + n_pub + n_priv,     // Aux
        ];
        let mut map = Vec::with_capacity(self.wires.len());
        for &kind in &self.wires {
            let slot = match kind {
                WireKind::One => 0,
                WireKind::Output => 1,
                WireKind::PublicInput => 2,
                WireKind::PrivateInput => 3,
                WireKind::Aux => 4,
            };
            map.push(Variable(next[slot] as u32));
            next[slot] += 1;
        }
        let remap_lc = |lc: &LinearCombination<F>| {
            let mut out = LinearCombination::zero();
            for &(v, c) in lc.terms() {
                out.add_term(map[v.index()], c);
            }
            trace::data_move(2 * lc.len() as u32);
            out
        };
        let constraints = self
            .constraints
            .iter()
            .map(|c| Constraint {
                a: remap_lc(&c.a),
                b: remap_lc(&c.b),
                c: remap_lc(&c.c),
            })
            .collect();
        let instructions = self
            .instructions
            .iter()
            .map(|ins| match ins {
                Instruction::EvalLc { target, lc } => Instruction::EvalLc {
                    target: map[target.index()],
                    lc: remap_lc(lc),
                },
                Instruction::Mul { target, a, b } => Instruction::Mul {
                    target: map[target.index()],
                    a: remap_lc(a),
                    b: remap_lc(b),
                },
                Instruction::InvOrZero { target, of } => Instruction::InvOrZero {
                    target: map[target.index()],
                    of: remap_lc(of),
                },
                Instruction::Bit { target, of, bit } => Instruction::Bit {
                    target: map[target.index()],
                    of: remap_lc(of),
                    bit: *bit,
                },
            })
            .collect();
        let mut wire_names = vec![String::new(); self.wires.len()];
        for (old, name) in self.wire_names.into_iter().enumerate() {
            wire_names[map[old].index()] = name;
        }
        let r1cs = R1cs::new(self.wires.len(), n_out, n_pub, n_priv, constraints);
        let stats = analyze_constraints(&r1cs);
        debug_assert!(stats.wire_uses.len() == r1cs.num_wires());
        Circuit::new(self.name, r1cs, instructions, wire_names)
    }
}

/// Statistics produced by the constraint-analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintStats {
    /// How many constraint rows reference each wire.
    pub wire_uses: Vec<u32>,
    /// Wires referenced by no constraint (candidates circom's optimizer
    /// would eliminate).
    pub dead_wires: usize,
    /// Rows whose A or B side is a constant (foldable multiplications).
    pub foldable_rows: usize,
}

/// The constraint-analysis sweep circom performs after lowering (usage
/// counting, dead-wire detection, constant-fold candidates). Semantically a
/// no-op here — we keep the system untouched — but it does the same passes
/// over the same data, so the compile stage's memory profile matches a real
/// constraint optimizer's.
pub fn analyze_constraints<F: PrimeField>(r1cs: &R1cs<F>) -> ConstraintStats {
    let _g = trace::region_profile("constraint_analysis");
    let mut wire_uses = vec![0u32; r1cs.num_wires()];
    let mut foldable_rows = 0;
    for c in r1cs.constraints() {
        trace::control(3);
        trace::compute(8);
        trace::data_move(10);
        for lc in [&c.a, &c.b, &c.c] {
            for &(v, _) in lc.terms() {
                trace::load(&wire_uses[v.index()] as *const u32 as usize, 4);
                trace::store(&wire_uses[v.index()] as *const u32 as usize, 4);
                wire_uses[v.index()] += 1;
            }
        }
        trace::branch(0x9001, c.a.as_constant().is_some() || c.b.as_constant().is_some());
        if c.a.as_constant().is_some() || c.b.as_constant().is_some() {
            foldable_rows += 1;
        }
    }
    let dead_wires = wire_uses.iter().skip(1).filter(|&&u| u == 0).count();
    ConstraintStats {
        wire_uses,
        dead_wires,
        foldable_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    fn lc(v: Variable) -> LinearCombination<Fr> {
        LinearCombination::from_variable(v)
    }

    #[test]
    fn mul_by_constant_is_free() {
        let mut b = CircuitBuilder::<Fr>::new("t");
        let x = b.public_input("x");
        let five = LinearCombination::constant(Fr::from_u64(5));
        let _ = b.mul(&lc(x), &five);
        let _ = b.mul(&five, &lc(x));
        assert_eq!(b.num_constraints(), 0);
    }

    #[test]
    fn mul_of_variables_costs_one_constraint() {
        let mut b = CircuitBuilder::<Fr>::new("t");
        let x = b.public_input("x");
        let y = b.private_input("y");
        let _ = b.mul(&lc(x), &lc(y));
        assert_eq!(b.num_constraints(), 1);
    }

    #[test]
    fn wire_order_is_canonical_after_finish() {
        let mut b = CircuitBuilder::<Fr>::new("t");
        // Allocate in scrambled order.
        let p = b.private_input("p");
        let x = b.public_input("x");
        let prod = b.mul(&lc(x), &lc(p));
        b.output("o", prod);
        let circuit = b.finish();
        let sys = circuit.r1cs();
        assert_eq!(sys.num_outputs(), 1);
        assert_eq!(sys.num_public_inputs(), 1);
        assert_eq!(sys.num_private_inputs(), 1);
        assert_eq!(sys.num_wires(), 5);
        assert_eq!(circuit.wire_name(1), "o");
        assert_eq!(circuit.wire_name(2), "x");
        assert_eq!(circuit.wire_name(3), "p");
        let w = circuit
            .generate_witness(&[Fr::from_u64(6)], &[Fr::from_u64(7)])
            .unwrap();
        assert_eq!(w.public(), &[Fr::one(), Fr::from_u64(42), Fr::from_u64(6)]);
    }

    #[test]
    fn boolean_and_select() {
        let mut b = CircuitBuilder::<Fr>::new("t");
        let s = b.private_input("s");
        b.enforce_boolean(&lc(s));
        let a = LinearCombination::constant(Fr::from_u64(10));
        let c = LinearCombination::constant(Fr::from_u64(20));
        let sel = b.select(&lc(s), &a, &c);
        b.output("o", sel);
        let circuit = b.finish();
        let w1 = circuit.generate_witness(&[], &[Fr::one()]).unwrap();
        assert_eq!(w1.public()[1], Fr::from_u64(10));
        let w0 = circuit.generate_witness(&[], &[Fr::zero()]).unwrap();
        assert_eq!(w0.public()[1], Fr::from_u64(20));
        // Non-boolean selector violates the constraint system.
        assert!(circuit.generate_witness(&[], &[Fr::from_u64(2)]).is_err());
    }

    #[test]
    fn decompose_bits_recomposes_and_range_checks() {
        let mut b = CircuitBuilder::<Fr>::new("t");
        let x = b.public_input("x");
        let bits = b.decompose_bits(&lc(x), 4);
        assert_eq!(bits.len(), 4);
        assert_eq!(b.num_constraints(), 5);
        let circuit = b.finish();
        let w = circuit.generate_witness(&[Fr::from_u64(13)], &[]).unwrap();
        // 13 = 0b1101 → bits (LSB first) 1,0,1,1 live in the aux region.
        let aux = &w.full()[2..6];
        assert_eq!(
            aux,
            &[Fr::one(), Fr::zero(), Fr::one(), Fr::one()]
        );
        // 16 does not fit in 4 bits.
        assert!(circuit.generate_witness(&[Fr::from_u64(16)], &[]).is_err());
    }
}
