//! The finished circuit artifact and its witness solver.

use std::fmt;

use zkperf_ff::{Field, PrimeField};
use zkperf_trace as trace;

use crate::lc::{LinearCombination, Variable};
use crate::r1cs::R1cs;

/// How the witness solver computes one auxiliary or output wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction<F> {
    /// `w[target] = ⟨lc, w⟩`.
    EvalLc {
        /// Wire to assign.
        target: Variable,
        /// Combination to evaluate.
        lc: LinearCombination<F>,
    },
    /// `w[target] = ⟨a, w⟩ · ⟨b, w⟩`.
    Mul {
        /// Wire to assign.
        target: Variable,
        /// Left factor.
        a: LinearCombination<F>,
        /// Right factor.
        b: LinearCombination<F>,
    },
    /// `w[target] = ⟨of, w⟩⁻¹`, or 0 when the value is 0 (the standard
    /// hint for is-zero gadgets).
    InvOrZero {
        /// Wire to assign.
        target: Variable,
        /// Combination whose inverse-or-zero is taken.
        of: LinearCombination<F>,
    },
    /// `w[target] = bit `bit` of the canonical value of `⟨of, w⟩``.
    Bit {
        /// Wire to assign.
        target: Variable,
        /// Combination whose value is decomposed.
        of: LinearCombination<F>,
        /// Bit index (little-endian).
        bit: usize,
    },
}

/// Errors from [`Circuit::generate_witness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// Wrong number of public inputs supplied.
    PublicInputCount {
        /// Expected count.
        expected: usize,
        /// Supplied count.
        got: usize,
    },
    /// Wrong number of private inputs supplied.
    PrivateInputCount {
        /// Expected count.
        expected: usize,
        /// Supplied count.
        got: usize,
    },
    /// The computed witness violates the constraint at this index (the
    /// inputs do not satisfy the circuit).
    Unsatisfied(usize),
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::PublicInputCount { expected, got } => {
                write!(f, "expected {expected} public inputs, got {got}")
            }
            WitnessError::PrivateInputCount { expected, got } => {
                write!(f, "expected {expected} private inputs, got {got}")
            }
            WitnessError::Unsatisfied(i) => {
                write!(f, "inputs do not satisfy constraint {i}")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// A compiled circuit: constraint system plus the witness-generation
/// program. Produced by [`crate::CircuitBuilder::finish`] or by compiling
/// [`crate::lang`] source.
#[derive(Debug, Clone)]
pub struct Circuit<F: PrimeField> {
    name: String,
    r1cs: R1cs<F>,
    instructions: Vec<Instruction<F>>,
    wire_names: Vec<String>,
}

/// The solver's output: the full witness vector and its public prefix
/// (`witnessFull` / `witnessPublic` in the paper's workflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness<F> {
    full: Vec<F>,
    num_public_wires: usize,
}

impl<F: PrimeField> Witness<F> {
    /// Rebuilds a witness from a raw assignment vector (e.g. one loaded
    /// from a `.wtns` file). The caller asserts the layout; use
    /// [`R1cs::check_satisfied`](crate::R1cs::check_satisfied) to validate
    /// against a constraint system.
    ///
    /// # Panics
    ///
    /// Panics if the vector is shorter than the public prefix or does not
    /// start with the constant 1.
    pub fn from_vector(full: Vec<F>, num_public_wires: usize) -> Self {
        assert!(full.len() >= num_public_wires, "vector shorter than public prefix");
        assert!(
            full.first().is_some_and(Field::is_one),
            "witness must start with the constant 1"
        );
        Witness {
            full,
            num_public_wires,
        }
    }

    /// The full assignment `[1, outputs, public, private, aux]`.
    pub fn full(&self) -> &[F] {
        &self.full
    }

    /// The public prefix `[1, outputs, public inputs]` shared with the
    /// verifier.
    pub fn public(&self) -> &[F] {
        &self.full[..self.num_public_wires]
    }
}

impl<F: PrimeField> Circuit<F> {
    pub(crate) fn new(
        name: String,
        r1cs: R1cs<F>,
        instructions: Vec<Instruction<F>>,
        wire_names: Vec<String>,
    ) -> Self {
        Circuit {
            name,
            r1cs,
            instructions,
            wire_names,
        }
    }

    /// The circuit's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled constraint system.
    pub fn r1cs(&self) -> &R1cs<F> {
        &self.r1cs
    }

    /// The witness-generation program (for inspection and tests).
    pub fn instructions(&self) -> &[Instruction<F>] {
        &self.instructions
    }

    /// The debug name of a wire.
    pub fn wire_name(&self, index: usize) -> &str {
        &self.wire_names[index]
    }

    /// Runs the witness solver: seeds the input wires, executes the
    /// instruction list, and checks every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`WitnessError`] on input-arity mismatch or if the inputs do
    /// not satisfy the circuit.
    pub fn generate_witness(
        &self,
        public_inputs: &[F],
        private_inputs: &[F],
    ) -> Result<Witness<F>, WitnessError> {
        let _g = trace::region_profile("witness_solver");
        let sys = &self.r1cs;
        if public_inputs.len() != sys.num_public_inputs() {
            return Err(WitnessError::PublicInputCount {
                expected: sys.num_public_inputs(),
                got: public_inputs.len(),
            });
        }
        if private_inputs.len() != sys.num_private_inputs() {
            return Err(WitnessError::PrivateInputCount {
                expected: sys.num_private_inputs(),
                got: private_inputs.len(),
            });
        }
        trace::alloc(sys.num_wires() * std::mem::size_of::<F>());
        let mut w = vec![F::zero(); sys.num_wires()];
        w[0] = F::one();
        let pub_base = 1 + sys.num_outputs();
        w[pub_base..pub_base + public_inputs.len()].copy_from_slice(public_inputs);
        trace::memcpy(
            w[pub_base..].as_ptr() as usize,
            public_inputs.as_ptr() as usize,
            std::mem::size_of_val(public_inputs),
        );
        let priv_base = pub_base + public_inputs.len();
        w[priv_base..priv_base + private_inputs.len()].copy_from_slice(private_inputs);
        trace::memcpy(
            w[priv_base..].as_ptr() as usize,
            private_inputs.as_ptr() as usize,
            std::mem::size_of_val(private_inputs),
        );

        for ins in &self.instructions {
            // Instruction dispatch: opcode decode, operand fetch, bounds
            // checks — the interpreter behaviour that makes the paper's
            // witness stage the most control-flow-intensive one.
            trace::control(9);
            trace::data_move(5);
            trace::compute(2);
            match ins {
                Instruction::EvalLc { target, lc } => {
                    w[target.index()] = lc.evaluate(&w);
                }
                Instruction::Mul { target, a, b } => {
                    w[target.index()] = a.evaluate(&w) * b.evaluate(&w);
                }
                Instruction::InvOrZero { target, of } => {
                    let value = of.evaluate(&w);
                    trace::branch(0x5002, value.is_zero());
                    w[target.index()] = value.inverse().unwrap_or_else(F::zero);
                }
                Instruction::Bit { target, of, bit } => {
                    let value = of.evaluate(&w).to_biguint();
                    trace::branch(0x5001, value.bit(*bit));
                    w[target.index()] = if value.bit(*bit) {
                        F::one()
                    } else {
                        F::zero()
                    };
                }
            }
        }

        if let Err(i) = sys.check_satisfied(&w) {
            return Err(WitnessError::Unsatisfied(i));
        }
        Ok(Witness {
            full: w,
            num_public_wires: sys.num_public_wires(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    fn cube() -> Circuit<Fr> {
        let mut b = CircuitBuilder::<Fr>::new("cube");
        let x = b.public_input("x");
        let xlc = LinearCombination::from_variable(x);
        let x2 = b.mul(&xlc, &xlc);
        let x3 = b.mul(&x2, &xlc);
        b.output("y", x3);
        b.finish()
    }

    #[test]
    fn witness_layout_and_values() {
        let c = cube();
        let w = c.generate_witness(&[Fr::from_u64(5)], &[]).unwrap();
        assert_eq!(w.full().len(), c.r1cs().num_wires());
        assert_eq!(w.public().len(), 3);
        assert_eq!(w.public()[0], Fr::one());
        assert_eq!(w.public()[1], Fr::from_u64(125));
        assert_eq!(w.public()[2], Fr::from_u64(5));
    }

    #[test]
    fn arity_errors() {
        let c = cube();
        assert_eq!(
            c.generate_witness(&[], &[]),
            Err(WitnessError::PublicInputCount {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            c.generate_witness(&[Fr::one()], &[Fr::one()]),
            Err(WitnessError::PrivateInputCount {
                expected: 0,
                got: 1
            })
        );
    }

    #[test]
    fn witness_error_display() {
        let e = WitnessError::Unsatisfied(4);
        assert_eq!(e.to_string(), "inputs do not satisfy constraint 4");
    }
}
