//! Higher-level constraint gadgets built on the base builder API:
//! zero tests, equality, comparisons, boolean logic, and multiplexers.

use zkperf_ff::PrimeField;

use crate::builder::CircuitBuilder;
use crate::circuit::Instruction;
use crate::lc::LinearCombination;

type Lc<F> = LinearCombination<F>;

impl<F: PrimeField> CircuitBuilder<F> {
    /// Returns a boolean combination that is 1 iff `value = 0`.
    ///
    /// Standard construction: allocate the hint `m = value⁻¹` (or 0), set
    /// `b = 1 − value·m`, and constrain `value·b = 0`. Costs 2 constraints.
    pub fn is_zero(&mut self, value: &Lc<F>) -> Lc<F> {
        let src = value.clone();
        let inv = self.alloc_inv_or_zero(src);
        // b = 1 − value·m  (one constraint: value·m = 1 − b)
        let prod = self.mul(value, &inv.clone());
        let b = &Lc::constant(F::one()) - &prod;
        // value·b = 0
        self.enforce(value.clone(), b.clone(), Lc::zero());
        b
    }

    /// Allocates the inverse-or-zero hint wire for `of`.
    fn alloc_inv_or_zero(&mut self, of: Lc<F>) -> Lc<F> {
        let v = self.alloc_aux("inv_or_zero", |target| Instruction::InvOrZero {
            target,
            of,
        });
        Lc::from_variable(v)
    }

    /// Returns a boolean that is 1 iff `a = b`. Costs 2 constraints.
    pub fn is_equal(&mut self, a: &Lc<F>, b: &Lc<F>) -> Lc<F> {
        let diff = a - b;
        self.is_zero(&diff)
    }

    /// Returns a boolean that is 1 iff `a < b`, treating both as `bits`-bit
    /// unsigned values (which the caller must ensure, e.g. via
    /// [`decompose_bits`](CircuitBuilder::decompose_bits)).
    ///
    /// Construction: decompose `a − b + 2^bits` into `bits + 1` bits; the
    /// top bit is 0 exactly when `a < b`. Costs `bits + 3` constraints.
    pub fn is_less_than(&mut self, a: &Lc<F>, b: &Lc<F>, bits: usize) -> Lc<F> {
        assert!(bits < 250, "width must leave headroom below the modulus");
        let mut shifted = a - b;
        let two_pow = F::from_u64(2).pow(&zkperf_ff::BigUint::from_u64(bits as u64));
        shifted.add_term(crate::lc::Variable::ONE, two_pow);
        let decomposed = self.decompose_bits(&shifted, bits + 1);
        // a < b ⇔ borrow ⇔ top bit of (a − b + 2^bits) is 0.
        &Lc::constant(F::one()) - &decomposed[bits]
    }

    /// Boolean AND of two (already-constrained) booleans: one constraint.
    pub fn bool_and(&mut self, a: &Lc<F>, b: &Lc<F>) -> Lc<F> {
        self.mul(a, b)
    }

    /// Boolean OR: `a + b − a·b`. One constraint.
    pub fn bool_or(&mut self, a: &Lc<F>, b: &Lc<F>) -> Lc<F> {
        let ab = self.mul(a, b);
        &(a + b) - &ab
    }

    /// Boolean XOR: `a + b − 2·a·b`. One constraint.
    pub fn bool_xor(&mut self, a: &Lc<F>, b: &Lc<F>) -> Lc<F> {
        let ab = self.mul(a, b);
        &(a + b) - &ab.scale(F::from_u64(2))
    }

    /// Boolean NOT: `1 − a`. Free.
    pub fn bool_not(&mut self, a: &Lc<F>) -> Lc<F> {
        &Lc::constant(F::one()) - a
    }

    /// Selects `options[index]` where `index` is given by its little-endian
    /// boolean decomposition `index_bits`. `options.len()` must equal
    /// `2^index_bits.len()`. Costs `options.len() − 1` constraints.
    pub fn mux(&mut self, index_bits: &[Lc<F>], options: &[Lc<F>]) -> Lc<F> {
        assert_eq!(
            options.len(),
            1 << index_bits.len(),
            "mux arity mismatch"
        );
        if index_bits.is_empty() {
            return options[0].clone();
        }
        // Fold pairwise selections level by level.
        let mut layer: Vec<Lc<F>> = options.to_vec();
        for bit in index_bits {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.select(bit, &pair[1], &pair[0]));
            }
            layer = next;
        }
        layer.into_iter().next().expect("non-empty mux")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::Field;

    type Fr = zkperf_ff::bn254::Fr;

    fn builder() -> CircuitBuilder<Fr> {
        CircuitBuilder::new("gadgets")
    }

    #[test]
    fn is_zero_detects_zero_and_nonzero() {
        let mut b = builder();
        let x = b.public_input("x");
        let flag = b.is_zero(&x.into());
        b.output("is_zero", flag);
        let c = b.finish();
        let w = c.generate_witness(&[Fr::zero()], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::one());
        let w = c.generate_witness(&[Fr::from_u64(7)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::zero());
    }

    #[test]
    fn is_equal_works_both_ways() {
        let mut b = builder();
        let x = b.public_input("x");
        let y = b.public_input("y");
        let eq = b.is_equal(&x.into(), &y.into());
        b.output("eq", eq);
        let c = b.finish();
        let f = Fr::from_u64;
        assert_eq!(
            c.generate_witness(&[f(5), f(5)], &[]).unwrap().public()[1],
            Fr::one()
        );
        assert_eq!(
            c.generate_witness(&[f(5), f(6)], &[]).unwrap().public()[1],
            Fr::zero()
        );
    }

    #[test]
    fn less_than_over_the_full_range() {
        let mut b = builder();
        let x = b.public_input("x");
        let y = b.public_input("y");
        let xlc: Lc<Fr> = x.into();
        let ylc: Lc<Fr> = y.into();
        // Constrain the ranges, as the gadget contract requires.
        b.decompose_bits(&xlc, 8);
        b.decompose_bits(&ylc, 8);
        let lt = b.is_less_than(&xlc, &ylc, 8);
        b.output("lt", lt);
        let c = b.finish();
        let f = Fr::from_u64;
        for (a, bb, expect) in [
            (0u64, 1u64, 1u64),
            (1, 0, 0),
            (7, 7, 0),
            (254, 255, 1),
            (255, 0, 0),
            (0, 255, 1),
        ] {
            let w = c.generate_witness(&[f(a), f(bb)], &[]).unwrap();
            assert_eq!(w.public()[1], f(expect), "{a} < {bb}");
        }
    }

    #[test]
    fn boolean_algebra_truth_tables() {
        let mut b = builder();
        let x = b.public_input("x");
        let y = b.public_input("y");
        let (xl, yl): (Lc<Fr>, Lc<Fr>) = (x.into(), y.into());
        b.enforce_boolean(&xl);
        b.enforce_boolean(&yl);
        let and = b.bool_and(&xl, &yl);
        let or = b.bool_or(&xl, &yl);
        let xor = b.bool_xor(&xl, &yl);
        let not = b.bool_not(&xl);
        b.output("and", and);
        b.output("or", or);
        b.output("xor", xor);
        b.output("not", not);
        let c = b.finish();
        let f = Fr::from_u64;
        for (a, bb) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let w = c.generate_witness(&[f(a), f(bb)], &[]).unwrap();
            assert_eq!(w.public()[1], f(a & bb), "and {a} {bb}");
            assert_eq!(w.public()[2], f(a | bb), "or {a} {bb}");
            assert_eq!(w.public()[3], f(a ^ bb), "xor {a} {bb}");
            assert_eq!(w.public()[4], f(1 - a), "not {a}");
        }
    }

    #[test]
    fn mux_selects_every_slot() {
        let mut b = builder();
        let i0 = b.public_input("i0");
        let i1 = b.public_input("i1");
        let (l0, l1): (Lc<Fr>, Lc<Fr>) = (i0.into(), i1.into());
        b.enforce_boolean(&l0);
        b.enforce_boolean(&l1);
        let options: Vec<Lc<Fr>> = (10..14).map(|v| Lc::constant(Fr::from_u64(v))).collect();
        let picked = b.mux(&[l0, l1], &options);
        b.output("picked", picked);
        let c = b.finish();
        let f = Fr::from_u64;
        for idx in 0..4u64 {
            let w = c
                .generate_witness(&[f(idx & 1), f(idx >> 1)], &[])
                .unwrap();
            assert_eq!(w.public()[1], f(10 + idx), "index {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "mux arity")]
    fn mux_rejects_wrong_arity() {
        let mut b = builder();
        let x = b.public_input("x");
        let xl: Lc<Fr> = x.into();
        let xr: Lc<Fr> = x.into();
        let _ = b.mux(&[xl], &[xr]);
    }
}
