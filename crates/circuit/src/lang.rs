//! A small circom-flavoured circuit language.
//!
//! The paper's `compile` stage runs circom over a circuit source file; this
//! module is the equivalent front end for our substrate: a lexer, a
//! recursive-descent parser and a lowering pass that unrolls loops and emits
//! one rank-1 constraint per non-constant multiplication, exactly like
//! circom's constraint generation.
//!
//! # Grammar
//!
//! ```text
//! program := "circuit" IDENT "{" stmt* "}"
//! stmt    := "public" "input" IDENT ";"
//!          | "private" "input" IDENT ";"
//!          | "const" IDENT "=" INT ";"
//!          | "let" IDENT "=" expr ";"
//!          | IDENT "=" expr ";"
//!          | "output" IDENT "=" expr ";"
//!          | "assert" expr "==" expr ";"
//!          | "repeat" (INT | IDENT) "{" stmt* "}"
//! expr    := term (("+" | "-") term)*
//! term    := factor (("*" factor) | ("^" INT))*
//! factor  := INT | IDENT | "(" expr ")" | "-" factor
//! ```
//!
//! # Examples
//!
//! ```
//! use zkperf_circuit::lang::compile;
//! use zkperf_ff::{Field, bn254::Fr};
//!
//! let src = "circuit square { public input x; output y = x * x; }";
//! let circuit = compile::<Fr>(src).unwrap();
//! let w = circuit.generate_witness(&[Fr::from_u64(9)], &[]).unwrap();
//! assert_eq!(w.public()[1], Fr::from_u64(81));
//! ```

use std::collections::HashMap;
use std::fmt;

use zkperf_ff::PrimeField;
use zkperf_trace as trace;

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::lc::LinearCombination;

/// A compile error with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(message: impl Into<String>, line: usize, col: usize) -> Result<T, CompileError> {
    Err(CompileError {
        message: message.into(),
        line,
        col,
    })
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    KwCircuit,
    KwPublic,
    KwPrivate,
    KwInput,
    KwOutput,
    KwLet,
    KwConst,
    KwRepeat,
    KwAssert,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Eq,
    EqEq,
    Plus,
    Minus,
    Star,
    Caret,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(n) => return write!(f, "identifier `{n}`"),
            Tok::Int(v) => return write!(f, "integer `{v}`"),
            Tok::KwCircuit => "`circuit`",
            Tok::KwPublic => "`public`",
            Tok::KwPrivate => "`private`",
            Tok::KwInput => "`input`",
            Tok::KwOutput => "`output`",
            Tok::KwLet => "`let`",
            Tok::KwConst => "`const`",
            Tok::KwRepeat => "`repeat`",
            Tok::KwAssert => "`assert`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::Semi => "`;`",
            Tok::Eq => "`=`",
            Tok::EqEq => "`==`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Caret => "`^`",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let _g = trace::region_profile("lexer");
    let src_base = src.as_ptr() as usize;
    let mut scanned = 0usize;
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if trace::is_active() {
            trace::load(src_base + scanned.min(src.len().saturating_sub(1)), 1);
            trace::compute(2);
            trace::control(2);
            trace::data_move(1);
        }
        scanned += 1;
        let (tline, tcol) = (line, col);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut chars);
                continue;
            }
            '/' => {
                bump(&mut chars);
                if chars.peek() == Some(&'/') {
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump(&mut chars);
                    }
                    continue;
                }
                return err("unexpected `/` (only `//` comments supported)", tline, tcol);
            }
            '0'..='9' => {
                let mut v: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(u64::from(digit)))
                            .ok_or(CompileError {
                                message: "integer literal too large".into(),
                                line: tline,
                                col: tcol,
                            })?;
                        bump(&mut chars);
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line: tline,
                    col: tcol,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        name.push(d);
                        bump(&mut chars);
                    } else {
                        break;
                    }
                }
                let tok = match name.as_str() {
                    "circuit" => Tok::KwCircuit,
                    "public" => Tok::KwPublic,
                    "private" => Tok::KwPrivate,
                    "input" => Tok::KwInput,
                    "output" => Tok::KwOutput,
                    "let" => Tok::KwLet,
                    "const" => Tok::KwConst,
                    "repeat" => Tok::KwRepeat,
                    "assert" => Tok::KwAssert,
                    _ => Tok::Ident(name),
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            '=' => {
                bump(&mut chars);
                let tok = if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    Tok::EqEq
                } else {
                    Tok::Eq
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ';' => Tok::Semi,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '^' => Tok::Caret,
                    other => {
                        return err(format!("unexpected character `{other}`"), tline, tcol)
                    }
                };
                bump(&mut chars);
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// --------------------------------------------------------------- parser --

/// An expression of the circuit language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Named signal reference.
    Var(String),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer power (lowered by square-and-multiply with shared wires).
    Pow(Box<Expr>, u64),
}

/// A statement of the circuit language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `public input NAME;`
    PublicInput(String),
    /// `private input NAME;`
    PrivateInput(String),
    /// `const NAME = INT;` (a compile-time integer, usable as a repeat count)
    Const(String, u64),
    /// `let NAME = expr;` (introduces a binding)
    Let(String, Expr),
    /// `NAME = expr;` (rebinds an existing name)
    Assign(String, Expr),
    /// `output NAME = expr;`
    Output(String, Expr),
    /// `assert lhs == rhs;`
    Assert(Expr, Expr),
    /// `repeat N { ... }` with a literal or `const` count (unrolled)
    Repeat(RepeatCount, Vec<Stmt>),
}

/// A repeat bound: a literal or a reference to a `const`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepeatCount {
    /// Literal count.
    Literal(u64),
    /// Named `const`.
    Const(String),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Circuit name from the `circuit` header.
    pub name: String,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<Spanned, CompileError> {
        let t = self.next();
        if &t.tok == tok {
            Ok(t)
        } else {
            err(format!("expected {}, found {}", tok, t.tok), t.line, t.col)
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(name) => Ok(name),
            other => err(format!("expected identifier, found {other}"), t.line, t.col),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        self.expect(&Tok::KwCircuit)?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let body = self.block_body()?;
        self.expect(&Tok::Eof)?;
        Ok(Program { name, body })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        loop {
            if self.peek().tok == Tok::RBrace {
                self.next();
                return Ok(stmts);
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        trace::compute(6);
        trace::control(4);
        trace::data_move(6);
        let t = self.next();
        match t.tok {
            Tok::KwPublic => {
                self.expect(&Tok::KwInput)?;
                let name = self.ident()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::PublicInput(name))
            }
            Tok::KwPrivate => {
                self.expect(&Tok::KwInput)?;
                let name = self.ident()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::PrivateInput(name))
            }
            Tok::KwLet => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Let(name, e))
            }
            Tok::KwConst => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let v = match self.next() {
                    Spanned { tok: Tok::Int(v), .. } => v,
                    other => {
                        return err(
                            format!("const needs an integer, found {}", other.tok),
                            other.line,
                            other.col,
                        )
                    }
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Const(name, v))
            }
            Tok::KwOutput => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Output(name, e))
            }
            Tok::KwAssert => {
                let lhs = self.expr()?;
                self.expect(&Tok::EqEq)?;
                let rhs = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assert(lhs, rhs))
            }
            Tok::KwRepeat => {
                let count = match self.next() {
                    Spanned {
                        tok: Tok::Int(n), ..
                    } => RepeatCount::Literal(n),
                    Spanned {
                        tok: Tok::Ident(name),
                        ..
                    } => RepeatCount::Const(name),
                    other => {
                        return err(
                            format!("expected repeat count, found {}", other.tok),
                            other.line,
                            other.col,
                        )
                    }
                };
                self.expect(&Tok::LBrace)?;
                let body = self.block_body()?;
                Ok(Stmt::Repeat(count, body))
            }
            Tok::Ident(name) => {
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign(name, e))
            }
            other => err(format!("expected a statement, found {other}"), t.line, t.col),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek().tok {
                Tok::Plus => {
                    self.next();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Tok::Minus => {
                    self.next();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek().tok {
                Tok::Star => {
                    self.next();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
                }
                Tok::Caret => {
                    self.next();
                    let t = self.next();
                    let exp = match t.tok {
                        Tok::Int(v) if v >= 1 => v,
                        other => {
                            return err(
                                format!("`^` needs a positive integer, found {other}"),
                                t.line,
                                t.col,
                            )
                        }
                    };
                    lhs = Expr::Pow(Box::new(lhs), exp);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, CompileError> {
        trace::compute(2);
        trace::control(2);
        trace::data_move(3);
        trace::alloc(std::mem::size_of::<Expr>());
        let t = self.next();
        match t.tok {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Ident(name) => Ok(Expr::Var(name)),
            Tok::Minus => Ok(Expr::Neg(Box::new(self.factor()?))),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => err(
                format!("expected an expression, found {other}"),
                t.line,
                t.col,
            ),
        }
    }
}

/// Parses source into an AST without lowering it.
///
/// # Errors
///
/// Returns the first lexical or syntactic [`CompileError`].
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let _g = trace::region_profile("parser");
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

// ------------------------------------------------------------- lowering --

struct Lowerer<F: PrimeField> {
    builder: CircuitBuilder<F>,
    env: HashMap<String, LinearCombination<F>>,
    consts: HashMap<String, u64>,
}

impl<F: PrimeField> Lowerer<F> {
    fn lower_expr(&mut self, e: &Expr) -> Result<LinearCombination<F>, CompileError> {
        Ok(match e {
            Expr::Int(v) => LinearCombination::constant(F::from_u64(*v)),
            Expr::Var(name) => self
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| CompileError {
                    message: format!("unknown signal `{name}`"),
                    line: 0,
                    col: 0,
                })?,
            Expr::Neg(inner) => self.lower_expr(inner)?.scale(-F::one()),
            Expr::Add(a, b) => &self.lower_expr(a)? + &self.lower_expr(b)?,
            Expr::Sub(a, b) => &self.lower_expr(a)? - &self.lower_expr(b)?,
            Expr::Mul(a, b) => {
                let (a, b) = (self.lower_expr(a)?, self.lower_expr(b)?);
                self.builder.mul(&a, &b)
            }
            Expr::Pow(base, exp) => {
                // Square-and-multiply over the *lowered* base so partial
                // powers share wires: O(log exp) gates.
                let base = self.lower_expr(base)?;
                let mut acc: Option<LinearCombination<F>> = None;
                for i in (0..64 - exp.leading_zeros()).rev() {
                    if let Some(a) = acc.take() {
                        acc = Some(self.builder.mul(&a, &a));
                    }
                    if exp >> i & 1 == 1 {
                        acc = Some(match acc.take() {
                            None => base.clone(),
                            Some(a) => self.builder.mul(&a, &base),
                        });
                    }
                }
                acc.expect("exponent >= 1 checked at parse")
            }
        })
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            // Template-instantiation bookkeeping per lowered statement:
            // symbol-table lookups, environment updates, constraint
            // buffer appends (the work circom spends most of compile on).
            trace::compute(160);
            trace::control(120);
            trace::data_move(280);
            trace::load(self.env.len() * 64 + 0x10_0000, 32);
            match s {
                Stmt::PublicInput(name) => {
                    let v = self.builder.public_input(name.clone());
                    self.bind_new(name, LinearCombination::from_variable(v))?;
                }
                Stmt::PrivateInput(name) => {
                    let v = self.builder.private_input(name.clone());
                    self.bind_new(name, LinearCombination::from_variable(v))?;
                }
                Stmt::Const(name, v) => {
                    if self.consts.insert(name.clone(), *v).is_some() {
                        return err(format!("const `{name}` declared twice"), 0, 0);
                    }
                    // Constants are also usable in expressions.
                    self.bind_new(name, LinearCombination::constant(F::from_u64(*v)))?;
                }
                Stmt::Let(name, e) => {
                    let lc = self.lower_expr(e)?;
                    self.bind_new(name, lc)?;
                }
                Stmt::Assign(name, e) => {
                    if !self.env.contains_key(name) {
                        return err(format!("assignment to undeclared signal `{name}`"), 0, 0);
                    }
                    let lc = self.lower_expr(e)?;
                    self.env.insert(name.clone(), lc);
                }
                Stmt::Output(name, e) => {
                    let lc = self.lower_expr(e)?;
                    let v = self.builder.output(name.clone(), lc);
                    self.bind_new(name, LinearCombination::from_variable(v))?;
                }
                Stmt::Assert(lhs, rhs) => {
                    let (l, r) = (self.lower_expr(lhs)?, self.lower_expr(rhs)?);
                    self.builder.enforce_equal(&l, &r);
                }
                Stmt::Repeat(count, body) => {
                    let n = match count {
                        RepeatCount::Literal(n) => *n,
                        RepeatCount::Const(name) => {
                            *self.consts.get(name).ok_or_else(|| CompileError {
                                message: format!("repeat count `{name}` is not a const"),
                                line: 0,
                                col: 0,
                            })?
                        }
                    };
                    for _ in 0..n {
                        self.lower_repeat_body(body)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Inside a repeat body only assignments, asserts and nested repeats
    /// make sense (declarations would collide across iterations).
    fn lower_repeat_body(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            match s {
                Stmt::PublicInput(n)
                | Stmt::PrivateInput(n)
                | Stmt::Let(n, _)
                | Stmt::Const(n, _)
                | Stmt::Output(n, _) => {
                    return err(
                        format!("`{n}` declared inside repeat; declarations must be outside loops"),
                        0,
                        0,
                    );
                }
                _ => {}
            }
        }
        self.lower_stmts(body)
    }

    fn bind_new(
        &mut self,
        name: &str,
        lc: LinearCombination<F>,
    ) -> Result<(), CompileError> {
        if self.env.insert(name.to_string(), lc).is_some() {
            return err(format!("signal `{name}` declared twice"), 0, 0);
        }
        Ok(())
    }
}

/// Compiles source text into a [`Circuit`] — the full `compile` stage:
/// lex, parse, unroll, and lower to R1CS.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered.
pub fn compile<F: PrimeField>(src: &str) -> Result<Circuit<F>, CompileError> {
    let _g = trace::region_profile("compile");
    let program = parse(src)?;
    let mut lowerer = Lowerer {
        builder: CircuitBuilder::new(program.name.clone()),
        env: HashMap::new(),
        consts: HashMap::new(),
    };
    lowerer.lower_stmts(&program.body)?;
    Ok(lowerer.builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn parse_builds_expected_ast() {
        let p = parse("circuit t { public input x; let y = x * x + 1; }").unwrap();
        assert_eq!(p.name, "t");
        assert_eq!(p.body.len(), 2);
        assert_eq!(p.body[0], Stmt::PublicInput("x".into()));
        match &p.body[1] {
            Stmt::Let(n, Expr::Add(lhs, rhs)) => {
                assert_eq!(n, "y");
                assert!(matches!(**lhs, Expr::Mul(_, _)));
                assert_eq!(**rhs, Expr::Int(1));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        let c = compile::<Fr>(
            "circuit t { public input x; output y = 2 + x * 3; output z = (2 + x) * 3; }",
        )
        .unwrap();
        let w = c.generate_witness(&[Fr::from_u64(4)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(14));
        assert_eq!(w.public()[2], Fr::from_u64(18));
        // Constant multiplications are linear: no mul gates, two output rows.
        assert_eq!(c.r1cs().num_constraints(), 2);
    }

    #[test]
    fn repeat_unrolls_to_constraints() {
        let src = "circuit e { public input x; let acc = x;\n\
                   repeat 7 { acc = acc * x; }\n output y = acc; }";
        let c = compile::<Fr>(src).unwrap();
        // 7 mul gates + 1 output binding.
        assert_eq!(c.r1cs().num_constraints(), 8);
        let w = c.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(256)); // 2^8
    }

    #[test]
    fn assert_statement_constrains() {
        let src = "circuit t { public input x; private input y; assert x == y * y; }";
        let c = compile::<Fr>(src).unwrap();
        assert!(c
            .generate_witness(&[Fr::from_u64(49)], &[Fr::from_u64(7)])
            .is_ok());
        assert!(c
            .generate_witness(&[Fr::from_u64(50)], &[Fr::from_u64(7)])
            .is_err());
    }

    #[test]
    fn negation_and_subtraction() {
        let src = "circuit t { public input x; output y = -x + 10 - 2; }";
        let c = compile::<Fr>(src).unwrap();
        let w = c.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(5));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("circuit t {\n  public inpt x;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected `input`"), "{}", e.message);
        let e = parse("circuit t { @ }").unwrap_err();
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn semantic_errors() {
        assert!(compile::<Fr>("circuit t { output y = nope; }")
            .unwrap_err()
            .message
            .contains("unknown signal"));
        assert!(compile::<Fr>("circuit t { let a = 1; let a = 2; }")
            .unwrap_err()
            .message
            .contains("declared twice"));
        assert!(compile::<Fr>("circuit t { a = 3; }")
            .unwrap_err()
            .message
            .contains("undeclared"));
        assert!(
            compile::<Fr>("circuit t { repeat 2 { let a = 1; } }")
                .unwrap_err()
                .message
                .contains("inside repeat")
        );
    }

    #[test]
    fn nested_repeat_multiplies_counts() {
        let src = "circuit n { public input x; let acc = x;\
                    repeat 3 { repeat 4 { acc = acc * x; } } output y = acc; }";
        let c = compile::<Fr>(src).unwrap();
        // 12 mul gates + 1 output row.
        assert_eq!(c.r1cs().num_constraints(), 13);
        let w = c.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(8192)); // 2^13
    }

    #[test]
    fn repeat_zero_is_a_noop() {
        let src = "circuit z { public input x; let acc = x; repeat 0 { acc = acc * x; } output y = acc; }";
        let c = compile::<Fr>(src).unwrap();
        assert_eq!(c.r1cs().num_constraints(), 1);
    }

    #[test]
    fn const_and_power_operator() {
        let src = "circuit p { const n = 6;\
                    public input x; let acc = 1;\
                    repeat n { acc = acc * x; }\
                    output y = acc; output z = x ^ 6; }";
        let c = compile::<Fr>(src).unwrap();
        let w = c.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(64)); // repeat-const path
        assert_eq!(w.public()[2], Fr::from_u64(64)); // power operator
        // Square-and-multiply: x^6 costs 3 muls, not 5.
        let lean = compile::<Fr>("circuit q { public input x; output z = x ^ 6; }").unwrap();
        assert_eq!(lean.r1cs().num_constraints(), 3 + 1);
    }

    #[test]
    fn power_operator_edge_cases() {
        let one = compile::<Fr>("circuit q { public input x; output z = x ^ 1; }").unwrap();
        let w = one.generate_witness(&[Fr::from_u64(9)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(9));
        assert!(parse("circuit q { public input x; output z = x ^ 0; }").is_err());
        assert!(compile::<Fr>("circuit q { repeat m { } }")
            .unwrap_err()
            .message
            .contains("not a const"));
        assert!(compile::<Fr>("circuit q { const a = 1; const a = 2; }").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// header\ncircuit t { // trailing\n public input x; output y = x; }";
        assert!(compile::<Fr>(src).is_ok());
    }

    #[test]
    fn overflow_integer_literal_is_rejected() {
        let src = format!("circuit t {{ let a = {}0; }}", u64::MAX);
        assert!(parse(&src).unwrap_err().message.contains("too large"));
    }
}
