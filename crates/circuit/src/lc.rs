//! Variables and sparse linear combinations — the atoms of R1CS.

use zkperf_ff::Field;
use zkperf_trace as trace;

/// Index of a wire in the witness vector.
///
/// By convention wire 0 is the constant `1`, followed by the public wires
/// (outputs then public inputs), the private inputs, and finally the
/// auxiliary wires allocated during synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub u32);

impl Variable {
    /// The constant-one wire.
    pub const ONE: Variable = Variable(0);

    /// The wire's index into the witness vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A sparse linear combination `Σ coeffᵢ·wireᵢ`, kept sorted by wire index
/// with no zero coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearCombination<F> {
    terms: Vec<(Variable, F)>,
}

impl<F: Field> LinearCombination<F> {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        LinearCombination { terms: Vec::new() }
    }

    /// A single wire with coefficient 1.
    pub fn from_variable(v: Variable) -> Self {
        LinearCombination {
            terms: vec![(v, F::one())],
        }
    }

    /// The constant `c` (coefficient on the one-wire).
    pub fn constant(c: F) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            LinearCombination {
                terms: vec![(Variable::ONE, c)],
            }
        }
    }

    /// The terms, sorted by wire index.
    pub fn terms(&self) -> &[(Variable, F)] {
        &self.terms
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the combination is identically zero.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the combination is a constant (only the one-wire, or empty),
    /// returns its value.
    pub fn as_constant(&self) -> Option<F> {
        match self.terms.as_slice() {
            [] => Some(F::zero()),
            [(v, c)] if *v == Variable::ONE => Some(*c),
            _ => None,
        }
    }

    /// Adds `coeff·var` into the combination.
    pub fn add_term(&mut self, var: Variable, coeff: F) {
        if trace::is_active() {
            // Binary search + insertion shuffle of the sparse term list.
            trace::compute(3);
            trace::control(3);
            trace::load(self.terms.as_ptr() as usize, 16);
            trace::store(self.terms.as_ptr() as usize, 16);
        }
        if coeff.is_zero() {
            return;
        }
        match self.terms.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(i) => {
                self.terms[i].1 += coeff;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (var, coeff)),
        }
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: F) -> Self {
        if s.is_zero() {
            return Self::zero();
        }
        LinearCombination {
            terms: self.terms.iter().map(|&(v, c)| (v, c * s)).collect(),
        }
    }

    /// Evaluates the combination against a full witness vector.
    ///
    /// # Panics
    ///
    /// Panics if a wire index is out of bounds.
    pub fn evaluate(&self, witness: &[F]) -> F {
        let mut acc = F::zero();
        for &(v, c) in &self.terms {
            trace::control(2); // term loop + bounds check
            acc += c * witness[v.index()];
        }
        acc
    }
}

impl<F: Field> std::ops::Add<&LinearCombination<F>> for &LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn add(self, rhs: &LinearCombination<F>) -> LinearCombination<F> {
        let mut out = self.clone();
        for &(v, c) in rhs.terms() {
            out.add_term(v, c);
        }
        out
    }
}

impl<F: Field> std::ops::Sub<&LinearCombination<F>> for &LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn sub(self, rhs: &LinearCombination<F>) -> LinearCombination<F> {
        let mut out = self.clone();
        for &(v, c) in rhs.terms() {
            out.add_term(v, -c);
        }
        out
    }
}

impl<F: Field> From<Variable> for LinearCombination<F> {
    fn from(v: Variable) -> Self {
        Self::from_variable(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;

    type Lc = LinearCombination<Fr>;

    #[test]
    fn add_term_merges_and_cancels() {
        let mut lc = Lc::zero();
        lc.add_term(Variable(3), Fr::from_u64(2));
        lc.add_term(Variable(1), Fr::from_u64(5));
        lc.add_term(Variable(3), Fr::from_u64(7));
        assert_eq!(lc.len(), 2);
        assert_eq!(lc.terms()[0], (Variable(1), Fr::from_u64(5)));
        assert_eq!(lc.terms()[1], (Variable(3), Fr::from_u64(9)));
        lc.add_term(Variable(1), -Fr::from_u64(5));
        assert_eq!(lc.len(), 1, "cancelled term is removed");
        lc.add_term(Variable(9), Fr::zero());
        assert_eq!(lc.len(), 1, "zero coefficients are ignored");
    }

    #[test]
    fn constant_detection() {
        assert_eq!(Lc::zero().as_constant(), Some(Fr::zero()));
        assert_eq!(
            Lc::constant(Fr::from_u64(6)).as_constant(),
            Some(Fr::from_u64(6))
        );
        assert_eq!(Lc::from_variable(Variable(2)).as_constant(), None);
        assert!(Lc::constant(Fr::zero()).is_empty());
    }

    #[test]
    fn evaluate_against_witness() {
        let w = vec![Fr::one(), Fr::from_u64(10), Fr::from_u64(20)];
        let mut lc = Lc::constant(Fr::from_u64(3));
        lc.add_term(Variable(1), Fr::from_u64(2));
        lc.add_term(Variable(2), Fr::from_u64(1));
        assert_eq!(lc.evaluate(&w), Fr::from_u64(43));
    }

    #[test]
    fn arithmetic_on_combinations() {
        let a = Lc::from_variable(Variable(1));
        let b = Lc::from_variable(Variable(2));
        let sum = &a + &b;
        assert_eq!(sum.len(), 2);
        let diff = &sum - &a;
        assert_eq!(diff, b);
        let scaled = sum.scale(Fr::from_u64(4));
        assert_eq!(scaled.terms()[0].1, Fr::from_u64(4));
        assert!(sum.scale(Fr::zero()).is_empty());
    }
}
