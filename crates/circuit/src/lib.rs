#![warn(missing_docs)]

//! Arithmetic circuits for the zkperf suite: a gate-level builder DSL, a
//! circom-flavoured [`lang`]uage front end, the [`R1cs`] constraint-system
//! representation, a witness solver, and a [`library`] of benchmark
//! circuits (including the paper's exponentiation workload).
//!
//! Together these implement the paper's `compile` and `witness` stages.
//!
//! # Examples
//!
//! ```
//! use zkperf_circuit::library::exponentiate;
//! use zkperf_ff::{Field, bn254::Fr};
//!
//! let circuit = exponentiate::<Fr>(1 << 4); // y = x^16, 16 constraints
//! let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
//! assert_eq!(w.public()[1], Fr::from_u64(65536));
//! ```

mod builder;
mod circuit;
mod gadgets;
pub mod lang;
mod lc;
pub mod library;
pub mod poseidon;
mod r1cs;

pub use builder::{analyze_constraints, CircuitBuilder, ConstraintStats};
pub use circuit::{Circuit, Instruction, Witness, WitnessError};
pub use lc::{LinearCombination, Variable};
pub use r1cs::{Constraint, R1cs};
