//! Ready-made benchmark circuits.
//!
//! [`exponentiate`] is the paper's workload (`y = x^e` with `e` chosen so
//! the constraint count matches the sweep variable); the others are the kind
//! of application circuits the paper's introduction motivates (credentials,
//! membership, range claims).

use zkperf_ff::PrimeField;

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::lang;
use crate::lc::LinearCombination;

/// Generates the source text of the paper's exponentiation circuit with
/// exactly `constraints` R1CS constraints (one multiplication per constraint
/// after the output binding), i.e. `y = x^constraints`.
///
/// # Panics
///
/// Panics if `constraints == 0`.
pub fn exponentiate_source(constraints: usize) -> String {
    assert!(constraints > 0, "need at least one constraint");
    format!(
        "// y = x^{constraints}: the exponentiation benchmark circuit\n\
         circuit exponentiate {{\n\
         \x20   public input x;\n\
         \x20   let acc = x;\n\
         \x20   repeat {} {{ acc = acc * x; }}\n\
         \x20   output y = acc;\n\
         }}\n",
        constraints - 1
    )
}

/// Compiles the exponentiation circuit through the full language front end
/// (this *is* the paper's `compile` stage for the benchmark workload).
///
/// # Panics
///
/// Panics if `constraints == 0` (the generated source is always valid).
pub fn exponentiate<F: PrimeField>(constraints: usize) -> Circuit<F> {
    lang::compile(&exponentiate_source(constraints)).expect("generated source is valid")
}

/// A chain of private-input multiplications proving knowledge of factors of
/// a public product: `product = f₀·f₁·…·fₙ₋₁`.
pub fn multiplier_chain<F: PrimeField>(factors: usize) -> Circuit<F> {
    assert!(factors >= 2, "need at least two factors");
    let mut b = CircuitBuilder::<F>::new("multiplier_chain");
    let mut acc: LinearCombination<F> = b.private_input("f0").into();
    for i in 1..factors {
        let f: LinearCombination<F> = b.private_input(format!("f{i}")).into();
        acc = b.mul(&acc, &f);
    }
    b.output("product", acc);
    b.finish()
}

/// Proves a private value fits in `bits` bits (a range proof via bit
/// decomposition), exposing the value's square as the public output so the
/// statement is non-trivial.
pub fn range_check<F: PrimeField>(bits: usize) -> Circuit<F> {
    let mut b = CircuitBuilder::<F>::new("range_check");
    let v: LinearCombination<F> = b.private_input("value").into();
    let _bits = b.decompose_bits(&v, bits);
    let sq = b.mul(&v, &v);
    b.output("value_squared", sq);
    b.finish()
}

/// Number of rounds in the toy arithmetic permutation used by
/// [`merkle_membership`].
pub const HASH_ROUNDS: usize = 8;

/// One application of the toy MiMC-style compression function
/// `h(l, r) = permute(l + 3r)` where `permute` is `HASH_ROUNDS` rounds of
/// `t ← (t + cᵢ)⁵`. Three constraints per round.
///
/// This is **not** a production hash — it stands in for circom's Poseidon
/// with the same arithmetic-circuit shape (low-degree S-box rounds).
pub fn hash2_gadget<F: PrimeField>(
    b: &mut CircuitBuilder<F>,
    l: &LinearCombination<F>,
    r: &LinearCombination<F>,
) -> LinearCombination<F> {
    let mut t = l + &r.scale(F::from_u64(3));
    for i in 0..HASH_ROUNDS {
        let c = LinearCombination::constant(F::from_u64(0x9e37_79b9 + i as u64));
        let base = &t + &c;
        let sq = b.mul(&base, &base);
        let quad = b.mul(&sq, &sq);
        t = b.mul(&quad, &base);
    }
    t
}

/// Evaluates [`hash2_gadget`] outside a circuit (for building test trees).
pub fn hash2<F: PrimeField>(l: F, r: F) -> F {
    let mut t = l + r * F::from_u64(3);
    for i in 0..HASH_ROUNDS {
        let base = t + F::from_u64(0x9e37_79b9 + i as u64);
        t = base.square().square() * base;
    }
    t
}

/// Merkle-membership circuit of the given `depth`: proves a private leaf
/// hashes up to the public root along a private path.
///
/// Private inputs: `leaf`, then per level a sibling value and a direction
/// bit (0 = current node is the left child). Public input: none. Output:
/// the recomputed root.
pub fn merkle_membership<F: PrimeField>(depth: usize) -> Circuit<F> {
    assert!(depth > 0, "depth must be positive");
    let mut b = CircuitBuilder::<F>::new("merkle_membership");
    let mut node: LinearCombination<F> = b.private_input("leaf").into();
    for level in 0..depth {
        let sibling: LinearCombination<F> =
            b.private_input(format!("sibling{level}")).into();
        let dir: LinearCombination<F> = b.private_input(format!("dir{level}")).into();
        b.enforce_boolean(&dir);
        // left = dir ? sibling : node; right = dir ? node : sibling
        let left = b.select(&dir, &sibling, &node);
        let right = b.select(&dir, &node, &sibling);
        node = hash2_gadget(&mut b, &left, &right);
    }
    b.output("root", node);
    b.finish()
}

/// Merkle-membership circuit using the [`crate::poseidon`] hash instead of
/// the toy MiMC-style one: the production-shaped variant (~250 constraints
/// per level instead of 24).
pub fn merkle_membership_poseidon<F: PrimeField>(depth: usize) -> Circuit<F> {
    assert!(depth > 0, "depth must be positive");
    let mut b = CircuitBuilder::<F>::new("merkle_membership_poseidon");
    let mut node: LinearCombination<F> = b.private_input("leaf").into();
    for level in 0..depth {
        let sibling: LinearCombination<F> =
            b.private_input(format!("sibling{level}")).into();
        let dir: LinearCombination<F> = b.private_input(format!("dir{level}")).into();
        b.enforce_boolean(&dir);
        let left = b.select(&dir, &sibling, &node);
        let right = b.select(&dir, &node, &sibling);
        node = crate::poseidon::poseidon_hash2_gadget(&mut b, &left, &right);
    }
    b.output("root", node);
    b.finish()
}

/// Computes the [`merkle_membership_poseidon`] inputs for a leaf and path.
pub fn merkle_path_inputs_poseidon<F: PrimeField>(
    leaf: F,
    path: &[(F, bool)],
) -> (Vec<F>, F) {
    let mut inputs = vec![leaf];
    let mut node = leaf;
    for &(sibling, is_right) in path {
        inputs.push(sibling);
        inputs.push(if is_right { F::one() } else { F::zero() });
        node = if is_right {
            crate::poseidon::poseidon_hash2(sibling, node)
        } else {
            crate::poseidon::poseidon_hash2(node, sibling)
        };
    }
    (inputs, node)
}

/// Computes the private-input vector for [`merkle_membership`] given a leaf
/// and a path of `(sibling, is_right_child)` pairs, plus the expected root.
pub fn merkle_path_inputs<F: PrimeField>(leaf: F, path: &[(F, bool)]) -> (Vec<F>, F) {
    let mut inputs = vec![leaf];
    let mut node = leaf;
    for &(sibling, is_right) in path {
        inputs.push(sibling);
        inputs.push(if is_right { F::one() } else { F::zero() });
        node = if is_right {
            hash2(sibling, node)
        } else {
            hash2(node, sibling)
        };
    }
    (inputs, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn exponentiate_has_requested_constraint_count() {
        for n in [1usize, 2, 10, 64] {
            let c = exponentiate::<Fr>(n);
            assert_eq!(c.r1cs().num_constraints(), n, "n = {n}");
        }
    }

    #[test]
    fn exponentiate_computes_powers() {
        let c = exponentiate::<Fr>(5); // y = x^5
        let w = c.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(243));
    }

    #[test]
    fn multiplier_chain_products() {
        let c = multiplier_chain::<Fr>(4);
        let ins: Vec<Fr> = [2u64, 3, 5, 7].iter().map(|&v| Fr::from_u64(v)).collect();
        let w = c.generate_witness(&[], &ins).unwrap();
        assert_eq!(w.public()[1], Fr::from_u64(210));
    }

    #[test]
    fn range_check_accepts_in_range_rejects_out() {
        let c = range_check::<Fr>(8);
        assert!(c.generate_witness(&[], &[Fr::from_u64(255)]).is_ok());
        assert!(c.generate_witness(&[], &[Fr::from_u64(256)]).is_err());
    }

    #[test]
    fn hash2_gadget_matches_reference() {
        let mut b = CircuitBuilder::<Fr>::new("h");
        let l: LinearCombination<Fr> = b.private_input("l").into();
        let r: LinearCombination<Fr> = b.private_input("r").into();
        let h = hash2_gadget(&mut b, &l, &r);
        b.output("h", h);
        let c = b.finish();
        let (lv, rv) = (Fr::from_u64(11), Fr::from_u64(22));
        let w = c.generate_witness(&[], &[lv, rv]).unwrap();
        assert_eq!(w.public()[1], hash2(lv, rv));
    }

    #[test]
    fn poseidon_merkle_membership_roundtrip() {
        let leaf = Fr::from_u64(42);
        let path = [(Fr::from_u64(7), false), (Fr::from_u64(8), true)];
        let (inputs, root) = merkle_path_inputs_poseidon(leaf, &path);
        let c = merkle_membership_poseidon::<Fr>(2);
        let w = c.generate_witness(&[], &inputs).unwrap();
        assert_eq!(w.public()[1], root);
        assert!(c.r1cs().num_constraints() > 400, "poseidon-sized tree");
    }

    #[test]
    fn merkle_membership_roundtrip() {
        let leaf = Fr::from_u64(42);
        let path = [
            (Fr::from_u64(7), false),
            (Fr::from_u64(8), true),
            (Fr::from_u64(9), false),
        ];
        let (inputs, root) = merkle_path_inputs(leaf, &path);
        let c = merkle_membership::<Fr>(3);
        let w = c.generate_witness(&[], &inputs).unwrap();
        assert_eq!(w.public()[1], root);
        // A corrupted sibling still produces a witness, but a different root.
        let mut bad = inputs.clone();
        bad[1] += Fr::one();
        let wbad = c.generate_witness(&[], &bad).unwrap();
        assert_ne!(wbad.public()[1], root);
        // A non-boolean direction is rejected.
        let mut nonbool = inputs;
        nonbool[2] = Fr::from_u64(2);
        assert!(c.generate_witness(&[], &nonbool).is_err());
    }
}
