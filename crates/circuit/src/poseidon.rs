//! A Poseidon-shaped sponge hash, natively and as a circuit gadget.
//!
//! Structure follows the Poseidon paper (t = 3 state, x⁵ S-box, 8 full +
//! 56 partial rounds, MDS mixing), which is the hash circom circuits use
//! for Merkle trees and commitments. The round constants and MDS matrix
//! are derived deterministically in-repo (xorshift stream / Cauchy matrix)
//! rather than copied from the reference instantiation — interoperability
//! with other Poseidon deployments is a non-goal; circuit shape and cost
//! (≈ 240 constraints per permutation) match the real thing.

use zkperf_ff::{Field, PrimeField};
use zkperf_trace as trace;

use crate::builder::CircuitBuilder;
use crate::lc::LinearCombination;

/// State width of the permutation (2 rate + 1 capacity).
pub const T: usize = 3;
/// Number of full rounds (S-box on the whole state).
pub const FULL_ROUNDS: usize = 8;
/// Number of partial rounds (S-box on one lane).
pub const PARTIAL_ROUNDS: usize = 56;

/// The derived permutation constants for one field instantiation.
///
/// Deriving them costs a few hundred field inversions and `BigUint`
/// reductions — irrelevant per circuit build, but the STARK backend calls
/// `poseidon_hash2` once per Merkle tree node, where rederivation would
/// dominate the hash itself. The registry below builds them once per field
/// type and serves a leaked static thereafter (same shape as the tower
/// Frobenius-coefficient cache in `zkperf-ff`).
struct PoseidonConstants<F: PrimeField> {
    round_constants: Vec<[F; T]>,
    mds: [[F; T]; T],
}

fn constants<F: PrimeField>() -> &'static PoseidonConstants<F> {
    use std::any::{Any, TypeId};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Registry = Mutex<HashMap<TypeId, &'static (dyn Any + Send + Sync)>>;
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let key = TypeId::of::<F>();
    let lock = || registry.lock().expect("poseidon constants registry poisoned");
    if let Some(cached) = lock().get(&key) {
        return cached
            .downcast_ref::<PoseidonConstants<F>>()
            .expect("registry entries are keyed by field type");
    }
    // Built outside the lock (the build recurses into field arithmetic); a
    // race at first use builds twice and keeps one.
    let built: &'static PoseidonConstants<F> = Box::leak(Box::new(PoseidonConstants {
        round_constants: round_constants::<F>(),
        mds: mds_matrix::<F>(),
    }));
    let mut guard = lock();
    guard
        .entry(key)
        .or_insert(built as &'static (dyn Any + Send + Sync))
        .downcast_ref::<PoseidonConstants<F>>()
        .expect("just inserted with this type")
}

fn round_constants<F: PrimeField>() -> Vec<[F; T]> {
    // A fixed xorshift64* stream, domain-separated per position.
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..FULL_ROUNDS + PARTIAL_ROUNDS)
        .map(|_| {
            let mut row = [F::zero(); T];
            for slot in row.iter_mut() {
                // Two words give ~128 bits of entropy per constant.
                let lo = next();
                let hi = next();
                let v = zkperf_ff::BigUint::from_limbs(&[lo, hi]);
                *slot = F::from_biguint(&v);
            }
            row
        })
        .collect()
}

fn mds_matrix<F: PrimeField>() -> [[F; T]; T] {
    // Cauchy matrix m[i][j] = 1/(xᵢ + yⱼ) with disjoint small x, y: always
    // invertible over a prime field of large characteristic.
    let mut m = [[F::zero(); T]; T];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let denom = F::from_u64((i + 1) as u64) + F::from_u64((j + T + 1) as u64);
            *cell = denom.inverse().expect("small sums are non-zero");
        }
    }
    m
}

fn sbox<F: Field>(x: F) -> F {
    // x^5
    let x2 = x.square();
    x2.square() * x
}

/// Applies the Poseidon permutation to a state natively.
pub fn poseidon_permute<F: PrimeField>(mut state: [F; T]) -> [F; T] {
    let _g = trace::region_profile("poseidon");
    let cached = constants::<F>();
    let mds = &cached.mds;
    let half_full = FULL_ROUNDS / 2;
    for (round, rc) in cached.round_constants.iter().enumerate() {
        for (lane, c) in state.iter_mut().zip(rc) {
            *lane += *c;
        }
        let full = round < half_full || round >= half_full + PARTIAL_ROUNDS;
        if full {
            for lane in state.iter_mut() {
                *lane = sbox(*lane);
            }
        } else {
            state[0] = sbox(state[0]);
        }
        let mut mixed = [F::zero(); T];
        for (i, row) in mds.iter().enumerate() {
            for (j, coeff) in row.iter().enumerate() {
                mixed[i] += *coeff * state[j];
            }
        }
        state = mixed;
    }
    state
}

/// Two-to-one Poseidon compression: absorb `(l, r)` with a zero capacity
/// lane and squeeze the first rate lane.
pub fn poseidon_hash2<F: PrimeField>(l: F, r: F) -> F {
    poseidon_permute([l, r, F::zero()])[0]
}

/// The in-circuit S-box: 3 constraints.
fn sbox_gadget<F: PrimeField>(
    b: &mut CircuitBuilder<F>,
    x: &LinearCombination<F>,
) -> LinearCombination<F> {
    let x2 = b.mul(x, x);
    let x4 = b.mul(&x2, &x2);
    b.mul(&x4, x)
}

/// The Poseidon permutation as constraints over three input combinations.
pub fn poseidon_permute_gadget<F: PrimeField>(
    b: &mut CircuitBuilder<F>,
    state: [LinearCombination<F>; T],
) -> [LinearCombination<F>; T] {
    let cached = constants::<F>();
    let mds = &cached.mds;
    let half_full = FULL_ROUNDS / 2;
    let mut state = state;
    for (round, rc) in cached.round_constants.iter().enumerate() {
        for (lane, c) in state.iter_mut().zip(rc) {
            *lane = &*lane + &LinearCombination::constant(*c);
        }
        let full = round < half_full || round >= half_full + PARTIAL_ROUNDS;
        if full {
            for lane in state.iter_mut() {
                *lane = sbox_gadget(b, lane);
            }
        } else {
            state[0] = sbox_gadget(b, &state[0]);
        }
        let mut mixed: [LinearCombination<F>; T] =
            std::array::from_fn(|_| LinearCombination::zero());
        for (i, row) in mds.iter().enumerate() {
            for (j, coeff) in row.iter().enumerate() {
                mixed[i] = &mixed[i] + &state[j].scale(*coeff);
            }
        }
        state = mixed;
    }
    state
}

/// Two-to-one Poseidon compression as a gadget.
pub fn poseidon_hash2_gadget<F: PrimeField>(
    b: &mut CircuitBuilder<F>,
    l: &LinearCombination<F>,
    r: &LinearCombination<F>,
) -> LinearCombination<F> {
    let out = poseidon_permute_gadget(b, [l.clone(), r.clone(), LinearCombination::zero()]);
    let [first, _, _] = out;
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn permutation_is_deterministic_and_sensitive() {
        let a = poseidon_hash2(Fr::from_u64(1), Fr::from_u64(2));
        let b = poseidon_hash2(Fr::from_u64(1), Fr::from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, poseidon_hash2(Fr::from_u64(2), Fr::from_u64(1)));
        assert_ne!(a, poseidon_hash2(Fr::from_u64(1), Fr::from_u64(3)));
        assert!(!a.is_zero());
    }

    #[test]
    fn gadget_matches_native_evaluation() {
        let mut b = CircuitBuilder::<Fr>::new("poseidon");
        let l = b.private_input("l");
        let r = b.private_input("r");
        let h = poseidon_hash2_gadget(&mut b, &l.into(), &r.into());
        b.output("h", h);
        let circuit = b.finish();
        // ≈ 240 constraints per permutation plus the output row; the
        // first round's capacity lane is still a constant, so its S-box
        // constant-folds away (3 constraints saved).
        let expected = 3 * (FULL_ROUNDS * T + PARTIAL_ROUNDS) + 1 - 3;
        assert_eq!(circuit.r1cs().num_constraints(), expected);
        let (lv, rv) = (Fr::from_u64(123), Fr::from_u64(456));
        let w = circuit.generate_witness(&[], &[lv, rv]).unwrap();
        assert_eq!(w.public()[1], poseidon_hash2(lv, rv));
    }

    #[test]
    fn works_on_bls12_381_too() {
        type Fr381 = zkperf_ff::bls12_381::Fr;
        let h = poseidon_hash2(Fr381::from_u64(7), Fr381::from_u64(8));
        assert!(!h.is_zero());
        // Different field ⇒ different constants ⇒ unrelated digests.
        let h_bn = poseidon_hash2(Fr::from_u64(7), Fr::from_u64(8));
        assert_ne!(h.to_biguint(), {
            use zkperf_ff::PrimeField;
            h_bn.to_biguint()
        });
    }

    #[test]
    fn mds_matrix_is_invertible() {
        // Determinant of the 3×3 Cauchy matrix must be non-zero.
        let m = mds_matrix::<Fr>();
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        assert!(!det.is_zero());
    }
}
