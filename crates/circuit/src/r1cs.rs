//! The Rank-1 Constraint System representation (the paper's `ccs`).

use zkperf_ff::Field;
use zkperf_trace as trace;

use crate::lc::LinearCombination;

/// One rank-1 constraint `⟨A,w⟩ · ⟨B,w⟩ = ⟨C,w⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint<F> {
    /// Left input combination.
    pub a: LinearCombination<F>,
    /// Right input combination.
    pub b: LinearCombination<F>,
    /// Output combination.
    pub c: LinearCombination<F>,
}

/// A compiled constraint system: the output of the `compile` stage and the
/// input to `setup`, `witness` and `proving`.
///
/// Wire layout: `[1, outputs…, public inputs…, private inputs…, aux…]`;
/// the first `1 + num_outputs + num_public_inputs` wires form the public
/// witness (`witnessPublic` in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct R1cs<F> {
    num_wires: usize,
    num_outputs: usize,
    num_public_inputs: usize,
    num_private_inputs: usize,
    constraints: Vec<Constraint<F>>,
}

impl<F: Field> R1cs<F> {
    /// Assembles a system from raw parts, validating the wire layout and
    /// every referenced wire index. Used by deserializers; circuits built
    /// through [`crate::CircuitBuilder`] uphold these invariants by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if the public/private wire counts exceed `num_wires` or any
    /// constraint references an out-of-range wire.
    pub fn from_parts(
        num_wires: usize,
        num_outputs: usize,
        num_public_inputs: usize,
        num_private_inputs: usize,
        constraints: Vec<Constraint<F>>,
    ) -> Self {
        assert!(
            1 + num_outputs + num_public_inputs + num_private_inputs <= num_wires,
            "wire layout exceeds the wire count"
        );
        for (i, c) in constraints.iter().enumerate() {
            for lc in [&c.a, &c.b, &c.c] {
                for &(v, _) in lc.terms() {
                    assert!(v.index() < num_wires, "constraint {i} references wire {v:?} out of range");
                }
            }
        }
        Self::new(
            num_wires,
            num_outputs,
            num_public_inputs,
            num_private_inputs,
            constraints,
        )
    }

    /// Assembles a system; called by the circuit builder.
    pub(crate) fn new(
        num_wires: usize,
        num_outputs: usize,
        num_public_inputs: usize,
        num_private_inputs: usize,
        constraints: Vec<Constraint<F>>,
    ) -> Self {
        R1cs {
            num_wires,
            num_outputs,
            num_public_inputs,
            num_private_inputs,
            constraints,
        }
    }

    /// Total number of wires (including the constant-one wire).
    pub fn num_wires(&self) -> usize {
        self.num_wires
    }

    /// Number of designated output wires.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of public input wires.
    pub fn num_public_inputs(&self) -> usize {
        self.num_public_inputs
    }

    /// Number of private input wires.
    pub fn num_private_inputs(&self) -> usize {
        self.num_private_inputs
    }

    /// Number of public wires (one-wire + outputs + public inputs); the
    /// length of the public witness.
    pub fn num_public_wires(&self) -> usize {
        1 + self.num_outputs + self.num_public_inputs
    }

    /// Number of constraints (the paper's `#constraints` sweep variable).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint<F>] {
        &self.constraints
    }

    /// Checks that `witness` satisfies every constraint.
    ///
    /// Returns the index of the first violated constraint on failure.
    ///
    /// # Panics
    ///
    /// Panics if `witness.len() != num_wires` or `witness[0] != 1`.
    pub fn check_satisfied(&self, witness: &[F]) -> Result<(), usize> {
        assert_eq!(witness.len(), self.num_wires, "witness length mismatch");
        assert!(witness[0].is_one(), "witness[0] must be the constant 1");
        for (i, c) in self.constraints.iter().enumerate() {
            trace::control(1);
            let a = c.a.evaluate(witness);
            let b = c.b.evaluate(witness);
            let cc = c.c.evaluate(witness);
            if a * b != cc {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Density statistics: total non-zero entries across the A, B, C rows.
    pub fn num_nonzero_entries(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.a.len() + c.b.len() + c.c.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lc::Variable;
    use zkperf_ff::bn254::Fr;

    /// Hand-rolled system for y = x³ exactly as in the paper's Fig. 2:
    /// w0 = x·1, w1 = x·w0, y = x·w1 — wires [1, y, x, w0, w1].
    fn cube_system() -> R1cs<Fr> {
        let x = Variable(2);
        let y = Variable(1);
        let w0 = Variable(3);
        let w1 = Variable(4);
        let lc = LinearCombination::from_variable;
        let constraints = vec![
            Constraint {
                a: lc(x),
                b: lc(Variable::ONE),
                c: lc(w0),
            },
            Constraint {
                a: lc(x),
                b: lc(w0),
                c: lc(w1),
            },
            Constraint {
                a: lc(x),
                b: lc(w1),
                c: lc(y),
            },
        ];
        R1cs::new(5, 1, 1, 0, constraints)
    }

    #[test]
    fn accepts_satisfying_witness() {
        let sys = cube_system();
        let x = Fr::from_u64(3);
        let w = vec![Fr::one(), Fr::from_u64(27), x, x, Fr::from_u64(9)];
        assert_eq!(sys.check_satisfied(&w), Ok(()));
        assert_eq!(sys.num_constraints(), 3);
        assert_eq!(sys.num_public_wires(), 3);
        assert_eq!(sys.num_nonzero_entries(), 9);
    }

    #[test]
    fn reports_first_violated_constraint() {
        let sys = cube_system();
        let x = Fr::from_u64(3);
        // Corrupt w1: constraint 1 (x·w0 = w1) breaks first.
        let w = vec![Fr::one(), Fr::from_u64(27), x, x, Fr::from_u64(10)];
        assert_eq!(sys.check_satisfied(&w), Err(1));
    }

    #[test]
    #[should_panic(expected = "witness length")]
    fn rejects_short_witness() {
        let sys = cube_system();
        let _ = sys.check_satisfied(&[Fr::one()]);
    }
}
