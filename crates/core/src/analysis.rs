//! The paper's four analyses (plus the execution-time breakdown), computed
//! from a slice of [`StageMeasurement`]s.

use std::collections::BTreeMap;

use serde::Serialize;
use zkperf_machine::TopdownBreakdown;
use zkperf_scale::{fit, ParallelismFit, SimCores};
use zkperf_trace::OpClass;

use crate::graphs::stage_task_graph;
use crate::measure::StageMeasurement;
use crate::render;
use crate::stage::{Curve, Stage};

// ------------------------------------------------------------ exec time --

/// One stage's share of total execution time (§IV-B "Execution time
/// analysis": setup 76.1%, proving 13.4%).
#[derive(Debug, Clone, Serialize)]
pub struct ExecTimeRow {
    /// Stage.
    pub stage: Stage,
    /// Total simulated seconds across the aggregated measurements.
    pub seconds: f64,
    /// Percentage of the total across all stages.
    pub percent: f64,
}

/// Aggregates simulated execution time by stage across all measurements.
pub fn exec_time_breakdown(ms: &[StageMeasurement]) -> Vec<ExecTimeRow> {
    let mut by_stage: BTreeMap<Stage, f64> = BTreeMap::new();
    for m in ms {
        *by_stage.entry(m.stage).or_insert(0.0) += m.machine.seconds();
    }
    let total: f64 = by_stage.values().sum();
    Stage::ALL
        .iter()
        .filter_map(|s| by_stage.get(s).map(|&secs| (s, secs)))
        .map(|(&stage, seconds)| ExecTimeRow {
            stage,
            seconds,
            percent: if total > 0.0 { 100.0 * seconds / total } else { 0.0 },
        })
        .collect()
}

/// Renders the execution-time breakdown as a text table.
pub fn render_exec_time(rows: &[ExecTimeRow]) -> String {
    render::table(
        &["stage", "sim seconds", "percent"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    render::f(r.seconds, 4),
                    render::f(r.percent, 1),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// -------------------------------------------------------------- topdown --

/// One cell of the paper's Fig. 4.
#[derive(Debug, Clone, Serialize)]
pub struct TopdownRow {
    /// Simulated CPU.
    pub cpu: String,
    /// Curve.
    pub curve: Curve,
    /// Stage.
    pub stage: Stage,
    /// Constraint count.
    pub constraints: usize,
    /// The four-way slot split.
    pub breakdown: TopdownBreakdown,
}

/// Extracts the top-down rows (one per measurement).
pub fn topdown_rows(ms: &[StageMeasurement]) -> Vec<TopdownRow> {
    ms.iter()
        .map(|m| TopdownRow {
            cpu: m.machine.cpu.clone(),
            curve: m.curve,
            stage: m.stage,
            constraints: m.constraints,
            breakdown: m.machine.topdown(),
        })
        .collect()
}

/// Renders Fig. 4 rows as a text table.
pub fn render_topdown(rows: &[TopdownRow]) -> String {
    render::table(
        &["cpu", "curve", "stage", "2^k", "frontend%", "badspec%", "backend%", "retiring%"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.cpu.clone(),
                    r.curve.to_string(),
                    r.stage.to_string(),
                    format!("{}", (r.constraints as f64).log2() as u32),
                    render::f(r.breakdown.frontend_bound, 1),
                    render::f(r.breakdown.bad_speculation, 1),
                    render::f(r.breakdown.backend_bound, 1),
                    render::f(r.breakdown.retiring, 1),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// --------------------------------------------------------------- memory --

/// Loads/stores band for one (stage, size) point of Fig. 5: the mean and
/// min/max across CPUs and curves.
#[derive(Debug, Clone, Serialize)]
pub struct LoadStoreRow {
    /// Stage.
    pub stage: Stage,
    /// Constraint count.
    pub constraints: usize,
    /// Mean loads across CPUs/curves.
    pub loads_mean: f64,
    /// Minimum loads.
    pub loads_min: u64,
    /// Maximum loads.
    pub loads_max: u64,
    /// Mean stores.
    pub stores_mean: f64,
    /// Minimum stores.
    pub stores_min: u64,
    /// Maximum stores.
    pub stores_max: u64,
}

/// Builds the Fig. 5 loads/stores bands.
pub fn load_store_rows(ms: &[StageMeasurement]) -> Vec<LoadStoreRow> {
    let mut groups: BTreeMap<(Stage, usize), Vec<&StageMeasurement>> = BTreeMap::new();
    for m in ms {
        groups.entry((m.stage, m.constraints)).or_default().push(m);
    }
    groups
        .into_iter()
        .map(|((stage, constraints), group)| {
            let loads: Vec<u64> = group.iter().map(|m| m.machine.loads).collect();
            let stores: Vec<u64> = group.iter().map(|m| m.machine.stores).collect();
            let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
            LoadStoreRow {
                stage,
                constraints,
                loads_mean: mean(&loads),
                // Groups are built by pushing at least one measurement, so
                // min/max exist; copied() + unwrap_or keeps this panic-free.
                loads_min: loads.iter().min().copied().unwrap_or(0),
                loads_max: loads.iter().max().copied().unwrap_or(0),
                stores_mean: mean(&stores),
                stores_min: stores.iter().min().copied().unwrap_or(0),
                stores_max: stores.iter().max().copied().unwrap_or(0),
            }
        })
        .collect()
}

/// Renders the Fig. 5 bands as a text table.
pub fn render_load_store(rows: &[LoadStoreRow]) -> String {
    render::table(
        &["stage", "constraints", "loads(mean)", "loads(min..max)", "stores(mean)", "stores(min..max)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.constraints.to_string(),
                    render::f(r.loads_mean, 0),
                    format!("{}..{}", r.loads_min, r.loads_max),
                    render::f(r.stores_mean, 0),
                    format!("{}..{}", r.stores_min, r.stores_max),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One cell of Table II: the worst-case LLC load MPKI for a stage on one
/// CPU × curve, maximized across constraint sizes.
#[derive(Debug, Clone, Serialize)]
pub struct MpkiRow {
    /// Stage.
    pub stage: Stage,
    /// CPU.
    pub cpu: String,
    /// Curve.
    pub curve: Curve,
    /// Maximum LLC load MPKI across sizes.
    pub max_mpki: f64,
}

/// Builds Table II (max MPKI across the size sweep).
pub fn mpki_table(ms: &[StageMeasurement]) -> Vec<MpkiRow> {
    let mut best: BTreeMap<(Stage, String, Curve), f64> = BTreeMap::new();
    for m in ms {
        let key = (m.stage, m.machine.cpu.clone(), m.curve);
        let v = best.entry(key).or_insert(0.0);
        *v = v.max(m.machine.llc_load_mpki());
    }
    best.into_iter()
        .map(|((stage, cpu, curve), max_mpki)| MpkiRow {
            stage,
            cpu,
            curve,
            max_mpki,
        })
        .collect()
}

/// Renders Table II.
pub fn render_mpki(rows: &[MpkiRow]) -> String {
    render::table(
        &["stage", "cpu", "curve", "max LLC load MPKI"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.cpu.clone(),
                    r.curve.to_string(),
                    render::f(r.max_mpki, 2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One cell of Table III: peak DRAM bandwidth per stage × curve, averaged
/// over sizes and CPUs.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthRow {
    /// Stage.
    pub stage: Stage,
    /// Curve.
    pub curve: Curve,
    /// Mean of per-run peak bandwidth, GB/s.
    pub peak_gbps: f64,
}

/// Builds Table III.
pub fn bandwidth_table(ms: &[StageMeasurement]) -> Vec<BandwidthRow> {
    let mut sums: BTreeMap<(Stage, Curve), (f64, usize)> = BTreeMap::new();
    for m in ms {
        let e = sums.entry((m.stage, m.curve)).or_insert((0.0, 0));
        e.0 += m.machine.peak_dram_gbps;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|((stage, curve), (sum, n))| BandwidthRow {
            stage,
            curve,
            peak_gbps: sum / n as f64,
        })
        .collect()
}

/// Renders Table III.
pub fn render_bandwidth(rows: &[BandwidthRow]) -> String {
    render::table(
        &["stage", "curve", "peak bandwidth (GB/s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.curve.to_string(),
                    render::f(r.peak_gbps, 2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// ----------------------------------------------------------------- code --

/// One hot function of a stage (Table IV).
#[derive(Debug, Clone, Serialize)]
pub struct HotFunctionRow {
    /// Stage.
    pub stage: Stage,
    /// Function/region name.
    pub function: String,
    /// Share of the stage's retired micro-ops, percent.
    pub uops_percent: f64,
    /// Times it ran.
    pub calls: u64,
}

/// Builds the hot-function ranking for each stage, synthesizing the
/// allocator and bulk-copy pseudo-functions the paper's Table IV lists
/// (`malloc`, `memcpy`) from the tracer's dedicated counters.
pub fn hot_functions(ms: &[StageMeasurement], top_k: usize) -> Vec<HotFunctionRow> {
    let mut by_stage: BTreeMap<Stage, BTreeMap<String, (u64, u64)>> = BTreeMap::new();
    let mut stage_total: BTreeMap<Stage, u64> = BTreeMap::new();
    for m in ms {
        let slot = by_stage.entry(m.stage).or_default();
        // Denominator: the tracer's retired µops plus the synthesized
        // runtime entries below, so shares stay within 100%.
        let synthesized =
            m.counts.allocs * 24 + m.counts.memcpy_bytes / 8 + m.counts.memcpys
                + m.machine.page_faults * 300;
        *stage_total.entry(m.stage).or_insert(0) +=
            m.counts.total_uops() + synthesized;
        for r in &m.regions {
            let e = slot.entry(r.name.clone()).or_insert((0, 0));
            e.0 += r.uops;
            e.1 += r.calls;
        }
        // Synthesized entries mirroring VTune's view of libc/runtime work.
        let malloc_uops = m.counts.allocs * 24;
        let e = slot.entry("malloc".into()).or_insert((0, 0));
        e.0 += malloc_uops;
        e.1 += m.counts.allocs;
        let memcpy_uops = m.counts.memcpy_bytes / 8 + m.counts.memcpys;
        let e = slot.entry("memcpy".into()).or_insert((0, 0));
        e.0 += memcpy_uops;
        e.1 += m.counts.memcpys;
        // The kernel's page-fault handler, from the machine model's
        // first-touch counter (~300 retired kernel µops per minor fault).
        let e = slot.entry("page_fault_handler".into()).or_insert((0, 0));
        e.0 += m.machine.page_faults * 300;
        e.1 += m.machine.page_faults;
    }
    let mut out = Vec::new();
    for (stage, functions) in by_stage {
        let total = stage_total[&stage].max(1);
        let mut rows: Vec<HotFunctionRow> = functions
            .into_iter()
            .map(|(function, (uops, calls))| HotFunctionRow {
                stage,
                function,
                uops_percent: 100.0 * uops as f64 / total as f64,
                calls,
            })
            .collect();
        rows.sort_by(|a, b| b.uops_percent.total_cmp(&a.uops_percent));
        rows.truncate(top_k);
        out.extend(rows);
    }
    out
}

/// Renders Table IV.
pub fn render_hot_functions(rows: &[HotFunctionRow]) -> String {
    render::table(
        &["stage", "function", "% of uops", "calls"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.function.clone(),
                    render::f(r.uops_percent, 1),
                    r.calls.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One row of Table V: the opcode-class mix of a stage on one curve.
#[derive(Debug, Clone, Serialize)]
pub struct OpcodeMixRow {
    /// Stage.
    pub stage: Stage,
    /// Curve.
    pub curve: Curve,
    /// Compute share, percent.
    pub compute_pct: f64,
    /// Control-flow share, percent.
    pub control_pct: f64,
    /// Data-flow share, percent.
    pub data_pct: f64,
}

impl OpcodeMixRow {
    /// The dominant class, used to label stages compute/control/data
    /// intensive as the paper does.
    pub fn dominant(&self) -> OpClass {
        let pairs = [
            (OpClass::Compute, self.compute_pct),
            (OpClass::Control, self.control_pct),
            (OpClass::Data, self.data_pct),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(OpClass::Compute, |p| p.0)
    }
}

/// Builds Table V (averaged over sizes and CPUs per stage × curve).
pub fn opcode_mix(ms: &[StageMeasurement]) -> Vec<OpcodeMixRow> {
    let mut sums: BTreeMap<(Stage, Curve), ([f64; 3], usize)> = BTreeMap::new();
    for m in ms {
        let e = sums.entry((m.stage, m.curve)).or_insert(([0.0; 3], 0));
        e.0[0] += m.counts.class_percent(OpClass::Compute);
        e.0[1] += m.counts.class_percent(OpClass::Control);
        e.0[2] += m.counts.class_percent(OpClass::Data);
        e.1 += 1;
    }
    sums.into_iter()
        .map(|((stage, curve), (s, n))| OpcodeMixRow {
            stage,
            curve,
            compute_pct: s[0] / n as f64,
            control_pct: s[1] / n as f64,
            data_pct: s[2] / n as f64,
        })
        .collect()
}

/// Renders Table V.
pub fn render_opcode_mix(rows: &[OpcodeMixRow]) -> String {
    render::table(
        &["stage", "curve", "comp%", "ctrl%", "data%", "dominant"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.curve.to_string(),
                    render::f(r.compute_pct, 2),
                    render::f(r.control_pct, 2),
                    render::f(r.data_pct, 2),
                    r.dominant().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// ------------------------------------------------------------ scalability --

/// A scaling curve for one stage at one size (Fig. 6 / Fig. 7 series).
#[derive(Debug, Clone, Serialize)]
pub struct ScalingCurve {
    /// Stage.
    pub stage: Stage,
    /// Curve.
    pub curve: Curve,
    /// Constraint count (for weak scaling, the base size).
    pub constraints: usize,
    /// `(threads, speedup)` points.
    pub points: Vec<(usize, f64)>,
}

/// The paper's thread counts for Fig. 6.
pub const STRONG_SCALING_THREADS: [usize; 8] = [1, 2, 4, 6, 12, 18, 24, 32];

/// Strong scaling (Fig. 6): fixed problem size, growing thread count, on
/// the simulated multicore `machine`.
pub fn strong_scaling(
    ms: &[StageMeasurement],
    machine: &SimCores,
    threads: &[usize],
) -> Vec<ScalingCurve> {
    ms.iter()
        .map(|m| {
            let graph = stage_task_graph(m);
            ScalingCurve {
                stage: m.stage,
                curve: m.curve,
                constraints: m.constraints,
                points: machine.strong_scaling(&graph, threads),
            }
        })
        .collect()
}

/// Weak scaling (Fig. 7): threads and problem size double together.
/// `ms_by_size` must hold the same stage measured at the doubling sizes,
/// smallest first, aligned with `threads`.
pub fn weak_scaling(
    ms_by_size: &[&StageMeasurement],
    machine: &SimCores,
    threads: &[usize],
) -> ScalingCurve {
    assert_eq!(
        ms_by_size.len(),
        threads.len(),
        "one measurement per thread count"
    );
    assert!(!ms_by_size.is_empty(), "need at least one measurement");
    let base = ms_by_size[0];
    let t1 = machine.simulate(&stage_task_graph(base), 1);
    let points = ms_by_size
        .iter()
        .zip(threads)
        .map(|(m, &n)| {
            let sf = m.constraints as f64 / base.constraints as f64;
            let tn = machine.simulate(&stage_task_graph(m), n);
            (n, t1 * sf / tn)
        })
        .collect();
    ScalingCurve {
        stage: base.stage,
        curve: base.curve,
        constraints: base.constraints,
        points,
    }
}

/// One row of Table VI: fitted serial/parallel percentages.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelismRow {
    /// Stage.
    pub stage: Stage,
    /// Curve.
    pub curve: Curve,
    /// Strong-scaling (Amdahl) fit.
    pub strong: ParallelismFit,
    /// Weak-scaling (Gustafson) fit.
    pub weak: ParallelismFit,
}

/// Fits Table VI from strong- and weak-scaling curves of the same stage.
pub fn parallelism_fit(strong: &ScalingCurve, weak: &ScalingCurve) -> ParallelismRow {
    assert_eq!(strong.stage, weak.stage);
    ParallelismRow {
        stage: strong.stage,
        curve: strong.curve,
        strong: fit::amdahl(&strong.points),
        weak: fit::gustafson(&weak.points),
    }
}

/// Renders scaling curves as a text table.
pub fn render_scaling(curves: &[ScalingCurve]) -> String {
    let mut rows = Vec::new();
    for c in curves {
        for &(n, sp) in &c.points {
            rows.push(vec![
                c.stage.to_string(),
                c.curve.to_string(),
                c.constraints.to_string(),
                n.to_string(),
                render::f(sp, 2),
            ]);
        }
    }
    render::table(&["stage", "curve", "constraints", "threads", "speedup"], &rows)
}

/// Renders Table VI.
pub fn render_parallelism(rows: &[ParallelismRow]) -> String {
    render::table(
        &["stage", "curve", "SS serial%", "SS parallel%", "WS serial%", "WS parallel%"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.curve.to_string(),
                    render::f(r.strong.serial_pct, 2),
                    render::f(r.strong.parallel_pct, 2),
                    render::f(r.weak.serial_pct, 2),
                    render::f(r.weak.parallel_pct, 2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{measure_cell, run_sweep, SweepConfig};
    use zkperf_machine::CpuProfile;

    fn small_matrix() -> Vec<StageMeasurement> {
        let config = SweepConfig {
            log_sizes: vec![6, 7],
            cpus: vec![CpuProfile::i7_8650u(), CpuProfile::i9_13900k()],
            curves: vec![Curve::Bn128],
            stages: Stage::ALL.to_vec(),
            backends: vec![crate::BackendKind::Groth16],
        };
        run_sweep(&config, |_, _| {}).unwrap()
    }

    #[test]
    fn exec_time_percentages_sum_to_100() {
        let ms = small_matrix();
        let rows = exec_time_breakdown(&ms);
        assert_eq!(rows.len(), 5);
        let total: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1e-6);
        let text = render_exec_time(&rows);
        assert!(text.contains("setup"));
    }

    #[test]
    fn topdown_rows_cover_matrix() {
        let ms = small_matrix();
        let rows = topdown_rows(&ms);
        assert_eq!(rows.len(), ms.len());
        for r in &rows {
            let sum = r.breakdown.frontend_bound
                + r.breakdown.bad_speculation
                + r.breakdown.backend_bound
                + r.breakdown.retiring;
            assert!((sum - 100.0).abs() < 1e-6, "{sum}");
        }
        assert!(render_topdown(&rows).contains("i9-13900K"));
    }

    #[test]
    fn memory_tables_have_expected_shapes() {
        let ms = small_matrix();
        let ls = load_store_rows(&ms);
        assert_eq!(ls.len(), 5 * 2, "5 stages × 2 sizes");
        for r in &ls {
            assert!(r.loads_min <= r.loads_max);
            assert!(r.loads_mean >= r.loads_min as f64);
            assert!(r.loads_mean <= r.loads_max as f64);
        }
        let mpki = mpki_table(&ms);
        assert_eq!(mpki.len(), 5 * 2, "5 stages × 2 CPUs");
        let bw = bandwidth_table(&ms);
        assert_eq!(bw.len(), 5, "5 stages × 1 curve");
        assert!(!render_load_store(&ls).is_empty());
        assert!(!render_mpki(&mpki).is_empty());
        assert!(!render_bandwidth(&bw).is_empty());
    }

    #[test]
    fn hot_functions_include_synthesized_libc_entries() {
        let ms = small_matrix();
        let rows = hot_functions(&ms, 20);
        let compile_fns: Vec<&str> = rows
            .iter()
            .filter(|r| r.stage == Stage::Compile)
            .map(|r| r.function.as_str())
            .collect();
        assert!(compile_fns.contains(&"malloc"), "{compile_fns:?}");
        assert!(compile_fns.contains(&"memcpy"), "{compile_fns:?}");
        assert!(compile_fns.contains(&"parser"), "{compile_fns:?}");
    }

    #[test]
    fn opcode_mix_percentages_are_consistent() {
        let ms = small_matrix();
        let rows = opcode_mix(&ms);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            let sum = r.compute_pct + r.control_pct + r.data_pct;
            assert!((sum - 100.0).abs() < 0.5, "{}: {sum}", r.stage);
        }
        assert!(render_opcode_mix(&rows).contains("dominant"));
    }

    #[test]
    fn scalability_pipeline_produces_fits() {
        let cpu = CpuProfile::i9_13900k();
        let machine = SimCores::i9_13900k();
        let m64 = measure_cell(Curve::Bn128, &cpu, 64, &[Stage::Proving]).unwrap();
        let m128 = measure_cell(Curve::Bn128, &cpu, 128, &[Stage::Proving]).unwrap();
        let ss = strong_scaling(&m64, &machine, &[1, 2, 4, 8, 16, 32]);
        assert_eq!(ss.len(), 1);
        assert!(ss[0].points.last().unwrap().1 >= ss[0].points[0].1);
        let ws = weak_scaling(&[&m64[0], &m128[0]], &machine, &[1, 2]);
        assert_eq!(ws.points.len(), 2);
        let row = parallelism_fit(&ss[0], &ws);
        assert!(row.strong.parallel_pct > 0.0);
        assert!(!render_parallelism(&[row]).is_empty());
        assert!(!render_scaling(&ss).is_empty());
    }
}
