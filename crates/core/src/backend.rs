//! The backend-generic prover surface: one trait, three proving systems.
//!
//! [`ProverBackend`] abstracts everything the characterization pipeline
//! needs from a proving system — setup, prove, verify, proof/key sizing,
//! a byte codec, and optional batch verification — so the
//! [`Workload`](crate::Workload) stages, the sweep matrix, the serve job
//! runner, and the bench binaries all dispatch through one interface.
//!
//! Three implementations ship:
//!
//! - [`Groth16Backend<E>`] — the paper's baseline pairing SNARK (trusted
//!   setup, constant-size proofs, two curves);
//! - [`PlonkBackend<E>`] — KZG PLONK (universal trusted setup, ~2×
//!   prover cost, constant-size proofs);
//! - [`StarkBackend`] — the transparent FRI backend over the 64-bit
//!   Goldilocks field (no trusted setup, poly-log proofs, hash-based).
//!
//! Backends are stateless marker types: every method is associated, so a
//! backend can be selected with a type parameter and carried around as a
//! [`BackendKind`] value where dynamic dispatch is needed (sweep configs,
//! CLI flags, serve job routing).

use std::marker::PhantomData;
use std::path::Path;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use zkperf_circuit::{R1cs, Witness};
use zkperf_ec::{CurveParams, Engine};
use zkperf_ff::{Field, Goldilocks, PrimeField};
use zkperf_groth16 as groth16;
use zkperf_io::{
    decode_point_compressed, encode_point_compressed, read_proof, read_zkey_file, write_proof,
    write_zkey_file, Container, Cursor, FieldCodec, Payload,
};
use zkperf_plonk as plonk;
use zkperf_stark as stark;

use crate::stage::Curve;
use crate::workload::StageError;

/// Container magic for serialized PLONK proofs.
const MAGIC_PLONK_PROOF: [u8; 4] = *b"zkpp";
/// Section id for the PLONK proof body.
const SEC_PLONK_BODY: u32 = 1;

/// The proving system a measurement, job, or sweep cell runs on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum BackendKind {
    /// Groth16 over a pairing curve (the paper's baseline).
    #[default]
    Groth16,
    /// KZG PLONK over a pairing curve.
    Plonk,
    /// The transparent FRI/STARK backend over Goldilocks.
    Stark,
}

impl BackendKind {
    /// All backends, baseline first.
    pub const ALL: [BackendKind; 3] = [BackendKind::Groth16, BackendKind::Plonk, BackendKind::Stark];

    /// Lower-case scheme label used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Groth16 => "groth16",
            BackendKind::Plonk => "plonk",
            BackendKind::Stark => "stark",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of a [`ProverBackend::load_keys`] probe against a disk cache.
pub enum KeyLoad<K> {
    /// An intact key artifact was read.
    Loaded(K),
    /// No artifact exists at the path.
    Missing,
    /// An artifact exists but failed its integrity checks; the caller
    /// should evict it and rebuild.
    Corrupt,
    /// This backend does not persist keys (they are cheap to rebuild
    /// deterministically from the setup seed).
    Unsupported,
    /// The artifact could not be read for an environmental reason
    /// (permissions, I/O) that eviction would not fix.
    Failed(StageError),
}

/// A proving system the characterization pipeline can drive end to end.
///
/// All methods are associated functions: implementations are zero-sized
/// marker types selected by a type parameter. The `'static` bound lets
/// backends key caches and thread-locals by `TypeId`.
pub trait ProverBackend: 'static {
    /// The scalar field circuits are compiled over.
    type Fr: PrimeField;
    /// Prover-side key material ([`setup`](Self::setup) output). For
    /// transparent backends this is just the parameter set.
    type Keys;
    /// The proof object.
    type Proof: Clone;

    /// Which proving system this is.
    fn kind() -> BackendKind;

    /// The curve (or field) label measurements are tagged with.
    fn curve() -> Curve;

    /// Stable identifier for content-addressing (cache keys, report
    /// rows). Distinct per (scheme, curve) pair.
    fn label() -> &'static str;

    /// Whether setup is transparent (no trusted ceremony, no toxic
    /// waste): `true` only for the STARK backend.
    fn transparent_setup() -> bool {
        false
    }

    /// Runs (trusted or transparent) setup for `r1cs`.
    ///
    /// # Errors
    ///
    /// The backend's setup error, wrapped in [`StageError`].
    fn setup(r1cs: &R1cs<Self::Fr>, rng: &mut StdRng) -> Result<Self::Keys, StageError>;

    /// Produces a proof for `witness`.
    ///
    /// # Errors
    ///
    /// The backend's proving error, wrapped in [`StageError`].
    fn prove(
        keys: &Self::Keys,
        r1cs: &R1cs<Self::Fr>,
        witness: &Witness<Self::Fr>,
        rng: &mut StdRng,
    ) -> Result<Self::Proof, StageError>;

    /// Checks a proof against the claimed public inputs. `Ok(false)` is a
    /// sound rejection; `Err` means no verdict was reached.
    ///
    /// # Errors
    ///
    /// The backend's verification error, wrapped in [`StageError`].
    fn verify(
        keys: &Self::Keys,
        r1cs: &R1cs<Self::Fr>,
        proof: &Self::Proof,
        public: &[Self::Fr],
    ) -> Result<bool, StageError>;

    /// Approximate serialized size of the key material, for the staged-IO
    /// model and the keys row of the comparison table.
    fn keys_size_bytes(keys: &Self::Keys) -> usize;

    /// Exact serialized proof size in bytes.
    fn proof_size_bytes(proof: &Self::Proof) -> usize {
        Self::encode_proof(proof).len()
    }

    /// Serializes a proof to its canonical byte form.
    fn encode_proof(proof: &Self::Proof) -> Vec<u8>;

    /// Parses a proof from untrusted bytes.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] (or a backend-typed decode error) on
    /// malformed input; never panics or over-allocates.
    fn decode_proof(bytes: &[u8]) -> Result<Self::Proof, StageError>;

    /// Verifies many (proof, public inputs) pairs of one circuit in a
    /// single combined check, when the backend supports it. `None` means
    /// "no batch path — verify individually"; `Some(false)` means at
    /// least one member failed (callers fall back to per-item verdicts).
    fn verify_batch(
        _keys: &Self::Keys,
        _items: &[(Self::Proof, Vec<Self::Fr>)],
        _rng: &mut StdRng,
    ) -> Option<bool> {
        None
    }

    /// Persists key material to a cache path. Backends that rebuild keys
    /// deterministically from the setup seed may no-op.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the write fails.
    fn save_keys(_path: &Path, _keys: &Self::Keys) -> Result<(), StageError> {
        Ok(())
    }

    /// Probes a cache path for previously saved keys.
    fn load_keys(_path: &Path) -> KeyLoad<Self::Keys> {
        KeyLoad::Unsupported
    }
}

/// The Groth16 backend over pairing engine `E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Groth16Backend<E: Engine>(PhantomData<E>);

/// The KZG PLONK backend over pairing engine `E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlonkBackend<E: Engine>(PhantomData<E>);

/// The transparent FRI/STARK backend over the Goldilocks field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarkBackend;

/// Maps an engine's name to the measurement curve tag.
fn engine_curve<E: Engine>() -> Curve {
    if E::NAME == zkperf_ec::Bn254::NAME {
        Curve::Bn128
    } else {
        Curve::Bls12_381
    }
}

impl<E: Engine> ProverBackend for Groth16Backend<E>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    type Fr = E::Fr;
    type Keys = groth16::ProvingKey<E>;
    type Proof = groth16::Proof<E>;

    fn kind() -> BackendKind {
        BackendKind::Groth16
    }

    fn curve() -> Curve {
        engine_curve::<E>()
    }

    fn label() -> &'static str {
        // Bare engine name: preserves the content keys (and therefore the
        // on-disk cache entries) of the pre-trait Groth16-only server.
        E::NAME
    }

    fn setup(r1cs: &R1cs<E::Fr>, rng: &mut StdRng) -> Result<Self::Keys, StageError> {
        let mut pk = groth16::setup::<E, _>(r1cs, rng)?;
        // snarkjs zkeys need at least one phase-2 contribution before they
        // are usable; the paper's setup measurement includes it.
        groth16::contribute::<E, _>(&mut pk, rng);
        Ok(pk)
    }

    fn prove(
        keys: &Self::Keys,
        r1cs: &R1cs<E::Fr>,
        witness: &Witness<E::Fr>,
        rng: &mut StdRng,
    ) -> Result<Self::Proof, StageError> {
        Ok(groth16::prove::<E, _>(keys, r1cs, witness, rng)?)
    }

    fn verify(
        keys: &Self::Keys,
        _r1cs: &R1cs<E::Fr>,
        proof: &Self::Proof,
        public: &[E::Fr],
    ) -> Result<bool, StageError> {
        Ok(groth16::verify::<E>(&keys.vk, proof, public)?)
    }

    fn keys_size_bytes(keys: &Self::Keys) -> usize {
        let fr = std::mem::size_of::<E::Fr>();
        (keys.a_query.len() + keys.b_g1_query.len() + keys.l_query.len() + keys.h_query.len())
            * 2
            * fr
            + keys.b_g2_query.len() * 4 * fr
    }

    fn encode_proof(proof: &Self::Proof) -> Vec<u8> {
        let mut bytes = Vec::new();
        // Infallible on a Vec sink.
        let _ = write_proof::<E>(&mut bytes, proof);
        bytes
    }

    fn decode_proof(bytes: &[u8]) -> Result<Self::Proof, StageError> {
        read_proof::<E>(&mut &bytes[..]).map_err(|e| StageError::Artifact {
            path: "(groth16 proof payload)".to_string(),
            detail: e.to_string(),
        })
    }

    fn verify_batch(
        keys: &Self::Keys,
        items: &[(Self::Proof, Vec<E::Fr>)],
        rng: &mut StdRng,
    ) -> Option<bool> {
        groth16::verify_batch::<E, _>(&keys.vk, items, rng).ok()
    }

    fn save_keys(path: &Path, keys: &Self::Keys) -> Result<(), StageError> {
        Ok(write_zkey_file::<E>(path, keys)?)
    }

    fn load_keys(path: &Path) -> KeyLoad<Self::Keys> {
        match read_zkey_file::<E>(path) {
            Ok(pk) => KeyLoad::Loaded(pk),
            Err(e) if e.is_missing() => KeyLoad::Missing,
            Err(e) if e.is_corruption() => KeyLoad::Corrupt,
            Err(e) => KeyLoad::Failed(e.into()),
        }
    }
}

impl<E: Engine> ProverBackend for PlonkBackend<E>
where
    <E::G1 as CurveParams>::Base: PrimeField + FieldCodec,
    E::Fr: FieldCodec,
{
    type Fr = E::Fr;
    type Keys = plonk::PlonkProverKey<E>;
    type Proof = plonk::PlonkProof<E>;

    fn kind() -> BackendKind {
        BackendKind::Plonk
    }

    fn curve() -> Curve {
        engine_curve::<E>()
    }

    fn label() -> &'static str {
        if E::NAME == zkperf_ec::Bn254::NAME {
            "plonk-BN128"
        } else {
            "plonk-BLS12-381"
        }
    }

    fn setup(r1cs: &R1cs<E::Fr>, rng: &mut StdRng) -> Result<Self::Keys, StageError> {
        Ok(plonk::plonk_setup::<E, _>(r1cs, rng)?)
    }

    fn prove(
        keys: &Self::Keys,
        _r1cs: &R1cs<E::Fr>,
        witness: &Witness<E::Fr>,
        _rng: &mut StdRng,
    ) -> Result<Self::Proof, StageError> {
        Ok(plonk::plonk_prove::<E>(keys, witness.full())?)
    }

    fn verify(
        keys: &Self::Keys,
        _r1cs: &R1cs<E::Fr>,
        proof: &Self::Proof,
        public: &[E::Fr],
    ) -> Result<bool, StageError> {
        Ok(plonk::plonk_verify::<E>(keys.vk(), proof, public))
    }

    fn keys_size_bytes(keys: &Self::Keys) -> usize {
        // SRS G1 powers dominate: (x, y) affine coordinates per power.
        let fr = std::mem::size_of::<E::Fr>();
        (keys.vk().srs.max_degree() + 1) * 2 * fr + (5 + 3) * 2 * fr
    }

    fn encode_proof(proof: &Self::Proof) -> Vec<u8> {
        let mut body = Payload::default();
        for c in &proof.wire_commits {
            encode_point_compressed(&c.0, &mut body);
        }
        encode_point_compressed(&proof.z_commit.0, &mut body);
        encode_point_compressed(&proof.t_commit.0, &mut body);
        for v in &proof.evals_zeta {
            v.encode(&mut body);
        }
        proof.z_omega_eval.encode(&mut body);
        encode_point_compressed(&proof.w_zeta.0, &mut body);
        encode_point_compressed(&proof.w_zeta_omega.0, &mut body);
        let mut container = Container::new(MAGIC_PLONK_PROOF);
        container.push_section(SEC_PLONK_BODY, body.0);
        let mut bytes = Vec::new();
        let _ = container.write_to(&mut bytes);
        bytes
    }

    fn decode_proof(bytes: &[u8]) -> Result<Self::Proof, StageError> {
        let bad = |detail: String| StageError::Artifact {
            path: "(plonk proof payload)".to_string(),
            detail,
        };
        let container =
            Container::read_from(&mut &bytes[..], MAGIC_PLONK_PROOF).map_err(|e| bad(e.to_string()))?;
        let section = container
            .section(SEC_PLONK_BODY)
            .map_err(|e| bad(e.to_string()))?;
        let mut cur = Cursor::new(section);
        let point = |cur: &mut Cursor<'_>| {
            decode_point_compressed::<E::G1>(cur).map(plonk::Commitment::<E>)
        };
        let wire_commits = [point(&mut cur), point(&mut cur), point(&mut cur)];
        let [a, b, c] = wire_commits;
        let wire_commits = [
            a.map_err(|e| bad(e.to_string()))?,
            b.map_err(|e| bad(e.to_string()))?,
            c.map_err(|e| bad(e.to_string()))?,
        ];
        let z_commit = point(&mut cur).map_err(|e| bad(e.to_string()))?;
        let t_commit = point(&mut cur).map_err(|e| bad(e.to_string()))?;
        let mut evals_zeta = [E::Fr::zero(); 13];
        for slot in evals_zeta.iter_mut() {
            *slot = E::Fr::decode(&mut cur).map_err(|e| bad(e.to_string()))?;
        }
        let z_omega_eval = E::Fr::decode(&mut cur).map_err(|e| bad(e.to_string()))?;
        let w_zeta = decode_point_compressed::<E::G1>(&mut cur)
            .map(plonk::OpeningProof::<E>)
            .map_err(|e| bad(e.to_string()))?;
        let w_zeta_omega = decode_point_compressed::<E::G1>(&mut cur)
            .map(plonk::OpeningProof::<E>)
            .map_err(|e| bad(e.to_string()))?;
        Ok(plonk::PlonkProof {
            wire_commits,
            z_commit,
            t_commit,
            evals_zeta,
            z_omega_eval,
            w_zeta,
            w_zeta_omega,
        })
    }
}

impl ProverBackend for StarkBackend {
    type Fr = Goldilocks;
    type Keys = stark::StarkParams;
    type Proof = stark::StarkProof;

    fn kind() -> BackendKind {
        BackendKind::Stark
    }

    fn curve() -> Curve {
        Curve::Goldilocks
    }

    fn label() -> &'static str {
        "stark-GL64"
    }

    fn transparent_setup() -> bool {
        true
    }

    fn setup(_r1cs: &R1cs<Goldilocks>, _rng: &mut StdRng) -> Result<Self::Keys, StageError> {
        // Transparent: the "keys" are just the publicly derivable FRI
        // parameters; no ceremony, no toxic waste, nothing to contribute.
        Ok(stark::StarkParams::from_env())
    }

    fn prove(
        keys: &Self::Keys,
        r1cs: &R1cs<Goldilocks>,
        witness: &Witness<Goldilocks>,
        _rng: &mut StdRng,
    ) -> Result<Self::Proof, StageError> {
        Ok(stark::prove(r1cs, witness.full(), keys)?)
    }

    fn verify(
        keys: &Self::Keys,
        r1cs: &R1cs<Goldilocks>,
        proof: &Self::Proof,
        public: &[Goldilocks],
    ) -> Result<bool, StageError> {
        match stark::verify(r1cs, public, proof, keys) {
            Ok(()) => Ok(true),
            Err(e) if e.is_rejection() => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn keys_size_bytes(_keys: &Self::Keys) -> usize {
        // Two u64 parameters; the transparent backend ships no key
        // material at all.
        16
    }

    fn proof_size_bytes(proof: &Self::Proof) -> usize {
        proof.size_bytes()
    }

    fn encode_proof(proof: &Self::Proof) -> Vec<u8> {
        proof.encode()
    }

    fn decode_proof(bytes: &[u8]) -> Result<Self::Proof, StageError> {
        Ok(stark::StarkProof::decode(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::Field;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbac)
    }

    fn roundtrip<B: ProverBackend>() {
        let circuit = exponentiate::<B::Fr>(8);
        let witness = circuit
            .generate_witness(&[B::Fr::from_u64(3)], &[])
            .unwrap();
        let keys = B::setup(circuit.r1cs(), &mut rng()).unwrap();
        let proof = B::prove(&keys, circuit.r1cs(), &witness, &mut rng()).unwrap();
        assert_eq!(
            B::verify(&keys, circuit.r1cs(), &proof, witness.public()),
            Ok(true),
            "{} accepts its own proof",
            B::label()
        );
        let bytes = B::encode_proof(&proof);
        assert_eq!(bytes.len(), B::proof_size_bytes(&proof));
        let decoded = B::decode_proof(&bytes).unwrap();
        assert_eq!(
            B::verify(&keys, circuit.r1cs(), &decoded, witness.public()),
            Ok(true),
            "{} accepts the decoded proof",
            B::label()
        );
        assert!(B::decode_proof(&bytes[..bytes.len() / 2]).is_err());
        assert!(B::keys_size_bytes(&keys) > 0);
    }

    #[test]
    fn groth16_roundtrip_and_codec() {
        roundtrip::<Groth16Backend<Bn254>>();
    }

    #[test]
    fn plonk_roundtrip_and_codec() {
        roundtrip::<PlonkBackend<Bn254>>();
    }

    #[test]
    fn stark_roundtrip_and_codec() {
        roundtrip::<StarkBackend>();
    }

    #[test]
    fn kind_labels_and_transparency() {
        assert_eq!(BackendKind::ALL.map(BackendKind::name), ["groth16", "plonk", "stark"]);
        assert_eq!(Groth16Backend::<Bn254>::label(), Bn254::NAME);
        assert_eq!(PlonkBackend::<Bn254>::label(), "plonk-BN128");
        assert_eq!(StarkBackend::label(), "stark-GL64");
        assert!(!Groth16Backend::<Bn254>::transparent_setup());
        assert!(!PlonkBackend::<Bn254>::transparent_setup());
        assert!(StarkBackend::transparent_setup());
        assert_eq!(StarkBackend::curve(), Curve::Goldilocks);
        assert_eq!(Groth16Backend::<Bn254>::curve(), Curve::Bn128);
    }
}
