//! Mapping a measured stage onto a [`TaskGraph`] for the scalability
//! analysis.
//!
//! Work units are the micro-ops measured by the tracer. The serial/parallel
//! split per stage comes from the stage's algorithmic structure, with the
//! residual constants below standing in for toolchain behaviour we do not
//! re-implement (the snarkjs zkey writer, V8's background wasm
//! compilation). Each constant is documented at its definition; the fitted
//! Table VI percentages in EXPERIMENTS.md are the calibration record.

use zkperf_scale::TaskGraph;

use crate::measure::StageMeasurement;
use crate::stage::Stage;

/// Share of the wasm-runtime initialization that parallelizes (V8 compiles
/// wasm modules on background threads).
const RUNTIME_INIT_PARALLEL: f64 = 0.70;
/// Share of expression lowering that is independent per gate; the rest is
/// the environment-update dependency chain through running accumulators.
const LOWERING_PARALLEL: f64 = 0.50;
/// Share of the setup's query generation that parallelizes; the rest
/// models the zkey writer's sequential section stream and the sequential
/// τ-power chains.
const SETUP_QUERY_PARALLEL: f64 = 0.55;
/// Share of witness solving that is independent (separate output branches,
/// bit decompositions); the rest is the gate-to-gate value chain.
const WITNESS_SOLVER_PARALLEL: f64 = 0.55;
/// Share of the prover's field/group work that partitions cleanly (MSM
/// bucket chunks, per-layer NTT butterflies); the remainder is window
/// reduction, layer barriers and proof assembly.
const PROVING_PARALLEL: f64 = 0.80;
/// Independent Miller loops per verification (the four pairing slots).
const VERIFY_MILLER_TASKS: usize = 4;

fn split(graph: TaskGraph, work: f64, parallel_share: f64, chunks: usize) -> TaskGraph {
    let parallel = work * parallel_share;
    let chunks = chunks.max(1);
    graph
        .serial(work - parallel)
        .parallel_uniform(chunks, parallel / chunks as f64)
}

/// Builds the task graph of one measured stage run.
///
/// The graph's total work always equals the measurement's total micro-ops;
/// only its serial/parallel structure is stage-specific.
pub fn stage_task_graph(m: &StageMeasurement) -> TaskGraph {
    let total = m.counts.total_uops() as f64;
    let runtime_init = m.region_uops("runtime_init") as f64;
    let body = (total - runtime_init).max(0.0);
    let n = m.constraints;

    // The runtime-init prologue (interpreted stages only).
    let mut graph = TaskGraph::new();
    if runtime_init > 0.0 {
        graph = split(graph, runtime_init, RUNTIME_INIT_PARALLEL, 16);
    }

    match m.stage {
        Stage::Compile => {
            let front = (m.region_uops("lexer")
                + m.region_uops("parser")
                + m.region_uops("compile_finalize")) as f64;
            let lowering = (body - front).max(0.0);
            graph = graph.serial(front.min(body));
            split(graph, lowering, LOWERING_PARALLEL, (n / 64).max(2))
        }
        Stage::Setup => {
            // Query generation and the ceremony's per-point re-scaling
            // sweep both partition per element; table building, QAP
            // evaluation and zkey assembly are serial.
            let queries =
                (m.region_uops("fixed_base_msm") + m.region_uops("scalar_mul")) as f64;
            let rest = (body - queries).max(0.0);
            graph = graph.serial(rest);
            split(graph, queries.min(body), SETUP_QUERY_PARALLEL, (n / 32).max(4))
        }
        Stage::Witness => split(graph, body, WITNESS_SOLVER_PARALLEL, (n / 128).max(2)),
        Stage::Proving => split(graph, body, PROVING_PARALLEL, (n / 16).max(8)),
        Stage::Verifying => {
            let miller = m.region_uops("miller_loop") as f64;
            let serial = (body - miller).max(0.0);
            graph = graph.serial(serial);
            graph.parallel_uniform(
                VERIFY_MILLER_TASKS,
                miller.min(body) / VERIFY_MILLER_TASKS as f64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::measure_cell;
    use crate::stage::Curve;
    use zkperf_machine::CpuProfile;

    fn measurements() -> Vec<StageMeasurement> {
        measure_cell(
            Curve::Bn128,
            &CpuProfile::i9_13900k(),
            256,
            &Stage::ALL,
        )
        .unwrap()
    }

    #[test]
    fn graphs_conserve_work_and_order_parallelism() {
        let ms = measurements();
        let mut fractions = std::collections::HashMap::new();
        for m in &ms {
            let g = stage_task_graph(m);
            let total = m.counts.total_uops() as f64;
            assert!(
                (g.total_work() - total).abs() / total < 1e-6,
                "{}: graph {} vs measured {}",
                m.stage,
                g.total_work(),
                total
            );
            fractions.insert(m.stage, g.parallel_fraction());
        }
        // The paper's headline ordering: proving is the most parallel of
        // the heavy stages.
        assert!(fractions[&Stage::Proving] > fractions[&Stage::Setup]);
        assert!(fractions[&Stage::Proving] > fractions[&Stage::Compile]);
    }
}
