#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! The zkperf characterization framework — the paper's primary
//! contribution, reimplemented as a library.
//!
//! Given a zk-SNARK workload (the exponentiation circuit family), this
//! crate runs each protocol stage in isolation under the trace-driven CPU
//! simulator and computes the paper's four analyses:
//!
//! 1. **Top-down microarchitecture analysis** ([`analysis::topdown_rows`],
//!    Fig. 4),
//! 2. **Memory analysis** ([`analysis::load_store_rows`] for Fig. 5,
//!    [`analysis::mpki_table`] for Table II,
//!    [`analysis::bandwidth_table`] for Table III),
//! 3. **Code analysis** ([`analysis::hot_functions`] for Table IV,
//!    [`analysis::opcode_mix`] for Table V),
//! 4. **Scalability analysis** ([`analysis::strong_scaling`] for Fig. 6,
//!    [`analysis::weak_scaling`] for Fig. 7,
//!    [`analysis::parallelism_fit`] for Table VI),
//!
//! plus the §IV-B execution-time breakdown
//! ([`analysis::exec_time_breakdown`]).
//!
//! # Examples
//!
//! ```
//! use zkperf_core::{analysis, measure_cell, Curve, Stage};
//! use zkperf_machine::CpuProfile;
//!
//! let ms = measure_cell(Curve::Bn128, &CpuProfile::i7_8650u(), 64, &Stage::ALL)?;
//! let rows = analysis::topdown_rows(&ms);
//! assert_eq!(rows.len(), 5);
//! # Ok::<(), zkperf_core::StageError>(())
//! ```

pub mod analysis;
pub mod report;
mod backend;
mod graphs;
mod matrix;
mod measure;
pub mod render;
mod stage;
mod workload;

pub use backend::{
    BackendKind, Groth16Backend, KeyLoad, PlonkBackend, ProverBackend, StarkBackend,
};
pub use graphs::stage_task_graph;
pub use matrix::{measure_cell, measure_cell_backend, run_sweep, SweepConfig};
pub use measure::{measure_stage, RegionSummary, StageMeasurement};
pub use stage::{Curve, Stage};
pub use workload::{emit_runtime_init, StageError, Workload};
