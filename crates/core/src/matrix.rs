//! Sweep driver: runs the measurement matrix
//! (stage × constraint size × CPU × curve × backend).

use serde::Serialize;
use zkperf_ec::{Bls12_381, Bn254};
use zkperf_machine::CpuProfile;
use zkperf_pool as pool;

use crate::backend::{BackendKind, Groth16Backend, PlonkBackend, ProverBackend, StarkBackend};
use crate::measure::{measure_stage, StageMeasurement};
use crate::stage::{Curve, Stage};
use crate::workload::{StageError, Workload};

/// Which cells of the paper's measurement matrix to run.
#[derive(Debug, Clone, Serialize)]
pub struct SweepConfig {
    /// `log₂` of each constraint count to sweep.
    pub log_sizes: Vec<u32>,
    /// Simulated CPUs.
    pub cpus: Vec<CpuProfile>,
    /// Curves.
    pub curves: Vec<Curve>,
    /// Stages to measure.
    pub stages: Vec<Stage>,
    /// Proving backends. The paper's tables are Groth16-only, so that is
    /// the default; adding [`BackendKind::Plonk`] or [`BackendKind::Stark`]
    /// grows the matrix by a backend dimension (the STARK backend ignores
    /// the curve axis and contributes one Goldilocks row set instead).
    pub backends: Vec<BackendKind>,
}

impl SweepConfig {
    /// The paper's full matrix: sizes 2^10..2^18, three CPUs, two curves,
    /// five stages. Hours of simulation — prefer [`SweepConfig::default`]
    /// unless regenerating everything.
    pub fn paper_full() -> Self {
        SweepConfig {
            log_sizes: (10..=18).collect(),
            cpus: CpuProfile::paper_cpus(),
            curves: Curve::ALL.to_vec(),
            stages: Stage::ALL.to_vec(),
            backends: vec![BackendKind::Groth16],
        }
    }

    /// Replaces the backend set (e.g. all three of [`BackendKind::ALL`]
    /// for the cross-scheme comparison).
    pub fn with_backends(mut self, backends: impl IntoIterator<Item = BackendKind>) -> Self {
        self.backends = backends.into_iter().collect();
        self
    }

    /// Restricts the sweep to one CPU (for the scalability experiments the
    /// paper runs only on the i9).
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpus = vec![cpu];
        self
    }

    /// Restricts the sweep to the given sizes.
    pub fn with_log_sizes(mut self, log_sizes: impl IntoIterator<Item = u32>) -> Self {
        self.log_sizes = log_sizes.into_iter().collect();
        self
    }
}

impl Default for SweepConfig {
    /// Reads the sweep bounds from `ZKPERF_MIN_LOG` / `ZKPERF_MAX_LOG`
    /// (defaults 10 and 13; set `ZKPERF_MAX_LOG=18` for the paper's full
    /// range).
    fn default() -> Self {
        let read = |name: &str, fallback: u32| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(fallback)
        };
        let min = read("ZKPERF_MIN_LOG", 10);
        let max = read("ZKPERF_MAX_LOG", 13).max(min);
        SweepConfig {
            log_sizes: (min..=max).collect(),
            cpus: CpuProfile::paper_cpus(),
            curves: Curve::ALL.to_vec(),
            stages: Stage::ALL.to_vec(),
            backends: vec![BackendKind::Groth16],
        }
    }
}

fn measure_pipeline<B: ProverBackend>(
    cpu: &CpuProfile,
    constraints: usize,
    stages: &[Stage],
) -> Result<Vec<StageMeasurement>, StageError> {
    let mut workload = Workload::<B>::exponentiate(constraints);
    let mut out = Vec::new();
    for stage in Stage::ALL {
        if stages.contains(&stage) {
            out.push(measure_stage(&mut workload, stage, cpu)?);
        } else {
            // Still run it (untraced) so later stages have prerequisites.
            workload.run_stage(stage)?;
        }
    }
    Ok(out)
}

/// Measures the requested stages for one (curve, CPU, size) pipeline,
/// using each curve's canonical backend: Groth16 on the pairing curves,
/// the transparent STARK on [`Curve::Goldilocks`]. For explicit backend
/// choice (e.g. PLONK) use [`measure_cell_backend`].
///
/// # Errors
///
/// Propagates the first [`StageError`] from the pipeline; the already
/// measured stages of the failed cell are discarded so a sweep never
/// records a half-measured cell.
pub fn measure_cell(
    curve: Curve,
    cpu: &CpuProfile,
    constraints: usize,
    stages: &[Stage],
) -> Result<Vec<StageMeasurement>, StageError> {
    match curve {
        Curve::Bn128 => measure_pipeline::<Groth16Backend<Bn254>>(cpu, constraints, stages),
        Curve::Bls12_381 => {
            measure_pipeline::<Groth16Backend<Bls12_381>>(cpu, constraints, stages)
        }
        Curve::Goldilocks => measure_pipeline::<StarkBackend>(cpu, constraints, stages),
    }
}

/// Measures the requested stages for one (backend, curve, CPU, size)
/// pipeline — the fully explicit entry point behind the unified
/// [`ProverBackend`] dispatch. The STARK backend ignores `curve` (it
/// always runs over Goldilocks); the pairing backends reject
/// [`Curve::Goldilocks`] with a typed error.
///
/// # Errors
///
/// [`StageError::UnsupportedCurve`] for a (pairing backend, Goldilocks)
/// request, otherwise the first [`StageError`] from the pipeline.
pub fn measure_cell_backend(
    backend: BackendKind,
    curve: Curve,
    cpu: &CpuProfile,
    constraints: usize,
    stages: &[Stage],
) -> Result<Vec<StageMeasurement>, StageError> {
    match (backend, curve) {
        (BackendKind::Groth16, Curve::Bn128) => {
            measure_pipeline::<Groth16Backend<Bn254>>(cpu, constraints, stages)
        }
        (BackendKind::Groth16, Curve::Bls12_381) => {
            measure_pipeline::<Groth16Backend<Bls12_381>>(cpu, constraints, stages)
        }
        (BackendKind::Plonk, Curve::Bn128) => {
            measure_pipeline::<PlonkBackend<Bn254>>(cpu, constraints, stages)
        }
        (BackendKind::Plonk, Curve::Bls12_381) => {
            measure_pipeline::<PlonkBackend<Bls12_381>>(cpu, constraints, stages)
        }
        (BackendKind::Stark, _) => measure_pipeline::<StarkBackend>(cpu, constraints, stages),
        (b, Curve::Goldilocks) => Err(StageError::UnsupportedCurve { backend: b, curve }),
    }
}

/// Runs the whole configured sweep, invoking `progress` after each cell
/// with (cells done, cells total).
///
/// On a multi-thread pool the cells fan out as one pool task each: every
/// cell writes its own result slot, results and progress callbacks are
/// then replayed in matrix order, and a panic inside a cell (organic or
/// injected via [`pool::chaos_arm_panic_after`]) is contained to that
/// cell as [`StageError::WorkerPanic`] — a crashed cell never aborts the
/// sweep, the pool, or the process. Instrumented trace sessions are
/// per-thread, so concurrently measured cells record the same op streams
/// they would serially.
///
/// Fail-fast by value: the first failing cell *in matrix order* is
/// reported (under the pool, later cells may also have run; their results
/// are discarded). Retry, quarantine and partial-result recovery live in
/// `zkperf-bench`'s resilient runner, which drives [`measure_cell`] cell
/// by cell.
///
/// # Errors
///
/// Returns the failing cell's [`StageError`].
pub fn run_sweep(
    config: &SweepConfig,
    mut progress: impl FnMut(usize, usize),
) -> Result<Vec<StageMeasurement>, StageError> {
    let mut cells = Vec::new();
    for &backend in &config.backends {
        // The transparent backend has no pairing-curve axis: it always
        // runs over Goldilocks, so the curve dimension collapses to one.
        let curves: Vec<Curve> = match backend {
            BackendKind::Stark => vec![Curve::Goldilocks],
            _ => config.curves.clone(),
        };
        for curve in curves {
            for cpu in &config.cpus {
                for &log in &config.log_sizes {
                    cells.push((backend, curve, cpu, log));
                }
            }
        }
    }
    let total = cells.len();

    let mut slots: Vec<Option<Result<Vec<StageMeasurement>, StageError>>> = Vec::new();
    slots.resize_with(total, || None);
    pool::parallel_for_each_mut(&mut slots, |i, slot| {
        let (backend, curve, cpu, log) = cells[i];
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool::chaos_checkpoint();
            measure_cell_backend(backend, curve, cpu, 1 << log, &config.stages)
        }));
        *slot = Some(run.unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload of unknown type".to_string());
            Err(StageError::WorkerPanic { message })
        }));
    });

    let mut out = Vec::new();
    for (done, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(ms)) => out.extend(ms),
            Some(Err(e)) => return Err(e),
            // Unreachable: parallel_for_each_mut fills every slot.
            None => {
                return Err(StageError::WorkerPanic {
                    message: "cell result missing".to_string(),
                })
            }
        }
        progress(done + 1, total);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reads_env_bounds() {
        let c = SweepConfig::default();
        assert!(!c.log_sizes.is_empty());
        assert_eq!(c.cpus.len(), 3);
        assert_eq!(c.curves.len(), 2);
        assert_eq!(c.stages.len(), 5);
    }

    #[test]
    fn paper_full_matches_evaluation_section() {
        let c = SweepConfig::paper_full();
        assert_eq!(c.log_sizes, (10..=18).collect::<Vec<_>>());
    }

    #[test]
    fn injected_pool_panic_surfaces_as_typed_error() {
        let config = SweepConfig {
            log_sizes: vec![4, 5],
            cpus: vec![CpuProfile::i7_8650u()],
            curves: vec![Curve::Bn128],
            stages: vec![Stage::Compile],
            backends: vec![BackendKind::Groth16],
        };
        pool::set_threads(2);
        pool::chaos_arm_panic_after(1);
        let err = run_sweep(&config, |_, _| {}).unwrap_err();
        pool::chaos_disarm();
        pool::set_threads(1);
        assert!(matches!(err, StageError::WorkerPanic { .. }));
        assert!(err.to_string().contains("chaos"));
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let config = SweepConfig {
            log_sizes: vec![4, 5],
            cpus: vec![CpuProfile::i7_8650u()],
            curves: vec![Curve::Bn128],
            stages: vec![Stage::Compile, Stage::Witness],
            backends: vec![BackendKind::Groth16],
        };
        pool::set_threads(1);
        let serial = run_sweep(&config, |_, _| {}).unwrap();
        pool::set_threads(4);
        let parallel = run_sweep(&config, |_, _| {}).unwrap();
        pool::set_threads(1);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.stage, p.stage);
            assert_eq!(s.constraints, p.constraints);
            // Identical op streams: the paper's counters must not depend
            // on the thread count.
            assert_eq!(s.counts, p.counts);
        }
    }

    #[test]
    fn tiny_sweep_produces_every_cell() {
        let config = SweepConfig {
            log_sizes: vec![4],
            cpus: vec![CpuProfile::i7_8650u()],
            curves: vec![Curve::Bn128],
            stages: vec![Stage::Compile, Stage::Witness],
            backends: vec![BackendKind::Groth16],
        };
        let mut calls = 0;
        let ms = run_sweep(&config, |done, total| {
            calls += 1;
            assert!(done <= total);
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].stage, Stage::Compile);
        assert_eq!(ms[1].stage, Stage::Witness);
        assert_eq!(ms[0].constraints, 16);
    }
}
