//! Running one protocol stage under the microarchitecture simulator.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use zkperf_machine::{CpuProfile, MachineReport, MachineSim};
use zkperf_trace::{self as trace, OpCounts};

use crate::backend::{BackendKind, ProverBackend};
use crate::stage::{Curve, Stage};
use crate::workload::{emit_runtime_init, emit_stage_io, StageError, Workload};

/// Per-function attribution extracted from the trace session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionSummary {
    /// Region name ("msm", "bigint", "memcpy", ...).
    pub name: String,
    /// Micro-ops retired inside the region (self, excluding children).
    pub uops: u64,
    /// Wall-clock self time in nanoseconds (host time, used for ranking).
    pub self_nanos: u64,
    /// Times the region was entered.
    pub calls: u64,
    /// Heap bytes requested inside the region.
    pub alloc_bytes: u64,
    /// Bytes moved by bulk copies inside the region.
    pub memcpy_bytes: u64,
}

/// Everything measured for one (stage, curve, CPU, size) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageMeasurement {
    /// Stage that ran.
    pub stage: Stage,
    /// Proving backend it ran through (older serialized sweeps, which
    /// predate multi-backend rows, deserialize as Groth16).
    pub backend: BackendKind,
    /// Curve it ran on.
    pub curve: Curve,
    /// Constraint count of the workload.
    pub constraints: usize,
    /// Exact serialized proof size after the proving stage (0 for every
    /// other stage, and in rows from older sweeps).
    pub proof_bytes: usize,
    /// The simulated CPU's view of the run.
    pub machine: MachineReport,
    /// Raw tracer counters (CPU-independent).
    pub counts: OpCounts,
    /// Per-region attribution for the code analysis.
    pub regions: Vec<RegionSummary>,
    /// Host wall time of the instrumented run.
    pub wall_time: Duration,
    /// High-water mark of live heap bytes during the stage, from the
    /// tracking allocator.
    pub peak_live_bytes: u64,
    /// Bytes moved through the streaming chunk transport during the
    /// stage (0 when the stage ran fully in memory).
    pub streamed_bytes: u64,
}

impl StageMeasurement {
    /// The region summary for `name`, if that region ran.
    pub fn region(&self, name: &str) -> Option<&RegionSummary> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Micro-ops of a region, or 0 when it never ran.
    pub fn region_uops(&self, name: &str) -> u64 {
        self.region(name).map_or(0, |r| r.uops)
    }
}

/// Runs `stage` of `workload` on the simulated `cpu` and collects the
/// measurement. Prerequisite stages must already have run (use
/// [`Workload::prepare_for`]); they execute untraced so the measurement
/// isolates `stage`, matching the paper's "run each stage separately"
/// methodology.
///
/// # Errors
///
/// Propagates the [`StageError`] when the stage itself fails; the trace
/// session is torn down cleanly first, so a failed cell never poisons the
/// next measurement.
pub fn measure_stage<B: ProverBackend>(
    workload: &mut Workload<B>,
    stage: Stage,
    cpu: &CpuProfile,
) -> Result<StageMeasurement, StageError> {
    let curve: Curve = B::curve();
    let (sink, handle) = MachineSim::new(cpu.clone(), stage.exec_env()).shared();
    let session = trace::Session::begin_with_sink(Box::new(sink));
    if stage.exec_env() != zkperf_machine::ExecEnv::Native {
        // Node + snarkjs startup precedes every snarkjs stage.
        emit_runtime_init();
    }
    emit_stage_io(workload.stage_read_bytes(stage));
    // Rebase the allocator's high-water mark and the streamed-bytes
    // counter so both deltas attribute to this stage alone.
    zkperf_pool::mem::reset_peak();
    let streamed_before = zkperf_pool::mem::streamed_bytes();
    if let Err(e) = workload.run_stage(stage) {
        let _ = session.finish();
        return Err(e);
    }
    let peak_live_bytes = zkperf_pool::mem::peak_live_bytes() as u64;
    let streamed_bytes = zkperf_pool::mem::streamed_bytes().saturating_sub(streamed_before);
    emit_stage_io(workload.stage_write_bytes(stage));
    let report = session.finish();
    let machine = handle.borrow().report();
    let regions = report
        .regions
        .iter()
        .map(|r| RegionSummary {
            name: r.name().to_string(),
            uops: r.counts.total_uops(),
            self_nanos: u64::try_from(r.self_time.as_nanos()).unwrap_or(u64::MAX),
            calls: r.calls,
            alloc_bytes: r.counts.alloc_bytes,
            memcpy_bytes: r.counts.memcpy_bytes,
        })
        .collect();
    Ok(StageMeasurement {
        stage,
        backend: B::kind(),
        curve,
        constraints: workload.constraints(),
        proof_bytes: match stage {
            Stage::Proving => workload.proof_size_bytes().unwrap_or(0),
            _ => 0,
        },
        machine,
        counts: report.counts,
        regions,
        wall_time: report.wall_time,
        peak_live_bytes,
        streamed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::Bn254;

    #[test]
    fn measuring_compile_then_proving_isolates_stages() {
        let cpu = CpuProfile::i7_8650u();
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(32);
        let compile = measure_stage(&mut w, Stage::Compile, &cpu).unwrap();
        assert_eq!(compile.stage, Stage::Compile);
        assert!(compile.counts.total_uops() > 0);
        assert!(compile.region("parser").is_some());
        // Compile is native: no runtime_init in its trace.
        assert!(compile.region("runtime_init").is_none());

        w.prepare_for(Stage::Proving).unwrap();
        let proving = measure_stage(&mut w, Stage::Proving, &cpu).unwrap();
        assert!(proving.region("msm").is_some());
        assert!(proving.region("fft").is_some());
        assert!(proving.region("runtime_init").is_some());
        assert!(proving.peak_live_bytes > 0, "allocator high-water mark recorded");
        assert!(
            proving.machine.total_uops() > compile.machine.total_uops(),
            "proving outworks compile at this size"
        );
    }

    #[test]
    fn verifying_measurement_contains_pairing_regions() {
        let cpu = CpuProfile::i9_13900k();
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(8);
        w.prepare_for(Stage::Verifying).unwrap();
        let m = measure_stage(&mut w, Stage::Verifying, &cpu).unwrap();
        assert!(m.region("miller_loop").is_some());
        assert!(m.region("final_exp").is_some());
        assert!(m.region_uops("final_exp") > 0);
        assert_eq!(m.machine.cpu, "i9-13900K");
    }

    #[test]
    fn failed_stage_tears_down_the_session_cleanly() {
        let cpu = CpuProfile::i7_8650u();
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(8);
        // Setup without compile: a typed error, not a panic...
        let err = measure_stage(&mut w, Stage::Setup, &cpu).unwrap_err();
        assert!(matches!(err, StageError::MissingPrerequisite { .. }));
        // ...and the tracer is reusable immediately afterwards.
        let ok = measure_stage(&mut w, Stage::Compile, &cpu).unwrap();
        assert!(ok.counts.total_uops() > 0);
    }
}
