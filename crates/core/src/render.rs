//! Minimal fixed-width text-table rendering for the experiment binaries.

/// Builds an aligned text table from a header row and data rows.
///
/// # Examples
///
/// ```
/// let t = zkperf_core::render::table(
///     &["stage", "pct"],
///     &[vec!["setup".into(), "76.1".into()]],
/// );
/// assert!(t.contains("setup"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with `digits` decimal places.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = table(
            &["a", "long_header"],
            &[
                vec!["xxxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a        "));
        assert!(lines[2].starts_with("xxxxxxx"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(3.75159, 2), "3.75");
        assert_eq!(f(25.0, 1), "25.0");
    }
}
