//! One-call report generation: every analysis rendered into a single
//! markdown document, the shape of the paper's evaluation section.

use std::fmt::Write as _;

use zkperf_scale::SimCores;

use crate::analysis;
use crate::measure::StageMeasurement;

/// Renders the full characterization of `measurements` as markdown:
/// execution-time breakdown, top-down analysis, memory analysis (loads and
/// stores, MPKI, bandwidth), code analysis (hot functions, opcode mix), and
/// — when `scaling_machine` is provided — the strong-scaling curves with
/// their Amdahl fits.
///
/// # Examples
///
/// ```no_run
/// use zkperf_core::{measure_cell, report, Curve, Stage};
/// use zkperf_machine::CpuProfile;
///
/// let ms = measure_cell(Curve::Bn128, &CpuProfile::i9_13900k(), 256, &Stage::ALL)?;
/// let md = report::render_markdown(&ms, Some(&zkperf_scale::SimCores::i9_13900k()));
/// std::fs::write("characterization.md", md)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_markdown(
    measurements: &[StageMeasurement],
    scaling_machine: Option<&SimCores>,
) -> String {
    let mut out = String::new();
    let section = |title: &str, body: String, out: &mut String| {
        // Writing to a String is infallible; ignore the Ok(()) result.
        let _ = writeln!(out, "## {title}\n\n```text\n{}```\n", body);
    };

    let _ = writeln!(out, "# zkperf characterization report\n");
    let cells = measurements.len();
    let sizes: std::collections::BTreeSet<usize> =
        measurements.iter().map(|m| m.constraints).collect();
    let cpus: std::collections::BTreeSet<&str> =
        measurements.iter().map(|m| m.machine.cpu.as_str()).collect();
    let _ = writeln!(
        out,
        "{cells} stage measurements over constraint sizes {sizes:?} on CPUs {cpus:?}.\n"
    );

    section(
        "Execution time (§IV-B)",
        analysis::render_exec_time(&analysis::exec_time_breakdown(measurements)),
        &mut out,
    );
    section(
        "Top-down microarchitecture analysis (Fig. 4)",
        analysis::render_topdown(&analysis::topdown_rows(measurements)),
        &mut out,
    );
    section(
        "Loads and stores (Fig. 5)",
        analysis::render_load_store(&analysis::load_store_rows(measurements)),
        &mut out,
    );
    section(
        "LLC load MPKI (Table II)",
        analysis::render_mpki(&analysis::mpki_table(measurements)),
        &mut out,
    );
    section(
        "Peak DRAM bandwidth (Table III)",
        analysis::render_bandwidth(&analysis::bandwidth_table(measurements)),
        &mut out,
    );
    section(
        "Hot functions (Table IV)",
        analysis::render_hot_functions(&analysis::hot_functions(measurements, 5)),
        &mut out,
    );
    section(
        "Opcode mix (Table V)",
        analysis::render_opcode_mix(&analysis::opcode_mix(measurements)),
        &mut out,
    );
    if let Some(machine) = scaling_machine {
        let curves = analysis::strong_scaling(
            measurements,
            machine,
            &analysis::STRONG_SCALING_THREADS,
        );
        section(
            "Strong scaling (Fig. 6)",
            analysis::render_scaling(&curves),
            &mut out,
        );
        let fits: Vec<String> = curves
            .iter()
            .map(|c| {
                let fit = zkperf_scale::fit::amdahl(&c.points);
                format!(
                    "{} ({}, {} constraints): serial {:.1}% / parallel {:.1}%",
                    c.stage, c.curve, c.constraints, fit.serial_pct, fit.parallel_pct
                )
            })
            .collect();
        section("Amdahl fits (Table VI, SS)", fits.join("\n") + "\n", &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::measure_cell;
    use crate::stage::{Curve, Stage};
    use zkperf_machine::CpuProfile;

    #[test]
    fn report_contains_every_section() {
        let ms = measure_cell(Curve::Bn128, &CpuProfile::i7_8650u(), 64, &Stage::ALL).unwrap();
        let md = render_markdown(&ms, Some(&SimCores::i9_13900k()));
        for heading in [
            "# zkperf characterization report",
            "## Execution time",
            "## Top-down microarchitecture analysis",
            "## Loads and stores",
            "## LLC load MPKI",
            "## Peak DRAM bandwidth",
            "## Hot functions",
            "## Opcode mix",
            "## Strong scaling",
            "## Amdahl fits",
        ] {
            assert!(md.contains(heading), "missing {heading}");
        }
        assert!(md.contains("setup"));
        assert!(md.contains("i7-8650U"));
        // Without a scaling machine the scaling sections are omitted.
        let md2 = render_markdown(&ms, None);
        assert!(!md2.contains("## Strong scaling"));
    }
}
