//! The five protocol stages and the curves under study.

use serde::{Deserialize, Serialize};
use zkperf_machine::ExecEnv;

/// One stage of the zk-SNARK workflow (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Stage {
    /// Circuit source → R1CS (circom).
    Compile,
    /// Trusted parameter generation (snarkjs).
    Setup,
    /// Witness generation from inputs (snarkjs).
    Witness,
    /// Proof generation (snarkjs).
    Proving,
    /// Proof verification (snarkjs).
    Verifying,
}

impl Stage {
    /// All stages in workflow order.
    pub const ALL: [Stage; 5] = [
        Stage::Compile,
        Stage::Setup,
        Stage::Witness,
        Stage::Proving,
        Stage::Verifying,
    ];

    /// The paper's lower-case stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compile => "compile",
            Stage::Setup => "setup",
            Stage::Witness => "witness",
            Stage::Proving => "proving",
            Stage::Verifying => "verifying",
        }
    }

    /// The execution environment of the reference toolchain: circom is a
    /// native compiler; snarkjs runs its heavy crypto (setup, proving)
    /// inside JIT-compiled wasm kernels and the rest (witness
    /// orchestration, verification) at the JS level.
    pub fn exec_env(self) -> ExecEnv {
        match self {
            Stage::Compile => ExecEnv::Native,
            Stage::Setup | Stage::Proving => ExecEnv::Wasm,
            Stage::Witness | Stage::Verifying => ExecEnv::Interpreted,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The elliptic curve a measurement ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Curve {
    /// BN254, called BN128 by circom/snarkjs and the paper.
    Bn128,
    /// BLS12-381.
    Bls12_381,
    /// The 64-bit Goldilocks prime field — not a pairing curve; the tag
    /// for transparent-backend (STARK) measurements. Deliberately absent
    /// from [`Curve::ALL`], which enumerates the paper's pairing sweep.
    Goldilocks,
}

impl Curve {
    /// Both pairing curves in the paper's order ([`Curve::Goldilocks`] is
    /// excluded: it only appears on STARK rows, never in the pairing
    /// sweep).
    pub const ALL: [Curve; 2] = [Curve::Bn128, Curve::Bls12_381];

    /// The paper's curve label.
    pub fn name(self) -> &'static str {
        match self {
            Curve::Bn128 => "BN",
            Curve::Bls12_381 => "BLS",
            Curve::Goldilocks => "GL64",
        }
    }
}

impl std::fmt::Display for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_names() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["compile", "setup", "witness", "proving", "verifying"]
        );
    }

    #[test]
    fn exec_env_matches_toolchain_structure() {
        assert_eq!(Stage::Compile.exec_env(), ExecEnv::Native);
        assert_eq!(Stage::Setup.exec_env(), ExecEnv::Wasm);
        assert_eq!(Stage::Proving.exec_env(), ExecEnv::Wasm);
        assert_eq!(Stage::Witness.exec_env(), ExecEnv::Interpreted);
        assert_eq!(Stage::Verifying.exec_env(), ExecEnv::Interpreted);
    }

    #[test]
    fn curve_labels_match_paper_tables() {
        assert_eq!(Curve::Bn128.to_string(), "BN");
        assert_eq!(Curve::Bls12_381.to_string(), "BLS");
    }
}
