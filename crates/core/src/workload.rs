//! The benchmark workload: the exponentiation circuit pipeline, runnable
//! one stage at a time so each stage can be measured in isolation.
//!
//! The pipeline is generic over the proving system: every scheme-specific
//! step (setup, prove, verify, artifact sizing) dispatches through
//! [`ProverBackend`], so the same five-stage workload characterizes
//! Groth16, PLONK, and the transparent STARK backend.

use rand::SeedableRng;

use zkperf_circuit::{lang, library, Circuit, Witness, WitnessError};
use zkperf_ff::Field;
use zkperf_groth16::{ProveError, SetupError, VerifyError};
use zkperf_plonk::PlonkError;
use zkperf_resilience::{chaos_mode, ChaosMode};
use zkperf_stark::StarkError;
use zkperf_trace as trace;

use crate::backend::{BackendKind, ProverBackend};
use crate::stage::{Curve, Stage};

/// Errors from [`Workload::run_stage`].
///
/// Stage ordering violations and artifact-shape problems are reported as
/// values instead of panics, so a sweep can record a failed cell and keep
/// going. The `Injected` variant only occurs when `ZKPERF_CHAOS` is armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageError {
    /// `stage` was run before its prerequisite `needs`.
    MissingPrerequisite {
        /// The stage that was requested.
        stage: Stage,
        /// The earlier stage whose artifact is missing.
        needs: Stage,
    },
    /// The circuit source failed to compile.
    Compile(lang::CompileError),
    /// The compiled constraint count differs from the declared sweep value.
    ConstraintCountMismatch {
        /// Constraints the workload was declared with.
        declared: usize,
        /// Constraints the compiler actually produced.
        compiled: usize,
    },
    /// Trusted setup rejected the circuit.
    Setup(SetupError),
    /// The inputs do not satisfy the circuit.
    Witness(WitnessError),
    /// The proving key and witness are inconsistent.
    Prove(ProveError),
    /// The verification inputs are malformed.
    Verify(VerifyError),
    /// A PLONK stage failed (arithmetization, witness shape, or
    /// cancellation inside the PLONK prover).
    Plonk(PlonkError),
    /// A STARK stage failed with a typed transparent-backend error.
    Stark(StarkError),
    /// The requested (backend, curve) cell does not exist — pairing
    /// backends cannot run over the Goldilocks field.
    UnsupportedCurve {
        /// The backend that was asked for.
        backend: BackendKind,
        /// The curve it cannot run on.
        curve: Curve,
    },
    /// A chaos-mode fault was injected at this stage boundary.
    Injected {
        /// The stage whose boundary tripped.
        stage: Stage,
    },
    /// A pool worker panicked while running this cell; the panic was
    /// contained to the cell (never aborting the sweep or the process).
    WorkerPanic {
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// The ambient [`zkperf_pool::CancelToken`] was cancelled or its
    /// deadline expired before or during this stage.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: Stage,
    },
    /// An on-disk artifact (compiled R1CS, setup keys, proofs) could not
    /// be read or written. Carries the offending path so callers can
    /// evict and rebuild exactly the broken entry.
    Artifact {
        /// Path of the artifact that failed.
        path: String,
        /// Human-readable failure detail from the format layer.
        detail: String,
    },
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::MissingPrerequisite { stage, needs } => {
                write!(f, "{} before {}", needs.name(), stage.name())
            }
            StageError::Compile(e) => write!(f, "compile: {e}"),
            StageError::ConstraintCountMismatch { declared, compiled } => write!(
                f,
                "compiled to {compiled} constraints but the sweep declared {declared}"
            ),
            StageError::Setup(e) => write!(f, "setup: {e}"),
            StageError::Witness(e) => write!(f, "witness: {e}"),
            StageError::Prove(e) => write!(f, "proving: {e}"),
            StageError::Verify(e) => write!(f, "verifying: {e}"),
            StageError::Plonk(e) => write!(f, "plonk: {e}"),
            StageError::Stark(e) => write!(f, "stark: {e}"),
            StageError::UnsupportedCurve { backend, curve } => {
                write!(f, "backend {backend} does not run on curve {curve}")
            }
            StageError::Injected { stage } => {
                write!(f, "chaos fault injected at the {} boundary", stage.name())
            }
            StageError::WorkerPanic { message } => {
                write!(f, "pool worker panicked: {message}")
            }
            StageError::Cancelled { stage } => {
                write!(f, "{} cancelled by caller or deadline", stage.name())
            }
            StageError::Artifact { path, detail } => {
                write!(f, "artifact {path}: {detail}")
            }
        }
    }
}

impl StageError {
    /// Whether this error reports cooperative cancellation (a fired
    /// [`zkperf_pool::CancelToken`] or an expired deadline) rather than a
    /// fault in the workload itself.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            StageError::Cancelled { .. }
                | StageError::Setup(SetupError::Cancelled)
                | StageError::Prove(ProveError::Cancelled)
                | StageError::Plonk(PlonkError::Cancelled)
                | StageError::Stark(StarkError::Cancelled)
        )
    }
}

impl std::error::Error for StageError {}

impl From<PlonkError> for StageError {
    fn from(e: PlonkError) -> Self {
        StageError::Plonk(e)
    }
}

impl From<StarkError> for StageError {
    fn from(e: StarkError) -> Self {
        StageError::Stark(e)
    }
}

impl From<lang::CompileError> for StageError {
    fn from(e: lang::CompileError) -> Self {
        StageError::Compile(e)
    }
}

impl From<SetupError> for StageError {
    fn from(e: SetupError) -> Self {
        StageError::Setup(e)
    }
}

impl From<WitnessError> for StageError {
    fn from(e: WitnessError) -> Self {
        StageError::Witness(e)
    }
}

impl From<ProveError> for StageError {
    fn from(e: ProveError) -> Self {
        StageError::Prove(e)
    }
}

impl From<VerifyError> for StageError {
    fn from(e: VerifyError) -> Self {
        StageError::Verify(e)
    }
}

impl From<zkperf_io::ArtifactError> for StageError {
    fn from(e: zkperf_io::ArtifactError) -> Self {
        StageError::Artifact {
            path: e.path.display().to_string(),
            detail: e.error.to_string(),
        }
    }
}

impl From<zkperf_groth16::StreamError> for StageError {
    fn from(e: zkperf_groth16::StreamError) -> Self {
        let path = e.path.clone().unwrap_or_else(|| "<stream>".to_string());
        let detail = match e.offset {
            // Keep the seekable location in the detail: a mid-stream
            // checksum failure must say exactly which chunk broke.
            Some(off) => format!("{} (at byte offset {off})", e.detail),
            None => e.detail,
        };
        StageError::Artifact { path, detail }
    }
}

/// A deterministic RNG per workload so measurement runs are reproducible.
fn workload_rng(seed_tweak: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x7e57_0000 ^ seed_tweak)
}

/// The exponentiation pipeline for one proving backend at one constraint
/// count.
///
/// Stages are run explicitly via [`run_stage`](Workload::run_stage); the
/// artifacts of earlier stages are cached so that measuring `proving` does
/// not re-measure `setup`. Every scheme-specific step dispatches through
/// the [`ProverBackend`] type parameter, so
/// `Workload::<Groth16Backend<Bn254>>`, `Workload::<PlonkBackend<Bn254>>`
/// and `Workload::<StarkBackend>` run the identical five-stage pipeline.
///
/// # Examples
///
/// ```
/// use zkperf_core::{Groth16Backend, Stage, StarkBackend, Workload};
/// use zkperf_ec::Bn254;
///
/// let mut w = Workload::<Groth16Backend<Bn254>>::exponentiate(16);
/// for stage in Stage::ALL {
///     w.run_stage(stage)?;
/// }
/// assert_eq!(w.verified(), Some(true));
///
/// // The transparent backend runs the same pipeline, no ceremony needed.
/// let mut w = Workload::<StarkBackend>::exponentiate(16);
/// for stage in Stage::ALL {
///     w.run_stage(stage)?;
/// }
/// assert_eq!(w.verified(), Some(true));
/// # Ok::<(), zkperf_core::StageError>(())
/// ```
#[derive(Debug)]
pub struct Workload<B: ProverBackend> {
    constraints: usize,
    source: String,
    public_inputs: Vec<B::Fr>,
    private_inputs: Vec<B::Fr>,
    circuit: Option<Circuit<B::Fr>>,
    keys: Option<B::Keys>,
    witness: Option<Witness<B::Fr>>,
    proof: Option<B::Proof>,
    verified: Option<bool>,
}

impl<B: ProverBackend> Workload<B> {
    /// Builds the paper's `y = x^e` workload with `constraints` constraints.
    ///
    /// # Panics
    ///
    /// Panics if `constraints == 0`.
    pub fn exponentiate(constraints: usize) -> Self {
        Workload {
            constraints,
            source: library::exponentiate_source(constraints),
            public_inputs: vec![B::Fr::from_u64(3)],
            private_inputs: Vec::new(),
            circuit: None,
            keys: None,
            witness: None,
            proof: None,
            verified: None,
        }
    }

    /// Builds a workload from arbitrary circuit-language source, so any
    /// user circuit can be characterized with the same pipeline.
    ///
    /// `expected_constraints` is checked after compilation (pass the value
    /// you sweep over so analyses group cells correctly).
    ///
    /// # Examples
    ///
    /// ```
    /// use zkperf_core::{Groth16Backend, Stage, Workload};
    /// use zkperf_ec::Bn254;
    /// use zkperf_ff::{bn254::Fr, Field};
    ///
    /// let src = "circuit sq { public input x; output y = x * x; }";
    /// // one multiplication gate plus the output-binding row = 2 constraints
    /// let mut w = Workload::<Groth16Backend<Bn254>>::from_source(
    ///     src, 2, vec![Fr::from_u64(4)], vec![]);
    /// for stage in Stage::ALL {
    ///     w.run_stage(stage)?;
    /// }
    /// assert_eq!(w.verified(), Some(true));
    /// # Ok::<(), zkperf_core::StageError>(())
    /// ```
    pub fn from_source(
        source: impl Into<String>,
        expected_constraints: usize,
        public_inputs: Vec<B::Fr>,
        private_inputs: Vec<B::Fr>,
    ) -> Self {
        Workload {
            constraints: expected_constraints,
            source: source.into(),
            public_inputs,
            private_inputs,
            circuit: None,
            keys: None,
            witness: None,
            proof: None,
            verified: None,
        }
    }

    /// The constraint count this workload targets.
    pub fn constraints(&self) -> usize {
        self.constraints
    }

    /// Bytes of input-file staging the given stage performs (see
    /// [`staged_sizes`]); prerequisites must have run so sizes are real.
    pub fn stage_read_bytes(&self, stage: Stage) -> usize {
        staged_sizes(self, stage).0
    }

    /// Bytes of output-file staging the stage performs after it runs.
    pub fn stage_write_bytes(&self, stage: Stage) -> usize {
        staged_sizes(self, stage).1
    }

    /// The circuit source text fed to the compile stage.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether the verifying stage accepted (None before it ran).
    pub fn verified(&self) -> Option<bool> {
        self.verified
    }

    /// The compiled circuit, if the compile stage has run.
    pub fn circuit(&self) -> Option<&Circuit<B::Fr>> {
        self.circuit.as_ref()
    }

    /// Exact serialized size of the proof, once the proving stage ran.
    pub fn proof_size_bytes(&self) -> Option<usize> {
        self.proof.as_ref().map(B::proof_size_bytes)
    }

    /// Approximate serialized size of the key material, once setup ran.
    pub fn keys_size_bytes(&self) -> Option<usize> {
        self.keys.as_ref().map(B::keys_size_bytes)
    }

    /// Runs every stage strictly before `stage` (untraced), so `stage` can
    /// then be executed in isolation under measurement.
    ///
    /// # Errors
    ///
    /// Propagates the first [`StageError`] from a prerequisite stage.
    pub fn prepare_for(&mut self, stage: Stage) -> Result<(), StageError> {
        for s in Stage::ALL {
            if s >= stage {
                break;
            }
            self.run_stage(s)?;
        }
        Ok(())
    }

    /// Executes one stage, consuming cached prerequisites and caching the
    /// stage's own artifact. Re-running a stage recomputes it.
    ///
    /// # Errors
    ///
    /// Returns [`StageError::MissingPrerequisite`] when an earlier stage
    /// has not run, wraps the underlying pipeline error when a stage's
    /// inputs are inconsistent, and returns [`StageError::Injected`] when
    /// the `ZKPERF_CHAOS` knob forces a fault at this boundary. When the
    /// ambient [`zkperf_pool::CancelToken`] has fired (or its deadline
    /// expired) the stage is skipped entirely and
    /// [`StageError::Cancelled`] is returned.
    pub fn run_stage(&mut self, stage: Stage) -> Result<(), StageError> {
        if zkperf_pool::cancellation_pending() {
            return Err(StageError::Cancelled { stage });
        }
        if let Some(err) = self.chaos_injection(stage, chaos_mode()) {
            return Err(err);
        }
        let missing = |needs: Stage| StageError::MissingPrerequisite { stage, needs };
        match stage {
            Stage::Compile => {
                let circuit = lang::compile::<B::Fr>(&self.source)?;
                if circuit.r1cs().num_constraints() != self.constraints {
                    return Err(StageError::ConstraintCountMismatch {
                        declared: self.constraints,
                        compiled: circuit.r1cs().num_constraints(),
                    });
                }
                self.circuit = Some(circuit);
            }
            Stage::Setup => {
                let circuit = self.circuit.as_ref().ok_or(missing(Stage::Compile))?;
                let mut rng = workload_rng(1);
                self.keys = Some(B::setup(circuit.r1cs(), &mut rng)?);
            }
            Stage::Witness => {
                let circuit = self.circuit.as_ref().ok_or(missing(Stage::Compile))?;
                let witness =
                    circuit.generate_witness(&self.public_inputs, &self.private_inputs)?;
                self.witness = Some(witness);
            }
            Stage::Proving => {
                let circuit = self.circuit.as_ref().ok_or(missing(Stage::Compile))?;
                let keys = self.keys.as_ref().ok_or(missing(Stage::Setup))?;
                let witness = self.witness.as_ref().ok_or(missing(Stage::Witness))?;
                let mut rng = workload_rng(2);
                let proof = B::prove(keys, circuit.r1cs(), witness, &mut rng)?;
                self.proof = Some(proof);
            }
            Stage::Verifying => {
                let circuit = self.circuit.as_ref().ok_or(missing(Stage::Compile))?;
                let keys = self.keys.as_ref().ok_or(missing(Stage::Setup))?;
                let witness = self.witness.as_ref().ok_or(missing(Stage::Witness))?;
                let proof = self.proof.as_ref().ok_or(missing(Stage::Proving))?;
                let ok = B::verify(keys, circuit.r1cs(), proof, witness.public())?;
                self.verified = Some(ok);
            }
        }
        Ok(())
    }

    /// The fault (if any) a chaos plan injects at this stage boundary.
    /// Sparse by design — roughly one in four boundaries trip — so any
    /// seed faults somewhere while leaving most pipelines runnable.
    fn chaos_injection(&self, stage: Stage, mode: ChaosMode) -> Option<StageError> {
        let label = format!("stage:{}:{}", stage.name(), self.constraints);
        let mut plan = mode.plan_for(&label)?;
        plan.chance(1, 4).then_some(StageError::Injected { stage })
    }
}

/// Approximate serialized artifact sizes for each stage's file staging,
/// derived from the workload's artifacts (ccs/ptau/zkey/wtns/proof — the
/// files snarkjs streams into and out of every stage). Read sizes come
/// from prerequisites (or dimension-based predictions for the ptau); write
/// sizes from the stage's own artifact after it runs.
fn staged_sizes<B: ProverBackend>(w: &Workload<B>, stage: Stage) -> (usize, usize) {
    let fr = std::mem::size_of::<B::Fr>();
    let ccs = w.circuit.as_ref().map_or(0, |c| {
        c.r1cs().num_nonzero_entries() * (fr + 8) + c.r1cs().num_wires() * 4
    });
    // Powers-of-tau file: 2n G1 + n G2 points over the padded domain
    // (zero for transparent backends, which stage no ceremony file).
    let ptau = if B::transparent_setup() {
        0
    } else {
        w.circuit.as_ref().map_or(0, |c| {
            let n = c.r1cs().num_constraints().next_power_of_two();
            2 * n * 2 * fr + n * 4 * fr
        })
    };
    let pk = w.keys.as_ref().map_or(0, B::keys_size_bytes);
    let wtns = w
        .witness
        .as_ref()
        .map_or(0, |wit| std::mem::size_of_val(wit.full()));
    match stage {
        Stage::Compile => (w.source.len(), ccs),
        Stage::Setup => (ccs + ptau, pk),
        Stage::Witness => ((512 << 10) + ccs / 4, wtns),
        Stage::Proving => (pk + wtns, 256),
        Stage::Verifying => (4096, 64),
    }
}

/// Streams a stage's file artifacts through the memory system, as the
/// snarkjs CLI does when it loads/saves `.r1cs`/`.zkey`/`.wtns` files.
/// These staging copies are what give the paper's setup/proving stages
/// their multi-GB/s peak-bandwidth windows (Table III).
pub(crate) fn emit_stage_io(bytes: usize) {
    let _g = trace::region_profile("file_staging");
    static BUF: [u8; 64] = [0u8; 64];
    let base = BUF.as_ptr() as usize;
    let mut remaining = bytes;
    let mut offset = 0usize;
    while remaining > 0 {
        let chunk = remaining.min(256 << 10);
        trace::alloc(chunk);
        trace::memcpy(base + (1 << 30) + offset, base + offset, chunk);
        offset += chunk;
        remaining -= chunk;
    }
}

/// Emits the synthetic trace of the JS/wasm runtime initialization that
/// precedes every snarkjs stage: module parse, bytecode/wasm compilation
/// and heap setup.
///
/// snarkjs stages pay this fixed cost regardless of circuit size, which is
/// why the paper measures near-constant witness and verifying stages. The
/// magnitudes below model parsing+compiling a multi-megabyte runtime:
/// ~6M µops with interpreter-typical branchiness and a streaming copy of
/// the module image. Documented in DESIGN.md §2.
pub fn emit_runtime_init() {
    let _g = trace::region_profile("runtime_init");
    // Streaming the module image into the heap.
    const MODULE_BYTES: usize = 128 << 10;
    static BACKING: [u8; 4096] = [0u8; 4096];
    let base = BACKING.as_ptr() as usize;
    trace::alloc(MODULE_BYTES);
    trace::memcpy(base, base + (64 << 20), MODULE_BYTES);
    // Parse/compile loop: mixed ops with data-dependent branches.
    let mut lfsr = 0x1357_9bdf_2468_acecu64;
    for i in 0..12_000u64 {
        trace::compute(170);
        trace::data_move(160);
        trace::control(140);
        lfsr ^= lfsr << 13;
        lfsr ^= lfsr >> 7;
        lfsr ^= lfsr << 17;
        trace::branch(0x8001, lfsr & 7 < 3);
        // Scattered reads over the parsed structures (a few MiB of heap).
        trace::load(base + ((lfsr as usize) & ((4 << 20) - 64)), 32);
        if i % 64 == 0 {
            trace::alloc(1024);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::Bn254;

    #[test]
    fn pipeline_runs_in_order_and_verifies() {
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(8);
        assert!(w.verified().is_none());
        w.prepare_for(Stage::Verifying).unwrap();
        w.run_stage(Stage::Verifying).unwrap();
        assert_eq!(w.verified(), Some(true));
        assert_eq!(w.circuit().unwrap().r1cs().num_constraints(), 8);
    }

    #[test]
    fn skipping_prerequisites_is_a_typed_error() {
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(8);
        let err = w.run_stage(Stage::Setup).unwrap_err();
        assert_eq!(
            err,
            StageError::MissingPrerequisite {
                stage: Stage::Setup,
                needs: Stage::Compile,
            }
        );
        assert_eq!(err.to_string(), "compile before setup");
    }

    #[test]
    fn bad_inputs_surface_as_witness_errors() {
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::from_source(
            "circuit sq { public input x; output y = x * x; }",
            2,
            vec![], // missing the public input
            vec![],
        );
        w.run_stage(Stage::Compile).unwrap();
        let err = w.run_stage(Stage::Witness).unwrap_err();
        assert!(matches!(err, StageError::Witness(_)));
    }

    #[test]
    fn chaos_mode_injects_deterministic_stage_faults() {
        // Many (stage, size) boundaries under one seed: at 1-in-4 odds
        // some must trip, and the same seed must trip the same ones.
        let sweep = |mode: ChaosMode| -> Vec<Option<StageError>> {
            (1..=10)
                .flat_map(|n| {
                    let w = Workload::<crate::backend::Groth16Backend<Bn254>>::exponentiate(n);
                    Stage::ALL.map(|s| w.chaos_injection(s, mode))
                })
                .collect()
        };
        let armed = sweep(ChaosMode::Seeded(1234));
        assert_eq!(armed, sweep(ChaosMode::Seeded(1234)), "replayable");
        assert!(armed.iter().any(Option::is_some), "some boundary trips");
        assert!(armed.iter().any(Option::is_none), "not every boundary");
        assert_ne!(armed, sweep(ChaosMode::Seeded(77)), "seed matters");
        assert!(sweep(ChaosMode::Off).iter().all(Option::is_none));
    }

    #[test]
    fn custom_source_workload_runs_all_stages() {
        use zkperf_ff::Field;
        let src = "circuit lin { public input x; private input k; \
                    output y = k * x + 1; }";
        let mut w = Workload::<crate::backend::Groth16Backend<Bn254>>::from_source(
            src,
            2, // one mul gate + one output row
            vec![zkperf_ff::bn254::Fr::from_u64(10)],
            vec![zkperf_ff::bn254::Fr::from_u64(3)],
        );
        for stage in Stage::ALL {
            w.run_stage(stage).unwrap();
        }
        assert_eq!(w.verified(), Some(true));
    }

    #[test]
    fn runtime_init_emits_interpreter_shaped_trace() {
        let session = trace::Session::begin();
        emit_runtime_init();
        let report = session.finish();
        assert!(report.counts.total_uops() > 4_000_000);
        assert!(report.counts.branches > 10_000);
        assert!(report.counts.memcpy_bytes >= (128 << 10));
        assert!(report.region("runtime_init").is_some());
    }
}
