//! Boundary test: `Workload::from_source` with a zero-constraint circuit.
//!
//! A circuit that declares inputs but no gates is the smallest legal
//! workload. Every backend must drive it through the full five-stage
//! pipeline without panicking — padded proving domains, empty constraint
//! matrices, and zero-length quotients all get exercised at their
//! degenerate size — and verification must accept.

use zkperf_core::{Groth16Backend, PlonkBackend, Stage, StarkBackend, Workload};
use zkperf_ec::Bn254;
use zkperf_ff::{bn254::Fr, Field, Goldilocks};

const EMPTY: &str = "circuit empty { public input x; }";

#[test]
fn zero_constraint_circuit_compiles_to_zero_rows() {
    let c = zkperf_circuit::lang::compile::<Fr>(EMPTY).unwrap();
    assert_eq!(c.r1cs().num_constraints(), 0);
    // wire 0 is the constant-one wire, wire 1 the declared input
    assert_eq!(c.r1cs().num_public_wires(), 2);
}

#[test]
fn zero_constraint_workload_runs_every_stage_on_every_backend() {
    let mut groth16 =
        Workload::<Groth16Backend<Bn254>>::from_source(EMPTY, 0, vec![Fr::from_u64(5)], vec![]);
    let mut plonk =
        Workload::<PlonkBackend<Bn254>>::from_source(EMPTY, 0, vec![Fr::from_u64(5)], vec![]);
    let mut stark =
        Workload::<StarkBackend>::from_source(EMPTY, 0, vec![Goldilocks::from_u64(5)], vec![]);

    for stage in Stage::ALL {
        groth16
            .run_stage(stage)
            .unwrap_or_else(|e| panic!("groth16 {stage:?} on zero constraints: {e}"));
        plonk
            .run_stage(stage)
            .unwrap_or_else(|e| panic!("plonk {stage:?} on zero constraints: {e}"));
        stark
            .run_stage(stage)
            .unwrap_or_else(|e| panic!("stark {stage:?} on zero constraints: {e}"));
    }
    assert_eq!(groth16.verified(), Some(true));
    assert_eq!(plonk.verified(), Some(true));
    assert_eq!(stark.verified(), Some(true));

    // The degenerate workload still reports real artifact sizes.
    assert!(groth16.proof_size_bytes().unwrap() > 0);
    assert!(plonk.proof_size_bytes().unwrap() > 0);
    assert!(stark.proof_size_bytes().unwrap() > 0);
}
