//! Batched affine point addition via shared Montgomery inversion.
//!
//! A single affine chord/tangent addition costs one field inversion, which
//! is why curve kernels normally work in Jacobian coordinates (~11 field
//! multiplications per mixed addition, no inversion). But when many
//! independent additions are performed at once, one batched inversion
//! ([`zkperf_ff::batch_inverse_with_scratch`]) amortizes to ~3
//! multiplications per addition, making the affine formulas (~6
//! multiplications total) cheaper than Jacobian ones. Pippenger bucket
//! accumulation and fixed-base multi-exponentiation both present exactly
//! this shape: thousands of independent additions per round.
//!
//! [`BatchAdder::reduce_segments`] reduces contiguous segments of a point
//! buffer to their sums by repeatedly pairing adjacent points — a balanced
//! tree reduction — with one batch inversion per round across *all*
//! segments, so the inversion batch stays large even when individual
//! segments are short.

use zkperf_ff::{batch_inverse_with_scratch, Field};

use crate::curve::{Affine, CurveParams};

/// How a queued pair resolves once the shared inversion lands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PairKind {
    /// Generic chord addition; denominator is `x₂ − x₁`.
    Add,
    /// Tangent doubling (equal points); denominator is `2·y₁`.
    Double,
    /// No inversion needed: an operand was the identity, or the pair
    /// cancelled (`x₁ = x₂`, `y₁ = −y₂`). Result is stored directly.
    Fixed,
}

/// Reusable scratch state for rounds of batched affine additions.
///
/// Construct once and reuse across windows/chunks so the internal buffers
/// amortize their allocations.
#[derive(Debug)]
pub struct BatchAdder<C: CurveParams> {
    denoms: Vec<C::Base>,
    inv_scratch: Vec<C::Base>,
    kinds: Vec<PairKind>,
    /// Results of `Fixed` pairs only, consumed in queue order during the
    /// apply pass — the overwhelmingly common `Add` pairs never touch it.
    fixed: Vec<Affine<C>>,
}

impl<C: CurveParams> Default for BatchAdder<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: CurveParams> BatchAdder<C> {
    /// Creates an adder with empty scratch buffers.
    pub fn new() -> Self {
        BatchAdder {
            denoms: Vec::new(),
            inv_scratch: Vec::new(),
            kinds: Vec::new(),
            fixed: Vec::new(),
        }
    }

    /// Reduces each segment of `points` to the sum of its elements.
    ///
    /// `segs` holds `(start, len)` descriptors of disjoint contiguous
    /// segments. On return each descriptor's `len` is `0` (empty segment)
    /// or `1`, and in the latter case `points[start]` is the segment sum
    /// (possibly the identity). Points outside the described segments are
    /// left unspecified — the buffer is scratch space.
    ///
    /// Handles every affine edge case: identity operands, equal points
    /// (tangent doubling) and inverse points (cancellation to identity).
    pub fn reduce_segments(&mut self, points: &mut [Affine<C>], segs: &mut [(usize, usize)]) {
        loop {
            self.denoms.clear();
            self.kinds.clear();
            self.fixed.clear();
            for &(start, len) in segs.iter() {
                for k in 0..len / 2 {
                    self.classify(&points[start + 2 * k], &points[start + 2 * k + 1]);
                }
            }
            if self.kinds.is_empty() {
                return; // every segment is down to 0 or 1 points
            }
            batch_inverse_with_scratch(&mut self.denoms, &mut self.inv_scratch);
            let mut pair = 0usize;
            let mut fixed_cursor = 0usize;
            for (start, len) in segs.iter_mut() {
                let pairs = *len / 2;
                for k in 0..pairs {
                    let p = points[*start + 2 * k];
                    let q = points[*start + 2 * k + 1];
                    let inv = self.denoms[pair];
                    points[*start + k] = match self.kinds[pair] {
                        PairKind::Add => {
                            let lambda = (q.y - p.y) * inv;
                            let x3 = lambda.square() - p.x - q.x;
                            let y3 = lambda * (p.x - x3) - p.y;
                            Affine::new_unchecked(x3, y3)
                        }
                        PairKind::Double => {
                            let xx = p.x.square();
                            let lambda = (xx.double() + xx) * inv;
                            let x3 = lambda.square() - p.x.double();
                            let y3 = lambda * (p.x - x3) - p.y;
                            Affine::new_unchecked(x3, y3)
                        }
                        PairKind::Fixed => {
                            fixed_cursor += 1;
                            self.fixed[fixed_cursor - 1]
                        }
                    };
                    pair += 1;
                }
                // An odd trailing point survives into the next round.
                if *len % 2 == 1 {
                    points[*start + pairs] = points[*start + *len - 1];
                }
                *len = pairs + *len % 2;
            }
        }
    }

    /// Queues `p + q`: records the pair kind and its inversion denominator
    /// (zero for `Fixed` pairs, which the batch inversion skips and whose
    /// precomputed result is pushed to the side queue).
    fn classify(&mut self, p: &Affine<C>, q: &Affine<C>) {
        let (kind, denom) = if p.infinity {
            self.fixed.push(*q);
            (PairKind::Fixed, C::Base::zero())
        } else if q.infinity {
            self.fixed.push(*p);
            (PairKind::Fixed, C::Base::zero())
        } else if p.x == q.x {
            if p.y == q.y && !p.y.is_zero() {
                (PairKind::Double, p.y.double())
            } else {
                // Inverse points (or a 2-torsion degenerate): sum is identity.
                self.fixed.push(Affine::identity());
                (PairKind::Fixed, C::Base::zero())
            }
        } else {
            (PairKind::Add, q.x - p.x)
        };
        self.kinds.push(kind);
        self.denoms.push(denom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective};

    fn reference_sum(points: &[G1Affine]) -> G1Projective {
        points
            .iter()
            .fold(G1Projective::identity(), |acc, p| acc.add_mixed(p))
    }

    #[test]
    fn reduces_random_segments() {
        let mut rng = zkperf_ff::test_rng();
        let points: Vec<G1Affine> = (0..64)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        // Segments of varying lengths, including 0 and 1.
        let mut segs = vec![(0usize, 0usize), (0, 1), (1, 2), (3, 7), (10, 54)];
        let expect: Vec<G1Projective> = segs
            .iter()
            .map(|&(s, l)| reference_sum(&points[s..s + l]))
            .collect();
        let mut buf = points.clone();
        let mut adder = BatchAdder::new();
        adder.reduce_segments(&mut buf, &mut segs);
        for (i, (&(start, len), want)) in segs.iter().zip(&expect).enumerate() {
            let got = if len == 0 {
                G1Projective::identity()
            } else {
                buf[start].to_projective()
            };
            assert_eq!(got, *want, "segment {i}");
        }
    }

    #[test]
    fn handles_identity_duplicates_and_inverses() {
        let mut rng = zkperf_ff::test_rng();
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G1Projective::random(&mut rng).to_affine();
        let mut buf = vec![
            p,
            p, // forces the tangent-doubling path
            G1Affine::identity(),
            q,
            q.neg(), // cancellation to identity
            G1Affine::identity(),
        ];
        let mut segs = vec![(0usize, buf.len())];
        let expect = reference_sum(&buf);
        let mut adder = BatchAdder::new();
        adder.reduce_segments(&mut buf, &mut segs);
        assert_eq!(segs[0].1, 1);
        assert_eq!(buf[segs[0].0].to_projective(), expect);
    }

    #[test]
    fn all_identity_segment_sums_to_identity() {
        let mut buf = vec![G1Affine::identity(); 5];
        let mut segs = vec![(0usize, 5usize)];
        let mut adder = BatchAdder::<crate::bn254::G1Params>::new();
        adder.reduce_segments(&mut buf, &mut segs);
        assert_eq!(segs[0].1, 1);
        assert!(buf[0].infinity);
    }
}
