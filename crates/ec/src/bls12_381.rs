//! BLS12-381 groups and optimal-ate pairing.

use std::sync::OnceLock;

use zkperf_ff::bls12_381::{
    Fq, Fq12, Fq12Params, Fq2, Fq2Params, Fq6, Fq6Params, Fr, BLS_X, BLS_X_IS_NEGATIVE,
};
use zkperf_ff::{BigUint, Field, Frobenius, PrimeField};

use crate::curve::{Affine, CurveParams, Projective};
use crate::pairing::{final_exponentiation, hard_exponent, miller_loop, ExtPoint};
use crate::pairing_fast::{self, G2Prepared, TwistType};

/// Marker for the BLS12-381 G1 group (`y² = x³ + 4` over `Fq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "bls12_381::G1";
    fn coeff_b() -> Fq {
        Fq::from_u64(4)
    }
    fn generator_xy() -> (Fq, Fq) {
        let fq = |s: &str| Fq::from_str_radix(s, 16).expect("valid literal");
        (
            fq("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
            fq("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"),
        )
    }
    fn glv_params() -> Option<&'static crate::glv::GlvParams<Self>> {
        static CELL: std::sync::OnceLock<Option<crate::glv::GlvParams<G1Params>>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            // Escape hatch for A/B benchmarking and debugging.
            if std::env::var("ZKPERF_NO_GLV").is_ok_and(|v| v == "1") {
                return None;
            }
            crate::glv::derive::<G1Params>()
        })
        .as_ref()
    }
}

/// BLS12-381 G1 in affine coordinates.
pub type G1Affine = Affine<G1Params>;
/// BLS12-381 G1 in Jacobian coordinates.
pub type G1Projective = Projective<G1Params>;

/// Marker for the BLS12-381 G2 group, the sextic M-twist
/// `y² = x³ + 4(1 + u)` over `Fq2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "bls12_381::G2";
    fn coeff_b() -> Fq2 {
        zkperf_ff::bls12_381::xi().mul_by_base(Fq::from_u64(4))
    }
    fn generator_xy() -> (Fq2, Fq2) {
        let fq = |s: &str| Fq::from_str_radix(s, 16).expect("valid literal");
        (
            Fq2::new(
                fq("024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
                fq("13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"),
            ),
            Fq2::new(
                fq("0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"),
                fq("0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"),
            ),
        )
    }
}

/// BLS12-381 G2 in affine coordinates.
pub type G2Affine = Affine<G2Params>;
/// BLS12-381 G2 in Jacobian coordinates.
pub type G2Projective = Projective<G2Params>;

/// Target-group values (the order-`r` subgroup of `Fq12*`).
pub type Gt = Fq12;

fn embed_fq(x: Fq) -> Fq12 {
    Fq12::from_base(Fq6::from_base(Fq2::from_base(x)))
}

/// Maps a G2 point through the M-twist isomorphism onto `E(Fq12)`:
/// `(x', y') ↦ (x'·w⁻², y'·w⁻³)` where `w⁶ = ξ`.
pub fn untwist(q: &G2Affine) -> ExtPoint<Fq12> {
    if q.infinity {
        return ExtPoint::identity();
    }
    let w = Fq12::new(Fq6::zero(), Fq6::one());
    let winv = w.inverse().expect("w != 0");
    let winv2 = winv.square();
    let winv3 = winv2 * winv;
    ExtPoint {
        x: Fq12::from_base(Fq6::from_base(q.x)) * winv2,
        y: Fq12::from_base(Fq6::from_base(q.y)) * winv3,
        infinity: false,
    }
}

/// The BLS Miller loop `f_{|x|,Q}(P)`, conjugated because the BLS parameter
/// is negative.
pub fn miller(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let (xp, yp) = (embed_fq(p.x), embed_fq(p.y));
    let q12 = untwist(q);
    let s = BigUint::from_u64(BLS_X);
    let (f, _) = miller_loop(&q12, xp, yp, &s);
    if BLS_X_IS_NEGATIVE {
        f.conjugate()
    } else {
        f
    }
}

/// The hard-part exponent `(q⁴ − q² + 1)/r`.
pub fn pairing_hard_exponent() -> BigUint {
    hard_exponent(&Fq::modulus(), &Fr::modulus())
}

/// Binary digits of `|x|`, least-significant first — the BLS parameter is
/// already low-weight, so plain bits beat a NAF recoding here.
fn ate_digits() -> &'static [i8] {
    static CELL: OnceLock<Vec<i8>> = OnceLock::new();
    CELL.get_or_init(|| pairing_fast::bit_digits(BLS_X as u128))
}

/// The line-coefficient sequence of `q` for the `|x|` Miller loop (no
/// correction lines on BLS curves).
fn ate_coeffs(q: &G2Affine) -> Vec<[Fq2; 3]> {
    pairing_fast::prepare_coeffs::<G2Params>(q, TwistType::M, ate_digits(), &[])
}

fn eval_prepared(p: &G1Affine, coeffs: &[[Fq2; 3]]) -> Fq12 {
    let f = pairing_fast::eval_lines::<Fq2Params, Fq6Params, Fq12Params>(
        coeffs,
        ate_digits(),
        0,
        p.x,
        p.y,
        TwistType::M,
    );
    if BLS_X_IS_NEGATIVE {
        f.conjugate()
    } else {
        f
    }
}

/// Precomputes the Miller-loop line coefficients of a fixed G2 point so
/// that pairings against it reduce to sparse multiplications.
///
/// When the fast path is gated off (`ZKPERF_NO_FAST_PAIRING=1` or an
/// active trace session) no lines are computed and pairings fall back to
/// the untwisted reference through the retained affine point.
pub fn prepare_g2(q: &G2Affine) -> G2Prepared<G2Params> {
    let coeffs = if pairing_fast::fast_pairing_enabled() && !q.infinity {
        Some(ate_coeffs(q))
    } else {
        None
    };
    G2Prepared { q: *q, coeffs }
}

/// `g^x` for the (negative) BLS parameter, on cyclotomic elements.
fn pow_x(g: &Fq12) -> Fq12 {
    let t = g.cyclotomic_pow_u64(BLS_X);
    if BLS_X_IS_NEGATIVE {
        t.conjugate()
    } else {
        t
    }
}

/// Final exponentiation via the BLS addition chain with cyclotomic
/// x-power exponentiations. Agrees bit-for-bit with
/// [`final_exponentiation`].
pub fn final_exponentiation_fast(f: Fq12) -> Gt {
    // Easy part, identical to the reference: f^(q⁶−1)(q²+1).
    let f1 = f.conjugate() * f.inverse().expect("pairing value non-zero");
    let r = f1.frobenius(2) * f1;
    // Hard part: (q⁴ − q² + 1)/r = m·(x+q)·(x²+q²−1) + 1 with
    // m = (x−1)²/3 — exact for the BLS parameter (x ≡ 1 mod 3), and
    // pinned against the reference exponentiation in the tests. The
    // parameter is negative, so powers of x−1 = −(|x|+1) conjugate after
    // raising to |x|+1.
    let rxm1 = r.cyclotomic_pow_u64(BLS_X + 1).conjugate();
    let a = rxm1.cyclotomic_pow_u64((BLS_X + 1) / 3).conjugate();
    let b = pow_x(&a) * a.frobenius(1);
    let c = pow_x(&pow_x(&b)) * b.frobenius(2) * b.conjugate();
    c * r
}

fn pairing_fast_path(p: &G1Affine, q: &G2Affine) -> Gt {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    final_exponentiation_fast(eval_prepared(p, &ate_coeffs(q)))
}

/// The full optimal-ate pairing `e(P, Q)`.
///
/// Runs the twisted projective fast path unless gated off via
/// `ZKPERF_NO_FAST_PAIRING=1` or an active trace session, in which case
/// the untwisted serial reference runs; both produce bit-identical values.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        pairing_fast_path(p, q)
    } else {
        final_exponentiation(miller(p, q), &pairing_hard_exponent())
    }
}

/// `e(P₁,Q₁)·…·e(Pₙ,Qₙ)` with a single shared final exponentiation.
///
/// Mirrors the MSM length contract: when the slices have different
/// lengths, the longer one is truncated to the shorter and the extra
/// entries are ignored.
pub fn multi_pairing(ps: &[G1Affine], qs: &[G2Affine]) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        let mut f = Fq12::one();
        for (p, q) in ps.iter().zip(qs) {
            if p.infinity || q.infinity {
                continue;
            }
            f *= eval_prepared(p, &ate_coeffs(q));
        }
        final_exponentiation_fast(f)
    } else {
        let mut f = Fq12::one();
        for (p, q) in ps.iter().zip(qs) {
            f *= miller(p, q);
        }
        final_exponentiation(f, &pairing_hard_exponent())
    }
}

/// [`multi_pairing`] over points prepared with [`prepare_g2`], skipping
/// the per-pairing line computation entirely. Follows the same truncation
/// contract for mismatched lengths, and falls back to the untwisted
/// reference whenever the fast path is gated off.
pub fn multi_pairing_prepared(ps: &[G1Affine], qs: &[&G2Prepared<G2Params>]) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        let mut f = Fq12::one();
        for (p, prep) in ps.iter().zip(qs) {
            if p.infinity || prep.q.infinity {
                continue;
            }
            match &prep.coeffs {
                Some(coeffs) => f *= eval_prepared(p, coeffs),
                None => f *= eval_prepared(p, &ate_coeffs(&prep.q)),
            }
        }
        final_exponentiation_fast(f)
    } else {
        let mut f = Fq12::one();
        for (p, prep) in ps.iter().zip(qs) {
            f *= miller(p, &prep.q);
        }
        final_exponentiation(f, &pairing_hard_exponent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_on_curve_and_in_subgroup() {
        let g1 = G1Affine::generator();
        assert!(g1.is_on_curve());
        assert!(g1.is_in_subgroup());
        let g2 = G2Affine::generator();
        assert!(g2.is_on_curve());
        assert!(g2.is_in_subgroup());
    }

    #[test]
    fn g1_cofactor_is_nontrivial() {
        // Unlike BN254, BLS12-381 G1 has cofactor > 1: a random curve point
        // obtained by subgroup scaling is always in the subgroup, but the
        // curve order is h·r with h ≠ 1 — spot-check h·r ≠ r via the curve
        // equation count proxy: (r+1)·G = G for subgroup points.
        let g = G1Projective::generator();
        let r_plus_1 = &Fr::modulus() + &BigUint::one();
        assert_eq!(g.mul_bigint(&r_plus_1), g);
    }

    #[test]
    fn untwisted_generator_is_on_e_fq12() {
        let q = untwist(&G2Affine::generator());
        let b = embed_fq(Fq::from_u64(4));
        assert_eq!(q.y.square(), q.x.square() * q.x + b);
    }

    #[test]
    fn pairing_is_non_degenerate_and_order_r() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert!(!e.is_one());
        assert!(e.pow(&Fr::modulus()).is_one());
    }

    #[test]
    fn pairing_is_bilinear() {
        let (a, b) = (Fr::from_u64(6), Fr::from_u64(35));
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let lhs = pairing(&(g1 * a).to_affine(), &(g2 * b).to_affine());
        let rhs = pairing(&(g1 * (a * b)).to_affine(), &G2Affine::generator());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn multi_pairing_matches_product() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let p1 = (g1 * Fr::from_u64(2)).to_affine();
        let q1 = (g2 * Fr::from_u64(9)).to_affine();
        let p2 = (g1 * Fr::from_u64(4)).to_affine();
        let q2 = G2Affine::generator();
        assert_eq!(
            multi_pairing(&[p1, p2], &[q1, q2]),
            pairing(&p1, &q1) * pairing(&p2, &q2)
        );
    }

    #[test]
    fn multi_pairing_truncates_mismatched_lengths() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let p1 = (g1 * Fr::from_u64(8)).to_affine();
        let p2 = (g1 * Fr::from_u64(10)).to_affine();
        let q1 = (g2 * Fr::from_u64(12)).to_affine();
        assert_eq!(multi_pairing(&[p1, p2], &[q1]), pairing(&p1, &q1));
        assert_eq!(multi_pairing(&[p1], &[q1, q1]), pairing(&p1, &q1));
        assert!(multi_pairing(&[], &[q1]).is_one());
    }

    #[test]
    fn bls_parameter_supports_the_cube_root_chain() {
        // The final-exp chain divides (|x|+1) by 3; that must be exact.
        assert_eq!((BLS_X + 1) % 3, 0);
    }

    #[test]
    fn fast_pairing_matches_untwisted_reference_bit_for_bit() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        for (a, b) in [(1u64, 1u64), (6, 35), (41, 43)] {
            let p = (g1 * Fr::from_u64(a)).to_affine();
            let q = (g2 * Fr::from_u64(b)).to_affine();
            let fast = pairing_fast_path(&p, &q);
            let reference = final_exponentiation(miller(&p, &q), &pairing_hard_exponent());
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn fast_final_exponentiation_matches_reference() {
        let mut rng = zkperf_ff::test_rng();
        let hard = pairing_hard_exponent();
        for _ in 0..2 {
            let f = Fq12::random(&mut rng);
            assert_eq!(final_exponentiation_fast(f), final_exponentiation(f, &hard));
        }
    }

    #[test]
    fn prepared_multi_pairing_matches_unprepared() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let ps = [
            (g1 * Fr::from_u64(14)).to_affine(),
            (g1 * Fr::from_u64(15)).to_affine(),
        ];
        let qs = [
            (g2 * Fr::from_u64(16)).to_affine(),
            (g2 * Fr::from_u64(17)).to_affine(),
        ];
        let prepared: Vec<_> = qs.iter().map(prepare_g2).collect();
        let refs: Vec<_> = prepared.iter().collect();
        assert_eq!(multi_pairing_prepared(&ps, &refs), multi_pairing(&ps, &qs));
    }
}
