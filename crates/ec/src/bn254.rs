//! BN254 (alt_bn128) groups and optimal-ate pairing.

use std::sync::OnceLock;

use zkperf_ff::bn254::{Fq, Fq12, Fq12Params, Fq2, Fq2Params, Fq6, Fq6Params, Fr, BN_X};
use zkperf_ff::{BigUint, Field, Frobenius, PrimeField};

use crate::curve::{Affine, CurveParams, Projective};
use crate::pairing::{
    final_exponentiation, hard_exponent, line_and_add, miller_loop, ExtPoint,
};
use crate::pairing_fast::{self, G2Prepared, TwistType};

/// Marker for the BN254 G1 group (`y² = x³ + 3` over `Fq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "bn254::G1";
    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }
    fn generator_xy() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
    fn glv_params() -> Option<&'static crate::glv::GlvParams<Self>> {
        static CELL: std::sync::OnceLock<Option<crate::glv::GlvParams<G1Params>>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            // Escape hatch for A/B benchmarking and debugging.
            if std::env::var("ZKPERF_NO_GLV").is_ok_and(|v| v == "1") {
                return None;
            }
            crate::glv::derive::<G1Params>()
        })
        .as_ref()
    }
}

/// BN254 G1 in affine coordinates.
pub type G1Affine = Affine<G1Params>;
/// BN254 G1 in Jacobian coordinates.
pub type G1Projective = Projective<G1Params>;

/// Marker for the BN254 G2 group, the sextic D-twist
/// `y² = x³ + 3/(9 + u)` over `Fq2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "bn254::G2";
    fn coeff_b() -> Fq2 {
        Fq2::from_base(Fq::from_u64(3)) * zkperf_ff::bn254::xi().inverse().expect("xi != 0")
    }
    fn generator_xy() -> (Fq2, Fq2) {
        // The EIP-197 G2 generator.
        let fq = |s: &str| Fq::from_str_radix(s, 10).expect("valid literal");
        (
            Fq2::new(
                fq("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
                fq("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
            ),
            Fq2::new(
                fq("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
                fq("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
            ),
        )
    }
}

/// BN254 G2 in affine coordinates.
pub type G2Affine = Affine<G2Params>;
/// BN254 G2 in Jacobian coordinates.
pub type G2Projective = Projective<G2Params>;

/// Target-group values (the order-`r` subgroup of `Fq12*`).
pub type Gt = Fq12;

fn embed_fq(x: Fq) -> Fq12 {
    Fq12::from_base(Fq6::from_base(Fq2::from_base(x)))
}

/// Maps a G2 point through the D-twist isomorphism onto `E(Fq12)`:
/// `(x', y') ↦ (x'·w², y'·w³)` where `w⁶ = ξ`.
pub fn untwist(q: &G2Affine) -> ExtPoint<Fq12> {
    if q.infinity {
        return ExtPoint::identity();
    }
    let w2 = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
    let w3 = Fq12::new(Fq6::zero(), Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()));
    ExtPoint {
        x: Fq12::from_base(Fq6::from_base(q.x)) * w2,
        y: Fq12::from_base(Fq6::from_base(q.y)) * w3,
        infinity: false,
    }
}

/// The optimal-ate Miller loop `f_{6x+2,Q}(P)` with the two Frobenius
/// correction lines.
pub fn miller(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let (xp, yp) = (embed_fq(p.x), embed_fq(p.y));
    let q12 = untwist(q);
    let s = &BigUint::from_u64(BN_X).mul_u64(6) + &BigUint::from_u64(2);
    let (mut f, mut t) = miller_loop(&q12, xp, yp, &s);
    // Correction steps with Q1 = π(Q) and Q2 = π²(Q).
    let q1 = q12.frobenius(1);
    let q2 = q12.frobenius(2);
    let (l, t1) = line_and_add(&t, &q1, xp, yp);
    f *= l;
    t = t1;
    let (l, _) = line_and_add(&t, &q2.neg(), xp, yp);
    f *= l;
    f
}

/// The hard-part exponent `(q⁴ − q² + 1)/r` (recomputed per call; cached by
/// callers that do many pairings).
pub fn pairing_hard_exponent() -> BigUint {
    hard_exponent(&Fq::modulus(), &Fr::modulus())
}

/// NAF digits of the optimal-ate loop count `6x + 2`, least-significant
/// first (the value exceeds 64 bits, hence the `u128` arithmetic).
fn ate_digits() -> &'static [i8] {
    static CELL: OnceLock<Vec<i8>> = OnceLock::new();
    CELL.get_or_init(|| pairing_fast::naf_digits(6 * BN_X as u128 + 2))
}

/// The twist-Frobenius scalars `(ξ^((q−1)/3), ξ^((q−1)/2))` applied to the
/// coordinates of ψ(Q).
fn twist_frob_coeffs() -> &'static (Fq2, Fq2) {
    static CELL: OnceLock<(Fq2, Fq2)> = OnceLock::new();
    CELL.get_or_init(|| {
        let qm1 = Fq::modulus()
            .checked_sub(&BigUint::one())
            .expect("q >= 1");
        let exp = |d: u64| {
            let (e, rem) = qm1.divrem_u64(d);
            assert_eq!(rem, 0, "q - 1 not divisible by {d}");
            e
        };
        let xi = zkperf_ff::bn254::xi();
        (xi.pow(&exp(3)), xi.pow(&exp(2)))
    })
}

/// The image of the q-power Frobenius endomorphism on the twist,
/// ψ⁻¹ ∘ π ∘ ψ.
fn mul_by_char(q: &G2Affine) -> G2Affine {
    let (cx, cy) = *twist_frob_coeffs();
    G2Affine::new_unchecked(q.x.frobenius(1) * cx, q.y.frobenius(1) * cy)
}

/// The full line-coefficient sequence of `q`: the `6x + 2` NAF loop plus
/// the two Frobenius correction additions with `π(Q)` and `−π²(Q)`.
fn ate_coeffs(q: &G2Affine) -> Vec<[Fq2; 3]> {
    let q1 = mul_by_char(q);
    let q2 = mul_by_char(&q1);
    let corrections = [(q1.x, q1.y), (q2.x, -q2.y)];
    pairing_fast::prepare_coeffs::<G2Params>(q, TwistType::D, ate_digits(), &corrections)
}

fn eval_prepared(p: &G1Affine, coeffs: &[[Fq2; 3]]) -> Fq12 {
    pairing_fast::eval_lines::<Fq2Params, Fq6Params, Fq12Params>(
        coeffs,
        ate_digits(),
        2,
        p.x,
        p.y,
        TwistType::D,
    )
}

/// Precomputes the Miller-loop line coefficients of a fixed G2 point so
/// that pairings against it reduce to sparse multiplications.
///
/// When the fast path is gated off (`ZKPERF_NO_FAST_PAIRING=1` or an
/// active trace session) no lines are computed and pairings fall back to
/// the untwisted reference through the retained affine point.
pub fn prepare_g2(q: &G2Affine) -> G2Prepared<G2Params> {
    let coeffs = if pairing_fast::fast_pairing_enabled() && !q.infinity {
        Some(ate_coeffs(q))
    } else {
        None
    };
    G2Prepared { q: *q, coeffs }
}

/// Final exponentiation via the Frobenius decomposition of the hard part
/// and cyclotomic x-power chains — three exponentiations by the BN
/// parameter instead of a full 2790-bit square-and-multiply. Agrees
/// bit-for-bit with [`final_exponentiation`].
pub fn final_exponentiation_fast(f: Fq12) -> Gt {
    // Easy part, identical to the reference: f^(q⁶−1)(q²+1).
    let f1 = f.conjugate() * f.inverse().expect("pairing value non-zero");
    let r = f1.frobenius(2) * f1;
    // Hard part: (q⁴ − q² + 1)/r written in base q with x-polynomial
    // digits d = −λ₀ − λ₁·q + (6x²+1)·q² + q³ where
    // λ₀ = 36x³+30x²+18x+2 and λ₁ = 36x³+18x²+12x−1 (exactness is pinned
    // against the reference exponentiation in the tests).
    let rx = r.cyclotomic_pow_u64(BN_X);
    let r3x = rx.cyclotomic_square() * rx;
    let r6x = r3x.cyclotomic_square();
    let r6x2 = r6x.cyclotomic_pow_u64(BN_X);
    let r12x2 = r6x2.cyclotomic_square();
    let r12x3 = r12x2.cyclotomic_pow_u64(BN_X);
    let r36x3 = r12x3.cyclotomic_square() * r12x3;
    let r18x2 = r6x2 * r12x2;
    let r12x = r6x.cyclotomic_square();
    let r18x = r12x * r6x;
    let lam1 = r36x3 * r18x2 * r12x * r.conjugate();
    let lam0 = r36x3 * r18x2 * r12x2 * r18x * r.cyclotomic_square();
    lam0.conjugate()
        * lam1.conjugate().frobenius(1)
        * (r6x2 * r).frobenius(2)
        * r.frobenius(3)
}

fn pairing_fast_path(p: &G1Affine, q: &G2Affine) -> Gt {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    final_exponentiation_fast(eval_prepared(p, &ate_coeffs(q)))
}

/// The full optimal-ate pairing `e(P, Q)`.
///
/// Runs the twisted projective fast path unless gated off via
/// `ZKPERF_NO_FAST_PAIRING=1` or an active trace session, in which case
/// the untwisted serial reference runs; both produce bit-identical values.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        pairing_fast_path(p, q)
    } else {
        final_exponentiation(miller(p, q), &pairing_hard_exponent())
    }
}

/// `e(P₁,Q₁)·…·e(Pₙ,Qₙ)` with a single shared final exponentiation.
///
/// Mirrors the MSM length contract: when the slices have different
/// lengths, the longer one is truncated to the shorter and the extra
/// entries are ignored.
pub fn multi_pairing(ps: &[G1Affine], qs: &[G2Affine]) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        let mut f = Fq12::one();
        for (p, q) in ps.iter().zip(qs) {
            if p.infinity || q.infinity {
                continue;
            }
            f *= eval_prepared(p, &ate_coeffs(q));
        }
        final_exponentiation_fast(f)
    } else {
        let mut f = Fq12::one();
        for (p, q) in ps.iter().zip(qs) {
            f *= miller(p, q);
        }
        final_exponentiation(f, &pairing_hard_exponent())
    }
}

/// [`multi_pairing`] over points prepared with [`prepare_g2`], skipping
/// the per-pairing line computation entirely. Follows the same truncation
/// contract for mismatched lengths, and falls back to the untwisted
/// reference whenever the fast path is gated off — prepared points carry
/// their affine original for exactly that purpose.
pub fn multi_pairing_prepared(ps: &[G1Affine], qs: &[&G2Prepared<G2Params>]) -> Gt {
    if pairing_fast::fast_pairing_enabled() {
        let mut f = Fq12::one();
        for (p, prep) in ps.iter().zip(qs) {
            if p.infinity || prep.q.infinity {
                continue;
            }
            match &prep.coeffs {
                Some(coeffs) => f *= eval_prepared(p, coeffs),
                None => f *= eval_prepared(p, &ate_coeffs(&prep.q)),
            }
        }
        final_exponentiation_fast(f)
    } else {
        let mut f = Fq12::one();
        for (p, prep) in ps.iter().zip(qs) {
            f *= miller(p, &prep.q);
        }
        final_exponentiation(f, &pairing_hard_exponent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_on_curve_and_in_subgroup() {
        let g1 = G1Affine::generator();
        assert!(g1.is_on_curve());
        assert!(g1.is_in_subgroup());
        let g2 = G2Affine::generator();
        assert!(g2.is_on_curve());
        assert!(g2.is_in_subgroup());
    }

    #[test]
    fn untwisted_generator_is_on_e_fq12() {
        let q = untwist(&G2Affine::generator());
        let b = embed_fq(Fq::from_u64(3));
        assert_eq!(q.y.square(), q.x.square() * q.x + b);
    }

    #[test]
    fn pairing_is_non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert!(!e.is_one());
        assert!(!e.is_zero());
        // e has order dividing r.
        assert!(e.pow(&Fr::modulus()).is_one());
    }

    #[test]
    fn pairing_of_identity_is_one() {
        assert!(pairing(&G1Affine::identity(), &G2Affine::generator()).is_one());
        assert!(pairing(&G1Affine::generator(), &G2Affine::identity()).is_one());
    }

    #[test]
    fn pairing_is_bilinear() {
        let (a, b) = (Fr::from_u64(127), Fr::from_u64(911));
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let lhs = pairing(&(g1 * a).to_affine(), &(g2 * b).to_affine());
        let rhs = pairing(&G1Affine::generator(), &G2Affine::generator())
            .pow(&(a * b).to_biguint());
        assert_eq!(lhs, rhs);
        // And via moving the scalar across slots.
        let mid = pairing(&(g1 * (a * b)).to_affine(), &G2Affine::generator());
        assert_eq!(lhs, mid);
    }

    #[test]
    fn multi_pairing_matches_product_of_pairings() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let p1 = (g1 * Fr::from_u64(3)).to_affine();
        let p2 = (g1 * Fr::from_u64(5)).to_affine();
        let q1 = (g2 * Fr::from_u64(7)).to_affine();
        let q2 = (g2 * Fr::from_u64(11)).to_affine();
        let combined = multi_pairing(&[p1, p2], &[q1, q2]);
        assert_eq!(combined, pairing(&p1, &q1) * pairing(&p2, &q2));
    }

    #[test]
    fn multi_pairing_truncates_mismatched_lengths() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let p1 = (g1 * Fr::from_u64(13)).to_affine();
        let p2 = (g1 * Fr::from_u64(17)).to_affine();
        let q1 = (g2 * Fr::from_u64(19)).to_affine();
        // Extra G1 entries beyond the shorter G2 slice are ignored.
        assert_eq!(multi_pairing(&[p1, p2], &[q1]), pairing(&p1, &q1));
        assert_eq!(multi_pairing(&[p1], &[q1, q1]), pairing(&p1, &q1));
        assert!(multi_pairing(&[p1], &[]).is_one());
    }

    #[test]
    fn mul_by_char_is_the_frobenius_endomorphism_on_the_twist() {
        let q = G2Affine::generator();
        let q1 = mul_by_char(&q);
        assert!(q1.is_on_curve());
        // ψ satisfies ψ²(Q) − [t]ψ(Q) + [q]Q = 0; spot-check the cheap
        // consequence that the untwisted image matches π(untwist(Q)).
        let lifted = untwist(&q1);
        let direct = untwist(&q).frobenius(1);
        assert_eq!(lifted.x, direct.x);
        assert_eq!(lifted.y, direct.y);
    }

    #[test]
    fn fast_pairing_matches_untwisted_reference_bit_for_bit() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        for (a, b) in [(1u64, 1u64), (127, 911), (5, 7)] {
            let p = (g1 * Fr::from_u64(a)).to_affine();
            let q = (g2 * Fr::from_u64(b)).to_affine();
            let fast = pairing_fast_path(&p, &q);
            let reference = final_exponentiation(miller(&p, &q), &pairing_hard_exponent());
            assert_eq!(fast, reference);
        }
        // Identity inputs agree too.
        assert_eq!(
            pairing_fast_path(&G1Affine::identity(), &G2Affine::generator()),
            final_exponentiation(
                miller(&G1Affine::identity(), &G2Affine::generator()),
                &pairing_hard_exponent()
            )
        );
    }

    #[test]
    fn fast_final_exponentiation_matches_reference() {
        let mut rng = zkperf_ff::test_rng();
        let hard = pairing_hard_exponent();
        for _ in 0..4 {
            let f = Fq12::random(&mut rng);
            assert_eq!(final_exponentiation_fast(f), final_exponentiation(f, &hard));
        }
    }

    #[test]
    fn prepared_multi_pairing_matches_unprepared() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let ps = [
            (g1 * Fr::from_u64(23)).to_affine(),
            (g1 * Fr::from_u64(29)).to_affine(),
        ];
        let qs = [
            (g2 * Fr::from_u64(31)).to_affine(),
            (g2 * Fr::from_u64(37)).to_affine(),
        ];
        let prepared: Vec<_> = qs.iter().map(prepare_g2).collect();
        let refs: Vec<_> = prepared.iter().collect();
        assert_eq!(multi_pairing_prepared(&ps, &refs), multi_pairing(&ps, &qs));
        // Truncation contract holds on the prepared path as well.
        assert_eq!(
            multi_pairing_prepared(&ps, &refs[..1]),
            pairing(&ps[0], &qs[0])
        );
    }
}
