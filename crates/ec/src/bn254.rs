//! BN254 (alt_bn128) groups and optimal-ate pairing.

use zkperf_ff::bn254::{Fq, Fq12, Fq2, Fq6, Fr, BN_X};
use zkperf_ff::{BigUint, Field, PrimeField};

use crate::curve::{Affine, CurveParams, Projective};
use crate::pairing::{
    final_exponentiation, hard_exponent, line_and_add, miller_loop, ExtPoint,
};

/// Marker for the BN254 G1 group (`y² = x³ + 3` over `Fq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "bn254::G1";
    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }
    fn generator_xy() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
    fn glv_params() -> Option<&'static crate::glv::GlvParams<Self>> {
        static CELL: std::sync::OnceLock<Option<crate::glv::GlvParams<G1Params>>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            // Escape hatch for A/B benchmarking and debugging.
            if std::env::var("ZKPERF_NO_GLV").is_ok_and(|v| v == "1") {
                return None;
            }
            crate::glv::derive::<G1Params>()
        })
        .as_ref()
    }
}

/// BN254 G1 in affine coordinates.
pub type G1Affine = Affine<G1Params>;
/// BN254 G1 in Jacobian coordinates.
pub type G1Projective = Projective<G1Params>;

/// Marker for the BN254 G2 group, the sextic D-twist
/// `y² = x³ + 3/(9 + u)` over `Fq2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "bn254::G2";
    fn coeff_b() -> Fq2 {
        Fq2::from_base(Fq::from_u64(3)) * zkperf_ff::bn254::xi().inverse().expect("xi != 0")
    }
    fn generator_xy() -> (Fq2, Fq2) {
        // The EIP-197 G2 generator.
        let fq = |s: &str| Fq::from_str_radix(s, 10).expect("valid literal");
        (
            Fq2::new(
                fq("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
                fq("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
            ),
            Fq2::new(
                fq("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
                fq("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
            ),
        )
    }
}

/// BN254 G2 in affine coordinates.
pub type G2Affine = Affine<G2Params>;
/// BN254 G2 in Jacobian coordinates.
pub type G2Projective = Projective<G2Params>;

/// Target-group values (the order-`r` subgroup of `Fq12*`).
pub type Gt = Fq12;

fn embed_fq(x: Fq) -> Fq12 {
    Fq12::from_base(Fq6::from_base(Fq2::from_base(x)))
}

/// Maps a G2 point through the D-twist isomorphism onto `E(Fq12)`:
/// `(x', y') ↦ (x'·w², y'·w³)` where `w⁶ = ξ`.
pub fn untwist(q: &G2Affine) -> ExtPoint<Fq12> {
    if q.infinity {
        return ExtPoint::identity();
    }
    let w2 = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
    let w3 = Fq12::new(Fq6::zero(), Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()));
    ExtPoint {
        x: Fq12::from_base(Fq6::from_base(q.x)) * w2,
        y: Fq12::from_base(Fq6::from_base(q.y)) * w3,
        infinity: false,
    }
}

/// The optimal-ate Miller loop `f_{6x+2,Q}(P)` with the two Frobenius
/// correction lines.
pub fn miller(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let (xp, yp) = (embed_fq(p.x), embed_fq(p.y));
    let q12 = untwist(q);
    let s = &BigUint::from_u64(BN_X).mul_u64(6) + &BigUint::from_u64(2);
    let (mut f, mut t) = miller_loop(&q12, xp, yp, &s);
    // Correction steps with Q1 = π(Q) and Q2 = π²(Q).
    let q1 = q12.frobenius(1);
    let q2 = q12.frobenius(2);
    let (l, t1) = line_and_add(&t, &q1, xp, yp);
    f *= l;
    t = t1;
    let (l, _) = line_and_add(&t, &q2.neg(), xp, yp);
    f *= l;
    f
}

/// The hard-part exponent `(q⁴ − q² + 1)/r` (recomputed per call; cached by
/// callers that do many pairings).
pub fn pairing_hard_exponent() -> BigUint {
    hard_exponent(&Fq::modulus(), &Fr::modulus())
}

/// The full optimal-ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(miller(p, q), &pairing_hard_exponent())
}

/// `e(P₁,Q₁)·…·e(Pₙ,Qₙ)` with a single shared final exponentiation.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn multi_pairing(ps: &[G1Affine], qs: &[G2Affine]) -> Gt {
    assert_eq!(ps.len(), qs.len(), "mismatched pairing inputs");
    let mut f = Fq12::one();
    for (p, q) in ps.iter().zip(qs) {
        f *= miller(p, q);
    }
    final_exponentiation(f, &pairing_hard_exponent())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_on_curve_and_in_subgroup() {
        let g1 = G1Affine::generator();
        assert!(g1.is_on_curve());
        assert!(g1.is_in_subgroup());
        let g2 = G2Affine::generator();
        assert!(g2.is_on_curve());
        assert!(g2.is_in_subgroup());
    }

    #[test]
    fn untwisted_generator_is_on_e_fq12() {
        let q = untwist(&G2Affine::generator());
        let b = embed_fq(Fq::from_u64(3));
        assert_eq!(q.y.square(), q.x.square() * q.x + b);
    }

    #[test]
    fn pairing_is_non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert!(!e.is_one());
        assert!(!e.is_zero());
        // e has order dividing r.
        assert!(e.pow(&Fr::modulus()).is_one());
    }

    #[test]
    fn pairing_of_identity_is_one() {
        assert!(pairing(&G1Affine::identity(), &G2Affine::generator()).is_one());
        assert!(pairing(&G1Affine::generator(), &G2Affine::identity()).is_one());
    }

    #[test]
    fn pairing_is_bilinear() {
        let (a, b) = (Fr::from_u64(127), Fr::from_u64(911));
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let lhs = pairing(&(g1 * a).to_affine(), &(g2 * b).to_affine());
        let rhs = pairing(&G1Affine::generator(), &G2Affine::generator())
            .pow(&(a * b).to_biguint());
        assert_eq!(lhs, rhs);
        // And via moving the scalar across slots.
        let mid = pairing(&(g1 * (a * b)).to_affine(), &G2Affine::generator());
        assert_eq!(lhs, mid);
    }

    #[test]
    fn multi_pairing_matches_product_of_pairings() {
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let p1 = (g1 * Fr::from_u64(3)).to_affine();
        let p2 = (g1 * Fr::from_u64(5)).to_affine();
        let q1 = (g2 * Fr::from_u64(7)).to_affine();
        let q2 = (g2 * Fr::from_u64(11)).to_affine();
        let combined = multi_pairing(&[p1, p2], &[q1, q2]);
        assert_eq!(combined, pairing(&p1, &q1) * pairing(&p2, &q2));
    }
}
