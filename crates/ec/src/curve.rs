//! Generic short-Weierstrass curve groups `y² = x³ + b` (the `a = 0` family,
//! which covers both BN254 and BLS12-381) in Jacobian coordinates.

use std::fmt;

use rand::Rng;
use zkperf_trace as trace;

use zkperf_ff::{BigUint, Field, PrimeField};

/// Compile-time description of a curve (or twist) group.
///
/// Implementors are zero-sized markers; see the `bn254` / `bls12_381`
/// modules for the four groups of the suite.
pub trait CurveParams:
    Copy + Clone + fmt::Debug + PartialEq + Eq + std::hash::Hash + Send + Sync + 'static
{
    /// Field the coordinates live in (`Fq` for G1, `Fq2` for G2).
    type Base: Field;
    /// The scalar field of the (prime-order subgroup of the) group.
    type Scalar: PrimeField;
    /// Display name.
    const NAME: &'static str;
    /// The constant term `b` of `y² = x³ + b`.
    fn coeff_b() -> Self::Base;
    /// Affine coordinates of the standard subgroup generator.
    fn generator_xy() -> (Self::Base, Self::Base);
    /// GLV endomorphism parameters, for groups whose base field carries a
    /// cube root of unity (BN254 / BLS12-381 G1). `None` (the default)
    /// keeps every scalar kernel on the generic path.
    ///
    /// Implementations derive the parameters once per process via
    /// [`crate::glv::derive`] and must return `None` rather than
    /// unverified constants.
    fn glv_params() -> Option<&'static crate::glv::GlvParams<Self>> {
        None
    }
}

/// An affine point (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affine<C: CurveParams> {
    /// x-coordinate (meaningless when `infinity`).
    pub x: C::Base,
    /// y-coordinate (meaningless when `infinity`).
    pub y: C::Base,
    /// Marker for the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` representing the
/// affine point `(X/Z², Y/Z³)`; `Z = 0` is the identity.
#[derive(Clone, Copy)]
pub struct Projective<C: CurveParams> {
    x: C::Base,
    y: C::Base,
    z: C::Base,
}

impl<C: CurveParams> Affine<C> {
    /// Constructs from affine coordinates without checking curve membership;
    /// use [`is_on_curve`](Self::is_on_curve) to validate untrusted data.
    pub fn new_unchecked(x: C::Base, y: C::Base) -> Self {
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// The group identity.
    pub fn identity() -> Self {
        Affine {
            x: C::Base::zero(),
            y: C::Base::one(),
            infinity: true,
        }
    }

    /// The standard subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator_xy();
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// `true` iff the point satisfies the curve equation (identity counts).
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + C::coeff_b()
    }

    /// `true` iff multiplying by the subgroup order gives the identity.
    ///
    /// O(log r) group operations; intended for validating untrusted inputs
    /// and tests, not hot paths.
    pub fn is_in_subgroup(&self) -> bool {
        self.to_projective().mul_bigint(&order_scalar_minus_zero::<C>()).is_identity()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::Base::one(),
            }
        }
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        Affine {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }
}

fn order_scalar_minus_zero<C: CurveParams>() -> BigUint {
    C::Scalar::modulus()
}

impl<C: CurveParams> Projective<C> {
    /// The group identity.
    pub fn identity() -> Self {
        Projective {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
        }
    }

    /// The standard subgroup generator.
    pub fn generator() -> Self {
        Affine::<C>::generator().to_projective()
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`dbl-2009-l` for `a = 0`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let r = s2 - s1;
        let hh = h.square();
        let hhh = h * hh;
        let v = u1 * hh;
        let x3 = r.square() - hhh - v.double();
        let y3 = r * (v - x3) - s1 * hhh;
        let z3 = self.z * other.z * h;
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`Z₂ = 1`), the MSM workhorse.
    pub fn add_mixed(&self, other: &Affine<C>) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let r = s2 - self.y;
        let hh = h.square();
        let hhh = h * hh;
        let v = self.x * hh;
        let x3 = r.square() - hhh - v.double();
        let y3 = r * (v - x3) - self.y * hhh;
        let z3 = self.z * h;
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        Projective {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.inverse().expect("non-identity has z != 0");
        let zinv2 = zinv.square();
        Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Batch conversion to affine using Montgomery's simultaneous-inversion
    /// trick: one inversion plus 3 multiplications per point.
    pub fn batch_to_affine(points: &[Self]) -> Vec<Affine<C>> {
        let mut prefix = Vec::with_capacity(points.len());
        let mut acc = C::Base::one();
        for p in points {
            prefix.push(acc);
            if !p.is_identity() {
                acc *= p.z;
            }
        }
        let mut inv = acc.inverse().unwrap_or_else(C::Base::one);
        let mut out = vec![Affine::identity(); points.len()];
        for i in (0..points.len()).rev() {
            let p = &points[i];
            if p.is_identity() {
                continue;
            }
            let zinv = prefix[i] * inv;
            inv *= p.z;
            let zinv2 = zinv.square();
            out[i] = Affine {
                x: p.x * zinv2,
                y: p.y * zinv2 * zinv,
                infinity: false,
            };
        }
        out
    }

    /// Scalar multiplication by an arbitrary-width integer (double-and-add).
    pub fn mul_bigint(&self, exp: &BigUint) -> Self {
        let _g = trace::region_profile("scalar_mul");
        let mut acc = Self::identity();
        for i in (0..exp.bits()).rev() {
            acc = acc.double();
            trace::branch(0x2001, exp.bit(i));
            if exp.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Scalar multiplication with a fixed 4-bit window: ~w× fewer
    /// additions than double-and-add at the cost of a 15-entry table.
    /// Used by ceremony contributions, which re-scale whole key sections.
    ///
    /// When the group exposes [`CurveParams::glv_params`] and the exponent
    /// is a canonical scalar (`exp < r`), the multiplication runs as a
    /// Straus double-scalar pass over the GLV half-width components —
    /// half the doubling chain for the same table cost. The GLV route
    /// assumes the point lies in the prime-order subgroup (the standing
    /// invariant of points carrying `Scalar = Fr`); out-of-range exponents
    /// fall back to the generic window loop.
    pub fn mul_windowed(&self, exp: &BigUint) -> Self {
        const W: usize = 4;
        if exp.is_zero() {
            return Self::identity();
        }
        // Instrumented runs stay on the generic window loop: the
        // characterization suite pins that op stream, and the lazy GLV
        // parameter derivation must not execute inside a traced region.
        if !trace::is_active() {
            if let Some(glv) = C::glv_params() {
                if exp < &C::Scalar::modulus() {
                    return self.mul_windowed_glv(glv, exp);
                }
            }
        }
        let _g = trace::region_profile("scalar_mul");
        // table[d] = d · P for d in 1..16
        let mut table = [Self::identity(); (1 << W) - 1];
        let mut acc = *self;
        for slot in table.iter_mut() {
            *slot = acc;
            acc = acc.add(self);
        }
        let digits = exp.bits().div_ceil(W);
        let mut out = Self::identity();
        for d in (0..digits).rev() {
            for _ in 0..W {
                out = out.double();
            }
            let mut digit = 0usize;
            for b in 0..W {
                if exp.bit(d * W + b) {
                    digit |= 1 << b;
                }
            }
            trace::branch(0x2002, digit != 0);
            if digit != 0 {
                out = out.add(&table[digit - 1]);
            }
        }
        out
    }

    /// Straus simultaneous multiplication over the GLV split
    /// `k = k1 + k2·λ`: one shared ~⌈half_bits⌉-deep doubling chain with
    /// two 4-bit window tables (for `±P` and `±φ(P)`).
    fn mul_windowed_glv(&self, glv: &crate::glv::GlvParams<C>, exp: &BigUint) -> Self {
        const W: usize = 4;
        let _g = trace::region_profile("scalar_mul");
        let d = glv.decompose(&C::Scalar::from_biguint(exp));
        let p_aff = self.to_affine();
        let endo_aff = glv.endo(&p_aff);
        let base1 = if d.k1.neg { p_aff.neg() } else { p_aff }.to_projective();
        let base2 = if d.k2.neg { endo_aff.neg() } else { endo_aff }.to_projective();
        // table[t][digit - 1] = digit · base_t for digit in 1..16.
        let mut tables = [[Self::identity(); (1 << W) - 1]; 2];
        for (table, base) in tables.iter_mut().zip([base1, base2]) {
            let mut acc = base;
            for slot in table.iter_mut() {
                *slot = acc;
                acc = acc.add(&base);
            }
        }
        let extract = |limbs: &[u64; crate::glv::HALF_LIMBS], lo: usize| -> usize {
            let (limb, off) = (lo / 64, lo % 64);
            if limb >= limbs.len() {
                return 0;
            }
            let mut v = limbs[limb] >> off;
            if off + W > 64 && limb + 1 < limbs.len() {
                v |= limbs[limb + 1] << (64 - off);
            }
            (v as usize) & ((1 << W) - 1)
        };
        let digits = glv.half_bits().div_ceil(W);
        let mut out = Self::identity();
        for pos in (0..digits).rev() {
            for _ in 0..W {
                out = out.double();
            }
            for (table, limbs) in tables.iter().zip([&d.k1.limbs, &d.k2.limbs]) {
                let digit = extract(limbs, pos * W);
                trace::branch(0x2002, digit != 0);
                if digit != 0 {
                    out = out.add(&table[digit - 1]);
                }
            }
        }
        out
    }

    /// A uniformly random subgroup element (`generator × random scalar`).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generator() * C::Scalar::random(rng)
    }
}

impl<C: CurveParams> std::ops::Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}

impl<C: CurveParams> std::ops::AddAssign for Projective<C> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<C: CurveParams> std::ops::Sub for Projective<C> {
    type Output = Self;
    // Group subtraction genuinely is add-the-negation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Self) -> Self {
        self + rhs.neg()
    }
}

impl<C: CurveParams> std::ops::Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}

/// Scalar multiplication by a scalar-field element.
impl<C: CurveParams> std::ops::Mul<C::Scalar> for Projective<C> {
    type Output = Self;
    fn mul(self, s: C::Scalar) -> Self {
        self.mul_bigint(&s.to_biguint())
    }
}

impl<C: CurveParams> PartialEq for Projective<C> {
    /// Equality of the represented affine points (coordinate classes).
    fn eq(&self, other: &Self) -> bool {
        if self.is_identity() || other.is_identity() {
            return self.is_identity() == other.is_identity();
        }
        // (X1/Z1², Y1/Z1³) == (X2/Z2², Y2/Z2³), cross-multiplied.
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1
            && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}

impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> fmt::Debug for Projective<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            write!(f, "{}(infinity)", C::NAME)
        } else {
            let a = self.to_affine();
            write!(f, "{}({:?}, {:?})", C::NAME, a.x, a.y)
        }
    }
}

impl<C: CurveParams> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}(infinity)", C::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", C::NAME, self.x, self.y)
        }
    }
}

impl<C: CurveParams> Default for Affine<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> From<Affine<C>> for Projective<C> {
    fn from(a: Affine<C>) -> Self {
        a.to_projective()
    }
}

impl<C: CurveParams> From<Projective<C>> for Affine<C> {
    fn from(p: Projective<C>) -> Self {
        p.to_affine()
    }
}

#[cfg(test)]
mod tests {
    use crate::bn254::{G1Projective, G2Projective};
    use zkperf_ff::{BigUint, Field, PrimeField};

    #[test]
    fn windowed_mul_matches_double_and_add() {
        type Fr = zkperf_ff::bn254::Fr;
        let g = G1Projective::generator();
        let mut rng = zkperf_ff::test_rng();
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(15),
            BigUint::from_u64(16),
            Fr::random(&mut rng).to_biguint(),
        ] {
            assert_eq!(g.mul_windowed(&e), g.mul_bigint(&e), "exp {e}");
        }
        let h = G2Projective::generator();
        let e = Fr::random(&mut rng).to_biguint();
        assert_eq!(h.mul_windowed(&e), h.mul_bigint(&e));
    }

    #[test]
    fn projective_equality_ignores_z_scaling() {
        let g = G1Projective::generator();
        let doubled_rep = g + g - g; // same point, different (X:Y:Z)
        assert_eq!(doubled_rep, g);
        assert_ne!(g.double(), g);
        assert_eq!(
            G1Projective::identity(),
            G1Projective::identity().double()
        );
    }
}
