//! The [`Engine`] abstraction: everything Groth16 needs from a pairing
//! curve, implemented by [`Bn254`] and [`Bls12_381`].

use std::fmt::Debug;
use std::hash::Hash;

use zkperf_ff::{Field, PrimeField};

use crate::curve::{Affine, CurveParams};

/// A pairing-friendly curve suite: scalar field, two source groups, target
/// group, and the pairing itself.
///
/// This trait is sealed in spirit — the suite ships exactly the two engines
/// the paper evaluates — but is left open so downstream users can plug in
/// further curves.
pub trait Engine: Copy + Clone + Debug + PartialEq + Eq + Hash + Send + Sync + 'static {
    /// The scalar field (circuit values and witnesses).
    type Fr: PrimeField;
    /// G1 curve parameters.
    type G1: CurveParams<Scalar = Self::Fr>;
    /// G2 curve parameters.
    type G2: CurveParams<Scalar = Self::Fr>;
    /// The target group (multiplicative subgroup of `Fq12`).
    type Gt: Field;
    /// A G2 point with its Miller-loop line coefficients precomputed.
    type G2Prepared: Clone + Debug + PartialEq + Eq + Send + Sync + 'static;
    /// Display name matching the paper's terminology.
    const NAME: &'static str;

    /// The bilinear pairing `e(P, Q)`.
    fn pairing(p: &Affine<Self::G1>, q: &Affine<Self::G2>) -> Self::Gt;

    /// `Π e(Pᵢ, Qᵢ)` with one shared final exponentiation. Mismatched
    /// slice lengths truncate to the shorter slice (the MSM contract).
    fn multi_pairing(ps: &[Affine<Self::G1>], qs: &[Affine<Self::G2>]) -> Self::Gt;

    /// Precomputes the Miller-loop lines of a fixed G2 point, amortizing
    /// them across every future pairing against that point.
    fn prepare_g2(q: &Affine<Self::G2>) -> Self::G2Prepared;

    /// [`Engine::multi_pairing`] over prepared G2 points (same truncation
    /// contract).
    fn multi_pairing_prepared(ps: &[Affine<Self::G1>], qs: &[&Self::G2Prepared]) -> Self::Gt;
}

/// The BN254 engine (the paper's "BN128", circom/snarkjs default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bn254;

impl Engine for Bn254 {
    type Fr = zkperf_ff::bn254::Fr;
    type G1 = crate::bn254::G1Params;
    type G2 = crate::bn254::G2Params;
    type Gt = zkperf_ff::bn254::Fq12;
    type G2Prepared = crate::pairing_fast::G2Prepared<crate::bn254::G2Params>;
    const NAME: &'static str = "BN128";

    fn pairing(p: &Affine<Self::G1>, q: &Affine<Self::G2>) -> Self::Gt {
        crate::bn254::pairing(p, q)
    }

    fn multi_pairing(ps: &[Affine<Self::G1>], qs: &[Affine<Self::G2>]) -> Self::Gt {
        crate::bn254::multi_pairing(ps, qs)
    }

    fn prepare_g2(q: &Affine<Self::G2>) -> Self::G2Prepared {
        crate::bn254::prepare_g2(q)
    }

    fn multi_pairing_prepared(ps: &[Affine<Self::G1>], qs: &[&Self::G2Prepared]) -> Self::Gt {
        crate::bn254::multi_pairing_prepared(ps, qs)
    }
}

/// The BLS12-381 engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bls12_381;

impl Engine for Bls12_381 {
    type Fr = zkperf_ff::bls12_381::Fr;
    type G1 = crate::bls12_381::G1Params;
    type G2 = crate::bls12_381::G2Params;
    type Gt = zkperf_ff::bls12_381::Fq12;
    type G2Prepared = crate::pairing_fast::G2Prepared<crate::bls12_381::G2Params>;
    const NAME: &'static str = "BLS12-381";

    fn pairing(p: &Affine<Self::G1>, q: &Affine<Self::G2>) -> Self::Gt {
        crate::bls12_381::pairing(p, q)
    }

    fn multi_pairing(ps: &[Affine<Self::G1>], qs: &[Affine<Self::G2>]) -> Self::Gt {
        crate::bls12_381::multi_pairing(ps, qs)
    }

    fn prepare_g2(q: &Affine<Self::G2>) -> Self::G2Prepared {
        crate::bls12_381::prepare_g2(q)
    }

    fn multi_pairing_prepared(ps: &[Affine<Self::G1>], qs: &[&Self::G2Prepared]) -> Self::Gt {
        crate::bls12_381::multi_pairing_prepared(ps, qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Projective;

    fn engine_bilinearity<E: Engine>() {
        let a = E::Fr::from_u64(21);
        let b = E::Fr::from_u64(2);
        let g1 = Projective::<E::G1>::generator();
        let g2 = Projective::<E::G2>::generator();
        let lhs = E::pairing(&(g1 * a).to_affine(), &(g2 * b).to_affine());
        let rhs = E::pairing(&(g1 * (a * b)).to_affine(), &g2.to_affine());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn both_engines_are_bilinear_through_the_trait() {
        engine_bilinearity::<Bn254>();
        engine_bilinearity::<Bls12_381>();
    }

    #[test]
    fn engine_names_match_paper_terminology() {
        assert_eq!(Bn254::NAME, "BN128");
        assert_eq!(Bls12_381::NAME, "BLS12-381");
    }
}
