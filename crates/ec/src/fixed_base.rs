//! Windowed fixed-base multi-exponentiation.
//!
//! The Groth16 `setup` stage multiplies one generator by tens of thousands
//! of scalars; a per-window lookup table turns each 256-bit multiplication
//! into a handful of additions. This is the same optimization snarkjs uses
//! and is why setup is table-building + streaming adds rather than
//! doublings.
//!
//! The batch path ([`FixedBaseTable::mul_batch`]) goes further: instead of
//! accumulating each scalar's window entries in Jacobian coordinates, it
//! gathers the table hits for a chunk of scalars into one flat buffer and
//! collapses every scalar's segment with [`crate::batch_add::BatchAdder`] —
//! shared-inversion affine additions, with results landing directly in
//! affine form (no trailing `batch_to_affine` pass). One window table,
//! built once per base, serves every batch; Groth16 setup reuses a single
//! table across all six of its tau-power query vectors.

use zkperf_ff::PrimeField;
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::batch_add::BatchAdder;
use crate::curve::{Affine, CurveParams, Projective};

/// Precomputed window tables for one base point.
///
/// Scalars are recoded into signed `c`-bit digits (as in [`crate::msm`]),
/// so each window row only stores the positive multiples `1·B .. 2^(c−1)·B`
/// — half the table of an unsigned window for the same width — and negative
/// digits negate the looked-up point on the fly.
///
/// # Examples
///
/// ```
/// use zkperf_ec::bn254::{G1Affine, G1Projective};
/// use zkperf_ec::FixedBaseTable;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// let table = FixedBaseTable::new(&G1Projective::generator());
/// let s = Fr::from_u64(123456789);
/// assert_eq!(table.mul(&s), G1Projective::generator() * s);
/// ```
#[derive(Debug, Clone)]
pub struct FixedBaseTable<C: CurveParams> {
    /// `table[k][j-1] = j · 2^(c·k) · base` in affine form, `j ∈ [1, 2^(c−1)]`.
    windows: Vec<Vec<Affine<C>>>,
    window_bits: usize,
}

/// Scalars per [`FixedBaseTable::mul_batch`] gather chunk; bounds the flat
/// gather buffer at `CHUNK · num_windows` points while keeping each batch
/// inversion large enough to amortize.
const BATCH_CHUNK: usize = 2048;

impl<C: CurveParams> FixedBaseTable<C> {
    /// Default window width (bits); 8 balances table size (~8K points for a
    /// 256-bit scalar) against additions per multiplication.
    pub const DEFAULT_WINDOW_BITS: usize = 8;

    /// Builds the table for `base` with the default window width.
    pub fn new(base: &Projective<C>) -> Self {
        Self::with_window_bits(base, Self::DEFAULT_WINDOW_BITS)
    }

    /// Builds a table sized for multiplying `base` by roughly
    /// `expected_scalars` scalars: wider windows (bigger tables, fewer
    /// additions per scalar) as the batch grows, so table construction
    /// stays amortized.
    pub fn for_batch(base: &Projective<C>, expected_scalars: usize) -> Self {
        Self::with_window_bits(base, Self::optimal_window_bits(expected_scalars))
    }

    /// Window width for a batch of `n` scalars, from the same cache-aware
    /// Pippenger cost model the bucket MSM uses ([`crate::tuning`]): the
    /// table rows play the role of the bucket array, so the width that
    /// keeps MSM's live set cache-resident keeps the lookup stream
    /// resident here too, and the two kernels can no longer drift apart.
    pub fn optimal_window_bits(n: usize) -> usize {
        crate::tuning::window_bits(
            n,
            C::Scalar::modulus_bits() as usize,
            std::mem::size_of::<Affine<C>>(),
        )
        .clamp(1, 14)
    }

    /// Builds the table with an explicit window width in `1..=15`.
    ///
    /// Rows are grown as a doubling tree — entries `m+1·B .. 2m·B` come
    /// from adding the `m·B` anchor to entries `1·B .. m·B`, which are
    /// independent additions batched across every window row at once via
    /// [`BatchAdder`] — so construction runs at shared-inversion affine
    /// cost and lands directly in affine form.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is outside `1..=15`.
    pub fn with_window_bits(base: &Projective<C>, window_bits: usize) -> Self {
        assert!((1..=15).contains(&window_bits), "window bits out of range");
        let _g = trace::region_profile("fixed_base_table");
        // Scalars are canonical, so the table only needs to cover the
        // modulus bit length; +1 leaves room for the final signed carry.
        let scalar_bits = C::Scalar::modulus_bits() as usize;
        let num_windows = (scalar_bits + 1).div_ceil(window_bits);
        let half = 1usize << (window_bits - 1);
        // Window anchors 2^(c·k) · base, converted to affine in one batch.
        let mut window_base = *base;
        let mut anchors = Vec::with_capacity(num_windows);
        for _ in 0..num_windows {
            anchors.push(window_base);
            for _ in 0..window_bits {
                window_base = window_base.double();
            }
        }
        let anchors = Projective::batch_to_affine(&anchors);
        let mut windows: Vec<Vec<Affine<C>>> = anchors
            .iter()
            .map(|b| {
                trace::alloc(half * std::mem::size_of::<Affine<C>>());
                let mut row = Vec::with_capacity(half);
                row.push(*b);
                row
            })
            .collect();
        let mut adder = BatchAdder::new();
        let mut buf: Vec<Affine<C>> = Vec::new();
        let mut segs: Vec<(usize, usize)> = Vec::new();
        let mut m = 1usize;
        while m < half {
            let step = m.min(half - m);
            buf.clear();
            segs.clear();
            for row in &windows {
                let anchor = row[m - 1];
                for &small in row.iter().take(step) {
                    segs.push((buf.len(), 2));
                    buf.push(anchor);
                    buf.push(small);
                }
            }
            adder.reduce_segments(&mut buf, &mut segs);
            let mut cursor = 0usize;
            for row in &mut windows {
                for _ in 0..step {
                    row.push(buf[segs[cursor].0]);
                    cursor += 1;
                }
            }
            m += step;
        }
        FixedBaseTable {
            windows,
            window_bits,
        }
    }

    /// Computes `scalar · base` using one table lookup and mixed addition
    /// per nonzero signed window digit.
    pub fn mul(&self, scalar: &C::Scalar) -> Projective<C> {
        let mut limbs = [0u64; 8];
        debug_assert!(C::Scalar::NUM_LIMBS <= limbs.len());
        scalar.write_canonical_limbs(&mut limbs[..C::Scalar::NUM_LIMBS]);
        let limbs = &limbs[..C::Scalar::NUM_LIMBS];
        let half = 1i64 << (self.window_bits - 1);
        let mut acc = Projective::identity();
        let mut carry = 0usize;
        for (k, row) in self.windows.iter().enumerate() {
            let raw = extract(limbs, k * self.window_bits, self.window_bits) + carry;
            let digit = if raw as i64 > half {
                carry = 1;
                raw as i64 - (1i64 << self.window_bits)
            } else {
                carry = 0;
                raw as i64
            };
            trace::branch(0x3101, digit != 0);
            if digit > 0 {
                acc = acc.add_mixed(&row[digit as usize - 1]);
            } else if digit < 0 {
                acc = acc.add_mixed(&row[(-digit) as usize - 1].neg());
            }
        }
        acc
    }

    /// Multiplies every scalar in `scalars`, returning affine results.
    ///
    /// Works in chunks: each scalar's nonzero window entries are gathered
    /// into a contiguous segment of a flat buffer, then all segments are
    /// collapsed with one [`BatchAdder`] tree reduction (a handful of batch
    /// inversions per chunk, shared across every scalar in it).
    pub fn mul_batch(&self, scalars: &[C::Scalar]) -> Vec<Affine<C>> {
        let _g = trace::region_profile("fixed_base_msm");
        let num_limbs = C::Scalar::NUM_LIMBS;
        let mut out = vec![Affine::identity(); scalars.len()];
        // Chunks are fully independent (private gather buffers, disjoint
        // `out` ranges), so uninstrumented multi-thread runs fan them out
        // across the pool; each chunk computes exactly what the serial
        // loop below computes for it, so results are bit-identical.
        if !trace::is_active() && pool::current_threads() > 1 && scalars.len() > BATCH_CHUNK {
            pool::parallel_chunks_mut(&mut out, BATCH_CHUNK, |chunk_idx, out_chunk| {
                let chunk = &scalars[chunk_idx * BATCH_CHUNK..][..out_chunk.len()];
                let mut gathered: Vec<Affine<C>> = Vec::new();
                let mut segs: Vec<(usize, usize)> = Vec::with_capacity(chunk.len());
                let mut limbs = vec![0u64; num_limbs];
                let mut adder = BatchAdder::new();
                let half = 1i64 << (self.window_bits - 1);
                for s in chunk {
                    s.write_canonical_limbs(&mut limbs);
                    let start = gathered.len();
                    let mut carry = 0usize;
                    for (k, row) in self.windows.iter().enumerate() {
                        let raw =
                            extract(&limbs, k * self.window_bits, self.window_bits) + carry;
                        let digit = if raw as i64 > half {
                            carry = 1;
                            raw as i64 - (1i64 << self.window_bits)
                        } else {
                            carry = 0;
                            raw as i64
                        };
                        if digit > 0 {
                            gathered.push(row[digit as usize - 1]);
                        } else if digit < 0 {
                            gathered.push(row[(-digit) as usize - 1].neg());
                        }
                    }
                    segs.push((start, gathered.len() - start));
                }
                adder.reduce_segments(&mut gathered, &mut segs);
                for (j, &(start, len)) in segs.iter().enumerate() {
                    if len > 0 {
                        out_chunk[j] = gathered[start];
                    }
                }
            });
            return out;
        }
        let mut gathered: Vec<Affine<C>> = Vec::new();
        let mut segs: Vec<(usize, usize)> = Vec::with_capacity(BATCH_CHUNK);
        let mut limbs = vec![0u64; num_limbs];
        let mut adder = BatchAdder::new();
        let half = 1i64 << (self.window_bits - 1);
        for (chunk_idx, chunk) in scalars.chunks(BATCH_CHUNK).enumerate() {
            gathered.clear();
            segs.clear();
            for s in chunk {
                s.write_canonical_limbs(&mut limbs);
                let start = gathered.len();
                let mut carry = 0usize;
                for (k, row) in self.windows.iter().enumerate() {
                    let raw = extract(&limbs, k * self.window_bits, self.window_bits) + carry;
                    let digit = if raw as i64 > half {
                        carry = 1;
                        raw as i64 - (1i64 << self.window_bits)
                    } else {
                        carry = 0;
                        raw as i64
                    };
                    trace::branch(0x3101, digit != 0);
                    if digit > 0 {
                        gathered.push(row[digit as usize - 1]);
                    } else if digit < 0 {
                        gathered.push(row[(-digit) as usize - 1].neg());
                    }
                }
                segs.push((start, gathered.len() - start));
            }
            adder.reduce_segments(&mut gathered, &mut segs);
            for (j, &(start, len)) in segs.iter().enumerate() {
                if len > 0 {
                    out[chunk_idx * BATCH_CHUNK + j] = gathered[start];
                }
            }
        }
        out
    }
}

fn extract(limbs: &[u64], lo: usize, count: usize) -> usize {
    let limb = lo / 64;
    let off = lo % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + count > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << count) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Params, G1Projective};
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn matches_double_and_add_for_various_scalars() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::<G1Params>::new(&g);
        let mut rng = zkperf_ff::test_rng();
        for s in [
            Fr::zero(),
            Fr::one(),
            Fr::from_u64(255),
            Fr::from_u64(256),
            -Fr::one(), // largest canonical scalar
            Fr::random(&mut rng),
        ] {
            assert_eq!(table.mul(&s), g * s, "scalar {s}");
        }
    }

    #[test]
    fn odd_window_widths_work() {
        let g = G1Projective::generator();
        let mut rng = zkperf_ff::test_rng();
        let s = Fr::random(&mut rng);
        for bits in [1usize, 3, 5, 13] {
            let table = FixedBaseTable::<G1Params>::with_window_bits(&g, bits);
            assert_eq!(table.mul(&s), g * s, "window {bits}");
        }
    }

    #[test]
    fn batch_matches_individual() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::<G1Params>::new(&g);
        let mut rng = zkperf_ff::test_rng();
        let mut scalars: Vec<Fr> = (0..40).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[17] = -Fr::one();
        let batch = table.mul_batch(&scalars);
        for (s, b) in scalars.iter().zip(&batch) {
            assert_eq!(b.to_projective(), g * *s);
        }
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        let _lock = crate::TEST_POOL_LOCK.lock().unwrap();
        let g = G1Projective::generator();
        let table = FixedBaseTable::<G1Params>::new(&g);
        let mut rng = zkperf_ff::test_rng();
        // Past the one-chunk gate, with an odd tail and edge scalars.
        let n = BATCH_CHUNK * 2 + 173;
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[BATCH_CHUNK] = -Fr::one();

        zkperf_pool::set_threads(1);
        let serial = table.mul_batch(&scalars);
        zkperf_pool::set_threads(4);
        let parallel = table.mul_batch(&scalars);
        zkperf_pool::set_threads(1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_on_identity_base_is_all_identity() {
        let table = FixedBaseTable::<G1Params>::new(&G1Projective::identity());
        let scalars = vec![Fr::from_u64(7); 5];
        for p in table.mul_batch(&scalars) {
            assert!(p.infinity);
        }
    }

    #[test]
    fn optimal_window_bits_is_monotone_and_clamped() {
        let mut prev = 0;
        for log2 in 5..24 {
            let bits = FixedBaseTable::<G1Params>::optimal_window_bits(1 << log2);
            assert!(bits >= prev, "monotone");
            assert!((1..=14).contains(&bits));
            prev = bits;
        }
        assert!(FixedBaseTable::<G1Params>::optimal_window_bits(1 << 40) <= 14);
    }

    #[test]
    fn fixed_base_and_msm_share_the_window_model() {
        // Satellite requirement: both kernels must resolve the same width
        // from the same (n, scalar_bits, cache) inputs — one cost model,
        // not two drifting heuristics.
        use zkperf_ff::PrimeField;
        let scalar_bits = Fr::modulus_bits() as usize;
        for log2 in [0usize, 4, 8, 10, 12, 14, 16, 18, 20] {
            let n = 1usize << log2;
            assert_eq!(
                FixedBaseTable::<G1Params>::optimal_window_bits(n),
                crate::msm::window_bits::<G1Params>(n, scalar_bits),
                "n = {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window bits")]
    fn rejects_zero_window() {
        let _ = FixedBaseTable::<G1Params>::with_window_bits(&G1Projective::generator(), 0);
    }
}
