//! Windowed fixed-base multi-exponentiation.
//!
//! The Groth16 `setup` stage multiplies one generator by tens of thousands
//! of scalars; a per-window lookup table turns each 256-bit multiplication
//! into ~32 mixed additions. This is the same optimization snarkjs uses and
//! is why setup is table-building + streaming adds rather than doublings.

use zkperf_ff::PrimeField;
use zkperf_trace as trace;

use crate::curve::{Affine, CurveParams, Projective};

/// Precomputed window tables for one base point.
///
/// # Examples
///
/// ```
/// use zkperf_ec::bn254::{G1Affine, G1Projective};
/// use zkperf_ec::FixedBaseTable;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// let table = FixedBaseTable::new(&G1Projective::generator());
/// let s = Fr::from_u64(123456789);
/// assert_eq!(table.mul(&s), G1Projective::generator() * s);
/// ```
#[derive(Debug, Clone)]
pub struct FixedBaseTable<C: CurveParams> {
    /// `table[k][j] = j · 2^(c·k) · base` in affine form, `j ∈ [0, 2^c)`.
    windows: Vec<Vec<Affine<C>>>,
    window_bits: usize,
}

impl<C: CurveParams> FixedBaseTable<C> {
    /// Default window width (bits); 8 balances table size (~8K points for a
    /// 256-bit scalar) against additions per multiplication.
    pub const DEFAULT_WINDOW_BITS: usize = 8;

    /// Builds the table for `base` with the default window width.
    pub fn new(base: &Projective<C>) -> Self {
        Self::with_window_bits(base, Self::DEFAULT_WINDOW_BITS)
    }

    /// Builds the table with an explicit window width in `1..=15`.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is outside `1..=15`.
    pub fn with_window_bits(base: &Projective<C>, window_bits: usize) -> Self {
        assert!((1..=15).contains(&window_bits), "window bits out of range");
        let _g = trace::region_profile("fixed_base_table");
        let scalar_bits = C::Scalar::NUM_LIMBS * 64;
        let num_windows = scalar_bits.div_ceil(window_bits);
        let table_len = 1usize << window_bits;
        let mut windows = Vec::with_capacity(num_windows);
        let mut window_base = *base;
        for _ in 0..num_windows {
            trace::alloc(table_len * std::mem::size_of::<Affine<C>>());
            let mut row = Vec::with_capacity(table_len);
            let mut acc = Projective::identity();
            for _ in 0..table_len {
                row.push(acc);
                acc = acc.add(&window_base);
            }
            windows.push(Projective::batch_to_affine(&row));
            // Advance to the next window: base ← 2^window_bits · base.
            for _ in 0..window_bits {
                window_base = window_base.double();
            }
        }
        FixedBaseTable {
            windows,
            window_bits,
        }
    }

    /// Computes `scalar · base` using one table lookup and mixed addition
    /// per window.
    pub fn mul(&self, scalar: &C::Scalar) -> Projective<C> {
        let limbs = scalar.to_biguint().to_limbs(C::Scalar::NUM_LIMBS);
        let mut acc = Projective::identity();
        for (k, row) in self.windows.iter().enumerate() {
            let digit = extract(&limbs, k * self.window_bits, self.window_bits);
            trace::branch(0x3101, digit != 0);
            if digit != 0 {
                acc = acc.add_mixed(&row[digit]);
            }
        }
        acc
    }

    /// Multiplies every scalar in `scalars`, returning affine results (one
    /// batch inversion at the end).
    pub fn mul_batch(&self, scalars: &[C::Scalar]) -> Vec<Affine<C>> {
        let _g = trace::region_profile("fixed_base_msm");
        let projective: Vec<Projective<C>> = scalars.iter().map(|s| self.mul(s)).collect();
        Projective::batch_to_affine(&projective)
    }
}

fn extract(limbs: &[u64], lo: usize, count: usize) -> usize {
    let limb = lo / 64;
    let off = lo % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + count > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << count) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Params, G1Projective};
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn matches_double_and_add_for_various_scalars() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::<G1Params>::new(&g);
        let mut rng = zkperf_ff::test_rng();
        for s in [
            Fr::zero(),
            Fr::one(),
            Fr::from_u64(255),
            Fr::from_u64(256),
            -Fr::one(), // largest canonical scalar
            Fr::random(&mut rng),
        ] {
            assert_eq!(table.mul(&s), g * s, "scalar {s}");
        }
    }

    #[test]
    fn odd_window_widths_work() {
        let g = G1Projective::generator();
        let mut rng = zkperf_ff::test_rng();
        let s = Fr::random(&mut rng);
        for bits in [1usize, 3, 5, 13] {
            let table = FixedBaseTable::<G1Params>::with_window_bits(&g, bits);
            assert_eq!(table.mul(&s), g * s, "window {bits}");
        }
    }

    #[test]
    fn batch_matches_individual() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::<G1Params>::new(&g);
        let mut rng = zkperf_ff::test_rng();
        let scalars: Vec<Fr> = (0..10).map(|_| Fr::random(&mut rng)).collect();
        let batch = table.mul_batch(&scalars);
        for (s, b) in scalars.iter().zip(&batch) {
            assert_eq!(b.to_projective(), g * *s);
        }
    }

    #[test]
    #[should_panic(expected = "window bits")]
    fn rejects_zero_window() {
        let _ = FixedBaseTable::<G1Params>::with_window_bits(&G1Projective::generator(), 0);
    }
}
