//! GLV scalar decomposition for curves with a fast cube-root-of-unity
//! endomorphism (`j = 0` short-Weierstrass curves: BN254 and BLS12-381 G1).
//!
//! When `q ≡ 1 (mod 3)` the curve `y² = x³ + b` admits the endomorphism
//! `φ(x, y) = (β·x, y)` with `β` a primitive cube root of unity in the base
//! field; on the prime-order subgroup `φ` acts as multiplication by an
//! eigenvalue `λ` — a cube root of unity in the scalar field. Any scalar
//! `k` then splits as `k ≡ k₁ + k₂·λ (mod r)` with `|k₁|, |k₂| ≈ √r`, so
//! `k·P = k₁·P + k₂·φ(P)` replaces one 254-bit multiplication with two
//! ~128-bit ones sharing a doubling chain — and Pippenger over `2n`
//! half-width scalars does roughly half the bucket-window passes of `n`
//! full-width ones.
//!
//! Everything here is **derived at runtime** rather than transcribed:
//! `β` and `λ` come from exponentiating small non-residues by `(p−1)/3`,
//! the short lattice basis from the extended Euclidean algorithm on
//! `(r, λ)` stopped at the first remainder below `√r` (Gallant–Lambert–
//! Vanstone), and the Babai-rounding constants from one slow division.
//! [`derive`] then *proves* the parameters on the curve itself — the
//! endomorphism is checked against `λ·G`, and the decomposition is
//! replayed against independent `BigUint` arithmetic on boundary scalars
//! (0, 1, λ±1, r−1, the basis magnitudes) — and returns `None` on any
//! mismatch, so callers fall back to the plain path instead of silently
//! computing garbage.
//!
//! The per-scalar [`GlvParams::decompose`] is allocation-free: Babai
//! rounding runs as a Barrett-style multiply-shift against precomputed
//! `⌊2³⁸⁴·|bⱼ|/r⌋`, and the residuals accumulate in fixed-width
//! two's-complement limbs.

use zkperf_ff::{BigUint, Field, PrimeField};

use crate::curve::{Affine, CurveParams, Projective};

/// Limbs in a decomposed half-width scalar magnitude (192 bits of room for
/// a ≈130-bit value).
pub const HALF_LIMBS: usize = 3;

/// Limbs of the full scalar this module supports (both suites use 4).
const K_LIMBS: usize = 4;

/// Limbs in the Barrett constants `⌊2^(64·SHIFT_LIMBS)·|bⱼ|/r⌋`.
const G_LIMBS: usize = 5;

/// The Barrett shift, in limbs: `k·g` keeps `384 − 254 − 130 ≈ 0` slack
/// bits *above* the true quotient, so truncation is off by at most a few
/// units — absorbed by the `+2` bit slack in [`GlvParams::half_bits`].
const SHIFT_LIMBS: usize = 6;

/// A signed magnitude: `neg == true` means the value is `−limbs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignedHalf {
    /// Little-endian magnitude.
    pub limbs: [u64; HALF_LIMBS],
    /// Sign flag (ignored when the magnitude is zero).
    pub neg: bool,
}

/// The two half-width components of a decomposed scalar:
/// `k ≡ k1 + k2·λ (mod r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecomposedScalar {
    /// Component multiplying `P`.
    pub k1: SignedHalf,
    /// Component multiplying `φ(P)`.
    pub k2: SignedHalf,
}

/// Derived GLV parameters for one curve; see [`derive`].
#[derive(Debug, Clone)]
pub struct GlvParams<C: CurveParams> {
    /// Cube root of unity in the base field: `φ(x, y) = (β·x, y)`.
    beta: C::Base,
    /// The eigenvalue of `φ` on the subgroup, as an integer `< r`.
    lambda: BigUint,
    /// Short lattice basis `v₁ = (a1, b1)`, `v₂ = (a2, b2)` of
    /// `{(x, y) : x + y·λ ≡ 0 (mod r)}`, as signed magnitudes.
    a1: SignedHalf,
    b1: SignedHalf,
    a2: SignedHalf,
    b2: SignedHalf,
    /// `⌊2³⁸⁴·|b2|/r⌋` — Babai rounding constant for `c1`.
    g1: [u64; G_LIMBS],
    /// `⌊2³⁸⁴·|b1|/r⌋` — Babai rounding constant for `c2`.
    g2: [u64; G_LIMBS],
    /// Upper bound on the bit length of `|k1|`, `|k2|`.
    half_bits: usize,
}

impl<C: CurveParams> GlvParams<C> {
    /// The endomorphism eigenvalue `λ` as an integer.
    pub fn lambda(&self) -> &BigUint {
        &self.lambda
    }

    /// Bit-length bound for the decomposed components; windowed kernels
    /// size their digit loops by this instead of the modulus width.
    pub fn half_bits(&self) -> usize {
        self.half_bits
    }

    /// Applies the endomorphism `φ(x, y) = (β·x, y)`; identity maps to
    /// identity. One base-field multiplication.
    pub fn endo(&self, p: &Affine<C>) -> Affine<C> {
        if p.infinity {
            return *p;
        }
        Affine {
            x: self.beta * p.x,
            y: p.y,
            infinity: false,
        }
    }

    /// Splits a canonical scalar into `(k1, k2)` with
    /// `k ≡ k1 + k2·λ (mod r)` and both magnitudes below
    /// `2^half_bits`. Allocation-free.
    pub fn decompose(&self, scalar: &C::Scalar) -> DecomposedScalar {
        let mut k = [0u64; K_LIMBS];
        scalar.write_canonical_limbs(&mut k);
        self.decompose_limbs(&k)
    }

    /// [`Self::decompose`] over raw canonical limbs.
    pub fn decompose_limbs(&self, k: &[u64; K_LIMBS]) -> DecomposedScalar {
        // Babai rounding (truncated): c1 ≈ k·b2/r, c2 ≈ −k·b1/r, so that
        // (k, 0) − c1·v1 − c2·v2 is a short lattice-offset vector.
        let m1 = mul_shift(k, &self.g1);
        let m2 = mul_shift(k, &self.g2);
        let c1 = SignedHalf {
            limbs: m1,
            neg: self.b2.neg,
        };
        let c2 = SignedHalf {
            limbs: m2,
            neg: !self.b1.neg,
        };

        // k1 = k − c1·a1 − c2·a2, in 320-bit two's complement.
        let mut acc1 = [0u64; G_LIMBS];
        acc1[..K_LIMBS].copy_from_slice(k);
        acc_sub_product(&mut acc1, &c1, &self.a1);
        acc_sub_product(&mut acc1, &c2, &self.a2);
        // k2 = −(c1·b1 + c2·b2).
        let mut acc2 = [0u64; G_LIMBS];
        acc_sub_product(&mut acc2, &c1, &self.b1);
        acc_sub_product(&mut acc2, &c2, &self.b2);

        let k1 = to_signed_half(&acc1, self.half_bits);
        let k2 = to_signed_half(&acc2, self.half_bits);
        DecomposedScalar { k1, k2 }
    }
}

// ---- fixed-width limb arithmetic (no allocation) ----

/// `⌊(k · g) / 2^(64·SHIFT_LIMBS)⌋`, truncated to `HALF_LIMBS` limbs.
fn mul_shift(k: &[u64; K_LIMBS], g: &[u64; G_LIMBS]) -> [u64; HALF_LIMBS] {
    let mut prod = [0u64; K_LIMBS + G_LIMBS];
    for (i, &ki) in k.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &gj) in g.iter().enumerate() {
            let t = prod[i + j] as u128 + ki as u128 * gj as u128 + carry;
            prod[i + j] = t as u64;
            carry = t >> 64;
        }
        prod[i + G_LIMBS] = carry as u64;
    }
    // True quotient < 2^131 ≪ 2^192, so limbs past SHIFT_LIMBS+2 are zero.
    [
        prod[SHIFT_LIMBS],
        prod[SHIFT_LIMBS + 1],
        prod[SHIFT_LIMBS + 2],
    ]
}

/// `acc −= c · v` where `c`, `v` are signed magnitudes and `acc` is
/// two's-complement over `G_LIMBS` limbs.
fn acc_sub_product(acc: &mut [u64; G_LIMBS], c: &SignedHalf, v: &SignedHalf) {
    // |c|·|v|: ≈130 + ≈130 bits < 320, fits the accumulator width.
    let mut prod = [0u64; G_LIMBS];
    for (i, &ci) in c.limbs.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &vj) in v.limbs.iter().enumerate() {
            if i + j >= G_LIMBS {
                break;
            }
            let t = prod[i + j] as u128 + ci as u128 * vj as u128 + carry;
            prod[i + j] = t as u64;
            carry = t >> 64;
        }
        if i + HALF_LIMBS < G_LIMBS {
            prod[i + HALF_LIMBS] = carry as u64;
        }
    }
    let negative_product = c.neg != v.neg;
    if negative_product {
        // acc −= (−|cv|)  ⇔  acc += |cv|
        let mut carry = 0u128;
        for (a, &p) in acc.iter_mut().zip(prod.iter()) {
            let t = *a as u128 + p as u128 + carry;
            *a = t as u64;
            carry = t >> 64;
        }
    } else {
        let mut borrow = 0i128;
        for (a, &p) in acc.iter_mut().zip(prod.iter()) {
            let t = *a as i128 - p as i128 + borrow;
            *a = t as u64;
            borrow = if t < 0 { -1 } else { 0 };
        }
    }
}

/// Reads a two's-complement accumulator back into sign + magnitude.
///
/// # Panics
///
/// Panics if the magnitude exceeds `2^max_bits` — mathematically excluded
/// by the lattice bound (and re-proven by the [`derive`] self-test), so a
/// trip here means parameter corruption, not bad input.
fn to_signed_half(acc: &[u64; G_LIMBS], max_bits: usize) -> SignedHalf {
    let neg = acc[G_LIMBS - 1] >> 63 == 1;
    let mut mag = [0u64; G_LIMBS];
    if neg {
        // Two's-complement negate.
        let mut carry = 1u128;
        for (m, &a) in mag.iter_mut().zip(acc.iter()) {
            let t = (!a) as u128 + carry;
            *m = t as u64;
            carry = t >> 64;
        }
    } else {
        mag.copy_from_slice(acc);
    }
    assert!(
        mag[HALF_LIMBS] == 0
            && mag[HALF_LIMBS + 1] == 0
            && bits_of(&mag[..HALF_LIMBS]) <= max_bits,
        "GLV component exceeds the lattice bound"
    );
    SignedHalf {
        limbs: [mag[0], mag[1], mag[2]],
        neg,
    }
}

fn bits_of(limbs: &[u64]) -> usize {
    for (i, &l) in limbs.iter().enumerate().rev() {
        if l != 0 {
            return i * 64 + (64 - l.leading_zeros() as usize);
        }
    }
    0
}

// ---- one-time derivation ----

/// A signed `BigUint`, used only during derivation.
#[derive(Debug, Clone)]
struct SignedBig {
    mag: BigUint,
    neg: bool,
}

impl SignedBig {
    fn positive(mag: BigUint) -> Self {
        SignedBig { mag, neg: false }
    }

    fn negated(&self) -> Self {
        SignedBig {
            mag: self.mag.clone(),
            neg: !self.neg && !self.mag.is_zero(),
        }
    }

    /// `self − other·q` for the Euclid recurrence; relies on the invariant
    /// that consecutive `t` coefficients have opposite signs, so the
    /// magnitudes always add.
    fn euclid_step(&self, other: &Self, q: &BigUint) -> Self {
        debug_assert!(
            self.mag.is_zero() || other.mag.is_zero() || self.neg != other.neg
        );
        SignedBig {
            mag: &self.mag + &(&other.mag * q),
            neg: !other.neg,
        }
    }
}

/// Finds a primitive cube root of unity in `F` (`p ≡ 1 mod 3` required):
/// the first small base whose `(p−1)/3` power is non-trivial.
fn cube_root_of_unity<F: PrimeField>() -> Option<F> {
    let p_minus_1 = F::modulus().checked_sub(&BigUint::one())?;
    let (exp, rem) = p_minus_1.divrem_u64(3);
    if rem != 0 {
        return None;
    }
    for base in 2u64..40 {
        let w = F::from_u64(base).pow(&exp);
        if !w.is_one() && !w.is_zero() {
            return Some(w);
        }
    }
    None
}

/// Derives and verifies the GLV parameters for `C`, or returns `None` when
/// the curve does not support the endomorphism (or any self-check fails).
///
/// Expensive (a few scalar multiplications and one slow division); call
/// once per process and cache, as the `bn254`/`bls12_381` modules do.
pub fn derive<C>() -> Option<GlvParams<C>>
where
    C: CurveParams,
    C::Base: PrimeField,
{
    if C::Scalar::NUM_LIMBS != K_LIMBS {
        return None;
    }
    let r = C::Scalar::modulus();
    let lambda_f = cube_root_of_unity::<C::Scalar>()?;
    let beta_f = cube_root_of_unity::<C::Base>()?;

    // Match the eigenvalue to the endomorphism on the generator: φ acts as
    // one of the two primitive cube roots; β likewise has two candidates.
    let g = Affine::<C>::generator();
    let g_proj = g.to_projective();
    let mut chosen = None;
    'outer: for lam in [lambda_f, lambda_f.square()] {
        let lam_int = lam.to_biguint();
        let expect = g_proj.mul_bigint(&lam_int).to_affine();
        for beta in [beta_f, beta_f.square()] {
            let phi_g = Affine::<C> {
                x: beta * g.x,
                y: g.y,
                infinity: false,
            };
            if phi_g == expect {
                chosen = Some((beta, lam_int));
                break 'outer;
            }
        }
    }
    let (beta, lambda) = chosen?;

    // Extended Euclid on (r, λ): remainders rᵢ = sᵢ·r + tᵢ·λ, so each
    // (rᵢ, −tᵢ) lies in the lattice {(x, y) : x + y·λ ≡ 0 (mod r)}.
    // Stop at the first remainder below √r; GLV takes its row and the
    // shorter neighbour as the reduced basis.
    let mut rows: Vec<(BigUint, SignedBig)> = vec![
        (r.clone(), SignedBig::positive(BigUint::zero())),
        (lambda.clone(), SignedBig::positive(BigUint::one())),
    ];
    let below_sqrt = |v: &BigUint| (v * v) < r;
    while !below_sqrt(&rows[rows.len() - 1].0) {
        let (r_prev, t_prev) = rows[rows.len() - 2].clone();
        let (r_cur, t_cur) = rows[rows.len() - 1].clone();
        let (q, r_next) = r_prev.divrem(&r_cur);
        if r_next.is_zero() {
            return None; // λ | r would be degenerate
        }
        let t_next = t_prev.euclid_step(&t_cur, &q);
        rows.push((r_next, t_next));
    }
    // One extra row so the short one has both neighbours.
    {
        let (r_prev, t_prev) = rows[rows.len() - 2].clone();
        let (r_cur, t_cur) = rows[rows.len() - 1].clone();
        let (q, r_next) = r_prev.divrem(&r_cur);
        let t_next = t_prev.euclid_step(&t_cur, &q);
        rows.push((r_next, t_next));
    }
    let m = rows.len() - 2; // rows[m].0 is the first remainder < √r
    let v1 = (
        SignedBig::positive(rows[m].0.clone()),
        rows[m].1.negated(),
    );
    let norm = |v: &(SignedBig, SignedBig)| &(&v.0.mag * &v.0.mag) + &(&v.1.mag * &v.1.mag);
    let cand_a = (
        SignedBig::positive(rows[m - 1].0.clone()),
        rows[m - 1].1.negated(),
    );
    let cand_b = (
        SignedBig::positive(rows[m + 1].0.clone()),
        rows[m + 1].1.negated(),
    );
    let mut v2 = if norm(&cand_a) < norm(&cand_b) {
        cand_a
    } else {
        cand_b
    };

    // det(v1, v2) = a1·b2 − a2·b1 must be ±r; normalize to +r so the Babai
    // quotients carry the signs of b2/−b1 directly.
    let signed_mul = |x: &SignedBig, y: &SignedBig| SignedBig {
        mag: &x.mag * &y.mag,
        neg: x.neg != y.neg && !x.mag.is_zero() && !y.mag.is_zero(),
    };
    let det_pos_part = signed_mul(&v1.0, &v2.1);
    let det_neg_part = signed_mul(&v1.1, &v2.0);
    // det = det_pos_part − det_neg_part, as a signed value.
    let det = match (det_pos_part.neg, det_neg_part.neg) {
        (false, false) => match det_pos_part.mag.checked_sub(&det_neg_part.mag) {
            Some(mag) => SignedBig::positive(mag),
            None => SignedBig {
                mag: det_neg_part
                    .mag
                    .checked_sub(&det_pos_part.mag)
                    .expect("one order must hold"),
                neg: true,
            },
        },
        (true, true) => match det_neg_part.mag.checked_sub(&det_pos_part.mag) {
            Some(mag) => SignedBig::positive(mag),
            None => SignedBig {
                mag: det_pos_part
                    .mag
                    .checked_sub(&det_neg_part.mag)
                    .expect("one order must hold"),
                neg: true,
            },
        },
        (false, true) => SignedBig::positive(&det_pos_part.mag + &det_neg_part.mag),
        (true, false) => SignedBig {
            mag: &det_pos_part.mag + &det_neg_part.mag,
            neg: true,
        },
    };
    if det.mag != r {
        return None;
    }
    if det.neg {
        v2 = (v2.0.negated(), v2.1.negated());
    }

    let (a1, b1) = v1;
    let (a2, b2) = v2;
    let half_bits = [&a1, &b1, &a2, &b2]
        .iter()
        .map(|v| v.mag.bits())
        .max()
        .unwrap_or(0)
        + 2;
    if half_bits > HALF_LIMBS * 64 {
        return None;
    }

    // Babai constants: one slow division each, paid once per process.
    let barrett = |b: &SignedBig| -> Option<[u64; G_LIMBS]> {
        let (q, _) = b.mag.shl(64 * SHIFT_LIMBS).divrem(&r);
        if q.bits() > G_LIMBS * 64 {
            return None;
        }
        let limbs = q.to_limbs(G_LIMBS);
        let mut out = [0u64; G_LIMBS];
        out.copy_from_slice(&limbs);
        Some(out)
    };
    let to_half = |v: &SignedBig| -> SignedHalf {
        let limbs = v.mag.to_limbs(HALF_LIMBS);
        let mut out = [0u64; HALF_LIMBS];
        out.copy_from_slice(&limbs);
        SignedHalf {
            limbs: out,
            neg: v.neg && !v.mag.is_zero(),
        }
    };
    let params = GlvParams {
        beta,
        lambda: lambda.clone(),
        a1: to_half(&a1),
        b1: to_half(&b1),
        a2: to_half(&a2),
        b2: to_half(&b2),
        g1: barrett(&b2)?,
        g2: barrett(&b1)?,
        half_bits,
    };

    // Self-test: replay the fixed-limb decomposition against independent
    // BigUint arithmetic on the scalars most likely to expose an
    // off-by-one — 0, 1, the eigenvalue and its neighbours, r−1, and the
    // basis magnitudes themselves (the lattice boundaries).
    let lambda_elem = C::Scalar::from_biguint(&lambda);
    let mut probes = vec![
        C::Scalar::zero(),
        C::Scalar::one(),
        C::Scalar::from_u64(2),
        lambda_elem - C::Scalar::one(),
        lambda_elem,
        lambda_elem + C::Scalar::one(),
        -C::Scalar::one(), // r − 1
        C::Scalar::from_biguint(&a1.mag),
        C::Scalar::from_biguint(&b1.mag),
        C::Scalar::from_biguint(&a2.mag),
        C::Scalar::from_biguint(&b2.mag),
    ];
    // A few full-width pseudo-random probes, deterministic by construction.
    let mut x = C::Scalar::from_u64(0x9e37_79b9_7f4a_7c15);
    for _ in 0..6 {
        x = x.square() + C::Scalar::from_u64(1);
        probes.push(x);
    }
    for k in &probes {
        if !decomposition_holds::<C>(&params, k) {
            return None;
        }
    }
    Some(params)
}

/// Checks `k1 + λ·k2 ≡ k (mod r)` and the width bound, via `BigUint`.
fn decomposition_holds<C: CurveParams>(params: &GlvParams<C>, k: &C::Scalar) -> bool {
    let d = params.decompose(k);
    let r = C::Scalar::modulus();
    let to_big = |s: &SignedHalf| BigUint::from_limbs(&s.limbs);
    if to_big(&d.k1).bits() > params.half_bits || to_big(&d.k2).bits() > params.half_bits {
        return false;
    }
    // (±k1 ± λ·k2) mod r, folding signs through r − x.
    let fold = |mag: BigUint, neg: bool| -> BigUint {
        let m = mag.rem(&r);
        if neg && !m.is_zero() {
            r.checked_sub(&m).expect("m < r")
        } else {
            m
        }
    };
    let term1 = fold(to_big(&d.k1), d.k1.neg);
    let term2 = fold(&to_big(&d.k2) * params.lambda(), d.k2.neg);
    (&term1 + &term2).rem(&r) == k.to_biguint()
}

/// `k·P` via the decomposition: interleaved double-and-add over
/// `(k1, k2)` — the reference the windowed kernels are tested against,
/// and itself a check that `φ` really acts as `λ`.
pub fn mul_glv_reference<C: CurveParams>(
    params: &GlvParams<C>,
    p: &Projective<C>,
    k: &C::Scalar,
) -> Projective<C> {
    let d = params.decompose(k);
    let p_aff = p.to_affine();
    let apply = |s: &SignedHalf, point: &Affine<C>| -> Projective<C> {
        let base = if s.neg { point.neg() } else { *point };
        let mag = BigUint::from_limbs(&s.limbs);
        base.to_projective().mul_bigint(&mag)
    };
    apply(&d.k1, &p_aff) + apply(&d.k2, &params.endo(&p_aff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::G1Params;
    use zkperf_ff::bn254::Fr;

    fn params() -> GlvParams<G1Params> {
        derive::<G1Params>().expect("BN254 G1 supports GLV")
    }

    #[test]
    fn derivation_succeeds_for_both_g1_groups() {
        assert!(derive::<G1Params>().is_some());
        assert!(derive::<crate::bls12_381::G1Params>().is_some());
    }

    #[test]
    fn half_bits_are_near_sqrt_r() {
        let p = params();
        assert!(p.half_bits() <= 140, "BN254 components are ≈127 bits");
        assert!(p.half_bits() >= 120);
    }

    #[test]
    fn decompose_random_scalars_recompose_mod_r() {
        let p = params();
        let mut rng = zkperf_ff::test_rng();
        for _ in 0..200 {
            let k = Fr::random(&mut rng);
            assert!(decomposition_holds::<G1Params>(&p, &k), "k = {k}");
        }
    }

    #[test]
    fn reference_glv_mul_matches_double_and_add() {
        let p = params();
        let mut rng = zkperf_ff::test_rng();
        let point = Projective::<G1Params>::random(&mut rng);
        for k in [
            Fr::zero(),
            Fr::one(),
            -Fr::one(),
            Fr::from_biguint(p.lambda()),
            Fr::random(&mut rng),
        ] {
            assert_eq!(
                mul_glv_reference(&p, &point, &k),
                point * k,
                "k = {k}"
            );
        }
    }

    #[test]
    fn endo_is_the_eigenvalue_map() {
        let p = params();
        let mut rng = zkperf_ff::test_rng();
        let q = Projective::<G1Params>::random(&mut rng).to_affine();
        let lhs = p.endo(&q).to_projective();
        let rhs = q.to_projective().mul_bigint(p.lambda());
        assert_eq!(lhs, rhs);
        assert!(p.endo(&Affine::identity()).infinity);
    }
}
