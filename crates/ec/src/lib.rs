#![warn(missing_docs)]

//! Elliptic-curve groups, multi-scalar multiplication and optimal-ate
//! pairings for BN254 and BLS12-381, built from scratch on `zkperf-ff`.
//!
//! The crate provides:
//!
//! * generic short-Weierstrass [`curve::Affine`] / [`curve::Projective`]
//!   groups in Jacobian coordinates,
//! * Pippenger [`msm`] (the dominant kernel of Groth16 setup and proving),
//! * Miller loops and final exponentiation for both curves, and
//! * the [`Engine`] trait tying a curve suite together for `zkperf-groth16`.
//!
//! # Examples
//!
//! ```
//! use zkperf_ec::bn254::{pairing, G1Affine, G2Affine};
//! use zkperf_ff::Field;
//!
//! let e = pairing(&G1Affine::generator(), &G2Affine::generator());
//! assert!(!e.is_one());
//! ```

pub mod batch_add;
pub mod bls12_381;
pub mod bn254;
pub mod curve;
mod engine;
mod fixed_base;
pub mod glv;
mod msm;
pub mod pairing;
pub mod pairing_fast;
pub mod tuning;

/// Serializes tests that toggle the global pool thread count, so the
/// serial and parallel legs of a comparison run at the thread count they
/// intend to exercise.
#[cfg(test)]
pub(crate) static TEST_POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

pub use batch_add::BatchAdder;
pub use curve::{Affine, CurveParams, Projective};
pub use engine::{Bls12_381, Bn254, Engine};
pub use fixed_base::FixedBaseTable;
pub use glv::{DecomposedScalar, GlvParams, SignedHalf};
pub use msm::{msm, msm_naive, msm_stream};
pub use pairing_fast::{fast_pairing_enabled, G2Prepared, TwistType};
