//! Multi-scalar multiplication (Pippenger's bucket method).
//!
//! MSM dominates both the `setup` and `proving` stages of Groth16; its
//! bucket accumulation produces the scattered memory traffic that the
//! paper's memory analysis attributes to the proving stage, so the inner
//! loop is left deliberately array-based (the cache simulator observes the
//! real bucket addresses through the instrumented field operations).

use zkperf_ff::PrimeField;
use zkperf_trace as trace;

use crate::curve::{Affine, CurveParams, Projective};

/// Chooses the Pippenger window width (in bits) for `n` terms.
fn window_bits(n: usize) -> usize {
    match n {
        0..=1 => 1,
        2..=31 => 3,
        32..=255 => 5,
        256..=4095 => 8,
        4096..=131071 => 11,
        _ => 13,
    }
}

/// Computes `Σ scalarsᵢ · basesᵢ`.
///
/// Scalars and bases beyond the shorter of the two slices are ignored.
/// Identity bases and zero scalars are handled (skipped) correctly.
///
/// # Examples
///
/// ```
/// use zkperf_ec::bn254::{G1Affine, G1Projective};
/// use zkperf_ec::msm;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// let g = G1Affine::generator();
/// let bases = vec![g; 3];
/// let scalars = vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
/// let expect = G1Projective::generator() * Fr::from_u64(6);
/// assert_eq!(msm(&bases, &scalars), expect);
/// ```
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[C::Scalar]) -> Projective<C> {
    let _g = trace::region_profile("msm");
    let n = bases.len().min(scalars.len());
    if n == 0 {
        return Projective::identity();
    }
    if n < 8 {
        // Naive double-and-add is faster at tiny sizes.
        let mut acc = Projective::identity();
        for i in 0..n {
            acc += bases[i].to_projective() * scalars[i];
        }
        return acc;
    }

    let limbs: Vec<Vec<u64>> = scalars[..n]
        .iter()
        .map(|s| s.to_biguint().to_limbs(C::Scalar::NUM_LIMBS))
        .collect();
    let scalar_bits = C::Scalar::NUM_LIMBS * 64;
    let c = window_bits(n);
    let num_windows = scalar_bits.div_ceil(c);
    let num_buckets = (1usize << c) - 1;

    let mut window_sums = Vec::with_capacity(num_windows);
    let mut buckets: Vec<Projective<C>> = vec![Projective::identity(); num_buckets];
    for w in 0..num_windows {
        for b in buckets.iter_mut() {
            *b = Projective::identity();
        }
        let lo = w * c;
        for i in 0..n {
            let digit = extract_bits(&limbs[i], lo, c);
            trace::branch(0x3001, digit != 0);
            if digit != 0 {
                // Scattered read-modify-write on the bucket array: the
                // address stream the memory analysis cares about.
                buckets[digit - 1] = buckets[digit - 1].add_mixed(&bases[i]);
            }
        }
        // Running-sum reduction: Σ j·bucket[j] with #buckets additions.
        let mut running = Projective::identity();
        let mut sum = Projective::identity();
        for b in buckets.iter().rev() {
            running += *b;
            sum += running;
        }
        window_sums.push(sum);
    }

    // Combine windows from the top down: acc = acc·2^c + window.
    let mut acc = Projective::identity();
    for sum in window_sums.into_iter().rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc += sum;
    }
    acc
}

/// Extracts `count` bits starting at bit `lo` from little-endian limbs.
fn extract_bits(limbs: &[u64], lo: usize, count: usize) -> usize {
    debug_assert!(count < 64);
    let limb = lo / 64;
    let off = lo % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + count > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << count) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective};
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    fn naive(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
        bases
            .iter()
            .zip(scalars)
            .fold(G1Projective::identity(), |acc, (b, s)| {
                acc + b.to_projective() * *s
            })
    }

    #[test]
    fn extract_bits_crosses_limb_boundaries() {
        let limbs = [0xffff_ffff_ffff_ffff, 0x1];
        assert_eq!(extract_bits(&limbs, 0, 4), 0xf);
        assert_eq!(extract_bits(&limbs, 60, 8), 0b0001_1111);
        assert_eq!(extract_bits(&limbs, 64, 4), 1);
        assert_eq!(extract_bits(&limbs, 128, 4), 0);
    }

    #[test]
    fn msm_empty_and_tiny() {
        assert!(msm::<crate::bn254::G1Params>(&[], &[]).is_identity());
        let g = G1Affine::generator();
        let s = [Fr::from_u64(5)];
        assert_eq!(msm(&[g], &s), G1Projective::generator() * Fr::from_u64(5));
    }

    #[test]
    fn msm_matches_naive_at_crossover_sizes() {
        let mut rng = zkperf_ff::test_rng();
        for n in [7usize, 8, 33, 100] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n = {n}");
        }
    }

    #[test]
    fn msm_handles_zero_scalars_and_identity_bases() {
        let mut rng = zkperf_ff::test_rng();
        let mut bases: Vec<G1Affine> = (0..20)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..20).map(|_| Fr::random(&mut rng)).collect();
        scalars[3] = Fr::zero();
        scalars[11] = Fr::zero();
        bases[5] = G1Affine::identity();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }
}
