//! Multi-scalar multiplication (Pippenger's bucket method).
//!
//! MSM dominates both the `setup` and `proving` stages of Groth16; its
//! bucket accumulation produces the scattered memory traffic that the
//! paper's memory analysis attributes to the proving stage.
//!
//! The fast path layers four classic optimizations on the textbook bucket
//! method:
//!
//! * **GLV decomposition.** On curves with the cube-root endomorphism
//!   ([`CurveParams::glv_params`]), every 254-bit scalar splits into two
//!   signed ~128-bit halves and Pippenger runs over `2n` half-width
//!   scalars — roughly half the window passes for one extra field
//!   multiplication per point (`φ(x, y) = (β·x, y)`).
//! * **Signed-digit windows.** Each `c`-bit window digit is recoded into
//!   `[−(2^(c−1)−1), 2^(c−1)]` with a carry into the next window; negative
//!   digits add the negated base point. This halves the bucket count (and
//!   the per-window bucket reduction) for the same window width.
//! * **Batch-affine bucket accumulation.** Points are counting-sorted into
//!   per-bucket segments and summed with [`crate::batch_add::BatchAdder`]:
//!   shared-inversion affine additions at ~6 field multiplications each
//!   instead of ~11 for a Jacobian mixed addition.
//! * **Cache-aware window choice.** The width comes from the shared
//!   Pippenger cost model ([`crate::tuning`]) parameterized by the host's
//!   measured L2/LLC geometry, so the live bucket array stays in cache;
//!   `ZKPERF_MSM_WINDOW` pins it for reproducing fixed configurations.
//!
//! Scalars are written once into one flat limb buffer
//! ([`PrimeField::write_canonical_limbs`] or the GLV half-magnitudes), and
//! windows past the scalar bit length are never visited.
//!
//! [`msm_naive`] keeps the unoptimized reference semantics; the
//! property-test suite cross-checks the two on both curves.

use zkperf_ff::PrimeField;
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::batch_add::BatchAdder;
use crate::curve::{Affine, CurveParams, Projective};
use crate::glv::{GlvParams, HALF_LIMBS};
use crate::tuning;

/// Smallest MSM worth fanning out across the pool; below this the
/// per-window task overhead exceeds the bucket work.
const PAR_MIN_MSM: usize = 1 << 10;

/// Chooses the Pippenger window width (in bits) for `n` terms of
/// `scalar_bits`-bit (possibly GLV-halved) scalars, via the shared
/// cache-aware cost model.
pub(crate) fn window_bits<C: CurveParams>(n: usize, scalar_bits: usize) -> usize {
    tuning::window_bits(n, scalar_bits, std::mem::size_of::<Affine<C>>())
}

/// Reference implementation: independent double-and-add per term.
///
/// Semantically identical to [`msm`] (same slice-length and identity/zero
/// conventions) but with none of the windowed machinery; exists so the
/// optimized kernel has something honest to be checked against.
pub fn msm_naive<C: CurveParams>(bases: &[Affine<C>], scalars: &[C::Scalar]) -> Projective<C> {
    let n = bases.len().min(scalars.len());
    let mut acc = Projective::identity();
    for i in 0..n {
        acc += bases[i].to_projective() * scalars[i];
    }
    acc
}

/// Computes `Σ scalarsᵢ · basesᵢ`.
///
/// Scalars and bases beyond the shorter of the two slices are ignored.
/// Identity bases and zero scalars are handled (skipped) correctly.
/// Bases are assumed to lie in the prime-order subgroup — the standing
/// invariant of points whose scalar type is the subgroup order (and a
/// correctness requirement of the GLV route on cofactor > 1 curves).
///
/// # Examples
///
/// ```
/// use zkperf_ec::bn254::{G1Affine, G1Projective};
/// use zkperf_ec::msm;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// let g = G1Affine::generator();
/// let bases = vec![g; 3];
/// let scalars = vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
/// let expect = G1Projective::generator() * Fr::from_u64(6);
/// assert_eq!(msm(&bases, &scalars), expect);
/// ```
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[C::Scalar]) -> Projective<C> {
    let _g = trace::region_profile("msm");
    let n = bases.len().min(scalars.len());
    if n == 0 {
        return Projective::identity();
    }
    if n < 8 {
        // Naive double-and-add is faster at tiny sizes.
        return msm_naive(&bases[..n], &scalars[..n]);
    }
    // Instrumented runs skip the GLV route (like the pool below): the
    // characterization suite pins the plain serial op stream, and the
    // one-time parameter derivation must never land inside a traced
    // region, where its field ops would skew exactly one measurement.
    if !trace::is_active() {
        if let Some(glv) = C::glv_params() {
            return msm_glv(&bases[..n], &scalars[..n], glv);
        }
    }
    // Instrumented runs stay on the serial body so the characterization
    // suite sees the exact same op stream; the parallel variant computes
    // identical values (same decomposition, same reduction order), so
    // results match bit-for-bit either way.
    let use_pool = !trace::is_active() && pool::current_threads() > 1 && n >= PAR_MIN_MSM;

    // One flat canonical-limb buffer for every scalar: no per-scalar Vec.
    let num_limbs = C::Scalar::NUM_LIMBS;
    let mut limbs = vec![0u64; n * num_limbs];
    if use_pool {
        const LIMB_GRAIN: usize = 1024;
        pool::parallel_chunks_mut(&mut limbs, num_limbs * LIMB_GRAIN, |ci, chunk| {
            let base = ci * LIMB_GRAIN;
            for (j, row) in chunk.chunks_mut(num_limbs).enumerate() {
                scalars[base + j].write_canonical_limbs(row);
            }
        });
    } else {
        for (i, s) in scalars[..n].iter().enumerate() {
            s.write_canonical_limbs(&mut limbs[i * num_limbs..(i + 1) * num_limbs]);
        }
    }

    let total_bits = C::Scalar::modulus_bits() as usize;
    let c = window_bits::<C>(n, total_bits);
    let sums = if use_pool {
        pippenger_parallel(&bases[..n], &limbs, num_limbs, total_bits, c)
    } else {
        pippenger_serial(&bases[..n], &limbs, num_limbs, total_bits, c)
    };
    combine_windows(sums, c)
}

/// Computes `Σ scalarsᵢ · basesᵢ` with the base points arriving as a
/// sequence of chunks instead of one resident slice — the out-of-core MSM
/// entry point. `total` is the number of points the iterator will yield in
/// aggregate (the window width is chosen once from the *total* problem
/// size, exactly as [`msm`] would choose it, not per chunk).
///
/// Each chunk runs the same signed-digit/GLV Pippenger kernel as the
/// in-memory path (through `zkperf-pool` when the chunk clears the
/// parallel gate) producing per-window partial sums, which are folded into
/// a running per-window accumulator; one final window combine finishes the
/// job. Scalars are consumed positionally: chunk `k` pairs with the next
/// `chunk.len()` scalars.
///
/// Determinism contract: for a fixed chunk sequence the result is
/// bit-identical (including the projective representative) at any thread
/// count, because the per-chunk kernels are and the fold order is the
/// chunk order. Across *different* chunkings — including against [`msm`]
/// itself — the result is the same group element and therefore identical
/// after affine normalization (`to_affine`), which is the form every
/// serialized artifact uses; only the internal projective representative
/// may differ, since bucket sums associate differently.
///
/// The first chunk error aborts the fold and is returned as-is. Points
/// yielded beyond `total` (or beyond the scalar count) are ignored.
pub fn msm_stream<C, T, E, I>(
    total: usize,
    chunks: I,
    scalars: &[C::Scalar],
) -> Result<Projective<C>, E>
where
    C: CurveParams,
    T: AsRef<[Affine<C>]>,
    I: IntoIterator<Item = Result<T, E>>,
{
    let _g = trace::region_profile("msm");
    let n = total.min(scalars.len());
    if n == 0 {
        return Ok(Projective::identity());
    }
    let glv = if trace::is_active() { None } else { C::glv_params() };
    // Window geometry fixed once from the total problem size, mirroring
    // what msm() would pick for the same n fully resident.
    let (total_bits, c) = match glv {
        Some(g) => {
            let bits = g.half_bits();
            (bits, window_bits::<C>(2 * n, bits))
        }
        None => {
            let bits = C::Scalar::modulus_bits() as usize;
            (bits, window_bits::<C>(n, bits))
        }
    };
    let num_windows = (total_bits + 1).div_ceil(c);
    let mut acc = vec![Projective::identity(); num_windows];

    let mut offset = 0usize;
    for chunk in chunks {
        let chunk = chunk?;
        if offset >= n {
            break;
        }
        let pts = chunk.as_ref();
        let take = pts.len().min(n - offset);
        if take == 0 {
            continue;
        }
        let pts = &pts[..take];
        let scs = &scalars[offset..offset + take];
        let sums = match glv {
            Some(g) => glv_window_sums(pts, scs, g, total_bits, c),
            None => plain_window_sums(pts, scs, total_bits, c),
        };
        for (a, s) in acc.iter_mut().zip(sums) {
            *a += s;
        }
        offset += take;
    }
    Ok(combine_windows(acc, c))
}

/// Per-chunk window sums for the non-GLV route: canonical-limb recoding of
/// `scalars` followed by the Pippenger bucket body at the caller-fixed
/// window width `c`.
fn plain_window_sums<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[C::Scalar],
    total_bits: usize,
    c: usize,
) -> Vec<Projective<C>> {
    let n = bases.len();
    let use_pool = !trace::is_active() && pool::current_threads() > 1 && n >= PAR_MIN_MSM;
    let num_limbs = C::Scalar::NUM_LIMBS;
    let mut limbs = vec![0u64; n * num_limbs];
    if use_pool {
        const LIMB_GRAIN: usize = 1024;
        pool::parallel_chunks_mut(&mut limbs, num_limbs * LIMB_GRAIN, |ci, chunk| {
            let base = ci * LIMB_GRAIN;
            for (j, row) in chunk.chunks_mut(num_limbs).enumerate() {
                scalars[base + j].write_canonical_limbs(row);
            }
        });
    } else {
        for (i, s) in scalars[..n].iter().enumerate() {
            s.write_canonical_limbs(&mut limbs[i * num_limbs..(i + 1) * num_limbs]);
        }
    }
    if use_pool {
        pippenger_parallel(bases, &limbs, num_limbs, total_bits, c)
    } else {
        pippenger_serial(bases, &limbs, num_limbs, total_bits, c)
    }
}

/// The GLV front end: decomposes every scalar into two signed half-width
/// components and hands Pippenger a `2n`-point problem at half the bit
/// length. Signs are folded into the base points (`−k·P = k·(−P)`), so the
/// bucket machinery below never sees them.
fn msm_glv<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[C::Scalar],
    glv: &GlvParams<C>,
) -> Projective<C> {
    let total_bits = glv.half_bits();
    let c = window_bits::<C>(2 * bases.len(), total_bits);
    combine_windows(glv_window_sums(bases, scalars, glv, total_bits, c), c)
}

/// Per-chunk window sums for the GLV route: decomposes the chunk's scalars
/// into signed half-width components, builds the `[±P_i | ±φ(P_i)]`
/// 2n-point problem, and runs the Pippenger bucket body at the
/// caller-fixed window width `c`.
fn glv_window_sums<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[C::Scalar],
    glv: &GlvParams<C>,
    total_bits: usize,
    c: usize,
) -> Vec<Projective<C>> {
    let n = bases.len();
    let use_pool = !trace::is_active() && pool::current_threads() > 1 && n >= PAR_MIN_MSM;
    const GLV_GRAIN: usize = 512;

    // Decompose every scalar once; the splits are pure per-index functions
    // of the inputs, so the parallel fill is bit-identical to a serial one.
    let mut decomposed = vec![crate::glv::DecomposedScalar::default(); n];
    if use_pool {
        pool::parallel_fill(&mut decomposed, GLV_GRAIN, |i| glv.decompose(&scalars[i]));
    } else {
        for (d, s) in decomposed.iter_mut().zip(scalars) {
            *d = glv.decompose(s);
        }
    }

    // 2n-point problem: [±P_i | ±φ(P_i)] with the component signs folded
    // into the points, and one flat half-magnitude row per point.
    let mut points = vec![Affine::identity(); 2 * n];
    let mut limbs = vec![0u64; 2 * n * HALF_LIMBS];
    {
        let (p1, p2) = points.split_at_mut(n);
        let (l1, l2) = limbs.split_at_mut(n * HALF_LIMBS);
        let fill_half = |ps: &mut [Affine<C>], ls: &mut [u64], second: bool| {
            let point_at = |i: usize| {
                let d = &decomposed[i];
                if second {
                    let endo = glv.endo(&bases[i]);
                    if d.k2.neg {
                        endo.neg()
                    } else {
                        endo
                    }
                } else if d.k1.neg {
                    bases[i].neg()
                } else {
                    bases[i]
                }
            };
            let limbs_at = |i: usize| {
                let d = &decomposed[i];
                if second {
                    d.k2.limbs
                } else {
                    d.k1.limbs
                }
            };
            if use_pool {
                pool::parallel_fill(ps, GLV_GRAIN, point_at);
                pool::parallel_chunks_mut(ls, HALF_LIMBS * GLV_GRAIN, |ci, chunk| {
                    let base = ci * GLV_GRAIN;
                    for (j, row) in chunk.chunks_mut(HALF_LIMBS).enumerate() {
                        row.copy_from_slice(&limbs_at(base + j));
                    }
                });
            } else {
                for (i, p) in ps.iter_mut().enumerate() {
                    *p = point_at(i);
                }
                for (i, row) in ls.chunks_mut(HALF_LIMBS).enumerate() {
                    row.copy_from_slice(&limbs_at(i));
                }
            }
        };
        fill_half(p1, l1, false);
        fill_half(p2, l2, true);
    }

    if use_pool {
        pippenger_parallel(&points, &limbs, HALF_LIMBS, total_bits, c)
    } else {
        pippenger_serial(&points, &limbs, HALF_LIMBS, total_bits, c)
    }
}

/// The serial Pippenger body over a prepared point array and flat unsigned
/// limb buffer (`stride` limbs per point, digits meaningful up to
/// `total_bits`). Returns the per-window bucket sums so callers can either
/// combine them directly ([`combine_windows`]) or fold them into a
/// streaming accumulator ([`msm_stream`]).
fn pippenger_serial<C: CurveParams>(
    points: &[Affine<C>],
    limbs: &[u64],
    stride: usize,
    total_bits: usize,
    c: usize,
) -> Vec<Projective<C>> {
    let n = points.len();
    // Magnitudes stay below 2^total_bits; the +1 leaves room for the final
    // signed carry.
    let num_windows = (total_bits + 1).div_ceil(c);
    let half = 1usize << (c - 1); // signed digits: buckets 1..=2^(c-1)

    let mut carries = vec![0u8; n];
    let mut digits = vec![0i32; n];
    let mut counts = vec![0u32; half];
    let mut segs: Vec<(usize, usize)> = Vec::with_capacity(half);
    let mut sorted: Vec<Affine<C>> = vec![Affine::identity(); n];
    let mut adder = BatchAdder::new();

    let mut window_sums = Vec::with_capacity(num_windows);
    for w in 0..num_windows {
        // Signed-digit extraction with carry propagation from the previous
        // window: raw ∈ [0, 2^c]; anything above 2^(c-1) wraps negative.
        counts.fill(0);
        for i in 0..n {
            let window = &limbs[i * stride..(i + 1) * stride];
            let raw = extract_bits(window, w * c, c) + carries[i] as usize;
            let digit = if raw > half {
                carries[i] = 1;
                raw as i64 - (1i64 << c)
            } else {
                carries[i] = 0;
                raw as i64
            };
            let digit = if points[i].infinity { 0 } else { digit as i32 };
            digits[i] = digit;
            trace::branch(0x3001, digit != 0);
            if digit != 0 {
                counts[digit.unsigned_abs() as usize - 1] += 1;
            }
        }

        // Counting sort into per-bucket segments of the flat scratch buffer.
        segs.clear();
        let mut start = 0usize;
        for &count in counts.iter() {
            segs.push((start, 0));
            start += count as usize;
        }
        for i in 0..n {
            let d = digits[i];
            if d == 0 {
                continue;
            }
            let (seg_start, seg_len) = &mut segs[d.unsigned_abs() as usize - 1];
            // Scattered write into the bucket segment: the address stream
            // the memory analysis cares about.
            sorted[*seg_start + *seg_len] = if d < 0 { points[i].neg() } else { points[i] };
            *seg_len += 1;
        }

        // Each bucket collapses to its sum via shared-inversion affine adds.
        adder.reduce_segments(&mut sorted, &mut segs);

        // Running-sum reduction: Σ j·bucket[j] with 2·#buckets additions.
        let mut running = Projective::identity();
        let mut sum = Projective::identity();
        for &(seg_start, seg_len) in segs.iter().rev() {
            if seg_len > 0 {
                running = running.add_mixed(&sorted[seg_start]);
            }
            sum += running;
        }
        window_sums.push(sum);
    }

    window_sums
}

/// Window-parallel Pippenger: the same bucket method as
/// [`pippenger_serial`], decomposed into one independent task per window.
///
/// Three phases:
///
/// 1. signed-digit recoding, chunked over *points* (each row's carry chain
///    is local, so rows recode independently);
/// 2. bucket accumulation, one task per *window*, each writing its
///    index-addressed `window_sums` slot with private scratch buffers
///    (the caller finishes with the serial top-down window combine).
///
/// The decomposition depends only on `n`, and every task writes only
/// index-addressed slots, so the result is bit-identical to the serial
/// body at any thread count.
fn pippenger_parallel<C: CurveParams>(
    points: &[Affine<C>],
    limbs: &[u64],
    stride: usize,
    total_bits: usize,
    c: usize,
) -> Vec<Projective<C>> {
    let n = points.len();
    let num_windows = (total_bits + 1).div_ceil(c);
    let half = 1usize << (c - 1);

    // Phase 1: digits laid out row-major (`digits[i·W + w]`) so each
    // point's recoding — including its cross-window carry chain — lands in
    // one contiguous row and rows chunk cleanly.
    const DIGIT_GRAIN: usize = 512;
    let mut digits = vec![0i32; n * num_windows];
    pool::parallel_chunks_mut(&mut digits, num_windows * DIGIT_GRAIN, |ci, rows| {
        let base = ci * DIGIT_GRAIN;
        for (j, row) in rows.chunks_mut(num_windows).enumerate() {
            let i = base + j;
            if points[i].infinity {
                continue; // row stays zero, matching the serial force-to-0
            }
            let window = &limbs[i * stride..(i + 1) * stride];
            let mut carry = 0usize;
            for (w, d) in row.iter_mut().enumerate() {
                let raw = extract_bits(window, w * c, c) + carry;
                *d = if raw > half {
                    carry = 1;
                    (raw as i64 - (1i64 << c)) as i32
                } else {
                    carry = 0;
                    raw as i32
                };
            }
        }
    });

    // Phase 2: per-window bucket accumulation, mirroring the serial body's
    // counting sort and running-sum reduction exactly (same scan order ⇒
    // same segment contents ⇒ same field operations).
    let mut window_sums = vec![Projective::identity(); num_windows];
    pool::parallel_fill(&mut window_sums, 1, |w| {
        let mut counts = vec![0u32; half];
        for i in 0..n {
            let d = digits[i * num_windows + w];
            if d != 0 {
                counts[d.unsigned_abs() as usize - 1] += 1;
            }
        }
        let mut segs: Vec<(usize, usize)> = Vec::with_capacity(half);
        let mut start = 0usize;
        for &count in counts.iter() {
            segs.push((start, 0));
            start += count as usize;
        }
        let mut sorted: Vec<Affine<C>> = vec![Affine::identity(); start];
        for i in 0..n {
            let d = digits[i * num_windows + w];
            if d == 0 {
                continue;
            }
            let (seg_start, seg_len) = &mut segs[d.unsigned_abs() as usize - 1];
            sorted[*seg_start + *seg_len] = if d < 0 { points[i].neg() } else { points[i] };
            *seg_len += 1;
        }
        let mut adder = BatchAdder::new();
        adder.reduce_segments(&mut sorted, &mut segs);
        let mut running = Projective::identity();
        let mut sum = Projective::identity();
        for &(seg_start, seg_len) in segs.iter().rev() {
            if seg_len > 0 {
                running = running.add_mixed(&sorted[seg_start]);
            }
            sum += running;
        }
        sum
    });

    window_sums
}

/// Combines per-window sums from the top down: `acc = acc·2^c + window`.
fn combine_windows<C: CurveParams>(window_sums: Vec<Projective<C>>, c: usize) -> Projective<C> {
    let mut acc = Projective::identity();
    for sum in window_sums.into_iter().rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc += sum;
    }
    acc
}

/// Extracts `count` bits starting at bit `lo` from little-endian limbs.
fn extract_bits(limbs: &[u64], lo: usize, count: usize) -> usize {
    debug_assert!(count < 64);
    let limb = lo / 64;
    let off = lo % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + count > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << count) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective};
    use crate::FixedBaseTable;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn extract_bits_crosses_limb_boundaries() {
        let limbs = [0xffff_ffff_ffff_ffff, 0x1];
        assert_eq!(extract_bits(&limbs, 0, 4), 0xf);
        assert_eq!(extract_bits(&limbs, 60, 8), 0b0001_1111);
        assert_eq!(extract_bits(&limbs, 64, 4), 1);
        assert_eq!(extract_bits(&limbs, 128, 4), 0);
    }

    #[test]
    fn msm_empty_and_tiny() {
        assert!(msm::<crate::bn254::G1Params>(&[], &[]).is_identity());
        let g = G1Affine::generator();
        let s = [Fr::from_u64(5)];
        assert_eq!(msm(&[g], &s), G1Projective::generator() * Fr::from_u64(5));
    }

    #[test]
    fn msm_matches_naive_at_crossover_sizes() {
        let mut rng = zkperf_ff::test_rng();
        for n in [7usize, 8, 33, 100, 300] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars), "n = {n}");
        }
    }

    #[test]
    fn msm_handles_zero_scalars_and_identity_bases() {
        let mut rng = zkperf_ff::test_rng();
        let mut bases: Vec<G1Affine> = (0..20)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..20).map(|_| Fr::random(&mut rng)).collect();
        scalars[3] = Fr::zero();
        scalars[11] = Fr::zero();
        bases[5] = G1Affine::identity();
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    #[test]
    fn parallel_msm_is_bit_identical_to_serial() {
        let _lock = crate::TEST_POOL_LOCK.lock().unwrap();
        let mut rng = zkperf_ff::test_rng();
        let n = PAR_MIN_MSM + 37; // past the parallel gate, odd tail
        let table = FixedBaseTable::new(&G1Projective::generator());
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        scalars[5] = Fr::zero();
        scalars[n - 1] = -Fr::one();
        let mut bases = table.mul_batch(&scalars);
        bases[9] = G1Affine::identity();

        pool::set_threads(1);
        let serial = msm(&bases, &scalars);
        pool::set_threads(4);
        let par4 = msm(&bases, &scalars);
        pool::set_threads(2);
        let par2 = msm(&bases, &scalars);
        pool::set_threads(1);
        // Affine equality is exact limb equality — bit-identity, not just
        // projective-class equality.
        assert_eq!(serial.to_affine(), par4.to_affine());
        assert_eq!(serial.to_affine(), par2.to_affine());
    }

    #[test]
    fn msm_all_zero_scalars_is_identity() {
        let mut rng = zkperf_ff::test_rng();
        for n in [1usize, 7, 8, 64] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars = vec![Fr::zero(); n];
            assert!(msm(&bases, &scalars).is_identity(), "n = {n}");
            assert!(msm_naive(&bases, &scalars).is_identity(), "n = {n}");
        }
    }

    #[test]
    fn msm_mismatched_lengths_truncate_to_shorter_side() {
        // Documented contract: both kernels operate on the common prefix.
        let mut rng = zkperf_ff::test_rng();
        let bases: Vec<G1Affine> = (0..20)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..12).map(|_| Fr::random(&mut rng)).collect();
        let expect = msm(&bases[..12], &scalars);
        assert_eq!(msm(&bases, &scalars), expect);
        assert_eq!(msm_naive(&bases, &scalars), expect);
        let expect = msm(&bases, &scalars[..5]);
        assert_eq!(expect, msm(&bases[..5], &scalars[..5]));
        // Degenerate: one side empty.
        assert!(msm(&bases, &[]).is_identity());
        assert!(msm::<crate::bn254::G1Params>(&[], &scalars).is_identity());
    }

    #[test]
    fn msm_straddles_small_size_breakpoints() {
        // The naive path ends at n = 8 and the window model shifts width
        // with n; check sizes bracketing the old heuristic's breakpoints.
        let mut rng = zkperf_ff::test_rng();
        let bases: Vec<G1Affine> = (0..257)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..257).map(|_| Fr::random(&mut rng)).collect();
        for n in [1usize, 2, 3, 7, 8, 9, 31, 32, 33, 255, 256, 257] {
            assert_eq!(
                msm(&bases[..n], &scalars[..n]),
                msm_naive(&bases[..n], &scalars[..n]),
                "n = {n}"
            );
        }
    }

    #[test]
    fn msm_handles_extreme_and_duplicate_scalars() {
        // -1 (all top windows saturated) exercises the signed-digit carry
        // chain through the final window; duplicate bases exercise the
        // tangent-doubling path of the batch adder.
        let mut rng = zkperf_ff::test_rng();
        let p = G1Projective::random(&mut rng).to_affine();
        let bases = vec![p; 16];
        let mut scalars = vec![-Fr::one(); 16];
        scalars[7] = Fr::one();
        scalars[8] = Fr::from_u64(u64::MAX);
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    /// msm_stream over in-memory slices split at `chunk`, compared in
    /// affine form (the bit-identity level the streaming contract claims).
    fn stream_of(bases: &[G1Affine], scalars: &[Fr], chunk: usize) -> G1Affine {
        msm_stream(
            bases.len(),
            bases.chunks(chunk).map(Ok::<_, std::convert::Infallible>),
            scalars,
        )
        .unwrap()
        .to_affine()
    }

    #[test]
    fn msm_stream_matches_in_memory_at_any_chunking() {
        let mut rng = zkperf_ff::test_rng();
        let n = 333;
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[1] = -Fr::one();
        let expect = msm(&bases, &scalars).to_affine();
        for chunk in [1usize, 7, 64, 100, n - 1, n, n + 50] {
            assert_eq!(stream_of(&bases, &scalars, chunk), expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn msm_stream_empty_and_error_paths() {
        let empty: Vec<G1Affine> = Vec::new();
        let ok: Result<Projective<crate::bn254::G1Params>, ()> =
            msm_stream(0, std::iter::empty::<Result<Vec<G1Affine>, ()>>(), &[]);
        assert!(ok.unwrap().is_identity());
        // Zero scalars: the iterator must not be required to succeed.
        let ok: Result<Projective<crate::bn254::G1Params>, ()> =
            msm_stream(4, std::iter::once(Err::<Vec<G1Affine>, ()>(())), &[]);
        assert!(ok.unwrap().is_identity());
        let _ = empty;
        // A failing chunk aborts the fold with the error.
        let g = G1Affine::generator();
        let s = vec![Fr::one(); 4];
        let chunks: Vec<Result<Vec<G1Affine>, &str>> =
            vec![Ok(vec![g, g]), Err("checksum"), Ok(vec![g, g])];
        assert_eq!(msm_stream(4, chunks, &s).unwrap_err(), "checksum");
    }

    #[test]
    fn msm_stream_truncates_like_msm() {
        let mut rng = zkperf_ff::test_rng();
        let bases: Vec<G1Affine> = (0..20)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..12).map(|_| Fr::random(&mut rng)).collect();
        // total > scalars: the scalar count wins, extra points ignored.
        let expect = msm(&bases, &scalars).to_affine();
        assert_eq!(stream_of(&bases, &scalars, 5), expect);
        // total < yielded points: total wins.
        let expect = msm(&bases[..10], &scalars).to_affine();
        let got = msm_stream(
            10,
            bases.chunks(3).map(Ok::<_, std::convert::Infallible>),
            &scalars,
        )
        .unwrap()
        .to_affine();
        assert_eq!(got, expect);
    }

    #[test]
    fn msm_stream_is_thread_invariant_at_fixed_chunking() {
        let _lock = crate::TEST_POOL_LOCK.lock().unwrap();
        let mut rng = zkperf_ff::test_rng();
        let n = PAR_MIN_MSM + 11; // chunks straddle the parallel gate
        let table = FixedBaseTable::new(&G1Projective::generator());
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let bases = table.mul_batch(&scalars);
        let chunk = PAR_MIN_MSM / 2 + 3;

        pool::set_threads(1);
        let serial = stream_of(&bases, &scalars, chunk);
        pool::set_threads(4);
        let par = stream_of(&bases, &scalars, chunk);
        pool::set_threads(1);
        assert_eq!(serial, par);
        assert_eq!(serial, msm(&bases, &scalars).to_affine());
    }

    #[test]
    fn glv_msm_matches_plain_pippenger() {
        // Run the same inputs through the GLV front end and the plain
        // full-width body; both must agree with the naive reference.
        let mut rng = zkperf_ff::test_rng();
        let n = 64;
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[1] = -Fr::one();
        let glv = crate::bn254::G1Params::glv_params().expect("BN254 G1 has GLV");
        let via_glv = msm_glv(&bases, &scalars, glv);
        let num_limbs = Fr::NUM_LIMBS;
        let mut limbs = vec![0u64; n * num_limbs];
        for (i, s) in scalars.iter().enumerate() {
            s.write_canonical_limbs(&mut limbs[i * num_limbs..(i + 1) * num_limbs]);
        }
        let c = window_bits::<crate::bn254::G1Params>(n, Fr::modulus_bits() as usize);
        let plain = combine_windows(
            pippenger_serial(&bases, &limbs, num_limbs, Fr::modulus_bits() as usize, c),
            c,
        );
        let naive = msm_naive(&bases, &scalars);
        assert_eq!(via_glv, naive);
        assert_eq!(plain, naive);
    }
}
