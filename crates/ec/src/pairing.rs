//! Curve-agnostic Miller-loop machinery.
//!
//! Instead of sparse line-coefficient formulas, the Miller loop here runs on
//! the *untwisted* curve `E(F_q¹²)` in affine coordinates: G2 points are
//! mapped through the twist isomorphism once, and every subsequent step is
//! plain chord-and-tangent geometry over the (already well-tested) tower
//! arithmetic. This trades constant-factor speed for implementation
//! robustness — a deliberate choice documented in DESIGN.md, and immaterial
//! to the workload characterization, which measures our own substrate.

use zkperf_ff::{BigUint, Field, Frobenius, QuadExt, QuadExtParams};
use zkperf_trace as trace;

/// An affine point on the untwisted curve over the full extension field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtPoint<F> {
    /// x-coordinate.
    pub x: F,
    /// y-coordinate.
    pub y: F,
    /// Marker for the point at infinity.
    pub infinity: bool,
}

impl<F: Field + Frobenius> ExtPoint<F> {
    /// The point at infinity.
    pub fn identity() -> Self {
        ExtPoint {
            x: F::zero(),
            y: F::zero(),
            infinity: true,
        }
    }

    /// Coordinate-wise Frobenius (the map π of ate pairings).
    pub fn frobenius(&self, power: usize) -> Self {
        ExtPoint {
            x: self.x.frobenius(power),
            y: self.y.frobenius(power),
            infinity: self.infinity,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        ExtPoint {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }
}

/// Evaluates the line through `a` and `b` (tangent when `a == b`) at the
/// point `(xp, yp)`, returning `(line_value, a + b)`.
///
/// All special cases are handled: either input at infinity contributes a
/// constant line, and `b == −a` yields the vertical line `x − a.x`.
pub fn line_and_add<F: Field + Frobenius>(
    a: &ExtPoint<F>,
    b: &ExtPoint<F>,
    xp: F,
    yp: F,
) -> (F, ExtPoint<F>) {
    if a.infinity {
        return (F::one(), *b);
    }
    if b.infinity {
        return (F::one(), *a);
    }
    let lambda = if a.x == b.x {
        if a.y == b.y && !a.y.is_zero() {
            // Tangent: λ = 3x² / 2y.
            let x2 = a.x.square();
            (x2.double() + x2) * a.y.double().inverse().expect("y != 0")
        } else {
            // Vertical line through a and −a.
            return (xp - a.x, ExtPoint::identity());
        }
    } else {
        (b.y - a.y) * (b.x - a.x).inverse().expect("distinct x")
    };
    let line = (yp - a.y) - lambda * (xp - a.x);
    let x3 = lambda.square() - a.x - b.x;
    let y3 = lambda * (a.x - x3) - a.y;
    (
        line,
        ExtPoint {
            x: x3,
            y: y3,
            infinity: false,
        },
    )
}

/// The core Miller loop `f_{s,Q}(P)` over the bits of `s` (MSB first),
/// returning the accumulated function value and the final point `[s]Q`.
pub fn miller_loop<F: Field + Frobenius>(
    q: &ExtPoint<F>,
    xp: F,
    yp: F,
    s: &BigUint,
) -> (F, ExtPoint<F>) {
    let _g = trace::region_profile("miller_loop");
    let mut f = F::one();
    let mut t = *q;
    debug_assert!(s.bits() >= 2, "loop count must exceed 1");
    for i in (0..s.bits() - 1).rev() {
        f = f.square();
        let (l, t2) = line_and_add(&t, &t, xp, yp);
        f *= l;
        t = t2;
        trace::branch(0x4001, s.bit(i));
        if s.bit(i) {
            let (l, t3) = line_and_add(&t, q, xp, yp);
            f *= l;
            t = t3;
        }
    }
    (f, t)
}

/// The final exponentiation `f^((q¹² − 1)/r)`, split into the cheap
/// "easy part" (Frobenius and one inversion) and the "hard part", which is
/// performed as a plain square-and-multiply with the exact exponent
/// `(q⁴ − q² + 1)/r` computed in big-integer arithmetic.
pub fn final_exponentiation<P>(f: QuadExt<P>, hard_exponent: &BigUint) -> QuadExt<P>
where
    P: QuadExtParams,
    QuadExt<P>: Frobenius,
{
    let _g = trace::region_profile("final_exp");
    // Easy part: f^(q⁶ − 1) then ^(q² + 1). Conjugation is the q⁶-power
    // Frobenius on a quadratic-over-sextic tower.
    let f1 = f.conjugate() * f.inverse().expect("pairing value non-zero");
    let f2 = f1.frobenius(2) * f1;
    // Hard part.
    f2.pow(hard_exponent)
}

/// Computes the hard-part exponent `(q⁴ − q² + 1)/r`, asserting exactness.
pub fn hard_exponent(q: &BigUint, r: &BigUint) -> BigUint {
    let q2 = q * q;
    let q4 = &q2 * &q2;
    let num = &q4.checked_sub(&q2).expect("q4 >= q2") + &BigUint::one();
    let (quot, rem) = num.divrem(r);
    assert!(rem.is_zero(), "(q^4 - q^2 + 1) must be divisible by r");
    quot
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::{Fq12, Fq2, Fq6};

    fn pt(x: Fq12, y: Fq12) -> ExtPoint<Fq12> {
        ExtPoint {
            x,
            y,
            infinity: false,
        }
    }

    #[test]
    fn line_through_infinity_is_constant() {
        let a = ExtPoint::<Fq12>::identity();
        let b = pt(Fq12::from_u64(2), Fq12::from_u64(3));
        let (l, sum) = line_and_add(&a, &b, Fq12::from_u64(7), Fq12::from_u64(9));
        assert!(l.is_one());
        assert_eq!(sum, b);
        let (l2, sum2) = line_and_add(&b, &a, Fq12::from_u64(7), Fq12::from_u64(9));
        assert!(l2.is_one());
        assert_eq!(sum2, b);
    }

    #[test]
    fn vertical_line_between_point_and_negation() {
        let a = pt(Fq12::from_u64(2), Fq12::from_u64(3));
        let (l, sum) = line_and_add(&a, &a.neg(), Fq12::from_u64(7), Fq12::from_u64(1));
        assert!(sum.infinity);
        assert_eq!(l, Fq12::from_u64(5)); // 7 − 2
    }

    #[test]
    fn hard_exponent_is_exact_for_bn254() {
        use zkperf_ff::PrimeField;
        let q = zkperf_ff::bn254::Fq::modulus();
        let r = zkperf_ff::bn254::Fr::modulus();
        let h = hard_exponent(&q, &r);
        // Sanity: multiplying back recovers q⁴ − q² + 1.
        let q2 = &q * &q;
        let expect = &(&q2 * &q2).checked_sub(&q2).unwrap() + &BigUint::one();
        assert_eq!(&h * &r, expect);
    }

    #[test]
    fn ext_point_frobenius_and_neg() {
        let mut rng = zkperf_ff::test_rng();
        let x = Fq12::random(&mut rng);
        let y = Fq12::random(&mut rng);
        let p = pt(x, y);
        assert_eq!(p.neg().neg(), p);
        let f = p.frobenius(1);
        assert_eq!(f.x, x.frobenius(1));
        assert_eq!(f.y, y.frobenius(1));
        let _ = (Fq2::zero(), Fq6::zero());
    }
}
