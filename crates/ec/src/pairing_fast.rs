//! The fast pairing engine: twisted-curve Miller loops with precomputed
//! line coefficients.
//!
//! The reference implementation in [`crate::pairing`] runs the Miller loop
//! on the untwisted curve `E(Fq12)` in affine coordinates — one `Fq12`
//! inversion per step. This module keeps G2 on the sextic twist over `Fq2`
//! and uses homogeneous projective coordinates, so a doubling step costs a
//! handful of `Fq2` multiplications and no inversion at all. Line
//! evaluations populate only three of the six `Fq2` tower slots and are
//! folded into the accumulator with the sparse `mul_by_014` / `mul_by_034`
//! kernels from `zkperf-ff`.
//!
//! The line *coefficients* depend only on Q, so for a fixed G2 point the
//! whole sequence is precomputed once into a [`G2Prepared`] and every
//! subsequent pairing against that point pays just the sparse
//! multiplications — the production trick behind prepared verifying keys.
//!
//! Gating follows the GLV precedent: `ZKPERF_NO_FAST_PAIRING=1` or an
//! active trace session routes every pairing back to the untwisted serial
//! reference, so instrumented op streams are unchanged by this module.
//! Both paths produce bit-identical `Gt` outputs — the Miller values
//! differ by subfield factors that the final exponentiation kills, and the
//! testkit pins the post-exponentiation equality differentially.

use std::sync::OnceLock;

use zkperf_ff::{CubicExt, CubicExtParams, Field, QuadExt, QuadExtParams};
use zkperf_trace as trace;

use crate::curve::{Affine, CurveParams};

/// Which sextic twist the curve uses; decides which tower slots a line
/// evaluation populates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwistType {
    /// Divisive twist (`y² = x³ + b/ξ`, BN254): lines are `034`-sparse.
    D,
    /// Multiplicative twist (`y² = x³ + b·ξ`, BLS12-381): lines are
    /// `014`-sparse.
    M,
}

/// True when the twisted fast path may run: not disabled via
/// `ZKPERF_NO_FAST_PAIRING=1` and no trace session is live (instrumented
/// runs must keep the reference op stream).
pub fn fast_pairing_enabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    let disabled = *DISABLED
        .get_or_init(|| std::env::var("ZKPERF_NO_FAST_PAIRING").is_ok_and(|v| v == "1"));
    !disabled && !trace::is_active()
}

/// A G2 point with its full Miller-loop line-coefficient sequence
/// precomputed.
///
/// `coeffs` is `None` when the point was prepared while the fast path was
/// gated off (or for the identity); consumers fall back to the reference
/// Miller loop through the retained affine point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct G2Prepared<C: CurveParams> {
    /// The original affine point (reference fallback and identity checks).
    pub q: Affine<C>,
    /// Line-coefficient triples in loop order, when precomputed.
    pub coeffs: Option<Vec<[C::Base; 3]>>,
}

/// A twist point in homogeneous projective coordinates `(X : Y : Z)`
/// representing the affine point `(X/Z, Y/Z)`.
struct HomProjective<F: Field> {
    x: F,
    y: F,
    z: F,
}

/// Doubles `r` and returns the tangent-line coefficients (projective
/// formulas of Aranha et al.; `coeff_b` is the twist's `b'`).
fn doubling_step<F: Field>(
    r: &mut HomProjective<F>,
    coeff_b: F,
    two_inv: F,
    twist: TwistType,
) -> [F; 3] {
    let a = r.x * r.y * two_inv;
    let b = r.y.square();
    let c = r.z.square();
    let e = coeff_b * (c.double() + c);
    let f = e.double() + e;
    let g = (b + f) * two_inv;
    let h = (r.y + r.z).square() - (b + c);
    let i = e - b;
    let j = r.x.square();
    let e2 = e.square();
    r.x = a * (b - f);
    r.y = g.square() - (e2.double() + e2);
    r.z = b * h;
    match twist {
        TwistType::M => [i, j.double() + j, -h],
        TwistType::D => [-h, j.double() + j, i],
    }
}

/// Adds the affine point `(qx, qy)` into `r` and returns the chord-line
/// coefficients.
fn addition_step<F: Field>(
    r: &mut HomProjective<F>,
    qx: F,
    qy: F,
    twist: TwistType,
) -> [F; 3] {
    let theta = r.y - qy * r.z;
    let lambda = r.x - qx * r.z;
    let c = theta.square();
    let d = lambda.square();
    let e = lambda * d;
    let f = r.z * c;
    let g = r.x * d;
    let h = e + f - g.double();
    r.x = lambda * h;
    r.y = theta * (g - h) - e * r.y;
    r.z *= e;
    let j = theta * qx - lambda * qy;
    match twist {
        TwistType::M => [j, -theta, lambda],
        TwistType::D => [lambda, -theta, j],
    }
}

/// The non-adjacent form of `n`, least-significant digit first; the top
/// digit of a positive `n` is always `1`.
pub(crate) fn naf_digits(mut n: u128) -> Vec<i8> {
    let mut digits = Vec::new();
    while n > 0 {
        if n & 1 == 1 {
            let d: i8 = if n & 3 == 3 { -1 } else { 1 };
            digits.push(d);
            if d == 1 {
                n -= 1;
            } else {
                n += 1;
            }
        } else {
            digits.push(0);
        }
        n >>= 1;
    }
    digits
}

/// Plain binary digits of `n`, least-significant first (for loop counts
/// that are already low-weight, like the BLS parameter).
pub(crate) fn bit_digits(n: u128) -> Vec<i8> {
    let mut digits = Vec::new();
    let mut m = n;
    while m > 0 {
        digits.push((m & 1) as i8);
        m >>= 1;
    }
    digits
}

/// Collects the line-coefficient sequence for the Miller loop over
/// `digits` starting from `q`, followed by one addition step per entry of
/// `corrections` (the Frobenius adjustment points of the BN-style loop).
pub(crate) fn prepare_coeffs<C: CurveParams>(
    q: &Affine<C>,
    twist: TwistType,
    digits: &[i8],
    corrections: &[(C::Base, C::Base)],
) -> Vec<[C::Base; 3]> {
    let two_inv = C::Base::from_u64(2)
        .inverse()
        .expect("field characteristic is odd");
    // Loop-invariant: for the divisive twist this is `b/ξ`, whose
    // computation costs a base-field inversion.
    let coeff_b = C::coeff_b();
    let mut r = HomProjective {
        x: q.x,
        y: q.y,
        z: C::Base::one(),
    };
    let neg_qy = -q.y;
    let mut coeffs = Vec::with_capacity(digits.len() + digits.len() / 4 + corrections.len());
    for &digit in digits[..digits.len() - 1].iter().rev() {
        coeffs.push(doubling_step(&mut r, coeff_b, two_inv, twist));
        match digit {
            1 => coeffs.push(addition_step(&mut r, q.x, q.y, twist)),
            -1 => coeffs.push(addition_step(&mut r, q.x, neg_qy, twist)),
            _ => {}
        }
    }
    for &(cx, cy) in corrections {
        coeffs.push(addition_step(&mut r, cx, cy, twist));
    }
    coeffs
}

/// Folds one line into the Miller accumulator, scaling by the G1
/// coordinates (`px`, `py`) per the twist's sparsity pattern.
fn ell<PF2, P6, P12>(
    f: QuadExt<P12>,
    c: &[QuadExt<PF2>; 3],
    px: PF2::Base,
    py: PF2::Base,
    twist: TwistType,
) -> QuadExt<P12>
where
    PF2: QuadExtParams,
    P6: CubicExtParams<Base = QuadExt<PF2>>,
    P12: QuadExtParams<Base = CubicExt<P6>>,
{
    match twist {
        TwistType::M => f.mul_by_014(c[0], c[1].mul_by_base(px), c[2].mul_by_base(py)),
        TwistType::D => f.mul_by_034(c[0].mul_by_base(py), c[1].mul_by_base(px), c[2]),
    }
}

/// Evaluates a precomputed line sequence at the G1 point `(px, py)`: the
/// Miller loop over `digits` consuming one (doubling) or two
/// (doubling + addition) coefficient triples per digit, then `extra`
/// trailing correction lines.
pub(crate) fn eval_lines<PF2, P6, P12>(
    coeffs: &[[QuadExt<PF2>; 3]],
    digits: &[i8],
    extra: usize,
    px: PF2::Base,
    py: PF2::Base,
    twist: TwistType,
) -> QuadExt<P12>
where
    PF2: QuadExtParams,
    P6: CubicExtParams<Base = QuadExt<PF2>>,
    P12: QuadExtParams<Base = CubicExt<P6>>,
{
    let mut f = QuadExt::<P12>::one();
    let mut it = coeffs.iter();
    for &digit in digits[..digits.len() - 1].iter().rev() {
        f = f.square();
        f = ell(f, it.next().expect("doubling line present"), px, py, twist);
        if digit != 0 {
            f = ell(f, it.next().expect("addition line present"), px, py, twist);
        }
    }
    for _ in 0..extra {
        f = ell(f, it.next().expect("correction line present"), px, py, twist);
    }
    debug_assert!(it.next().is_none(), "coefficient stream fully consumed");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naf_digits_recompose_and_are_sparse() {
        for n in [1u128, 2, 3, 7, 0xd201_0000_0001_0000, 29793968203157093288] {
            let digits = naf_digits(n);
            let mut acc: i128 = 0;
            for &d in digits.iter().rev() {
                acc = 2 * acc + i128::from(d);
            }
            assert_eq!(acc, n as i128);
            assert_eq!(*digits.last().unwrap(), 1, "top NAF digit is 1");
            // Non-adjacency: no two consecutive nonzero digits.
            for w in digits.windows(2) {
                assert!(w[0] == 0 || w[1] == 0, "NAF property violated for {n}");
            }
        }
    }

    #[test]
    fn bit_digits_recompose() {
        let digits = bit_digits(0b1011_0100);
        let mut acc = 0u128;
        for &d in digits.iter().rev() {
            acc = 2 * acc + d as u128;
        }
        assert_eq!(acc, 0b1011_0100);
    }

    #[test]
    fn fast_pairing_gate_respects_trace_sessions() {
        // Outside any trace session the gate is env-controlled; inside one
        // it must be closed regardless.
        let _ = fast_pairing_enabled();
        let session = zkperf_trace::Session::begin();
        assert!(!fast_pairing_enabled());
        let _ = session.finish();
    }
}
