//! Cache-aware window selection for Pippenger-style kernels.
//!
//! Both the bucket MSM ([`crate::msm`]) and the fixed-base batch
//! multiplier ([`crate::FixedBaseTable`]) trade additions against a table
//! whose live working set grows as `2^(c−1)` points. The classic
//! `c ≈ log n` rule ignores where that working set lands in the memory
//! hierarchy: once the bucket array spills the L2 (and later the LLC),
//! every scattered bucket access eats a miss and a wider window *loses*
//! time even though it does fewer field multiplications.
//!
//! The model here prices a window width `c` in field-multiplication
//! units — the one currency both costs share:
//!
//! ```text
//! windows(c) = ⌈(bits + 1) / c⌉
//! cost(c)    = windows(c) · [ n · (ADD_MULS + penalty(c))
//!                           + 2^(c−1) · REDUCE_MULS ]
//! penalty(c) = 0              if 2^(c−1)·point_bytes ≤ L2
//!              LLC_PENALTY    if it fits the LLC
//!              DRAM_PENALTY   otherwise
//! ```
//!
//! `ADD_MULS ≈ 6` is the shared-inversion batch-affine addition, and
//! `REDUCE_MULS ≈ 27` covers the two Jacobian additions of the per-bucket
//! running-sum reduction. The cache penalties convert an average miss
//! latency into equivalent multiplications (a ~20 ns 4-limb Montgomery
//! multiply vs ~12/45/90 ns L2/LLC/DRAM round trips, discounted for the
//! miss-level parallelism of the scattered stream).
//!
//! The cache sizes come from a one-time host probe
//! ([`zkperf_machine::host_caches`]), *not* from the simulated
//! [`zkperf_machine::CpuProfile`]: op streams must stay identical across
//! simulated CPUs. `ZKPERF_MSM_WINDOW=<bits>` overrides the choice for
//! reproducing a fixed configuration.

use std::sync::OnceLock;

use zkperf_machine::host_caches;

/// Field multiplications per batch-affine bucket accumulation.
const ADD_MULS: u64 = 6;

/// Field multiplications per bucket in the running-sum reduction
/// (one mixed add + one full Jacobian add ≈ 11 + 16).
const REDUCE_MULS: u64 = 27;

/// Extra mult-equivalents per bucket access once the live set spills L2.
const LLC_PENALTY: u64 = 2;

/// Extra mult-equivalents per bucket access once the live set spills LLC.
const DRAM_PENALTY: u64 = 6;

/// Widest window the model will pick; matches the fixed-base table limit.
const MAX_WINDOW: usize = 14;

/// Parses `ZKPERF_MSM_WINDOW` once per process.
fn env_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let raw = std::env::var("ZKPERF_MSM_WINDOW").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(bits) if (1..=MAX_WINDOW).contains(&bits) => Some(bits),
            _ => {
                eprintln!(
                    "zkperf: ignoring ZKPERF_MSM_WINDOW={raw:?} (expected 1..={MAX_WINDOW})"
                );
                None
            }
        }
    })
}

/// Evaluates the cost model for one candidate width.
fn window_cost(
    c: usize,
    n: u64,
    scalar_bits: u64,
    point_bytes: u64,
    l2_bytes: u64,
    llc_bytes: u64,
) -> u64 {
    let windows = (scalar_bits + 1).div_ceil(c as u64);
    let buckets = 1u64 << (c - 1);
    let live_bytes = buckets * point_bytes;
    let penalty = if live_bytes <= l2_bytes {
        0
    } else if live_bytes <= llc_bytes {
        LLC_PENALTY
    } else {
        DRAM_PENALTY
    };
    windows * (n * (ADD_MULS + penalty) + buckets * REDUCE_MULS)
}

/// Picks the window width minimizing the model cost for `n` terms of
/// `scalar_bits`-bit scalars with `point_bytes`-sized table entries,
/// against the host cache hierarchy.
///
/// Deterministic per process: the host probe runs once, and the simulated
/// CPU profile is never consulted. `ZKPERF_MSM_WINDOW` wins over the model.
pub fn window_bits(n: usize, scalar_bits: usize, point_bytes: usize) -> usize {
    if let Some(bits) = env_override() {
        return bits;
    }
    if n <= 1 {
        return 1;
    }
    let caches = host_caches();
    let mut best = (u64::MAX, 1usize);
    for c in 1..=MAX_WINDOW {
        let cost = window_cost(
            c,
            n as u64,
            scalar_bits as u64,
            point_bytes as u64,
            caches.l2.size_bytes as u64,
            caches.llc.size_bytes as u64,
        );
        // Strict `<` keeps the narrowest window among ties: smaller live
        // set, same modeled cost.
        if cost < best.0 {
            best = (cost, c);
        }
    }
    best.1
}

/// Smallest chunk the streaming planner will emit: below this the
/// per-chunk Pippenger setup (limb recoding, bucket scratch) dominates.
pub const MIN_STREAM_CHUNK: usize = 256;

/// Largest chunk the streaming planner will emit, regardless of budget:
/// past this the chunk stops fitting any reasonable LLC share and larger
/// chunks buy nothing.
pub const MAX_STREAM_CHUNK: usize = 1 << 22;

/// Derives the streaming-MSM chunk size (in points) from a memory budget.
///
/// The per-point transient working set of one chunk pass is priced at
/// `4·point_bytes + 4·scalar_bytes`: the decoded chunk buffer, the GLV
/// expansion to `[±P | ±φP]` plus sorted bucket scratch (≈ 3 extra point
/// copies), and the decomposed half-limb rows. A quarter of the budget is
/// granted to that transient set — the rest stays available for the
/// resident scalars, accumulators, and whatever else the stage holds —
/// and the result is clamped to `[MIN_STREAM_CHUNK, MAX_STREAM_CHUNK]`.
///
/// Pure function of its arguments: the chunking (and therefore the exact
/// fold sequence of the streaming path) is reproducible from the budget
/// alone.
pub fn stream_chunk_points(budget_bytes: u64, point_bytes: usize, scalar_bytes: usize) -> usize {
    let per_point = (4 * point_bytes + 4 * scalar_bytes).max(1) as u64;
    let chunk = (budget_bytes / 4) / per_point;
    (chunk as usize).clamp(MIN_STREAM_CHUNK, MAX_STREAM_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize, bits: usize) -> usize {
        // Route through the public chooser so the env override and host
        // probe paths are exercised too (override unset under cargo test).
        window_bits(n, bits, 64)
    }

    #[test]
    fn window_grows_with_n() {
        let mut prev = 0;
        for log2 in [3usize, 5, 8, 10, 12, 14, 16, 18, 20] {
            let c = model(1 << log2, 254);
            assert!(c >= prev, "width must be monotone in n (log2 = {log2})");
            assert!((1..=MAX_WINDOW).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn tiny_inputs_get_narrow_windows() {
        assert_eq!(model(0, 254), 1);
        assert_eq!(model(1, 254), 1);
        assert!(model(16, 254) <= 4);
    }

    #[test]
    fn half_width_scalars_prefer_no_wider_windows() {
        // GLV halves the scalar bits; the window count scales with the bit
        // length, so the chosen width stays in the same neighbourhood as
        // the full-width choice (± the ⌈bits/c⌉ rounding granularity).
        for log2 in [10usize, 12, 14, 16] {
            let full = model(1 << log2, 254);
            let half = model(1 << log2, 131);
            assert!(half <= full + 1, "log2 = {log2}: {half} > {full} + 1");
        }
    }

    #[test]
    fn cache_pressure_caps_the_window() {
        // With a tiny L2/LLC the model must refuse giant bucket arrays
        // even at huge n.
        let cost_small_cache =
            |c: usize| window_cost(c, 1 << 22, 254, 64, 64 << 10, 256 << 10);
        let best = (1..=MAX_WINDOW)
            .min_by_key(|&c| cost_small_cache(c))
            .unwrap();
        let cost_big_cache =
            |c: usize| window_cost(c, 1 << 22, 254, 64, 2 << 20, 36 << 20);
        let best_big = (1..=MAX_WINDOW)
            .min_by_key(|&c| cost_big_cache(c))
            .unwrap();
        assert!(best <= best_big, "small caches must not pick wider windows");
    }

    #[test]
    fn stream_chunks_scale_with_budget_and_stay_clamped() {
        let at = |budget: u64| stream_chunk_points(budget, 72, 32);
        assert_eq!(at(0), MIN_STREAM_CHUNK);
        assert_eq!(at(1 << 10), MIN_STREAM_CHUNK);
        assert_eq!(at(u64::MAX / 8), MAX_STREAM_CHUNK);
        let small = at(32 << 20);
        let big = at(256 << 20);
        assert!(small < big, "{small} vs {big}");
        // 32 MiB must split a 2^16-point query into several chunks — the
        // check.sh memory-bounded smoke tier relies on this.
        assert!(small < 1 << 16, "{small}");
        assert!(small >= MIN_STREAM_CHUNK);
    }
}
