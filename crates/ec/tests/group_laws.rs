//! Property-based tests of the curve groups: abelian-group laws,
//! coordinate-system consistency, MSM linearity, and pairing bilinearity
//! with random scalars.

use proptest::prelude::*;
use rand::SeedableRng;

use zkperf_ec::{msm, Affine, CurveParams, Projective};
use zkperf_ff::Field;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn random_point<C: CurveParams>(seed: u64) -> Projective<C> {
    Projective::random(&mut rng_from(seed))
}

macro_rules! group_suite {
    ($name:ident, $params:ty) => {
        mod $name {
            use super::*;
            type P = Projective<$params>;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]

                #[test]
                fn group_laws(s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
                    let (a, b, c) = (
                        random_point::<$params>(s1),
                        random_point::<$params>(s2),
                        random_point::<$params>(s3),
                    );
                    prop_assert_eq!(a + b, b + a);
                    prop_assert_eq!((a + b) + c, a + (b + c));
                    prop_assert_eq!(a + P::identity(), a);
                    prop_assert!((a - a).is_identity());
                    prop_assert_eq!(a.double(), a + a);
                }

                #[test]
                fn mixed_add_agrees_with_general_add(s1 in any::<u64>(), s2 in any::<u64>()) {
                    let a = random_point::<$params>(s1);
                    let b = random_point::<$params>(s2);
                    let b_affine = b.to_affine();
                    prop_assert_eq!(a.add_mixed(&b_affine), a + b);
                    // Doubling through mixed add (same point).
                    let a_affine = a.to_affine();
                    prop_assert_eq!(a.add_mixed(&a_affine), a.double());
                }

                #[test]
                fn affine_roundtrip_and_curve_membership(s in any::<u64>()) {
                    let p = random_point::<$params>(s);
                    let affine = p.to_affine();
                    prop_assert!(affine.is_on_curve());
                    prop_assert_eq!(affine.to_projective(), p);
                }

                #[test]
                fn scalar_mul_distributes(x in 1u64..u64::MAX, y in 1u64..u64::MAX) {
                    type S = <$params as CurveParams>::Scalar;
                    let g = P::generator();
                    let (sx, sy) = (S::from_u64(x), S::from_u64(y));
                    prop_assert_eq!(g * sx + g * sy, g * (sx + sy));
                }

                #[test]
                fn batch_to_affine_matches_individual(
                    seeds in proptest::collection::vec(any::<u64>(), 1..8),
                    with_identity in any::<bool>(),
                ) {
                    let mut points: Vec<P> = seeds
                        .iter()
                        .map(|&s| random_point::<$params>(s))
                        .collect();
                    if with_identity {
                        points.insert(points.len() / 2, P::identity());
                    }
                    let batch = P::batch_to_affine(&points);
                    for (p, a) in points.iter().zip(&batch) {
                        prop_assert_eq!(p.to_affine(), *a);
                    }
                }
            }
        }
    };
}

group_suite!(bn254_g1, zkperf_ec::bn254::G1Params);
group_suite!(bn254_g2, zkperf_ec::bn254::G2Params);
group_suite!(bls_g1, zkperf_ec::bls12_381::G1Params);
group_suite!(bls_g2, zkperf_ec::bls12_381::G2Params);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn msm_is_linear_in_scalars(
        seeds in proptest::collection::vec(any::<u64>(), 2..24),
        factor in 2u64..100,
    ) {
        use zkperf_ec::bn254::G1Params;
        use zkperf_ff::bn254::Fr;
        let mut rng = rng_from(seeds[0]);
        let bases: Vec<Affine<G1Params>> = seeds
            .iter()
            .map(|&s| random_point::<G1Params>(s).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..bases.len()).map(|_| Fr::random(&mut rng)).collect();
        let f = Fr::from_u64(factor);
        let scaled: Vec<Fr> = scalars.iter().map(|&s| s * f).collect();
        prop_assert_eq!(msm(&bases, &scaled), msm(&bases, &scalars) * f);
    }

    #[test]
    fn pairing_bilinear_random_scalars(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        use zkperf_ec::bn254::{pairing, G1Projective, G2Projective};
        use zkperf_ff::bn254::Fr;
        let (fa, fb) = (Fr::from_u64(a), Fr::from_u64(b));
        let p = (G1Projective::generator() * fa).to_affine();
        let q = (G2Projective::generator() * fb).to_affine();
        let lhs = pairing(&p, &q);
        let rhs = pairing(
            &(G1Projective::generator() * (fa * fb)).to_affine(),
            &G2Projective::generator().to_affine(),
        );
        prop_assert_eq!(lhs, rhs);
    }
}

#[test]
fn fixed_base_table_matches_msm_semantics() {
    use zkperf_ec::bn254::G1Params;
    use zkperf_ec::FixedBaseTable;
    use zkperf_ff::bn254::Fr;
    let g = Projective::<G1Params>::generator();
    let table = FixedBaseTable::new(&g);
    let mut rng = rng_from(42);
    let scalars: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
    let batch = table.mul_batch(&scalars);
    let gens = vec![g.to_affine(); scalars.len()];
    let total: Projective<G1Params> = batch
        .iter()
        .fold(Projective::identity(), |acc, p| acc.add_mixed(p));
    assert_eq!(total, msm(&gens, &scalars));
}
