//! Fixed-width limb arithmetic shared by the Montgomery fields.
//!
//! Everything here is `const fn` so the per-field constants (`R`, `R²`,
//! `-p⁻¹ mod 2⁶⁴`) can be derived at compile time from nothing but the
//! modulus, which keeps hand-entered constants — and therefore transcription
//! bugs — to a minimum.

/// `a + b + carry`, returning `(sum, carry_out)`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow`, returning `(diff, borrow_out)` with `borrow_out ∈ {0,1}`.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `acc + a * b + carry`, returning `(low, high)`.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Compares two little-endian limb arrays: `true` iff `a >= b`.
#[inline]
pub const fn geq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    let mut i = N;
    while i > 0 {
        i -= 1;
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// `a - b` over `N` limbs; caller guarantees `a >= b`.
#[inline]
pub const fn sub_noborrow<const N: usize>(a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < N {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    out
}

/// Branchless limb select: `a` if `cond == 1`, `b` if `cond == 0`.
///
/// Compiles to mask-and-combine (no data-dependent branch), which is what
/// the hot-path reductions want: on random field elements the "needs one
/// subtraction" condition is close to a coin flip, so a real branch would
/// mispredict constantly.
#[inline(always)]
pub const fn select<const N: usize>(cond: u64, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mask = 0u64.wrapping_sub(cond);
    let mut out = [0u64; N];
    let mut i = 0;
    while i < N {
        out[i] = (a[i] & mask) | (b[i] & !mask);
        i += 1;
    }
    out
}

/// `a - b` over `N` limbs, returning `(diff, borrow_out)`.
#[inline(always)]
pub const fn sub_borrow<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < N {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    (out, borrow)
}

/// Reduces `sum + carry·2^(64N)` (assumed `< 2·modulus`) into `[0, modulus)`
/// with at most one subtraction, branchlessly. Returns the result and a
/// `{0,1}` flag recording whether the subtraction fired.
#[inline(always)]
pub const fn reduce_once<const N: usize>(
    sum: &[u64; N],
    carry: u64,
    modulus: &[u64; N],
) -> ([u64; N], u64) {
    let (diff, borrow) = sub_borrow(sum, modulus);
    let use_diff = carry | (borrow ^ 1);
    (select(use_diff, &diff, sum), use_diff)
}

/// `a + b` over `N` limbs, returning `(sum, carry_out)`.
#[inline]
pub const fn add_carry<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0u64;
    let mut i = 0;
    while i < N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    (out, carry)
}

/// Doubles `a` modulo `modulus`. Requires `a < modulus` and the modulus top
/// bit clear (true for all fields in this suite).
pub const fn double_mod<const N: usize>(a: &[u64; N], modulus: &[u64; N]) -> [u64; N] {
    let (sum, carry) = add_carry(a, a);
    if carry == 1 || geq(&sum, modulus) {
        sub_noborrow(&sum, modulus)
    } else {
        sum
    }
}

/// `2^(64 * shifts) mod modulus`, by repeated modular doubling of 1.
///
/// Used to derive the Montgomery constants `R = 2^(64N) mod p` and
/// `R² = 2^(128N) mod p` at compile time.
pub const fn pow2_mod<const N: usize>(shifts: usize, modulus: &[u64; N]) -> [u64; N] {
    let mut acc = [0u64; N];
    acc[0] = 1;
    let mut i = 0;
    while i < shifts {
        acc = double_mod(&acc, modulus);
        i += 1;
    }
    acc
}

/// `-p⁻¹ mod 2⁶⁴` for an odd `p0` (the low limb of the modulus), via Newton
/// iteration: five steps double the number of correct bits from 5 to 64+.
pub const fn mont_inv64(p0: u64) -> u64 {
    let mut inv = 1u64;
    let mut i = 0;
    // Invariant: inv ≡ p0^{-1} mod 2^(2^i) after i iterations of x ← x(2 − p0·x).
    while i < 63 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// `true` iff every limb is zero.
#[inline]
pub const fn is_zero<const N: usize>(a: &[u64; N]) -> bool {
    let mut i = 0;
    while i < N {
        if a[i] != 0 {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_wide() {
        let (lo, hi) = mac(1, u64::MAX, u64::MAX, 1);
        // (2^64-1)^2 + 2 = 2^128 - 2^65 + 3
        assert_eq!(lo, 3);
        assert_eq!(hi, u64::MAX - 1);
    }

    #[test]
    fn geq_orders_lexicographically_from_high_limb() {
        assert!(geq(&[0, 1], &[u64::MAX, 0]));
        assert!(!geq(&[u64::MAX, 0], &[0, 1]));
        assert!(geq(&[7, 7], &[7, 7]));
    }

    #[test]
    fn pow2_mod_small_modulus() {
        // mod 13: 2^0..2^6 = 1,2,4,8,3,6,12
        let m = [13u64];
        assert_eq!(pow2_mod(0, &m), [1]);
        assert_eq!(pow2_mod(4, &m), [3]);
        assert_eq!(pow2_mod(6, &m), [12]);
        assert_eq!(pow2_mod(64, &m), [(u128::pow(2, 64) % 13) as u64]);
    }

    #[test]
    fn mont_inv64_is_negated_inverse() {
        for p0 in [1u64, 3, 0xffff_ffff_ffff_ffff, 0x3c208c16d87cfd47] {
            let inv = mont_inv64(p0);
            assert_eq!(p0.wrapping_mul(inv.wrapping_neg()), 1, "p0 = {p0:#x}");
        }
    }
}
