//! Montgomery batch (simultaneous) inversion.
//!
//! Inverting `n` field elements costs one real inversion plus `3(n-1)`
//! multiplications instead of `n` inversions — the classic trick behind
//! batch affine-coordinate conversions and batched affine point addition,
//! where the per-element field inversion would otherwise dominate.

use crate::traits::Field;

/// Inverts every non-zero element of `values` in place; zeros are left
/// unchanged (the convention batched curve kernels rely on: an identity
/// point simply stays identity).
///
/// # Examples
///
/// ```
/// use zkperf_ff::{batch_inverse, Field, bn254::Fr};
///
/// let mut xs = vec![Fr::from_u64(2), Fr::zero(), Fr::from_u64(7)];
/// batch_inverse(&mut xs);
/// assert!((xs[0] * Fr::from_u64(2)).is_one());
/// assert!(xs[1].is_zero());
/// assert!((xs[2] * Fr::from_u64(7)).is_one());
/// ```
pub fn batch_inverse<F: Field>(values: &mut [F]) {
    let mut scratch = Vec::new();
    batch_inverse_with_scratch(values, &mut scratch);
}

/// [`batch_inverse`] with a caller-owned scratch buffer, so tight loops
/// (per-window batched point additions) can amortize the prefix-product
/// allocation across calls. The scratch is cleared and refilled; its
/// capacity is retained between calls.
pub fn batch_inverse_with_scratch<F: Field>(values: &mut [F], scratch: &mut Vec<F>) {
    scratch.clear();
    scratch.reserve(values.len());
    let mut acc = F::one();
    for v in values.iter() {
        scratch.push(acc);
        if !v.is_zero() {
            acc *= *v;
        }
    }
    // `acc` is a product of non-zero field elements, hence non-zero; the
    // fallback keeps this path panic-free if that invariant ever broke.
    let Some(mut suffix) = acc.inverse() else {
        return;
    };
    for i in (0..values.len()).rev() {
        if values[i].is_zero() {
            continue;
        }
        let inv = scratch[i] * suffix;
        suffix *= values[i];
        values[i] = inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::Fr;
    use crate::traits::PrimeField;

    #[test]
    fn matches_individual_inversions() {
        let mut rng = crate::test_rng();
        let original: Vec<Fr> = (0..37).map(|_| Fr::random(&mut rng)).collect();
        let mut batched = original.clone();
        batch_inverse(&mut batched);
        for (o, b) in original.iter().zip(&batched) {
            assert_eq!(o.inverse().unwrap(), *b);
        }
    }

    #[test]
    fn zeros_are_skipped_and_preserved() {
        let mut values = vec![
            Fr::zero(),
            Fr::from_u64(3),
            Fr::zero(),
            Fr::from_u64(5),
            Fr::zero(),
        ];
        batch_inverse(&mut values);
        assert!(values[0].is_zero());
        assert!(values[2].is_zero());
        assert!(values[4].is_zero());
        assert!((values[1] * Fr::from_u64(3)).is_one());
        assert!((values[3] * Fr::from_u64(5)).is_one());
    }

    #[test]
    fn empty_and_all_zero_inputs_are_noops() {
        let mut empty: Vec<Fr> = Vec::new();
        batch_inverse(&mut empty);
        let mut zeros = vec![Fr::zero(); 4];
        batch_inverse(&mut zeros);
        assert!(zeros.iter().all(Fr::is_zero));
    }

    #[test]
    fn scratch_variant_reuses_capacity() {
        let mut rng = crate::test_rng();
        let mut scratch = Vec::new();
        for n in [1usize, 8, 64] {
            let mut values: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let expect: Vec<Fr> = values.iter().map(|v| v.inverse().unwrap()).collect();
            batch_inverse_with_scratch(&mut values, &mut scratch);
            assert_eq!(values, expect);
        }
        assert!(scratch.capacity() >= 64);
    }

    #[test]
    fn canonical_limbs_match_biguint_path() {
        let mut rng = crate::test_rng();
        for _ in 0..16 {
            let v = Fr::random(&mut rng);
            let mut fast = [0u64; 4];
            v.write_canonical_limbs(&mut fast);
            assert_eq!(fast.to_vec(), v.to_biguint().to_limbs(4));
        }
    }
}
