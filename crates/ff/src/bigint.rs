//! Arbitrary-precision unsigned integers on `u64` limbs.
//!
//! This is deliberately a small, dependency-free bignum: the suite needs it
//! to parse field-element constants, print canonical values in decimal, and
//! compute pairing exponents such as `(p⁴ − p² + 1) / r` exactly. It also
//! plays the role of the paper's hot `bigint` function — the multiply and
//! divide entry points run inside a `bigint` trace region so the code
//! analysis can attribute time to them.

use std::cmp::Ordering;
use std::fmt;

use zkperf_trace as trace;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
///
/// The representation is always normalized: no trailing zero limbs, and zero
/// is the empty limb vector.
///
/// # Examples
///
/// ```
/// use zkperf_ff::BigUint;
/// let a = BigUint::from_str_radix("123456789012345678901234567890", 10).unwrap();
/// let b = BigUint::from_u64(2);
/// assert_eq!((&a * &b).to_string(), "246913578024691357802469135780");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] or field element from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single limb.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint { limbs: vec![v] };
        n.normalize();
        n
    }

    /// Constructs from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut n = BigUint {
            limbs: limbs.to_vec(),
        };
        n.normalize();
        n
    }

    /// The little-endian limbs (no trailing zeros; empty for zero).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Little-endian limbs zero-padded or truncated to exactly `n` entries.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n` limbs.
    pub fn to_limbs(&self, n: usize) -> Vec<u64> {
        assert!(self.limbs.len() <= n, "value does not fit in {n} limbs");
        let mut out = self.limbs.clone();
        out.resize(n, 0);
        out
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (little-endian); bits beyond the width are zero.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of trailing zero bits; zero for the value zero.
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Parses from `radix` 10 or 16 (an optional `0x` prefix is accepted for
    /// radix 16; underscores are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigIntError`] for an empty literal, an unsupported
    /// radix, or an invalid digit.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigIntError> {
        if radix != 10 && radix != 16 {
            return Err(ParseBigIntError {
                kind: "unsupported radix",
            });
        }
        let s = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).map_or(s, |rest| {
            if radix == 16 {
                rest
            } else {
                s
            }
        });
        let mut any = false;
        let mut acc = BigUint::zero();
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let digit = ch.to_digit(radix).ok_or(ParseBigIntError {
                kind: "invalid digit",
            })?;
            acc = acc.mul_u64(radix as u64);
            acc = &acc + &BigUint::from_u64(u64::from(digit));
            any = true;
        }
        if !any {
            return Err(ParseBigIntError {
                kind: "empty literal",
            });
        }
        Ok(acc)
    }

    /// Multiplies by a single limb.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let t = (l as u128) * (rhs as u128) + carry as u128;
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        out.push(carry);
        BigUint::from_limbs(&out)
    }

    /// Divides by a single non-zero limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn divrem_u64(&self, rhs: u64) -> (BigUint, u64) {
        assert!(rhs != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (BigUint::from_limbs(&q), rem as u64)
    }

    /// `self - rhs` if non-negative.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d, b) = crate::arith::sbb(self.limbs[i], r, borrow);
            out.push(d);
            borrow = b;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(&out))
    }

    /// Shifts left by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limbs, bits) = (n / 64, n % 64);
        let mut out = vec![0u64; limbs];
        if bits == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bits) | carry);
                carry = l >> (64 - bits);
            }
            out.push(carry);
        }
        BigUint::from_limbs(&out)
    }

    /// Shifts right by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let (limbs, bits) = (n / 64, n % 64);
        if limbs >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = self.limbs[limbs..].to_vec();
        if bits != 0 {
            for i in 0..out.len() {
                let hi = out.get(i + 1).copied().unwrap_or(0);
                out[i] = (out[i] >> bits) | (hi << (64 - bits));
            }
        }
        BigUint::from_limbs(&out)
    }

    /// General division: returns `(quotient, remainder)`.
    ///
    /// Shift-and-subtract long division; only used off the hot path (deriving
    /// pairing exponents, parsing, and display), so clarity wins over speed.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn divrem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        let _g = trace::region_profile("bigint");
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - rhs.bits();
        let mut rem = self.clone();
        let mut quo = BigUint::zero();
        let mut div = rhs.shl(shift);
        for i in (0..=shift).rev() {
            trace::compute(2 + rem.limbs.len() as u32);
            trace::control(1);
            if let Some(next) = rem.checked_sub(&div) {
                rem = next;
                quo = &quo + &BigUint::one().shl(i);
            }
            div = div.shr(1);
        }
        (quo, rem)
    }

    /// `self mod rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn rem(&self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}

impl std::ops::Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = crate::arith::adc(a, b, carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        BigUint::from_limbs(&out)
    }
}

impl std::ops::Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        let _g = trace::region_profile("bigint");
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            trace::compute(2 * rhs.limbs.len() as u32);
            trace::data_move(rhs.limbs.len() as u32);
            trace::control(1);
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let (lo, hi) = crate::arith::mac(out[i + j], a, b, carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + rhs.limbs.len()] = carry;
        }
        BigUint::from_limbs(&out)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().expect("non-zero value has digits").to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::new();
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{l:x}"));
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        f.write_str(&s)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_str_radix(s, 10).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        ];
        for c in cases {
            assert_eq!(big(c).to_string(), c);
        }
    }

    #[test]
    fn hex_parse_matches_decimal() {
        let h = BigUint::from_str_radix("0x1_0000_0000_0000_0000", 16).unwrap();
        assert_eq!(h, big("18446744073709551616"));
        assert_eq!(format!("{h:x}"), "10000000000000000");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::from_str_radix("", 10).is_err());
        assert!(BigUint::from_str_radix("12g", 10).is_err());
        assert!(BigUint::from_str_radix("123", 7).is_err());
    }

    #[test]
    fn add_mul_small() {
        let a = big("99999999999999999999");
        let b = big("1");
        assert_eq!((&a + &b).to_string(), "100000000000000000000");
        assert_eq!(
            (&a * &a).to_string(),
            "9999999999999999999800000000000000000001"
        );
    }

    #[test]
    fn sub_and_compare() {
        let a = big("1000000000000000000000000");
        let b = big("999999999999999999999999");
        assert_eq!(a.checked_sub(&b).unwrap(), BigUint::one());
        assert!(b.checked_sub(&a).is_none());
        assert!(a > b);
    }

    #[test]
    fn shifts() {
        let a = big("12345678901234567890");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shl(3), a.mul_u64(8));
        assert_eq!(a.shr(1), a.divrem_u64(2).0);
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
    }

    #[test]
    fn divrem_agrees_with_reconstruction() {
        let a = big("340282366920938463463374607431768211455123456789");
        let b = big("987654321987654321");
        let (q, r) = a.divrem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn divrem_by_bigger_returns_self() {
        let a = big("42");
        let b = big("100");
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big("5").divrem(&BigUint::zero());
    }

    #[test]
    fn bits_and_bit_access() {
        let a = big("5"); // 0b101
        assert_eq!(a.bits(), 3);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(2));
        assert!(!a.bit(200));
        assert_eq!(BigUint::zero().bits(), 0);
        let p = BigUint::from_str_radix(
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
            10,
        )
        .unwrap();
        assert_eq!(p.bits(), 254);
    }

    #[test]
    fn trailing_zeros_and_parity() {
        assert_eq!(big("8").trailing_zeros(), 3);
        assert_eq!(big("18446744073709551616").trailing_zeros(), 64);
        assert!(big("8").is_even());
        assert!(!big("7").is_even());
        assert!(BigUint::zero().is_even());
    }

    #[test]
    fn to_limbs_pads_and_checks() {
        let a = big("18446744073709551617"); // 2^64 + 1
        assert_eq!(a.to_limbs(3), vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_limbs_rejects_truncation() {
        let a = big("18446744073709551617");
        let _ = a.to_limbs(1);
    }
}
