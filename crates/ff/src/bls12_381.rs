//! The BLS12-381 field family: `Fq`, `Fr`, and the `Fq2 → Fq6 → Fq12`
//! pairing tower with ξ = 1 + u.
//!
//! The second curve benchmarked by the paper (Zcash's curve since Sapling).

use crate::cubic::{CubicExt, CubicExtParams};
use crate::fp::{Fp, FpParams};
use crate::quad::{QuadExt, QuadExtParams};
use crate::traits::Field;

/// Parameters of the BLS12-381 base field `F_q` (381 bits, 6 limbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FqParams;

impl FpParams<6> for FqParams {
    // q = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624
    //     1eabfffeb153ffffb9feffffffffaaab
    const MODULUS: [u64; 6] = [
        0xb9feffffffffaaab,
        0x1eabfffeb153ffff,
        0x6730d2a0f6b0f624,
        0x64774b84f38512bf,
        0x4b1ba7b6434bacd7,
        0x1a0111ea397fe69a,
    ];
    const GENERATOR: u64 = 2;
    const NAME: &'static str = "bls12_381::Fq";
}

/// The BLS12-381 base field (coordinates of curve points).
pub type Fq = Fp<FqParams, 6>;

/// Parameters of the BLS12-381 scalar field `F_r` (255 bits, 4 limbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrParams;

impl FpParams<4> for FrParams {
    // r = 0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001
    const MODULUS: [u64; 4] = [
        0xffffffff00000001,
        0x53bda402fffe5bfe,
        0x3339d80809a1d805,
        0x73eda753299d7d48,
    ];
    const GENERATOR: u64 = 7;
    const NAME: &'static str = "bls12_381::Fr";
}

/// The BLS12-381 scalar field (circuit values, witnesses, exponents).
pub type Fr = Fp<FrParams, 4>;

/// Tower parameters for `Fq2 = Fq[u]/(u² + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq2Params;

impl QuadExtParams for Fq2Params {
    type Base = Fq;
    const NAME: &'static str = "bls12_381::Fq2";
    fn non_residue() -> Fq {
        -Fq::one()
    }
}

/// The quadratic extension of the BLS12-381 base field (G2 coordinates).
pub type Fq2 = QuadExt<Fq2Params>;

/// The sextic twist constant ξ = 1 + u used throughout the tower.
pub fn xi() -> Fq2 {
    Fq2::new(Fq::one(), Fq::one())
}

/// Tower parameters for `Fq6 = Fq2[v]/(v³ − ξ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq6Params;

impl CubicExtParams for Fq6Params {
    type Base = Fq2;
    const NAME: &'static str = "bls12_381::Fq6";
    fn non_residue() -> Fq2 {
        xi()
    }
}

/// The sextic extension of the BLS12-381 base field.
pub type Fq6 = CubicExt<Fq6Params>;

/// Tower parameters for `Fq12 = Fq6[w]/(w² − v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq12Params;

impl QuadExtParams for Fq12Params {
    type Base = Fq6;
    const NAME: &'static str = "bls12_381::Fq12";
    fn non_residue() -> Fq6 {
        Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero())
    }
}

/// The degree-12 extension where pairing values live.
pub type Fq12 = QuadExt<Fq12Params>;

/// Absolute value of the (negative) BLS parameter `x = −0xd201000000010000`.
pub const BLS_X: u64 = 0xd201_0000_0001_0000;

/// The BLS parameter is negative, which flips a conjugation in the pairing.
pub const BLS_X_IS_NEGATIVE: bool = true;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Frobenius, PrimeField};
    use crate::BigUint;

    #[test]
    fn moduli_match_published_values() {
        assert_eq!(
            format!("{:x}", Fq::modulus()),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624\
             1eabfffeb153ffffb9feffffffffaaab"
                .replace(char::is_whitespace, "")
        );
        assert_eq!(
            format!("{:x}", Fr::modulus()),
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
        );
        assert_eq!(Fq::modulus().bits(), 381);
        assert_eq!(Fr::modulus().bits(), 255);
    }

    #[test]
    fn q_and_r_derive_from_bls_parameter() {
        // r(x) = x⁴ − x² + 1;  q(x) = (x−1)²·r(x)/3 + x, with x = −BLS_X.
        // Using |x| keeps everything positive: even powers are unaffected,
        // and the two odd occurrences (x in q, and (x−1)² = (|x|+1)²) adjust.
        let x = BigUint::from_u64(BLS_X);
        let x2 = &x * &x;
        let x4 = &x2 * &x2;
        let r = &x4.checked_sub(&x2).unwrap() + &BigUint::one();
        assert_eq!(r, Fr::modulus());
        // (x − 1)² with x negative is (|x| + 1)².
        let xp1 = &x + &BigUint::one();
        let num = &(&xp1 * &xp1) * &r;
        let (third, rem) = num.divrem_u64(3);
        assert_eq!(rem, 0);
        // q = (x−1)²r/3 + x  with x = −|x|  ⇒  q = third − |x|.
        let q = third.checked_sub(&x).unwrap();
        assert_eq!(q, Fq::modulus());
    }

    #[test]
    fn fr_two_adicity_is_32() {
        assert_eq!(Fr::two_adicity(), 32);
        let root = Fr::two_adic_root_of_unity();
        let mut acc = root;
        for _ in 0..31 {
            acc = acc.square();
        }
        assert_eq!(acc, -Fr::one());
    }

    #[test]
    fn tower_field_laws() {
        let mut rng = crate::test_rng();
        for _ in 0..10 {
            let a = Fq2::random(&mut rng);
            if !a.is_zero() {
                assert!((a * a.inverse().unwrap()).is_one());
            }
            let b = Fq6::random(&mut rng);
            if !b.is_zero() {
                assert!((b * b.inverse().unwrap()).is_one());
            }
            let c = Fq12::random(&mut rng);
            if !c.is_zero() {
                assert!((c * c.inverse().unwrap()).is_one());
            }
            assert_eq!((a + a) * b.c0, a.double() * b.c0);
        }
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        assert_eq!(v * v * v, Fq6::from_base(xi()));
    }

    #[test]
    fn frobenius_matches_pow_p() {
        let mut rng = crate::test_rng();
        let a = Fq2::random(&mut rng);
        assert_eq!(a.frobenius(1), a.pow(&Fq::modulus()));
        let c = Fq12::random(&mut rng);
        assert_eq!(c.frobenius(1), c.pow(&Fq::modulus()));
        assert_eq!(c.frobenius(2), c.frobenius(1).frobenius(1));
    }

    #[test]
    fn six_limb_montgomery_matches_biguint_reference() {
        let mut rng = crate::test_rng();
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            let expect = (&a.to_biguint() * &b.to_biguint()).rem(&Fq::modulus());
            assert_eq!((a * b).to_biguint(), expect);
            let sum = (&a.to_biguint() + &b.to_biguint()).rem(&Fq::modulus());
            assert_eq!((a + b).to_biguint(), sum);
        }
    }
}
