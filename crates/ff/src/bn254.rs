//! The BN254 (alt_bn128 / BN128) field family: `Fq`, `Fr`, and the
//! `Fq2 → Fq6 → Fq12` pairing tower with ξ = 9 + u.
//!
//! This is one of the two curves the paper benchmarks (it calls it BN128,
//! the name used by circom/snarkjs).

use crate::cubic::{CubicExt, CubicExtParams};
use crate::fp::{Fp, FpParams};
use crate::quad::{QuadExt, QuadExtParams};
use crate::traits::Field;

/// Parameters of the BN254 base field `F_q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FqParams;

impl FpParams<4> for FqParams {
    // q = 21888242871839275222246405745257275088696311157297823662689037894645226208583
    const MODULUS: [u64; 4] = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const GENERATOR: u64 = 3;
    const NAME: &'static str = "bn254::Fq";
}

/// The BN254 base field (coordinates of curve points).
pub type Fq = Fp<FqParams, 4>;

/// Parameters of the BN254 scalar field `F_r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrParams;

impl FpParams<4> for FrParams {
    // r = 21888242871839275222246405745257275088548364400416034343698204186575808495617
    const MODULUS: [u64; 4] = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const GENERATOR: u64 = 5;
    const NAME: &'static str = "bn254::Fr";
}

/// The BN254 scalar field (circuit values, witnesses, exponents).
pub type Fr = Fp<FrParams, 4>;

/// Tower parameters for `Fq2 = Fq[u]/(u² + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq2Params;

impl QuadExtParams for Fq2Params {
    type Base = Fq;
    const NAME: &'static str = "bn254::Fq2";
    fn non_residue() -> Fq {
        -Fq::one()
    }
}

/// The quadratic extension of the BN254 base field (G2 coordinates).
pub type Fq2 = QuadExt<Fq2Params>;

/// The sextic twist constant ξ = 9 + u used throughout the tower.
pub fn xi() -> Fq2 {
    Fq2::new(Fq::from_u64(9), Fq::one())
}

/// Tower parameters for `Fq6 = Fq2[v]/(v³ − ξ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq6Params;

impl CubicExtParams for Fq6Params {
    type Base = Fq2;
    const NAME: &'static str = "bn254::Fq6";
    fn non_residue() -> Fq2 {
        xi()
    }
}

/// The sextic extension of the BN254 base field.
pub type Fq6 = CubicExt<Fq6Params>;

/// Tower parameters for `Fq12 = Fq6[w]/(w² − v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fq12Params;

impl QuadExtParams for Fq12Params {
    type Base = Fq6;
    const NAME: &'static str = "bn254::Fq12";
    fn non_residue() -> Fq6 {
        Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero())
    }
}

/// The degree-12 extension where pairing values live.
pub type Fq12 = QuadExt<Fq12Params>;

/// The BN parameter `x₀ = 4965661367192848881`; the curve is constructed so
/// that `q` and `r` are polynomials in `x₀`, and the optimal-ate Miller loop
/// runs over `6·x₀ + 2`.
pub const BN_X: u64 = 4965661367192848881;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Frobenius, PrimeField};
    use crate::BigUint;

    #[test]
    fn moduli_match_published_decimal_values() {
        assert_eq!(
            Fq::modulus().to_string(),
            "21888242871839275222246405745257275088696311157297823662689037894645226208583"
        );
        assert_eq!(
            Fr::modulus().to_string(),
            "21888242871839275222246405745257275088548364400416034343698204186575808495617"
        );
    }

    #[test]
    fn q_and_r_are_polynomials_in_x() {
        // q(x) = 36x⁴ + 36x³ + 24x² + 6x + 1, r(x) = 36x⁴ + 36x³ + 18x² + 6x + 1
        let x = BigUint::from_u64(BN_X);
        let x2 = &x * &x;
        let x3 = &x2 * &x;
        let x4 = &x3 * &x;
        let term = |c: u64, p: &BigUint| p.mul_u64(c);
        let q = &(&(&term(36, &x4) + &term(36, &x3)) + &term(24, &x2))
            + &(&term(6, &x) + &BigUint::one());
        let r = &(&(&term(36, &x4) + &term(36, &x3)) + &term(18, &x2))
            + &(&term(6, &x) + &BigUint::one());
        assert_eq!(q, Fq::modulus());
        assert_eq!(r, Fr::modulus());
    }

    #[test]
    fn fr_two_adicity_is_28() {
        assert_eq!(Fr::two_adicity(), 28);
        let root = Fr::two_adic_root_of_unity();
        let mut acc = root;
        for _ in 0..27 {
            acc = acc.square();
        }
        assert_eq!(acc, -Fr::one());
        assert!(acc.square().is_one());
    }

    #[test]
    fn fq2_is_a_field() {
        let mut rng = crate::test_rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            let b = Fq2::random(&mut rng);
            let c = Fq2::random(&mut rng);
            assert_eq!((a + b) * c, a * c + b * c);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert!((a * a.inverse().unwrap()).is_one());
            }
        }
        // u² = −1
        let u = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(u.square(), Fq2::from_base(-Fq::one()));
    }

    #[test]
    fn fq6_and_fq12_field_laws() {
        let mut rng = crate::test_rng();
        for _ in 0..10 {
            let a = Fq6::random(&mut rng);
            let b = Fq6::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert!((a * a.inverse().unwrap()).is_one());
            }
            let f = Fq12::random(&mut rng);
            let g = Fq12::random(&mut rng);
            assert_eq!(f * g, g * f);
            assert_eq!(f.square(), f * f);
            if !f.is_zero() {
                assert!((f * f.inverse().unwrap()).is_one());
            }
        }
        // v³ = ξ in Fq6.
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        assert_eq!(v * v * v, Fq6::from_base(xi()));
        // w² = v in Fq12.
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        assert_eq!(w.square(), Fq12::from_base(Fq12Params::non_residue()));
    }

    #[test]
    fn frobenius_matches_pow_p() {
        let mut rng = crate::test_rng();
        let a = Fq2::random(&mut rng);
        assert_eq!(a.frobenius(1), a.pow(&Fq::modulus()));
        // Frobenius on Fq2 with β = −1 is conjugation.
        assert_eq!(a.frobenius(1), a.conjugate());
        // frobenius² = identity on Fq2.
        assert_eq!(a.frobenius(1).frobenius(1), a);
        let b = Fq6::random(&mut rng);
        assert_eq!(b.frobenius(1), b.pow(&Fq::modulus()));
        let c = Fq12::random(&mut rng);
        assert_eq!(c.frobenius(1), c.pow(&Fq::modulus()));
    }

    #[test]
    fn fq12_conjugate_is_frobenius_6() {
        let mut rng = crate::test_rng();
        let a = Fq12::random(&mut rng);
        let mut f = a;
        for _ in 0..6 {
            f = f.frobenius(1);
        }
        assert_eq!(f, a.conjugate());
    }
}
