//! Generic cubic extension `Base[v]/(v³ − β)`.

use std::fmt;

use rand::Rng;

use crate::bigint::BigUint;
use crate::traits::{Field, Frobenius};

/// Parameters of a cubic extension: the base field and the cubic non-residue
/// `β` such that `v³ − β` is irreducible.
pub trait CubicExtParams:
    Copy + Clone + fmt::Debug + PartialEq + Eq + std::hash::Hash + Send + Sync + 'static
{
    /// The field being extended.
    type Base: Field + Frobenius;
    /// Name used in `Debug` output.
    const NAME: &'static str;
    /// The non-residue `β` (written `ξ` in pairing literature).
    fn non_residue() -> Self::Base;
}

/// An element `c0 + c1·v + c2·v²` of the cubic extension defined by `P`.
///
/// Used for `Fp6` over `Fp2` in the pairing towers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubicExt<P: CubicExtParams> {
    /// Constant coefficient.
    pub c0: P::Base,
    /// Coefficient of `v`.
    pub c1: P::Base,
    /// Coefficient of `v²`.
    pub c2: P::Base,
}

impl<P: CubicExtParams> CubicExt<P> {
    /// Builds an element from its three coefficients.
    pub fn new(c0: P::Base, c1: P::Base, c2: P::Base) -> Self {
        CubicExt { c0, c1, c2 }
    }

    /// Embeds a base-field element.
    pub fn from_base(c0: P::Base) -> Self {
        CubicExt {
            c0,
            c1: P::Base::zero(),
            c2: P::Base::zero(),
        }
    }

    /// Multiplies by a base-field element coefficient-wise.
    pub fn mul_by_base(&self, s: P::Base) -> Self {
        Self::new(self.c0 * s, self.c1 * s, self.c2 * s)
    }

    /// Multiplies by `v` (the generator), i.e. `(c0,c1,c2) ↦ (β·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Self::new(P::non_residue() * self.c2, self.c0, self.c1)
    }

    /// Multiplies by the sparse element `b0 + b1·v` (no `v²` term), the
    /// shape pairing line evaluations take in `Fq6`: 3 base
    /// multiplications instead of the dense 6.
    pub fn mul_by_01(&self, b0: P::Base, b1: P::Base) -> Self {
        let beta = P::non_residue();
        let a_a = self.c0 * b0;
        let b_b = self.c1 * b1;
        let c0 = beta * ((self.c1 + self.c2) * b1 - b_b) + a_a;
        let c1 = (self.c0 + self.c1) * (b0 + b1) - a_a - b_b;
        let c2 = (self.c0 + self.c2) * b0 - a_a + b_b;
        Self::new(c0, c1, c2)
    }

    /// Multiplies by the sparse element `b1·v` (only the `v` coefficient).
    pub fn mul_by_1(&self, b1: P::Base) -> Self {
        Self::new(
            P::non_residue() * (self.c2 * b1),
            self.c0 * b1,
            self.c1 * b1,
        )
    }

    fn frob_exponent(power: usize, divisor: u64) -> BigUint {
        let p = P::Base::characteristic();
        let mut pk = BigUint::one();
        for _ in 0..power {
            pk = &pk * &p;
        }
        let pm1 = pk.checked_sub(&BigUint::one()).expect("p^k >= 1");
        let (q, r) = pm1.divrem_u64(divisor);
        assert_eq!(r, 0, "p^{power} - 1 not divisible by {divisor}");
        q
    }
}

impl<P: CubicExtParams> Field for CubicExt<P> {
    fn zero() -> Self {
        Self::from_base(P::Base::zero())
    }

    fn one() -> Self {
        Self::from_base(P::Base::one())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn inverse(&self) -> Option<Self> {
        // Standard formula via the adjugate (see e.g. "Multiplication and
        // Squaring on Pairing-Friendly Fields", Devegili et al.).
        let beta = P::non_residue();
        let t0 = self.c0.square() - beta * self.c1 * self.c2;
        let t1 = beta * self.c2.square() - self.c0 * self.c1;
        let t2 = self.c1.square() - self.c0 * self.c2;
        let norm = self.c0 * t0 + beta * (self.c2 * t1 + self.c1 * t2);
        let inv = norm.inverse()?;
        Some(Self::new(t0 * inv, t1 * inv, t2 * inv))
    }

    fn from_u64(v: u64) -> Self {
        Self::from_base(P::Base::from_u64(v))
    }

    fn characteristic() -> BigUint {
        P::Base::characteristic()
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(
            P::Base::random(rng),
            P::Base::random(rng),
            P::Base::random(rng),
        )
    }
}

/// The constant pairs `(β^((p^k−1)/3), β^(2(p^k−1)/3))` for
/// `k = 1..=MAX_POWER`, computed once per extension type.
fn frob_coeffs<P: CubicExtParams>() -> &'static [(P::Base, P::Base)] {
    crate::frob_cache::get_or_build::<P, Vec<(P::Base, P::Base)>>(|| {
        (1..=crate::frob_cache::MAX_POWER)
            .map(|k| {
                let c1 = P::non_residue().pow(&CubicExt::<P>::frob_exponent(k, 3));
                (c1, c1.square())
            })
            .collect()
    })
}

impl<P: CubicExtParams> Frobenius for CubicExt<P> {
    fn frobenius(&self, power: usize) -> Self {
        if power == 0 {
            return *self;
        }
        // v^(p^k) = β^((p^k−1)/3) · v
        let (c1_coeff, c2_coeff) = if power <= crate::frob_cache::MAX_POWER {
            frob_coeffs::<P>()[power - 1]
        } else {
            let c1 = P::non_residue().pow(&Self::frob_exponent(power, 3));
            (c1, c1.square())
        };
        Self::new(
            self.c0.frobenius(power),
            self.c1.frobenius(power) * c1_coeff,
            self.c2.frobenius(power) * c2_coeff,
        )
    }
}

impl<P: CubicExtParams> std::ops::Add for CubicExt<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1, self.c2 + rhs.c2)
    }
}

impl<P: CubicExtParams> std::ops::Sub for CubicExt<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1, self.c2 - rhs.c2)
    }
}

impl<P: CubicExtParams> std::ops::Mul for CubicExt<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom-style interpolation (6 base multiplications).
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let v2 = self.c2 * rhs.c2;
        let beta = P::non_residue();
        let c0 = v0 + beta * ((self.c1 + self.c2) * (rhs.c1 + rhs.c2) - v1 - v2);
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1 + beta * v2;
        let c2 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - v0 - v2 + v1;
        Self::new(c0, c1, c2)
    }
}

impl<P: CubicExtParams> std::ops::Neg for CubicExt<P> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1, -self.c2)
    }
}

impl<P: CubicExtParams> std::ops::AddAssign for CubicExt<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: CubicExtParams> std::ops::SubAssign for CubicExt<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: CubicExtParams> std::ops::MulAssign for CubicExt<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: CubicExtParams> std::iter::Sum for CubicExt<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<P: CubicExtParams> std::iter::Product for CubicExt<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::one(), |a, b| a * b)
    }
}

impl<P: CubicExtParams> Default for CubicExt<P> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<P: CubicExtParams> fmt::Debug for CubicExt<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({:?} + {:?}·v + {:?}·v²)",
            P::NAME,
            self.c0,
            self.c1,
            self.c2
        )
    }
}

impl<P: CubicExtParams> fmt::Display for CubicExt<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*v + {}*v^2)", self.c0, self.c1, self.c2)
    }
}
