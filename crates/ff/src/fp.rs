//! Generic Montgomery-form prime field over `N` 64-bit limbs.

use std::fmt;
use std::marker::PhantomData;

use rand::Rng;
use zkperf_trace::{self as trace, OpCost};

use crate::arith::{
    is_zero, mac, mont_inv64, pow2_mod, reduce_once, select, sub_borrow, sub_noborrow,
};
use crate::bigint::BigUint;
use crate::traits::{Field, PrimeField};

/// Branch-site ids used for the conditional-reduction branches, so the
/// branch-prediction model sees distinct static sites per operation kind.
mod sites {
    pub const MUL_REDUCE: u64 = 0x1001;
    pub const ADD_REDUCE: u64 = 0x1002;
    pub const SUB_BORROW: u64 = 0x1003;
    pub const SQR_REDUCE: u64 = 0x1004;
}

/// Compile-time parameters of a prime field: just the modulus and a small
/// candidate generator; every other constant is derived.
///
/// Implementors are zero-sized marker types (see the `bn254` / `bls12_381`
/// modules for the four fields of the suite).
pub trait FpParams<const N: usize>:
    Copy + Clone + fmt::Debug + PartialEq + Eq + std::hash::Hash + Send + Sync + 'static
{
    /// The modulus `p`, little-endian limbs. Must be odd, with the top bit
    /// of the top limb clear.
    const MODULUS: [u64; N];
    /// A small candidate multiplicative generator used to derive 2-adic
    /// roots of unity (verified at runtime, with fallback search).
    const GENERATOR: u64;
    /// Human-readable field name for `Debug` output.
    const NAME: &'static str;
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
///
/// # Examples
///
/// ```
/// use zkperf_ff::{Field, PrimeField, bn254::Fr};
/// let a = Fr::from_u64(3);
/// let b = a.inverse().unwrap();
/// assert!((a * b).is_one());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp<P, const N: usize> {
    limbs: [u64; N],
    _params: PhantomData<P>,
}

impl<P: FpParams<N>, const N: usize> Fp<P, N> {
    /// `-p⁻¹ mod 2⁶⁴`, derived from the modulus.
    pub const INV: u64 = mont_inv64(P::MODULUS[0]);
    /// The Montgomery radix `R = 2^(64N) mod p`.
    pub const R: [u64; N] = pow2_mod(64 * N, &P::MODULUS);
    /// `R² mod p`, used to convert into Montgomery form.
    pub const R2: [u64; N] = pow2_mod(128 * N, &P::MODULUS);

    const fn from_raw(limbs: [u64; N]) -> Self {
        Fp {
            limbs,
            _params: PhantomData,
        }
    }

    /// CIOS Montgomery multiplication; returns `a·b·R⁻¹ mod p`.
    ///
    /// Uses the fused "no-carry" CIOS variant: because the modulus leaves
    /// its top limb bit clear (with room to spare — see the compile-time
    /// check below), the running accumulator never exceeds `2p − 1` and
    /// stays within `N` limbs, so the multiply and reduce passes interleave
    /// with two independent carry chains and no overflow columns. That
    /// removes two wide adds per outer iteration versus textbook CIOS and
    /// gives the compiler two parallel `mac` chains to schedule.
    fn mont_mul(a: &[u64; N], b: &[u64; N]) -> [u64; N] {
        // No-carry CIOS soundness: requires p[N-1] ≤ (2^64 − 1)/2 − 1 so
        // the two per-iteration carries sum without overflow.
        const { assert!(P::MODULUS[N - 1] < u64::MAX / 2) };
        let mut t = [0u64; N];
        for &b_i in b.iter() {
            let (lo, mut carry_mul) = mac(t[0], a[0], b_i, 0);
            let m = lo.wrapping_mul(Self::INV);
            let (_, mut carry_red) = mac(lo, m, P::MODULUS[0], 0);
            for j in 1..N {
                let (mid, c1) = mac(t[j], a[j], b_i, carry_mul);
                carry_mul = c1;
                let (out, c2) = mac(mid, m, P::MODULUS[j], carry_red);
                t[j - 1] = out;
                carry_red = c2;
            }
            // Cannot overflow: both carries are bounded by the top modulus
            // limb headroom established above.
            t[N - 1] = carry_mul + carry_red;
        }
        // The accumulator is < 2p; one branchless subtraction finishes.
        let (out, _) = reduce_once(&t, 0, &P::MODULUS);
        out
    }

    /// Dedicated Montgomery squaring; returns `a²·R⁻¹ mod p`.
    ///
    /// The textbook squaring shortcut — compute each off-diagonal product
    /// `aᵢ·aⱼ (i < j)` once and double — needs the full `2N`-limb product
    /// materialized before a separated reduction pass, and at these limb
    /// counts the extra stores and the doubling pass measure *slower* than
    /// the fused no-carry multiply (34ns vs 20ns per BN254 op on the
    /// reference box). So the dedicated entry point keeps the distinct
    /// trace cost model but runs the fused kernel with both operands equal.
    fn mont_sqr(a: &[u64; N]) -> [u64; N] {
        Self::mont_mul(a, a)
    }

    #[inline]
    fn trace_binop(a: &Self, b: &Self, out: &Self, cost: OpCost, site: u64, taken: bool) {
        if trace::is_active() {
            let bytes = (N * 8) as u32;
            trace::load(a as *const Self as usize, bytes);
            trace::load(b as *const Self as usize, bytes);
            trace::compute(cost.compute);
            trace::control(cost.control);
            trace::data_move(cost.data);
            trace::store(out as *const Self as usize, bytes);
            trace::branch(site, taken);
        }
    }

    /// Raw Montgomery limbs (for serialization and tests).
    pub fn to_montgomery_limbs(&self) -> [u64; N] {
        self.limbs
    }
}

impl<P: FpParams<N>, const N: usize> Field for Fp<P, N> {
    fn zero() -> Self {
        Self::from_raw([0u64; N])
    }

    fn one() -> Self {
        Self::from_raw(Self::R)
    }

    fn is_zero(&self) -> bool {
        is_zero(&self.limbs)
    }

    fn square(&self) -> Self {
        let out = Self::from_raw(Self::mont_sqr(&self.limbs));
        Self::trace_binop(
            self,
            self,
            &out,
            OpCost::mont_sqr(N as u32),
            sites::SQR_REDUCE,
            out.limbs[0] & 3 == 0,
        );
        out
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let _g = trace::region_profile("field_inverse");
        // Fermat: a^(p-2).
        let exp = Self::modulus()
            .checked_sub(&BigUint::from_u64(2))
            .expect("modulus >= 2");
        Some(self.pow(&exp))
    }

    fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = v;
        // v may exceed p only when N == 1; normalize via Montgomery round trip.
        Self::from_raw(Self::mont_mul(&limbs, &Self::R2))
    }

    fn characteristic() -> BigUint {
        BigUint::from_limbs(&P::MODULUS)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Sample 2N limbs and reduce: statistical distance < 2^-64N.
        let limbs: Vec<u64> = (0..2 * N).map(|_| rng.gen()).collect();
        Self::from_biguint(&BigUint::from_limbs(&limbs))
    }
}

impl<P: FpParams<N>, const N: usize> PrimeField for Fp<P, N> {
    const NUM_LIMBS: usize = N;

    fn modulus() -> BigUint {
        BigUint::from_limbs(&P::MODULUS)
    }

    fn to_biguint(&self) -> BigUint {
        let mut one = [0u64; N];
        one[0] = 1;
        BigUint::from_limbs(&Self::mont_mul(&self.limbs, &one))
    }

    fn from_biguint(v: &BigUint) -> Self {
        let reduced = v.rem(&Self::modulus());
        let mut limbs = [0u64; N];
        limbs.copy_from_slice(&reduced.to_limbs(N));
        Self::from_raw(Self::mont_mul(&limbs, &Self::R2))
    }

    fn write_canonical_limbs(&self, out: &mut [u64]) {
        let mut one = [0u64; N];
        one[0] = 1;
        out[..N].copy_from_slice(&Self::mont_mul(&self.limbs, &one));
    }

    fn two_adic_root_of_unity() -> Self {
        let s = Self::two_adicity();
        let p_minus_1 = Self::modulus()
            .checked_sub(&BigUint::one())
            .expect("modulus >= 2");
        let t = p_minus_1.shr(s as usize);
        let mut candidate = P::GENERATOR;
        loop {
            let root = Self::from_u64(candidate).pow(&t);
            // root has order dividing 2^s; it has *exact* order 2^s iff
            // root^(2^(s-1)) = -1 (≠ 1).
            let mut probe = root;
            for _ in 0..s.saturating_sub(1) {
                probe = probe.square();
            }
            if !probe.is_one() && !probe.is_zero() {
                return root;
            }
            candidate += 1;
        }
    }
}

impl<P: FpParams<N>, const N: usize> crate::traits::Frobenius for Fp<P, N> {
    /// The Frobenius endomorphism is the identity on the prime field.
    fn frobenius(&self, _power: usize) -> Self {
        *self
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::Add for Fp<P, N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let (sum, carry) = crate::arith::add_carry(&self.limbs, &rhs.limbs);
        let (limbs, reduced) = reduce_once(&sum, carry, &P::MODULUS);
        let out = Self::from_raw(limbs);
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mod_add(N as u32),
            sites::ADD_REDUCE,
            reduced == 1,
        );
        out
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::Sub for Fp<P, N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        // Subtract, then add the modulus back iff the subtraction wrapped —
        // both legs computed, the winner mask-selected (see `select`).
        let (diff, borrow) = sub_borrow(&self.limbs, &rhs.limbs);
        let (lifted, _) = crate::arith::add_carry(&diff, &P::MODULUS);
        let out = Self::from_raw(select(borrow, &lifted, &diff));
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mod_add(N as u32),
            sites::SUB_BORROW,
            borrow == 1,
        );
        out
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::Mul for Fp<P, N> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let out = Self::from_raw(Self::mont_mul(&self.limbs, &rhs.limbs));
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mont_mul(N as u32),
            sites::MUL_REDUCE,
            // The final reduction branch is data-dependent but biased;
            // expose low result bits as its proxy (~25% taken).
            out.limbs[0] & 3 == 0,
        );
        out
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::Neg for Fp<P, N> {
    type Output = Self;
    fn neg(self) -> Self {
        if self.is_zero() {
            self
        } else {
            Self::from_raw(sub_noborrow(&P::MODULUS, &self.limbs))
        }
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::AddAssign for Fp<P, N> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::SubAssign for Fp<P, N> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FpParams<N>, const N: usize> std::ops::MulAssign for Fp<P, N> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FpParams<N>, const N: usize> std::iter::Sum for Fp<P, N> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<P: FpParams<N>, const N: usize> std::iter::Product for Fp<P, N> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::one(), |a, b| a * b)
    }
}

impl<P: FpParams<N>, const N: usize> Default for Fp<P, N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<P: FpParams<N>, const N: usize> PartialOrd for Fp<P, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: FpParams<N>, const N: usize> Ord for Fp<P, N> {
    /// Orders by canonical (non-Montgomery) integer value.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.to_biguint().cmp(&other.to_biguint())
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Debug for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x{:x})", P::NAME, self.to_biguint())
    }
}

impl<P: FpParams<N>, const N: usize> fmt::Display for Fp<P, N> {
    /// Canonical (non-Montgomery) value in decimal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_biguint())
    }
}

impl<P: FpParams<N>, const N: usize> From<u64> for Fp<P, N> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny one-limb field (p = 2^61 − 1, a Mersenne prime) exercising the
    /// generic machinery at a size where results can be checked by hand.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct M61;
    impl FpParams<1> for M61 {
        const MODULUS: [u64; 1] = [(1u64 << 61) - 1];
        const GENERATOR: u64 = 3;
        const NAME: &'static str = "M61";
    }
    type F = Fp<M61, 1>;

    const P: u128 = (1u128 << 61) - 1;

    #[test]
    fn constants_are_derived_correctly() {
        assert_eq!(F::INV, mont_inv64(M61::MODULUS[0]));
        assert_eq!(F::R[0] as u128, (1u128 << 64) % P);
        assert_eq!(F::R2[0] as u128, ((1u128 << 64) % P).pow(2) % P);
    }

    #[test]
    fn add_sub_mul_match_u128_reference() {
        let vals = [0u64, 1, 2, 12345, (1 << 61) - 2, 998877665544332211];
        for &a in &vals {
            for &b in &vals {
                let (fa, fb) = (F::from_u64(a), F::from_u64(b));
                assert_eq!(
                    (fa + fb).to_biguint(),
                    BigUint::from_u64(((a as u128 + b as u128) % P) as u64),
                    "{a} + {b}"
                );
                assert_eq!(
                    (fa * fb).to_biguint(),
                    BigUint::from_u64(((a as u128 * b as u128) % P) as u64),
                    "{a} * {b}"
                );
                let expect_sub = ((a as u128 + P) - b as u128) % P;
                assert_eq!(
                    (fa - fb).to_biguint(),
                    BigUint::from_u64(expect_sub as u64),
                    "{a} - {b}"
                );
            }
        }
    }

    #[test]
    fn dedicated_square_matches_mul() {
        // One-limb field, exhaustive-ish small cases plus wrap-around.
        for v in [0u64, 1, 2, 3, 12345, (1 << 61) - 2, (1 << 60) + 17] {
            let a = F::from_u64(v);
            assert_eq!(a.square(), a * a, "square({v})");
        }
        // Four-limb field, random cases.
        type Fr = crate::bn254::Fr;
        type Fq381 = crate::bls12_381::Fq;
        let mut rng = crate::test_rng();
        for _ in 0..64 {
            let a = Fr::random(&mut rng);
            assert_eq!(a.square(), a * a);
            let b = Fq381::random(&mut rng);
            assert_eq!(b.square(), b * b);
        }
        assert_eq!(Fr::zero().square(), Fr::zero());
        assert_eq!((-Fr::one()).square(), Fr::one());
    }

    #[test]
    fn neg_and_double() {
        let a = F::from_u64(7);
        assert!((a + (-a)).is_zero());
        assert_eq!(a.double(), a + a);
        assert_eq!((-F::zero()), F::zero());
    }

    #[test]
    fn inverse_and_pow() {
        for v in [1u64, 2, 3, 997, (1 << 61) - 2] {
            let a = F::from_u64(v);
            let inv = a.inverse().unwrap();
            assert!((a * inv).is_one(), "inverse of {v}");
        }
        assert!(F::zero().inverse().is_none());
        let a = F::from_u64(5);
        assert_eq!(a.pow(&BigUint::from_u64(3)), a * a * a);
        assert!(a.pow(&BigUint::zero()).is_one());
    }

    #[test]
    fn two_adic_root_has_exact_order() {
        // p − 1 = 2 · (2^60 − 1): two-adicity 1, root must be −1.
        assert_eq!(F::two_adicity(), 1);
        let root = F::two_adic_root_of_unity();
        assert_eq!(root, -F::one());
        assert!(root.square().is_one());
    }

    #[test]
    fn biguint_roundtrip_and_reduction() {
        let big = BigUint::from_str_radix("123456789012345678901234567890123456789", 10).unwrap();
        let f = F::from_biguint(&big);
        assert_eq!(f.to_biguint(), big.rem(&F::modulus()));
        assert_eq!(F::from_biguint(&f.to_biguint()), f);
    }

    #[test]
    fn display_and_debug() {
        let f = F::from_u64(42);
        assert_eq!(f.to_string(), "42");
        assert_eq!(format!("{f:?}"), "M61(0x2a)");
    }

    #[test]
    fn ordering_is_by_canonical_value() {
        assert!(F::from_u64(3) < F::from_u64(5));
        assert!(F::from_u64(5) > F::from_u64(3));
        // -1 = p − 1 is the largest element.
        assert!(-F::one() > F::from_u64(1_000_000));
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs: Vec<F> = (1..=5).map(F::from_u64).collect();
        assert_eq!(xs.iter().copied().sum::<F>(), F::from_u64(15));
        assert_eq!(xs.iter().copied().product::<F>(), F::from_u64(120));
    }

    #[test]
    fn tracing_counts_field_ops() {
        let session = zkperf_trace::Session::begin();
        let a = F::from_u64(3);
        let b = F::from_u64(4);
        let _ = a * b;
        let report = session.finish();
        assert!(report.counts.compute_uops > 0);
        assert!(report.counts.loads >= 2);
        assert!(report.counts.stores >= 1);
    }
}
