//! One-time caches for tower Frobenius coefficients.
//!
//! `QuadExt`/`CubicExt` apply `x ↦ x^(p^k)` coefficient-wise with a
//! constant `β^((p^k−1)/d)` per coefficient. That constant only depends on
//! the extension parameters and `k`, but computing it is a multi-hundred-
//! bit exponentiation in the base field — recomputing it per call made
//! Frobenius cost more than a full extension inverse and dominated the
//! pairing final exponentiation. The registry below computes the constants
//! once per extension type and serves them from a leaked static.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Highest Frobenius power with a cached coefficient; larger powers (none
/// occur in the towers we build — `p^6` already generates every Galois
/// conjugate we use) fall back to direct computation.
pub(crate) const MAX_POWER: usize = 6;

type Registry = Mutex<HashMap<TypeId, &'static (dyn Any + Send + Sync)>>;

/// Returns the cached value for extension parameter type `P`, building it
/// on first use. The build runs outside the registry lock, so it may
/// safely recurse into other field arithmetic; a race at first use builds
/// twice and keeps one.
pub(crate) fn get_or_build<P: 'static, T: Any + Send + Sync>(
    build: impl FnOnce() -> T,
) -> &'static T {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let key = TypeId::of::<P>();
    let lock = || registry.lock().expect("frobenius coefficient registry poisoned");
    if let Some(cached) = lock().get(&key) {
        return cached.downcast_ref::<T>().expect("registry entries are keyed by type");
    }
    let built: &'static T = Box::leak(Box::new(build()));
    let mut guard = lock();
    guard
        .entry(key)
        .or_insert(built as &'static (dyn Any + Send + Sync))
        .downcast_ref::<T>()
        .expect("registry entries are keyed by type")
}
