//! The 64-bit "Goldilocks" prime field `F_p`, `p = 2^64 − 2^32 + 1`.
//!
//! The transparent STARK backend lives here rather than on the pairing
//! scalar fields: hashing and FRI folding dominate its prover, and a
//! one-word field makes both cheap. `p − 1 = 2^32 · 3 · 5 · 17 · 257 ·
//! 65537` gives two-adicity 32, enough for every domain size in the
//! suite's sweep range with an 8× blowup on top.
//!
//! The generic Montgomery tower ([`crate::Fp`]) deliberately excludes this
//! modulus: its no-carry CIOS multiplier requires the top limb of `p` to
//! leave a spare bit (`MODULUS[N−1] < 2^63`), which `0xffff_ffff_0000_0001`
//! violates. Goldilocks instead gets the dedicated reduction its shape was
//! chosen for: with `ε = 2^32 − 1` we have `2^64 ≡ ε` and `2^96 ≡ −1
//! (mod p)`, so a 128-bit product `lo + 2^64·(hi_lo + 2^32·hi_hi)` reduces
//! as `lo + ε·hi_lo − hi_hi` in a handful of word ops and two conditional
//! corrections — no Montgomery form, elements are the canonical `u64`.

use std::fmt;
use std::hash::Hash;

use rand::Rng;
use zkperf_trace::{self as trace, OpCost};

use crate::bigint::BigUint;
use crate::traits::{Field, Frobenius, PrimeField};

/// The modulus `p = 2^64 − 2^32 + 1`.
pub const MODULUS: u64 = 0xffff_ffff_0000_0001;

/// `ε = 2^32 − 1 = 2^64 mod p`, the reduction constant.
const EPSILON: u64 = 0xffff_ffff;

mod sites {
    pub const MUL_REDUCE: u64 = 0x1011;
    pub const ADD_REDUCE: u64 = 0x1012;
    pub const SUB_BORROW: u64 = 0x1013;
    pub const SQR_REDUCE: u64 = 0x1014;
}

/// An element of the Goldilocks field, held as its canonical
/// representative in `[0, p)`.
///
/// Unlike [`crate::Fp`] there is no Montgomery form: `Ord`, `Hash` and
/// serialization all see the plain integer.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Goldilocks(u64);

impl Goldilocks {
    /// Wraps a value already known to be `< p`.
    #[inline]
    const fn new_unchecked(v: u64) -> Self {
        debug_assert!(v < MODULUS);
        Goldilocks(v)
    }

    /// The canonical `u64` representative in `[0, p)`.
    #[inline]
    pub const fn as_canonical_u64(self) -> u64 {
        self.0
    }

    /// Reduces an arbitrary `u64` (one conditional subtract suffices:
    /// `2^64 − 1 − p < p`).
    #[inline]
    const fn reduce64(v: u64) -> u64 {
        if v >= MODULUS {
            v - MODULUS
        } else {
            v
        }
    }

    /// Reduces a 128-bit value to `[0, p)`.
    ///
    /// With `x = lo + 2^64·hi` and `hi = hi_lo + 2^32·hi_hi`:
    /// `x ≡ lo − hi_hi + ε·hi_lo (mod p)`. The borrow of the first
    /// subtraction is repaid with `−ε` (i.e. `+p − 2^64`), the carry of
    /// the addition with `+ε`; neither correction can overflow because
    /// `ε·hi_lo ≤ (2^32 − 1)² = 2^64 − 2^33 + 1`.
    #[inline]
    fn reduce128(x: u128) -> u64 {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let hi_lo = hi & EPSILON;
        let hi_hi = hi >> 32;
        let (mut t, borrow) = lo.overflowing_sub(hi_hi);
        if borrow {
            t = t.wrapping_sub(EPSILON);
        }
        let (mut r, carry) = t.overflowing_add(hi_lo * EPSILON);
        if carry {
            r = r.wrapping_add(EPSILON);
        }
        Self::reduce64(r)
    }

    #[inline]
    fn trace_binop(a: &Self, b: &Self, out: &Self, cost: OpCost, site: u64, taken: bool) {
        if trace::is_active() {
            trace::load(a as *const Self as usize, 8);
            trace::load(b as *const Self as usize, 8);
            trace::compute(cost.compute);
            trace::control(cost.control);
            trace::data_move(cost.data);
            trace::store(out as *const Self as usize, 8);
            trace::branch(site, taken);
        }
    }

    /// `self^exp` for a machine-word exponent (square-and-multiply without
    /// the `BigUint` round trip of [`Field::pow`]).
    pub fn pow_u64(self, exp: u64) -> Self {
        let mut acc = Self::one();
        let mut base = self;
        let mut e = exp;
        while e != 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base.square();
            e >>= 1;
        }
        acc
    }
}

impl Field for Goldilocks {
    fn zero() -> Self {
        Goldilocks(0)
    }

    fn one() -> Self {
        Goldilocks(1)
    }

    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn square(&self) -> Self {
        let out = Self::new_unchecked(Self::reduce128(u128::from(self.0) * u128::from(self.0)));
        Self::trace_binop(
            self,
            self,
            &out,
            OpCost::mont_sqr(1),
            sites::SQR_REDUCE,
            out.0 & 3 == 0,
        );
        out
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let _g = trace::region_profile("field_inverse");
        // Fermat: a^(p−2).
        Some(self.pow_u64(MODULUS - 2))
    }

    fn from_u64(v: u64) -> Self {
        Goldilocks(Self::reduce64(v))
    }

    fn characteristic() -> BigUint {
        BigUint::from_limbs(&[MODULUS])
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Sample two words and reduce: statistical distance < 2^-64.
        let lo: u64 = rng.gen();
        let hi: u64 = rng.gen();
        Goldilocks(Self::reduce128((u128::from(hi) << 64) | u128::from(lo)))
    }
}

impl PrimeField for Goldilocks {
    const NUM_LIMBS: usize = 1;

    fn modulus() -> BigUint {
        BigUint::from_limbs(&[MODULUS])
    }

    fn to_biguint(&self) -> BigUint {
        BigUint::from_limbs(&[self.0])
    }

    fn from_biguint(v: &BigUint) -> Self {
        let limbs = v.rem(&Self::modulus()).to_limbs(1);
        Goldilocks(limbs[0])
    }

    fn write_canonical_limbs(&self, out: &mut [u64]) {
        out[0] = self.0;
    }

    fn two_adic_root_of_unity() -> Self {
        // 7 generates F_p^×; its odd-part power has exact order 2^32.
        let s = Self::two_adicity();
        let odd = (MODULUS - 1) >> s;
        let mut candidate = 7u64;
        loop {
            let root = Self::from_u64(candidate).pow_u64(odd);
            let mut probe = root;
            for _ in 0..s.saturating_sub(1) {
                probe = probe.square();
            }
            if !probe.is_one() && !probe.is_zero() {
                return root;
            }
            candidate += 1;
        }
    }
}

impl Frobenius for Goldilocks {
    /// The Frobenius endomorphism is the identity on the prime field.
    fn frobenius(&self, _power: usize) -> Self {
        *self
    }
}

impl std::ops::Add for Goldilocks {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let (mut sum, carry) = self.0.overflowing_add(rhs.0);
        if carry {
            // a + b − 2^64 + ε = a + b − p, already < p since a, b < p.
            sum = sum.wrapping_add(EPSILON);
        }
        let out = Self::new_unchecked(Self::reduce64(sum));
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mod_add(1),
            sites::ADD_REDUCE,
            carry,
        );
        out
    }
}

impl std::ops::Sub for Goldilocks {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let (mut diff, borrow) = self.0.overflowing_sub(rhs.0);
        if borrow {
            // a − b + 2^64 − ε = a − b + p, in (0, p) since −p < a − b < 0.
            diff = diff.wrapping_sub(EPSILON);
        }
        let out = Self::new_unchecked(diff);
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mod_add(1),
            sites::SUB_BORROW,
            borrow,
        );
        out
    }
}

impl std::ops::Mul for Goldilocks {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let out = Self::new_unchecked(Self::reduce128(u128::from(self.0) * u128::from(rhs.0)));
        Self::trace_binop(
            &self,
            &rhs,
            &out,
            OpCost::mont_mul(1),
            sites::MUL_REDUCE,
            out.0 & 3 == 0,
        );
        out
    }
}

impl std::ops::Neg for Goldilocks {
    type Output = Self;
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self::new_unchecked(MODULUS - self.0)
        }
    }
}

impl std::ops::AddAssign for Goldilocks {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::ops::SubAssign for Goldilocks {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl std::ops::MulAssign for Goldilocks {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl std::iter::Sum for Goldilocks {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl std::iter::Product for Goldilocks {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::one(), |a, b| a * b)
    }
}

impl fmt::Display for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Goldilocks({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn modulus_shape() {
        assert_eq!(u128::from(MODULUS), (1u128 << 64) - (1 << 32) + 1);
        // ε = 2^64 mod p.
        assert_eq!(0u64.wrapping_sub(MODULUS), EPSILON);
        assert_eq!(Goldilocks::two_adicity(), 32);
    }

    #[test]
    fn arithmetic_matches_biguint() {
        let p = Goldilocks::modulus();
        let mut rng = test_rng();
        for _ in 0..200 {
            let a = Goldilocks::random(&mut rng);
            let b = Goldilocks::random(&mut rng);
            let big = |x: Goldilocks| x.to_biguint();
            assert_eq!(big(a + b), (&big(a) + &big(b)).rem(&p));
            assert_eq!(big(a * b), (&big(a) * &big(b)).rem(&p));
            assert_eq!(big(a.square()), (&big(a) * &big(a)).rem(&p));
            let diff = a - b;
            assert_eq!((&big(diff) + &big(b)).rem(&p), big(a));
            assert!((a + (-a)).is_zero());
        }
    }

    #[test]
    fn boundary_values_reduce_canonically() {
        assert_eq!(Goldilocks::from_u64(MODULUS), Goldilocks::zero());
        assert_eq!(Goldilocks::from_u64(MODULUS - 1) + Goldilocks::one(), Goldilocks::zero());
        assert_eq!(Goldilocks::from_u64(u64::MAX).as_canonical_u64(), EPSILON - 1);
        let max = Goldilocks::from_u64(MODULUS - 1);
        assert_eq!(max * max, Goldilocks::one());
    }

    #[test]
    fn inverse_and_pow() {
        let mut rng = test_rng();
        for _ in 0..50 {
            let a = Goldilocks::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.inverse().unwrap();
            assert!((a * inv).is_one());
        }
        assert!(Goldilocks::zero().inverse().is_none());
        let g = Goldilocks::from_u64(7);
        assert_eq!(g.pow_u64(5), g * g * g * g * g);
    }

    #[test]
    fn two_adic_root_has_exact_order() {
        let root = Goldilocks::two_adic_root_of_unity();
        let mut probe = root;
        for _ in 0..31 {
            probe = probe.square();
        }
        assert!(!probe.is_one(), "order divides 2^31: not exact");
        assert!((probe.square()).is_one(), "order does not divide 2^32");
        // Domain machinery contract.
        let w8 = Goldilocks::root_of_unity_pow2(3).unwrap();
        assert!(w8.pow_u64(8).is_one());
        assert!(!w8.pow_u64(4).is_one());
    }
}
