#![warn(missing_docs)]

//! From-scratch finite-field arithmetic for the zkperf suite.
//!
//! Provides the four prime fields and two pairing towers used by the paper's
//! workloads — BN254 (a.k.a. BN128/alt_bn128, circom's default) and
//! BLS12-381 — built on a const-generic Montgomery representation where all
//! derived constants (`R`, `R²`, `−p⁻¹`) are computed from the modulus, plus
//! a small arbitrary-precision integer type used for parsing, display and
//! pairing-exponent computation.
//!
//! Arithmetic is instrumented: every field operation retires a documented
//! micro-op template and reports its operand loads/stores through
//! [`zkperf_trace`], which is what lets the characterization framework
//! measure the protocol stages.
//!
//! # Examples
//!
//! ```
//! use zkperf_ff::{Field, PrimeField, bn254::Fr};
//!
//! let a = Fr::from_u64(6);
//! let b = Fr::from_str_radix("7", 10)?;
//! assert_eq!(a * b, Fr::from_u64(42));
//! # Ok::<(), zkperf_ff::ParseBigIntError>(())
//! ```

pub mod arith;
mod batch;
mod bigint;
pub mod bls12_381;
pub mod bn254;
mod cubic;
mod fp;
mod frob_cache;
pub mod goldilocks;
mod quad;
mod tower;
mod traits;

pub use batch::{batch_inverse, batch_inverse_with_scratch};
pub use bigint::{BigUint, ParseBigIntError};
pub use cubic::{CubicExt, CubicExtParams};
pub use fp::{Fp, FpParams};
pub use goldilocks::Goldilocks;
pub use quad::{QuadExt, QuadExtParams};
pub use traits::{Field, Frobenius, PrimeField};

/// A deterministic RNG for tests and reproducible measurement runs.
///
/// Seeded from a fixed constant so experiment outputs are stable across
/// runs; pass any other `rand::Rng` where fresh randomness matters.
pub fn test_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0x5eed_cafe_f00d_1234)
}
