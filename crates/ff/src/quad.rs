//! Generic quadratic extension `Base[x]/(x² − β)`.

use std::fmt;

use rand::Rng;

use crate::bigint::BigUint;
use crate::traits::{Field, Frobenius};

/// Parameters of a quadratic extension: the base field and the non-residue
/// `β` such that `x² − β` is irreducible.
pub trait QuadExtParams:
    Copy + Clone + fmt::Debug + PartialEq + Eq + std::hash::Hash + Send + Sync + 'static
{
    /// The field being extended.
    type Base: Field + Frobenius;
    /// Name used in `Debug` output.
    const NAME: &'static str;
    /// The non-residue `β`.
    fn non_residue() -> Self::Base;
}

/// An element `c0 + c1·x` of the quadratic extension defined by `P`.
///
/// Used for `Fp2` (over `Fp`) and `Fp12` (over `Fp6`) in the pairing towers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuadExt<P: QuadExtParams> {
    /// Constant coefficient.
    pub c0: P::Base,
    /// Coefficient of `x`.
    pub c1: P::Base,
}

impl<P: QuadExtParams> QuadExt<P> {
    /// Builds an element from its two coefficients.
    pub fn new(c0: P::Base, c1: P::Base) -> Self {
        QuadExt { c0, c1 }
    }

    /// Embeds a base-field element.
    pub fn from_base(c0: P::Base) -> Self {
        QuadExt {
            c0,
            c1: P::Base::zero(),
        }
    }

    /// The conjugate `c0 − c1·x` (equals the `p^(deg/2)`-power Frobenius).
    pub fn conjugate(&self) -> Self {
        QuadExt {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Multiplies by a base-field element coefficient-wise.
    pub fn mul_by_base(&self, s: P::Base) -> Self {
        QuadExt {
            c0: self.c0 * s,
            c1: self.c1 * s,
        }
    }

    /// The norm `c0² − β·c1²`, an element of the base field.
    pub fn norm(&self) -> P::Base {
        self.c0.square() - P::non_residue() * self.c1.square()
    }

    /// `(p^power − 1) / divisor` where `p` is the characteristic; panics if
    /// the division is not exact (it always is for the towers we build).
    pub(crate) fn frob_exponent(power: usize, divisor: u64) -> BigUint {
        let p = P::Base::characteristic();
        let mut pk = BigUint::one();
        for _ in 0..power {
            pk = &pk * &p;
        }
        let pm1 = pk.checked_sub(&BigUint::one()).expect("p^k >= 1");
        let (q, r) = pm1.divrem_u64(divisor);
        assert_eq!(r, 0, "p^{power} - 1 not divisible by {divisor}");
        q
    }
}

impl<P: QuadExtParams> Field for QuadExt<P> {
    fn zero() -> Self {
        Self::new(P::Base::zero(), P::Base::zero())
    }

    fn one() -> Self {
        Self::new(P::Base::one(), P::Base::zero())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // Complex-style squaring: 2 base multiplications.
        let v = self.c0 * self.c1;
        let beta = P::non_residue();
        let c0 = (self.c0 + self.c1) * (self.c0 + beta * self.c1) - v - beta * v;
        let c1 = v.double();
        Self::new(c0, c1)
    }

    fn inverse(&self) -> Option<Self> {
        let norm = self.norm();
        let inv = norm.inverse()?;
        Some(Self::new(self.c0 * inv, -(self.c1 * inv)))
    }

    fn from_u64(v: u64) -> Self {
        Self::from_base(P::Base::from_u64(v))
    }

    fn characteristic() -> BigUint {
        P::Base::characteristic()
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(P::Base::random(rng), P::Base::random(rng))
    }
}

/// The constants `β^((p^k−1)/2)` for `k = 1..=MAX_POWER`, computed once
/// per extension type.
fn frob_coeffs<P: QuadExtParams>() -> &'static [P::Base] {
    crate::frob_cache::get_or_build::<P, Vec<P::Base>>(|| {
        (1..=crate::frob_cache::MAX_POWER)
            .map(|k| P::non_residue().pow(&QuadExt::<P>::frob_exponent(k, 2)))
            .collect()
    })
}

impl<P: QuadExtParams> Frobenius for QuadExt<P> {
    fn frobenius(&self, power: usize) -> Self {
        if power == 0 {
            return *self;
        }
        // (c0 + c1 x)^(p^k) = c0^(p^k) + c1^(p^k) · β^((p^k−1)/2) · x
        let coeff = if power <= crate::frob_cache::MAX_POWER {
            frob_coeffs::<P>()[power - 1]
        } else {
            P::non_residue().pow(&Self::frob_exponent(power, 2))
        };
        Self::new(
            self.c0.frobenius(power),
            self.c1.frobenius(power) * coeff,
        )
    }
}

impl<P: QuadExtParams> std::ops::Add for QuadExt<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}

impl<P: QuadExtParams> std::ops::Sub for QuadExt<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}

impl<P: QuadExtParams> std::ops::Mul for QuadExt<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba: 3 base multiplications.
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let c0 = v0 + P::non_residue() * v1;
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}

impl<P: QuadExtParams> std::ops::Neg for QuadExt<P> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}

impl<P: QuadExtParams> std::ops::AddAssign for QuadExt<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: QuadExtParams> std::ops::SubAssign for QuadExt<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: QuadExtParams> std::ops::MulAssign for QuadExt<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: QuadExtParams> std::iter::Sum for QuadExt<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<P: QuadExtParams> std::iter::Product for QuadExt<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::one(), |a, b| a * b)
    }
}

impl<P: QuadExtParams> Default for QuadExt<P> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<P: QuadExtParams> fmt::Debug for QuadExt<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?} + {:?}·x)", P::NAME, self.c0, self.c1)
    }
}

impl<P: QuadExtParams> fmt::Display for QuadExt<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*x)", self.c0, self.c1)
    }
}
