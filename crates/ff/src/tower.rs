//! Degree-12 tower specializations used by the fast pairing engine.
//!
//! Both pairing towers in this suite have the same shape
//! `Fq12 = Fq6[w]/(w² − v)` over `Fq6 = Fq2[v]/(v³ − ξ)`, so the two
//! kernels the optimized pairing needs — squaring restricted to the
//! cyclotomic subgroup and multiplication by a sparse Miller-loop line —
//! are written once, generically over the tower parameters, and work for
//! BN254 and BLS12-381 alike.
//!
//! Elements produced by the "easy part" of the final exponentiation
//! (`f^(q⁶−1)(q²+1)`) live in the cyclotomic subgroup, where conjugation
//! is inversion and the Granger–Scott formulas square with three `Fq4`
//! squarings instead of a dense `Fq12` squaring. Line evaluations populate
//! only three of the six `Fq2` slots, so multiplying the Miller
//! accumulator by one costs 13 `Fq2` multiplications instead of 18.

use crate::bigint::BigUint;
use crate::cubic::{CubicExt, CubicExtParams};
use crate::quad::{QuadExt, QuadExtParams};
use crate::traits::Field;

/// Squares the `Fq4 = Fq2[w]/(w² − v·?)`-style pair `(a, b)` with
/// non-residue `ξ`: `(a + b·s)² = (a² + ξ·b²) + ((a+b)² − a² − b²)·s`.
fn fp4_square<F: Field>(a: F, b: F, xi: F) -> (F, F) {
    let t0 = a.square();
    let t1 = b.square();
    let c0 = t1 * xi + t0;
    let c1 = (a + b).square() - t0 - t1;
    (c0, c1)
}

impl<P12, P6> QuadExt<P12>
where
    P12: QuadExtParams<Base = CubicExt<P6>>,
    P6: CubicExtParams,
{
    /// Squares an element of the cyclotomic subgroup (the image of the
    /// easy part of the final exponentiation) using the Granger–Scott
    /// compressed formulas — three `Fq4` squarings instead of a dense
    /// `Fq12` squaring.
    ///
    /// Only valid on cyclotomic elements; for general elements use
    /// [`Field::square`].
    pub fn cyclotomic_square(&self) -> Self {
        let xi = P6::non_residue();
        let (z0, z4, z3) = (self.c0.c0, self.c0.c1, self.c0.c2);
        let (z2, z1, z5) = (self.c1.c0, self.c1.c1, self.c1.c2);

        let (t0, t1) = fp4_square(z0, z1, xi);
        let z0 = (t0 - z0).double() + t0;
        let z1 = (t1 + z1).double() + t1;

        let (t0, t1) = fp4_square(z2, z3, xi);
        let (t2, t3) = fp4_square(z4, z5, xi);
        let z4 = (t0 - z4).double() + t0;
        let z5 = (t1 + z5).double() + t1;

        let t0 = t3 * xi;
        let z2 = (t0 + z2).double() + t0;
        let z3 = (t2 - z3).double() + t2;

        Self::new(CubicExt::new(z0, z4, z3), CubicExt::new(z2, z1, z5))
    }

    /// `self^exp` via square-and-multiply with cyclotomic squarings.
    ///
    /// Only valid on cyclotomic elements (where it agrees bit-for-bit
    /// with [`Field::pow`] at roughly a third of the squaring cost).
    pub fn cyclotomic_pow(&self, exp: &BigUint) -> Self {
        if exp.is_zero() {
            return Self::one();
        }
        let mut acc = *self;
        for i in (0..exp.bits() - 1).rev() {
            acc = acc.cyclotomic_square();
            if exp.bit(i) {
                acc *= *self;
            }
        }
        acc
    }

    /// [`Self::cyclotomic_pow`] for machine-word exponents (the curve
    /// parameters `x` driving the final-exponentiation chains).
    pub fn cyclotomic_pow_u64(&self, exp: u64) -> Self {
        self.cyclotomic_pow(&BigUint::from_u64(exp))
    }

    /// Multiplies by the sparse element whose only populated `Fq2` slots
    /// are `c0.c0`, `c0.c1` and `c1.c1` — the shape of an M-twist line
    /// evaluation (BLS12-381).
    pub fn mul_by_014(&self, c0: P6::Base, c1: P6::Base, c4: P6::Base) -> Self {
        let aa = self.c0.mul_by_01(c0, c1);
        let bb = self.c1.mul_by_1(c4);
        let new_c1 = (self.c0 + self.c1).mul_by_01(c0, c1 + c4) - aa - bb;
        Self::new(bb.mul_by_v() + aa, new_c1)
    }

    /// Multiplies by the sparse element whose only populated `Fq2` slots
    /// are `c0.c0`, `c1.c0` and `c1.c1` — the shape of a D-twist line
    /// evaluation (BN254).
    pub fn mul_by_034(&self, c0: P6::Base, c3: P6::Base, c4: P6::Base) -> Self {
        let a = self.c0.mul_by_base(c0);
        let b = self.c1.mul_by_01(c3, c4);
        let new_c1 = (self.c0 + self.c1).mul_by_01(c0 + c3, c4) - a - b;
        Self::new(b.mul_by_v() + a, new_c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Frobenius;
    use crate::{bls12_381, bn254};

    /// Projects a random element into the cyclotomic subgroup via the
    /// easy part of the final exponentiation.
    fn cyclotomic<P12, P6>(f: QuadExt<P12>) -> QuadExt<P12>
    where
        P12: QuadExtParams<Base = CubicExt<P6>>,
        P6: CubicExtParams,
        QuadExt<P12>: Frobenius,
    {
        let f1 = f.conjugate() * f.inverse().unwrap();
        f1.frobenius(2) * f1
    }

    fn check_cyclotomic_square<P12, P6>()
    where
        P12: QuadExtParams<Base = CubicExt<P6>>,
        P6: CubicExtParams,
        QuadExt<P12>: Frobenius,
    {
        let mut rng = crate::test_rng();
        for _ in 0..8 {
            let u = cyclotomic(QuadExt::<P12>::random(&mut rng));
            assert_eq!(u.cyclotomic_square(), u.square());
            // Conjugation inverts cyclotomic elements.
            assert!((u * u.conjugate()).is_one());
            let e = BigUint::from_u64(0xdead_beef_0123);
            assert_eq!(u.cyclotomic_pow(&e), u.pow(&e));
            assert_eq!(u.cyclotomic_pow_u64(0), QuadExt::<P12>::one());
            assert_eq!(u.cyclotomic_pow_u64(1), u);
        }
    }

    #[test]
    fn cyclotomic_square_matches_square_on_both_towers() {
        check_cyclotomic_square::<bn254::Fq12Params, bn254::Fq6Params>();
        check_cyclotomic_square::<bls12_381::Fq12Params, bls12_381::Fq6Params>();
    }

    fn check_sparse_muls<P12, P6>()
    where
        P12: QuadExtParams<Base = CubicExt<P6>>,
        P6: CubicExtParams,
    {
        let mut rng = crate::test_rng();
        for _ in 0..8 {
            let f = QuadExt::<P12>::random(&mut rng);
            let (a, b, c) = (
                P6::Base::random(&mut rng),
                P6::Base::random(&mut rng),
                P6::Base::random(&mut rng),
            );
            let zero = P6::Base::zero();
            let line_m = QuadExt::<P12>::new(
                CubicExt::new(a, b, zero),
                CubicExt::new(zero, c, zero),
            );
            assert_eq!(f.mul_by_014(a, b, c), f * line_m);
            let line_d = QuadExt::<P12>::new(
                CubicExt::new(a, zero, zero),
                CubicExt::new(b, c, zero),
            );
            assert_eq!(f.mul_by_034(a, b, c), f * line_d);

            // The Fq6-level sparse helpers against the dense product.
            let g = CubicExt::<P6>::random(&mut rng);
            assert_eq!(g.mul_by_01(a, b), g * CubicExt::new(a, b, zero));
            assert_eq!(g.mul_by_1(c), g * CubicExt::new(zero, c, zero));
        }
    }

    #[test]
    fn sparse_line_muls_match_dense_products_on_both_towers() {
        check_sparse_muls::<bn254::Fq12Params, bn254::Fq6Params>();
        check_sparse_muls::<bls12_381::Fq12Params, bls12_381::Fq6Params>();
    }
}
