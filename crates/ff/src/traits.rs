//! Core algebraic traits implemented by the prime fields and their towers.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::bigint::{BigUint, ParseBigIntError};

/// A finite field element.
///
/// Implemented by the prime fields ([`crate::Fp`]) and every extension level
/// of the pairing towers. All operations are by value; elements are small
/// `Copy` types.
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// `true` iff this is the additive identity.
    fn is_zero(&self) -> bool;

    /// `true` iff this is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// `2·self`.
    fn double(&self) -> Self {
        *self + *self
    }

    /// `self²`.
    fn square(&self) -> Self {
        *self * *self
    }

    /// Multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// `self^exp` by left-to-right square-and-multiply.
    fn pow(&self, exp: &BigUint) -> Self {
        let mut acc = Self::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc *= *self;
            }
        }
        acc
    }

    /// Embeds a small integer.
    fn from_u64(v: u64) -> Self;

    /// The characteristic `p` of the field (for extensions, of the base
    /// prime field).
    fn characteristic() -> BigUint;

    /// A uniformly random element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A prime field `F_p`, with access to the canonical integer representation
/// and the 2-adic structure needed by the radix-2 NTT.
pub trait PrimeField: Field + PartialOrd + Ord {
    /// Number of 64-bit limbs in the internal representation.
    const NUM_LIMBS: usize;

    /// The modulus `p`.
    fn modulus() -> BigUint;

    /// The canonical representative in `[0, p)`.
    fn to_biguint(&self) -> BigUint;

    /// Reduces an arbitrary integer modulo `p`.
    fn from_biguint(v: &BigUint) -> Self;

    /// Writes the canonical (non-Montgomery) representation into
    /// `out[..NUM_LIMBS]`, little-endian.
    ///
    /// Equivalent to `to_biguint().to_limbs(NUM_LIMBS)` but without the
    /// intermediate heap allocations, so hot paths (MSM digit extraction,
    /// fixed-base windowing) can fill preallocated flat buffers.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`NUM_LIMBS`](Self::NUM_LIMBS).
    fn write_canonical_limbs(&self, out: &mut [u64]) {
        let limbs = self.to_biguint().to_limbs(Self::NUM_LIMBS);
        out[..Self::NUM_LIMBS].copy_from_slice(&limbs);
    }

    /// Bit length of the modulus (254 for BN254, 255 for BLS12-381 `Fr`).
    ///
    /// Scalars are strictly below `p`, so window decompositions past this
    /// many bits are always zero — Pippenger loops use it to skip the empty
    /// top windows of the limb space.
    fn modulus_bits() -> u32 {
        Self::modulus().bits() as u32
    }

    /// Parses a decimal (radix 10) or hexadecimal (radix 16) literal and
    /// reduces it modulo `p`.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseBigIntError`] from the underlying integer parse.
    fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigIntError> {
        Ok(Self::from_biguint(&BigUint::from_str_radix(s, radix)?))
    }

    /// The exponent `s` of the largest power of two dividing `p − 1`.
    fn two_adicity() -> u32 {
        let p_minus_1 = Self::modulus()
            .checked_sub(&BigUint::one())
            .expect("modulus >= 2");
        p_minus_1.trailing_zeros() as u32
    }

    /// An element of exact multiplicative order `2^two_adicity()`.
    ///
    /// Derived at runtime from a small candidate generator by exponentiation
    /// and verified, so no large root constant has to be transcribed.
    fn two_adic_root_of_unity() -> Self;

    /// A square root of `self`, if one exists (Tonelli-Shanks, using the
    /// field's 2-adic structure; works for any odd-characteristic field).
    fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        let s = Self::two_adicity();
        let p_minus_1 = Self::modulus()
            .checked_sub(&BigUint::one())
            .expect("modulus >= 2");
        let q = p_minus_1.shr(s as usize); // odd part
        let (half_q1, rem) = (&q + &BigUint::one()).divrem_u64(2);
        debug_assert_eq!(rem, 0, "q is odd");
        let mut x = self.pow(&half_q1); // a^((q+1)/2)
        let mut t = self.pow(&q);
        let mut z = Self::two_adic_root_of_unity();
        let mut m = s;
        while !t.is_one() {
            // Least i with t^(2^i) = 1.
            let mut i = 0u32;
            let mut probe = t;
            while !probe.is_one() {
                probe = probe.square();
                i += 1;
                if i == m {
                    return None; // non-residue
                }
            }
            let mut b = z;
            for _ in 0..(m - i - 1) {
                b = b.square();
            }
            x *= b;
            z = b.square();
            t *= z;
            m = i;
        }
        debug_assert_eq!(x.square(), *self);
        Some(x)
    }

    /// An element of exact order `2^k`, or `None` if `k` exceeds the field's
    /// two-adicity.
    fn root_of_unity_pow2(k: u32) -> Option<Self> {
        let s = Self::two_adicity();
        if k > s {
            return None;
        }
        let mut root = Self::two_adic_root_of_unity();
        for _ in 0..(s - k) {
            root = root.square();
        }
        Some(root)
    }
}

/// A field with an absolute Frobenius endomorphism `x ↦ x^p`, applied in
/// O(multiplications) rather than by full exponentiation.
pub trait Frobenius: Field {
    /// `self^(p^power)` where `p` is the characteristic.
    fn frobenius(&self, power: usize) -> Self;
}
