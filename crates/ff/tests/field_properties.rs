//! Property-based tests of the field stack: both scalar fields, both base
//! fields, the full Fp12 towers, and Montgomery-vs-reference agreement.

use proptest::prelude::*;

use zkperf_ff::{bls12_381, bn254, BigUint, Field, Frobenius, PrimeField};

fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..=max_limbs)
        .prop_map(|limbs| BigUint::from_limbs(&limbs))
}

macro_rules! field_suite {
    ($name:ident, $field:ty, $limbs:expr) => {
        mod $name {
            use super::*;

            fn arb() -> impl Strategy<Value = $field> {
                proptest::collection::vec(any::<u64>(), $limbs)
                    .prop_map(|l| <$field>::from_biguint(&BigUint::from_limbs(&l)))
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]

                #[test]
                fn axioms(a in arb(), b in arb(), c in arb()) {
                    prop_assert_eq!(a + b, b + a);
                    prop_assert_eq!(a * b, b * a);
                    prop_assert_eq!((a + b) * c, a * c + b * c);
                    prop_assert_eq!(a + (-a), <$field>::zero());
                    prop_assert_eq!(a.square(), a * a);
                    prop_assert_eq!(a.double(), a + a);
                }

                #[test]
                fn montgomery_matches_reference(a in arb(), b in arb()) {
                    let m = <$field>::modulus();
                    prop_assert_eq!(
                        (a * b).to_biguint(),
                        (&a.to_biguint() * &b.to_biguint()).rem(&m)
                    );
                    prop_assert_eq!(
                        (a + b).to_biguint(),
                        (&a.to_biguint() + &b.to_biguint()).rem(&m)
                    );
                }

                #[test]
                fn canonical_roundtrip(a in arb()) {
                    prop_assert_eq!(<$field>::from_biguint(&a.to_biguint()), a);
                    prop_assert!(a.to_biguint() < <$field>::modulus());
                }

                #[test]
                fn fermat_inverse(a in arb()) {
                    if !a.is_zero() {
                        let inv = a.inverse().unwrap();
                        prop_assert!((a * inv).is_one());
                    }
                }
            }
        }
    };
}

field_suite!(bn254_fr, bn254::Fr, 4);
field_suite!(bn254_fq, bn254::Fq, 4);
field_suite!(bls_fr, bls12_381::Fr, 4);
field_suite!(bls_fq, bls12_381::Fq, 6);

fn arb_fq12_bn() -> impl Strategy<Value = bn254::Fq12> {
    any::<u64>().prop_map(|seed| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bn254::Fq12::random(&mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fq12_tower_axioms(a in arb_fq12_bn(), b in arb_fq12_bn()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        if !a.is_zero() {
            prop_assert!((a * a.inverse().unwrap()).is_one());
        }
    }

    #[test]
    fn fq12_frobenius_is_additive_and_multiplicative(a in arb_fq12_bn(), b in arb_fq12_bn()) {
        let fa = a.frobenius(1);
        let fb = b.frobenius(1);
        prop_assert_eq!((a + b).frobenius(1), fa + fb);
        prop_assert_eq!((a * b).frobenius(1), fa * fb);
    }

    #[test]
    fn fq12_conjugation_norm_lands_in_fq6(a in arb_fq12_bn()) {
        // a · conj(a) has no w-component.
        let n = a * a.conjugate();
        prop_assert!(n.c1.is_zero());
    }

    #[test]
    fn biguint_shifted_mul_div(a in arb_biguint(4), k in 0usize..130) {
        let shifted = a.shl(k);
        prop_assert_eq!(shifted.shr(k), a.clone());
        if !a.is_zero() {
            prop_assert_eq!(shifted.bits(), a.bits() + k);
        }
    }
}

#[test]
fn cross_curve_moduli_are_distinct() {
    assert_ne!(
        bn254::Fr::modulus().to_string(),
        bls12_381::Fr::modulus().to_string()
    );
    assert!(bls12_381::Fq::modulus() > bn254::Fq::modulus());
}

mod sqrt_properties {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sqrt_of_squares_roundtrips_bn_fr(limbs in proptest::collection::vec(any::<u64>(), 4)) {
            // Fr has p ≡ 1 (mod 4): the general Tonelli-Shanks path.
            let a = bn254::Fr::from_biguint(&BigUint::from_limbs(&limbs));
            let sq = a.square();
            let root = sq.sqrt().expect("squares have roots");
            prop_assert!(root == a || root == -a);
        }

        #[test]
        fn sqrt_of_squares_roundtrips_bls_fq(limbs in proptest::collection::vec(any::<u64>(), 6)) {
            // Fq has p ≡ 3 (mod 4): the short exponent path inside TS.
            let a = bls12_381::Fq::from_biguint(&BigUint::from_limbs(&limbs));
            let sq = a.square();
            let root = sq.sqrt().expect("squares have roots");
            prop_assert!(root == a || root == -a);
        }

        #[test]
        fn non_residues_have_no_root(limbs in proptest::collection::vec(any::<u64>(), 4)) {
            let a = bn254::Fq::from_biguint(&BigUint::from_limbs(&limbs));
            // Exactly one of a, a·g is a QR for non-zero a and non-residue g;
            // just assert sqrt() is consistent with squaring.
            match a.sqrt() {
                Some(r) => prop_assert_eq!(r.square(), a),
                None => prop_assert!(!a.is_zero()),
            }
        }
    }

    #[test]
    fn sqrt_edge_cases() {
        use zkperf_ff::Field;
        assert_eq!(bn254::Fq::zero().sqrt(), Some(bn254::Fq::zero()));
        assert_eq!(bn254::Fq::one().sqrt().map(|r| r.square()), Some(bn254::Fq::one()));
        // −1 is a non-residue when p ≡ 3 (mod 4).
        assert!((-bn254::Fq::one()).sqrt().is_none());
        // ...but a residue in BN254's Fr (p ≡ 1 mod 4, two-adicity 28).
        assert!((-bn254::Fr::one()).sqrt().is_some());
    }
}
