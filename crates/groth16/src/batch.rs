//! Batched proof verification.
//!
//! Verifying `k` proofs separately costs `4k` Miller loops; the standard
//! random-linear-combination batch does it with `2k + 3`, failing (with
//! overwhelming probability) if *any* proof in the batch is invalid.

use rand::Rng;

use zkperf_ec::{msm, Affine, Engine, Projective};
use zkperf_ff::Field;
use zkperf_trace as trace;

use crate::key::{Proof, VerifyingKey};
use crate::verify::VerifyError;

/// Verifies `items = [(proof, public_witness), …]` against one key in a
/// single combined pairing check.
///
/// Each proof is scaled by an independent random coefficient from `rng`,
/// so an invalid member cannot cancel against another except with
/// negligible probability. An empty batch verifies trivially.
///
/// # Errors
///
/// Returns the first [`VerifyError`] for malformed inputs (wrong public
/// witness arity, missing one-wire); returns `Ok(false)` when the batch
/// contains an invalid proof.
pub fn verify_batch<E: Engine, R: Rng + ?Sized>(
    vk: &VerifyingKey<E>,
    items: &[(Proof<E>, Vec<E::Fr>)],
    rng: &mut R,
) -> Result<bool, VerifyError> {
    let _g = trace::region_profile("verify_batch");
    if items.is_empty() {
        return Ok(true);
    }
    let Some(parts) = accumulate(vk, items, rng)? else {
        return Ok(false);
    };
    let mut g2_inputs = parts.bs;
    g2_inputs.push(vk.gamma_g2);
    g2_inputs.push(vk.delta_g2);
    g2_inputs.push(vk.beta_g2);
    Ok(E::multi_pairing(&parts.g1, &g2_inputs).is_one())
}

/// The G1 side of the combined check plus the per-proof `B` points; the
/// caller appends `(γ, δ, β)` — plain or prepared — to the G2 side.
pub(crate) struct BatchParts<E: Engine> {
    /// `[r₁A₁, …, rₖAₖ, −Σrᵢxᵢ, −ΣrᵢCᵢ, −(Σrᵢ)α]`.
    pub g1: Vec<Affine<E::G1>>,
    /// `[B₁, …, Bₖ]`.
    pub bs: Vec<Affine<E::G2>>,
}

/// Accumulates the random-linear-combination terms of the batch equation
/// `Π e(rᵢAᵢ, Bᵢ) · e(−Σrᵢxᵢ, γ) · e(−ΣrᵢCᵢ, δ) · e(−(Σrᵢ)α, β) = 1`.
///
/// Returns `Ok(None)` when a proof element is off-curve (the batch is
/// invalid without needing any pairing).
pub(crate) fn accumulate<E: Engine, R: Rng + ?Sized>(
    vk: &VerifyingKey<E>,
    items: &[(Proof<E>, Vec<E::Fr>)],
    rng: &mut R,
) -> Result<Option<BatchParts<E>>, VerifyError> {
    let mut g1_inputs: Vec<Affine<E::G1>> = Vec::with_capacity(items.len() + 3);
    let mut bs: Vec<Affine<E::G2>> = Vec::with_capacity(items.len());
    let mut sum_r = E::Fr::zero();
    let mut sum_c = Projective::<E::G1>::identity();
    let mut sum_x = Projective::<E::G1>::identity();

    for (proof, public) in items {
        if public.len() != vk.ic.len() {
            return Err(VerifyError::PublicWitnessLength {
                expected: vk.ic.len(),
                got: public.len(),
            });
        }
        if public.first().map(Field::is_one) != Some(true) {
            return Err(VerifyError::MissingOneWire);
        }
        if !(proof.a.is_on_curve() && proof.b.is_on_curve() && proof.c.is_on_curve()) {
            return Ok(None);
        }
        let r = E::Fr::random(rng);
        sum_r += r;
        // rᵢ·Aᵢ paired with Bᵢ.
        g1_inputs.push((proof.a.to_projective() * r).to_affine());
        bs.push(proof.b);
        sum_c += proof.c.to_projective() * r;
        sum_x += msm(&vk.ic, public) * r;
    }

    g1_inputs.push(sum_x.to_affine().neg());
    g1_inputs.push(sum_c.to_affine().neg());
    g1_inputs.push((vk.alpha_g1.to_projective() * sum_r).to_affine().neg());

    Ok(Some(BatchParts { g1: g1_inputs, bs }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, setup};
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;

    type Items = Vec<(Proof<Bn254>, Vec<Fr>)>;

    fn batch(count: usize) -> (VerifyingKey<Bn254>, Items) {
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let items = (0..count)
            .map(|i| {
                let w = circuit
                    .generate_witness(&[Fr::from_u64(2 + i as u64)], &[])
                    .unwrap();
                let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
                (proof, w.public().to_vec())
            })
            .collect();
        (pk.vk, items)
    }

    #[test]
    fn valid_batches_verify() {
        let mut rng = zkperf_ff::test_rng();
        let (vk, items) = batch(4);
        assert!(verify_batch(&vk, &items, &mut rng).unwrap());
        assert!(verify_batch(&vk, &[], &mut rng).unwrap(), "empty batch");
        assert!(verify_batch(&vk, &items[..1], &mut rng).unwrap(), "singleton");
    }

    #[test]
    fn one_bad_proof_poisons_the_batch() {
        let mut rng = zkperf_ff::test_rng();
        let (vk, mut items) = batch(4);
        // Corrupt one statement.
        items[2].1[1] += Fr::one();
        assert!(!verify_batch(&vk, &items, &mut rng).unwrap());
        // And a swapped proof element.
        let (vk, mut items) = batch(3);
        items[0].0.c = items[0].0.a;
        assert!(!verify_batch(&vk, &items, &mut rng).unwrap());
    }

    #[test]
    fn tampered_proofs_are_rejected() {
        // Cross-splice components between two individually valid proofs:
        // every element stays on-curve, so only the pairing check can
        // catch the tamper — and it must, for each component in turn.
        let mut rng = zkperf_ff::test_rng();
        let (vk, items) = batch(2);
        type Splice = fn(&mut Proof<Bn254>, &Proof<Bn254>);
        let splices: [Splice; 3] = [
            |p, donor| p.a = donor.a,
            |p, donor| p.b = donor.b,
            |p, donor| p.c = donor.c,
        ];
        for splice in splices {
            let mut tampered = items.clone();
            let donor = tampered[1].0.clone();
            splice(&mut tampered[0].0, &donor);
            assert!(
                !verify_batch(&vk, &tampered, &mut rng).unwrap(),
                "batch accepted a proof with a spliced component"
            );
        }
    }

    #[test]
    fn arity_errors_are_reported() {
        let mut rng = zkperf_ff::test_rng();
        let (vk, mut items) = batch(2);
        items[1].1.pop();
        assert!(matches!(
            verify_batch(&vk, &items, &mut rng),
            Err(VerifyError::PublicWitnessLength { .. })
        ));
    }
}
