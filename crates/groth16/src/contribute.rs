//! Ceremony contributions (the snarkjs `zkey contribute` step).
//!
//! A Groth16 zkey produced by `snarkjs groth16 setup` is not usable until
//! at least one participant has contributed randomness to the phase-2
//! ceremony; the paper's `setup` stage measurement therefore includes this
//! pass, which re-randomizes δ and re-scales every δ-divided key section
//! with full-width scalar multiplications. It dominates the stage's time
//! and memory traffic (the paper's 76.1% share and 1000× loads).

use rand::Rng;

use zkperf_ec::{Engine, Projective};
use zkperf_ff::{Field, PrimeField};
use zkperf_trace as trace;

use crate::key::ProvingKey;

/// Applies one phase-2 contribution to `pk`: samples a random δ-update
/// `d`, sets `δ' = d·δ`, and re-scales the `L` and `H` queries by `d⁻¹`
/// so the key remains consistent. Proofs under the updated key verify
/// against the updated verification key.
pub fn contribute<E: Engine, R: Rng + ?Sized>(pk: &mut ProvingKey<E>, rng: &mut R) {
    let _g = trace::region_profile("contribute");
    let (d, d_inv) = loop {
        let v = E::Fr::random(rng);
        if let Some(inv) = v.inverse() {
            break (v, inv);
        }
    };
    let d_big = d.to_biguint();
    let d_inv = d_inv.to_biguint();

    pk.delta_g1 = pk.delta_g1.to_projective().mul_windowed(&d_big).to_affine();
    pk.vk.delta_g2 = pk
        .vk
        .delta_g2
        .to_projective()
        .mul_windowed(&d_big)
        .to_affine();

    // Every δ-divided element picks up d⁻¹: the O(n) sweep that makes
    // setup the heaviest stage.
    for query in [&mut pk.l_query, &mut pk.h_query] {
        let scaled: Vec<Projective<E::G1>> = query
            .iter()
            .map(|p| {
                trace::control(1);
                p.to_projective().mul_windowed(&d_inv)
            })
            .collect();
        *query = Projective::batch_to_affine(&scaled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, setup, verify};
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn proofs_verify_after_contribution() {
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let mut pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let before_delta = pk.vk.delta_g2;
        contribute::<Bn254, _>(&mut pk, &mut rng);
        assert_ne!(pk.vk.delta_g2, before_delta, "delta was re-randomized");
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap());
    }

    #[test]
    fn pre_contribution_key_rejects_post_contribution_proofs() {
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let mut pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let old_vk = pk.vk.clone();
        contribute::<Bn254, _>(&mut pk, &mut rng);
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(!verify::<Bn254>(&old_vk, &proof, w.public()).unwrap());
    }

    #[test]
    fn multiple_contributions_compose() {
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let mut pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        contribute::<Bn254, _>(&mut pk, &mut rng);
        contribute::<Bn254, _>(&mut pk, &mut rng);
        let w = circuit.generate_witness(&[Fr::from_u64(5)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap());
    }
}
