//! Key and proof material produced and consumed by the protocol stages.

use zkperf_ec::{Affine, Engine};

/// The verification key (`vk` in the paper's workflow): everything the
/// verifier needs, independent of the witness size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyingKey<E: Engine> {
    /// `[α]₁`.
    pub alpha_g1: Affine<E::G1>,
    /// `[β]₂`.
    pub beta_g2: Affine<E::G2>,
    /// `[γ]₂`.
    pub gamma_g2: Affine<E::G2>,
    /// `[δ]₂`.
    pub delta_g2: Affine<E::G2>,
    /// `[(β·uᵢ(τ) + α·vᵢ(τ) + wᵢ(τ))/γ]₁` for each public wire `i`
    /// (the "input consistency" query).
    pub ic: Vec<Affine<E::G1>>,
}

/// The proving key (`pk` in the paper's workflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvingKey<E: Engine> {
    /// The embedded verification key.
    pub vk: VerifyingKey<E>,
    /// `[β]₁`.
    pub beta_g1: Affine<E::G1>,
    /// `[δ]₁`.
    pub delta_g1: Affine<E::G1>,
    /// `[uᵢ(τ)]₁` for every wire.
    pub a_query: Vec<Affine<E::G1>>,
    /// `[vᵢ(τ)]₁` for every wire.
    pub b_g1_query: Vec<Affine<E::G1>>,
    /// `[vᵢ(τ)]₂` for every wire.
    pub b_g2_query: Vec<Affine<E::G2>>,
    /// `[(β·uᵢ + α·vᵢ + wᵢ)/δ]₁` for the non-public wires.
    pub l_query: Vec<Affine<E::G1>>,
    /// `[τⁱ·z(τ)/δ]₁` for `i = 0..domain_size − 1` (the H query).
    pub h_query: Vec<Affine<E::G1>>,
    /// Domain size used at setup (the prover must use the same).
    pub domain_size: usize,
    /// Number of public wires (`1 + outputs + public inputs`).
    pub num_public_wires: usize,
}

/// A Groth16 proof: three group elements, constant-size regardless of the
/// circuit (the succinctness the paper's background section highlights).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof<E: Engine> {
    /// `[A]₁`.
    pub a: Affine<E::G1>,
    /// `[B]₂`.
    pub b: Affine<E::G2>,
    /// `[C]₁`.
    pub c: Affine<E::G1>,
}

impl<E: Engine> Proof<E> {
    /// Serialized size in bytes (uncompressed affine coordinates), for the
    /// "proof size" row of architecture-level comparisons.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of_val;
        size_of_val(&self.a) + size_of_val(&self.b) + size_of_val(&self.c)
    }
}
