#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! A from-scratch Groth16 proving system over BN254 and BLS12-381.
//!
//! Implements the last four stages of the paper's zk-SNARK workflow —
//! `setup`, `witness` (via `zkperf-circuit`), `proving` and `verifying` —
//! on top of the suite's own field, curve, and polynomial substrates. The
//! `compile` stage lives in [`zkperf_circuit`].
//!
//! # Examples
//!
//! ```
//! use zkperf_circuit::library::exponentiate;
//! use zkperf_ec::Bn254;
//! use zkperf_ff::{Field, bn254::Fr};
//! use zkperf_groth16::{prove, setup, verify};
//!
//! let circuit = exponentiate::<Fr>(8); // y = x^8
//! let mut rng = zkperf_ff::test_rng();
//! let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
//! let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[])?;
//! let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)?;
//! assert!(verify::<Bn254>(&pk.vk, &proof, witness.public())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
mod contribute;
mod key;
mod prepared;
mod prove;
mod qap;
mod setup;
mod stream;
mod verify;

pub use batch::verify_batch;
pub use contribute::contribute;
pub use key::{Proof, ProvingKey, VerifyingKey};
pub use prepared::PreparedVerifyingKey;
pub use prove::{prove, ProveError};
pub use qap::{compute_h_coefficients, evaluate_constraints, evaluate_matrices_at};
pub use setup::{setup, SetupError};
pub use stream::{
    prove_streamed, setup_streamed, ChunkedKey, FixedParts, G1Chunks, G1Query, G2Chunks,
    MemorySink, QuerySink, QuerySource, StreamError, StreamHeader, StreamProveError,
    StreamSetupError, G1_QUERIES,
};
pub use verify::{verify, VerifyError};

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::{exponentiate, multiplier_chain};
    use zkperf_ec::{Bls12_381, Bn254, Engine};
    use zkperf_ff::Field;

    fn end_to_end<E: Engine>() {
        let circuit = exponentiate::<E::Fr>(16);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<E, _>(circuit.r1cs(), &mut rng).unwrap();
        let x = E::Fr::from_u64(5);
        let witness = circuit.generate_witness(&[x], &[]).unwrap();
        let proof = prove::<E, _>(&pk, circuit.r1cs(), &witness, &mut rng).unwrap();
        assert!(verify::<E>(&pk.vk, &proof, witness.public()).unwrap());

        // Soundness spot-checks: wrong public input and corrupted proof fail.
        let mut wrong = witness.public().to_vec();
        wrong[2] = E::Fr::from_u64(6);
        assert!(!verify::<E>(&pk.vk, &proof, &wrong).unwrap());
        let mut corrupt = proof.clone();
        corrupt.c = corrupt.a;
        assert!(!verify::<E>(&pk.vk, &corrupt, witness.public()).unwrap());
        // Swapped proof elements fail too.
        let swapped = Proof::<E> {
            a: proof.c,
            b: proof.b,
            c: proof.a,
        };
        assert!(!verify::<E>(&pk.vk, &swapped, witness.public()).unwrap());
    }

    #[test]
    fn bn254_end_to_end() {
        end_to_end::<Bn254>();
    }

    #[test]
    fn bls12_381_end_to_end() {
        end_to_end::<Bls12_381>();
    }

    #[test]
    fn proof_is_constant_size_across_circuits() {
        let mut rng = zkperf_ff::test_rng();
        let mut sizes = Vec::new();
        for n in [4usize, 32] {
            let circuit = exponentiate::<zkperf_ff::bn254::Fr>(n);
            let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
            let w = circuit
                .generate_witness(&[zkperf_ff::bn254::Fr::from_u64(2)], &[])
                .unwrap();
            let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
            sizes.push(proof.size_bytes());
            assert!(verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap());
        }
        assert_eq!(sizes[0], sizes[1], "Groth16 proofs are constant-size");
    }

    #[test]
    fn private_inputs_stay_private_but_prove() {
        // Knowledge of factors: 6 = 2·3 without revealing 2 and 3.
        let circuit = multiplier_chain::<zkperf_ff::bn254::Fr>(2);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let f = |v: u64| zkperf_ff::bn254::Fr::from_u64(v);
        let w = circuit.generate_witness(&[], &[f(2), f(3)]).unwrap();
        assert_eq!(w.public(), &[f(1), f(6)]);
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(verify::<Bn254>(&pk.vk, &proof, &[f(1), f(6)]).unwrap());
        assert!(!verify::<Bn254>(&pk.vk, &proof, &[f(1), f(7)]).unwrap());
    }

    #[test]
    fn proof_for_one_witness_fails_for_another_statement() {
        let circuit = exponentiate::<zkperf_ff::bn254::Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let f = |v: u64| zkperf_ff::bn254::Fr::from_u64(v);
        let w2 = circuit.generate_witness(&[f(2)], &[]).unwrap();
        let w3 = circuit.generate_witness(&[f(3)], &[]).unwrap();
        let proof2 = prove::<Bn254, _>(&pk, circuit.r1cs(), &w2, &mut rng).unwrap();
        assert!(!verify::<Bn254>(&pk.vk, &proof2, w3.public()).unwrap());
    }
}
