//! Precomputed verification material.
//!
//! The Groth16 equation's `e(α, β)` term is statement-independent; caching
//! it turns every verification from four Miller loops into three — the
//! standard production optimization (arkworks' `PreparedVerifyingKey`).
//! On top of that, the key's G2 points (β, γ, δ) are fixed across all
//! proofs, so their Miller-loop line coefficients are precomputed once and
//! every verification pays only sparse multiplications for them.

use rand::Rng;

use zkperf_ec::{msm, Engine};
use zkperf_ff::Field;
use zkperf_trace as trace;

use crate::key::{Proof, VerifyingKey};
use crate::verify::VerifyError;

/// A verification key with the pairing constant and the key-side G2 line
/// coefficients precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedVerifyingKey<E: Engine> {
    vk: VerifyingKey<E>,
    /// `e(α, β)`, the statement-independent pairing term.
    alpha_beta: E::Gt,
    /// Prepared lines for `β` (used by the batch equation).
    beta_lines: E::G2Prepared,
    /// Prepared lines for `γ`.
    gamma_lines: E::G2Prepared,
    /// Prepared lines for `δ`.
    delta_lines: E::G2Prepared,
}

impl<E: Engine> PreparedVerifyingKey<E> {
    /// Prepares a verification key (one pairing plus three G2 line
    /// precomputations, done once).
    pub fn prepare(vk: &VerifyingKey<E>) -> Self {
        let alpha_beta = E::pairing(&vk.alpha_g1, &vk.beta_g2);
        PreparedVerifyingKey {
            vk: vk.clone(),
            alpha_beta,
            beta_lines: E::prepare_g2(&vk.beta_g2),
            gamma_lines: E::prepare_g2(&vk.gamma_g2),
            delta_lines: E::prepare_g2(&vk.delta_g2),
        }
    }

    /// The wrapped plain key.
    pub fn vk(&self) -> &VerifyingKey<E> {
        &self.vk
    }

    /// Verifies `proof` with three Miller loops instead of four.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::verify`].
    pub fn verify(
        &self,
        proof: &Proof<E>,
        public_witness: &[E::Fr],
    ) -> Result<bool, VerifyError> {
        let _g = trace::region_profile("verify");
        if public_witness.len() != self.vk.ic.len() {
            return Err(VerifyError::PublicWitnessLength {
                expected: self.vk.ic.len(),
                got: public_witness.len(),
            });
        }
        if public_witness.first().map(Field::is_one) != Some(true) {
            return Err(VerifyError::MissingOneWire);
        }
        if !(proof.a.is_on_curve() && proof.b.is_on_curve() && proof.c.is_on_curve()) {
            return Ok(false);
        }
        let vk_x = msm(&self.vk.ic, public_witness).to_affine();
        // e(A,B) · e(−vk_x, γ) · e(−C, δ) == e(α, β), with the γ/δ lines
        // served from the preparation done once at key setup.
        let b_lines = E::prepare_g2(&proof.b);
        let lhs = E::multi_pairing_prepared(
            &[proof.a, vk_x.neg(), proof.c.neg()],
            &[&b_lines, &self.gamma_lines, &self.delta_lines],
        );
        Ok(lhs == self.alpha_beta)
    }

    /// Batch-verifies `items` with a single combined pairing check, the
    /// key-side G2 lines (γ, δ, β) served from the cached preparation.
    ///
    /// Semantics match [`crate::verify_batch`]: every proof is scaled by
    /// an independent random coefficient from `rng`, an empty batch
    /// verifies trivially, and one invalid member fails the whole batch.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::verify_batch`].
    pub fn verify_batch<R: Rng + ?Sized>(
        &self,
        items: &[(Proof<E>, Vec<E::Fr>)],
        rng: &mut R,
    ) -> Result<bool, VerifyError> {
        let _g = trace::region_profile("verify_batch");
        if items.is_empty() {
            return Ok(true);
        }
        let Some(parts) = crate::batch::accumulate(&self.vk, items, rng)? else {
            return Ok(false);
        };
        let b_lines: Vec<E::G2Prepared> =
            parts.bs.iter().map(|b| E::prepare_g2(b)).collect();
        let mut g2_inputs: Vec<&E::G2Prepared> = b_lines.iter().collect();
        g2_inputs.push(&self.gamma_lines);
        g2_inputs.push(&self.delta_lines);
        g2_inputs.push(&self.beta_lines);
        Ok(E::multi_pairing_prepared(&parts.g1, &g2_inputs).is_one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, setup, verify};
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn prepared_verify_agrees_with_plain_verify() {
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::prepare(&pk.vk);
        for x in [2u64, 3, 5] {
            let w = circuit.generate_witness(&[Fr::from_u64(x)], &[]).unwrap();
            let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
            assert_eq!(
                pvk.verify(&proof, w.public()).unwrap(),
                verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap()
            );
            assert!(pvk.verify(&proof, w.public()).unwrap());
            let mut wrong = w.public().to_vec();
            wrong[1] += Fr::one();
            assert!(!pvk.verify(&proof, &wrong).unwrap());
        }
    }

    #[test]
    fn prepared_batch_agrees_with_free_batch() {
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::prepare(&pk.vk);
        let items: Vec<_> = (0..3)
            .map(|i| {
                let w = circuit
                    .generate_witness(&[Fr::from_u64(2 + i)], &[])
                    .unwrap();
                let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
                (proof, w.public().to_vec())
            })
            .collect();
        assert!(pvk.verify_batch(&items, &mut rng).unwrap());
        assert!(crate::verify_batch(&pk.vk, &items, &mut rng).unwrap());
        assert!(pvk.verify_batch(&[], &mut rng).unwrap(), "empty batch");
        let mut bad = items.clone();
        bad[1].1[1] += Fr::one();
        assert!(!pvk.verify_batch(&bad, &mut rng).unwrap());
        assert!(matches!(
            pvk.verify_batch(&[(items[0].0.clone(), vec![Fr::one()])], &mut rng),
            Err(VerifyError::PublicWitnessLength { .. })
        ));
    }

    #[test]
    fn prepared_key_reports_shape_errors() {
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::prepare(&pk.vk);
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(matches!(
            pvk.verify(&proof, &w.public()[..1]),
            Err(VerifyError::PublicWitnessLength { .. })
        ));
    }
}
