//! Precomputed verification material.
//!
//! The Groth16 equation's `e(α, β)` term is statement-independent; caching
//! it turns every verification from four Miller loops into three — the
//! standard production optimization (arkworks' `PreparedVerifyingKey`).

use zkperf_ec::{msm, Engine};
use zkperf_ff::Field;
use zkperf_trace as trace;

use crate::key::{Proof, VerifyingKey};
use crate::verify::VerifyError;

/// A verification key with the pairing constant precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedVerifyingKey<E: Engine> {
    vk: VerifyingKey<E>,
    /// `e(α, β)`, the statement-independent pairing term.
    alpha_beta: E::Gt,
}

impl<E: Engine> PreparedVerifyingKey<E> {
    /// Prepares a verification key (one pairing, done once).
    pub fn prepare(vk: &VerifyingKey<E>) -> Self {
        let alpha_beta = E::pairing(&vk.alpha_g1, &vk.beta_g2);
        PreparedVerifyingKey {
            vk: vk.clone(),
            alpha_beta,
        }
    }

    /// The wrapped plain key.
    pub fn vk(&self) -> &VerifyingKey<E> {
        &self.vk
    }

    /// Verifies `proof` with three Miller loops instead of four.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::verify`].
    pub fn verify(
        &self,
        proof: &Proof<E>,
        public_witness: &[E::Fr],
    ) -> Result<bool, VerifyError> {
        let _g = trace::region_profile("verify");
        if public_witness.len() != self.vk.ic.len() {
            return Err(VerifyError::PublicWitnessLength {
                expected: self.vk.ic.len(),
                got: public_witness.len(),
            });
        }
        if public_witness.first().map(Field::is_one) != Some(true) {
            return Err(VerifyError::MissingOneWire);
        }
        if !(proof.a.is_on_curve() && proof.b.is_on_curve() && proof.c.is_on_curve()) {
            return Ok(false);
        }
        let vk_x = msm(&self.vk.ic, public_witness).to_affine();
        // e(A,B) · e(−vk_x, γ) · e(−C, δ) == e(α, β)
        let lhs = E::multi_pairing(
            &[proof.a, vk_x.neg(), proof.c.neg()],
            &[proof.b, self.vk.gamma_g2, self.vk.delta_g2],
        );
        Ok(lhs == self.alpha_beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, setup, verify};
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn prepared_verify_agrees_with_plain_verify() {
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::prepare(&pk.vk);
        for x in [2u64, 3, 5] {
            let w = circuit.generate_witness(&[Fr::from_u64(x)], &[]).unwrap();
            let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
            assert_eq!(
                pvk.verify(&proof, w.public()).unwrap(),
                verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap()
            );
            assert!(pvk.verify(&proof, w.public()).unwrap());
            let mut wrong = w.public().to_vec();
            wrong[1] += Fr::one();
            assert!(!pvk.verify(&proof, &wrong).unwrap());
        }
    }

    #[test]
    fn prepared_key_reports_shape_errors() {
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::prepare(&pk.vk);
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(matches!(
            pvk.verify(&proof, &w.public()[..1]),
            Err(VerifyError::PublicWitnessLength { .. })
        ));
    }
}
