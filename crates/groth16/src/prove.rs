//! The `proving` stage.

use rand::Rng;

use zkperf_circuit::{R1cs, Witness};
use zkperf_ec::{Engine, Projective};
use zkperf_ff::Field;
use zkperf_poly::Radix2Domain;
use zkperf_trace as trace;

use crate::key::{Proof, ProvingKey};
use crate::qap;

/// Errors from [`prove`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveError {
    /// The witness length does not match the proving key's wire count.
    WitnessLengthMismatch {
        /// Wires in the proving key's queries.
        expected: usize,
        /// Wires in the supplied witness.
        got: usize,
    },
    /// The proving key's domain size is unusable for this field (a
    /// corrupt or tampered zkey header).
    InvalidDomain {
        /// Domain size recorded in the key.
        size: usize,
    },
    /// The proving key's domain cannot hold the circuit's constraints.
    DomainTooSmall {
        /// Domain size recorded in the key.
        domain: usize,
        /// Constraints in the circuit being proven.
        constraints: usize,
    },
    /// The proving key's internal shape is inconsistent (e.g. more
    /// public wires than query points) — a corrupt or tampered zkey.
    MalformedKey(&'static str),
    /// The ambient [`zkperf_pool::CancelToken`] was cancelled or its
    /// deadline expired; the proof was abandoned at a stage boundary.
    Cancelled,
}

impl std::fmt::Display for ProveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProveError::WitnessLengthMismatch { expected, got } => {
                write!(f, "witness has {got} wires but the proving key expects {expected}")
            }
            ProveError::InvalidDomain { size } => {
                write!(f, "proving key domain size {size} is not usable for this field")
            }
            ProveError::DomainTooSmall { domain, constraints } => write!(
                f,
                "proving key domain holds {domain} evaluations but the circuit has {constraints} constraints"
            ),
            ProveError::MalformedKey(what) => write!(f, "malformed proving key: {what}"),
            ProveError::Cancelled => write!(f, "proving cancelled by caller or deadline"),
        }
    }
}

impl std::error::Error for ProveError {}

/// Produces a Groth16 proof for `witness` under `pk`.
///
/// Structure: three variable-base MSMs over the witness (A, B in both
/// groups), the quotient-polynomial computation via coset NTTs, one MSM over
/// the H query, and the L-query MSM — the mix of scattered (MSM buckets)
/// and strided (NTT) memory traffic that gives the proving stage the
/// highest memory bandwidth in the paper's Table III.
///
/// # Errors
///
/// Returns [`ProveError::WitnessLengthMismatch`] when `witness` was
/// generated for a different circuit, and [`ProveError::InvalidDomain`] /
/// [`ProveError::DomainTooSmall`] / [`ProveError::MalformedKey`] when the
/// proving key's header fields are inconsistent with the circuit — the
/// shapes a corrupted or tampered `.zkey` produces.
///
/// Cancellation is cooperative: when the ambient
/// [`zkperf_pool::CancelToken`] fires, the prover returns
/// [`ProveError::Cancelled`] at the next internal boundary (before the
/// quotient computation, before the MSMs, and between MSM groups) rather
/// than mid-kernel, so partial work never escapes.
pub fn prove<E: Engine, R: Rng + ?Sized>(
    pk: &ProvingKey<E>,
    r1cs: &R1cs<E::Fr>,
    witness: &Witness<E::Fr>,
    rng: &mut R,
) -> Result<Proof<E>, ProveError> {
    let _g = trace::region_profile("prove");
    let w = witness.full();
    if w.len() != pk.a_query.len() {
        return Err(ProveError::WitnessLengthMismatch {
            expected: pk.a_query.len(),
            got: w.len(),
        });
    }
    if r1cs.num_wires() != w.len() {
        return Err(ProveError::WitnessLengthMismatch {
            expected: r1cs.num_wires(),
            got: w.len(),
        });
    }
    if pk.num_public_wires > w.len() {
        return Err(ProveError::MalformedKey("public wires exceed witness length"));
    }
    let domain = Radix2Domain::<E::Fr>::new(pk.domain_size).ok_or(ProveError::InvalidDomain {
        size: pk.domain_size,
    })?;
    if domain.size() < r1cs.num_constraints() {
        return Err(ProveError::DomainTooSmall {
            domain: domain.size(),
            constraints: r1cs.num_constraints(),
        });
    }

    if zkperf_pool::cancellation_pending() {
        return Err(ProveError::Cancelled);
    }

    // Quotient polynomial h(x) = (a·b − c)/z.
    let (a_ev, b_ev, c_ev) = qap::evaluate_constraints(r1cs, &domain, w);
    let h = qap::compute_h_coefficients(&domain, a_ev, b_ev, c_ev);

    if zkperf_pool::cancellation_pending() {
        return Err(ProveError::Cancelled);
    }

    let (r, s) = (E::Fr::random(rng), E::Fr::random(rng));

    // Every query MSM routes through the ZKPERF_MEM_BUDGET gate: under a
    // budget the bases stream in chunks (bounding the GLV/limb transient
    // tables), unbudgeted they take the resident kernel; same group
    // elements, and the proof normalizes to affine below, so proof bytes
    // are identical either way.
    use crate::stream::msm_budgeted as msm;

    // A = α + Σ wᵢ·uᵢ(τ) + r·δ
    let g_a = pk.vk.alpha_g1.to_projective()
        + msm(&pk.a_query, w)
        + pk.delta_g1.to_projective() * r;
    // B = β + Σ wᵢ·vᵢ(τ) + s·δ (in G2, and mirrored in G1 for C).
    let g_b = pk.vk.beta_g2.to_projective()
        + msm(&pk.b_g2_query, w)
        + pk.vk.delta_g2.to_projective() * s;
    let g_b1 = pk.beta_g1.to_projective()
        + msm(&pk.b_g1_query, w)
        + pk.delta_g1.to_projective() * s;

    if zkperf_pool::cancellation_pending() {
        return Err(ProveError::Cancelled);
    }

    // C = Σ_{priv} wᵢ·Lᵢ + Σ hᵢ·Hᵢ + s·A + r·B₁ − r·s·δ
    let priv_witness = &w[pk.num_public_wires..];
    let l_part = msm(&pk.l_query, priv_witness);
    let h_part = msm(&pk.h_query, &h);
    let g_c = l_part + h_part + g_a * s + g_b1 * r + (pk.delta_g1.to_projective() * (r * s)).neg();

    let out = [g_a, g_c];
    let affine = Projective::batch_to_affine(&out);
    trace::alloc(std::mem::size_of::<Proof<E>>());
    Ok(Proof {
        a: affine[0],
        b: g_b.to_affine(),
        c: affine[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::setup;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn ambient_cancellation_stops_setup_and_prove() {
        use crate::setup::SetupError;
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();

        let token = zkperf_pool::CancelToken::new();
        token.cancel();
        let _scope = token.enter();
        assert!(matches!(
            setup::<Bn254, _>(circuit.r1cs(), &mut rng),
            Err(SetupError::Cancelled)
        ));
        assert!(matches!(
            prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng),
            Err(ProveError::Cancelled)
        ));
        drop(_scope);
        assert!(prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).is_ok());
    }

    #[test]
    fn witness_length_mismatch_is_reported() {
        let c10 = exponentiate::<Fr>(10);
        let c20 = exponentiate::<Fr>(20);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(c10.r1cs(), &mut rng).unwrap();
        let w20 = c20.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let err = prove::<Bn254, _>(&pk, c20.r1cs(), &w20, &mut rng).unwrap_err();
        assert!(matches!(err, ProveError::WitnessLengthMismatch { .. }));
        assert!(err.to_string().contains("wires"));
    }
}
