//! R1CS → QAP conversion helpers shared by setup and proving.

use zkperf_circuit::R1cs;
use zkperf_ff::PrimeField;
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_trace as trace;

/// Smallest constraint count worth fanning per-row evaluation out across
/// the pool.
const PAR_MIN_ROWS: usize = 1024;

/// Constraint rows per pool task.
const ROW_GRAIN: usize = 512;

/// Evaluates the QAP polynomials `uᵢ(τ), vᵢ(τ), wᵢ(τ)` for every wire `i`
/// at the toxic-waste point `τ`, using the Lagrange basis of `domain`.
///
/// Sparse: cost is proportional to the number of non-zero R1CS entries.
pub fn evaluate_matrices_at<F: PrimeField>(
    r1cs: &R1cs<F>,
    domain: &Radix2Domain<F>,
    tau: F,
) -> (Vec<F>, Vec<F>, Vec<F>) {
    let _g = trace::region_profile("qap_eval");
    let lagrange = domain.lagrange_coefficients_at(tau);
    let n = r1cs.num_wires();
    let mut u = vec![F::zero(); n];
    let mut v = vec![F::zero(); n];
    let mut w = vec![F::zero(); n];
    for (j, c) in r1cs.constraints().iter().enumerate() {
        let lj = lagrange[j];
        for &(var, coeff) in c.a.terms() {
            u[var.index()] += coeff * lj;
        }
        for &(var, coeff) in c.b.terms() {
            v[var.index()] += coeff * lj;
        }
        for &(var, coeff) in c.c.terms() {
            w[var.index()] += coeff * lj;
        }
    }
    (u, v, w)
}

/// Evaluates `⟨A_j, witness⟩, ⟨B_j, witness⟩, ⟨C_j, witness⟩` for every
/// constraint row `j`, zero-padded to the domain size.
pub fn evaluate_constraints<F: PrimeField>(
    r1cs: &R1cs<F>,
    domain: &Radix2Domain<F>,
    witness: &[F],
) -> (Vec<F>, Vec<F>, Vec<F>) {
    let _g = trace::region_profile("constraint_eval");
    let n = domain.size();
    trace::alloc(3 * n * std::mem::size_of::<F>());
    let mut a = vec![F::zero(); n];
    let mut b = vec![F::zero(); n];
    let mut c = vec![F::zero(); n];
    let rows = r1cs.constraints();
    // Each constraint row writes its own slot of a/b/c, so rows chunk
    // freely; a fixed grain keeps the decomposition thread-count-free.
    if !trace::is_active() && pool::current_threads() > 1 && rows.len() >= PAR_MIN_ROWS {
        let mut views: Vec<(&mut [F], &mut [F], &mut [F])> = a[..rows.len()]
            .chunks_mut(ROW_GRAIN)
            .zip(b[..rows.len()].chunks_mut(ROW_GRAIN))
            .zip(c[..rows.len()].chunks_mut(ROW_GRAIN))
            .map(|((ca, cb), cc)| (ca, cb, cc))
            .collect();
        pool::parallel_for_each_mut(&mut views, |vi, (ca, cb, cc)| {
            let base = vi * ROW_GRAIN;
            for (j, row) in rows[base..base + ca.len()].iter().enumerate() {
                ca[j] = row.a.evaluate(witness);
                cb[j] = row.b.evaluate(witness);
                cc[j] = row.c.evaluate(witness);
            }
        });
        return (a, b, c);
    }
    for (j, row) in rows.iter().enumerate() {
        a[j] = row.a.evaluate(witness);
        b[j] = row.b.evaluate(witness);
        c[j] = row.c.evaluate(witness);
    }
    (a, b, c)
}

/// Computes the coefficients of the quotient `h(x) = (a(x)·b(x) − c(x))/z(x)`
/// from the per-constraint evaluations, via coset NTTs.
///
/// The division is exact exactly when the witness satisfies the R1CS.
pub fn compute_h_coefficients<F: PrimeField>(
    domain: &Radix2Domain<F>,
    mut a: Vec<F>,
    mut b: Vec<F>,
    mut c: Vec<F>,
) -> Vec<F> {
    let _g = trace::region_profile("quotient_poly");
    // To coefficient form.
    domain.ifft_in_place(&mut a);
    domain.ifft_in_place(&mut b);
    domain.ifft_in_place(&mut c);
    // To evaluations over the coset gH, where z never vanishes.
    domain.coset_fft_in_place(&mut a);
    domain.coset_fft_in_place(&mut b);
    domain.coset_fft_in_place(&mut c);
    // z(g·ωⁱ) = gⁿ·ωⁱⁿ − 1 = gⁿ − 1, a single constant on the coset.
    let z_on_coset = domain.eval_vanishing(domain.coset_shift());
    // The coset shift is chosen at domain construction so the vanishing
    // polynomial never hits zero on the coset; the fallback can only
    // trigger on a violated invariant and keeps this path panic-free.
    let z_inv = z_on_coset.inverse().unwrap_or_else(F::one);
    if !trace::is_active() && pool::current_threads() > 1 && domain.size() >= PAR_MIN_ROWS {
        pool::parallel_chunks_mut(&mut a, ROW_GRAIN, |ci, chunk| {
            let base = ci * ROW_GRAIN;
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (*slot * b[base + j] - c[base + j]) * z_inv;
            }
        });
    } else {
        for i in 0..domain.size() {
            a[i] = (a[i] * b[i] - c[i]) * z_inv;
        }
    }
    // Back to coefficients of h.
    domain.coset_ifft_in_place(&mut a);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::{BigUint, Field};

    #[test]
    fn qap_identity_holds_at_random_point() {
        // For a satisfying witness: (Σ wᵢuᵢ)(Σ wᵢvᵢ) − Σ wᵢwᵢ = h(τ)·z(τ).
        let circuit = exponentiate::<Fr>(10);
        let witness = circuit
            .generate_witness(&[Fr::from_u64(3)], &[])
            .unwrap();
        let sys = circuit.r1cs();
        let domain = Radix2Domain::<Fr>::new(sys.num_constraints()).unwrap();
        let tau = Fr::from_u64(0xdead_beef);
        let (u, v, w) = evaluate_matrices_at(sys, &domain, tau);
        let dot = |m: &[Fr]| -> Fr {
            m.iter()
                .zip(witness.full())
                .map(|(a, b)| *a * *b)
                .sum()
        };
        let lhs = dot(&u) * dot(&v) - dot(&w);

        let (a, b, c) = evaluate_constraints(sys, &domain, witness.full());
        let h = compute_h_coefficients(&domain, a, b, c);
        let mut h_at_tau = Fr::zero();
        let mut pow = Fr::one();
        for coeff in &h {
            h_at_tau += *coeff * pow;
            pow *= tau;
        }
        assert_eq!(lhs, h_at_tau * domain.eval_vanishing(tau));
    }

    #[test]
    fn unsatisfying_witness_breaks_divisibility() {
        let circuit = exponentiate::<Fr>(8);
        let witness = circuit
            .generate_witness(&[Fr::from_u64(2)], &[])
            .unwrap();
        let mut bad = witness.full().to_vec();
        let last = bad.len() - 1;
        bad[last] += Fr::one();
        let sys = circuit.r1cs();
        let domain = Radix2Domain::<Fr>::new(sys.num_constraints()).unwrap();
        let (a, b, c) = evaluate_constraints(sys, &domain, &bad);
        let h = compute_h_coefficients(&domain, a, b, c);
        // h was computed as if division were exact; verify it is NOT a true
        // quotient by re-checking the identity at a random point.
        let tau = Fr::from_u64(77777);
        let (u, v, w) = evaluate_matrices_at(sys, &domain, tau);
        let dot = |m: &[Fr]| -> Fr { m.iter().zip(&bad).map(|(x, y)| *x * *y).sum() };
        let lhs = dot(&u) * dot(&v) - dot(&w);
        let h_at_tau = h
            .iter()
            .enumerate()
            .map(|(i, c)| *c * tau.pow(&BigUint::from_u64(i as u64)))
            .sum::<Fr>();
        assert_ne!(lhs, h_at_tau * domain.eval_vanishing(tau));
    }
}
