//! The `setup` stage: trusted parameter generation.

use rand::Rng;

use zkperf_circuit::R1cs;
use zkperf_ec::{Engine, FixedBaseTable, Projective};
use zkperf_ff::Field;
use zkperf_poly::Radix2Domain;
use zkperf_trace as trace;

use crate::key::{ProvingKey, VerifyingKey};
use crate::qap;

/// Errors from [`setup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The constraint count exceeds the scalar field's 2-adic domain.
    CircuitTooLarge {
        /// Constraints requested.
        constraints: usize,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::CircuitTooLarge { constraints } => {
                write!(f, "circuit with {constraints} constraints exceeds the FFT domain")
            }
        }
    }
}

impl std::error::Error for SetupError {}

/// Runs the Groth16 trusted setup over `r1cs`, producing the proving and
/// verification keys.
///
/// The toxic waste `(τ, α, β, γ, δ)` is sampled from `rng` and dropped on
/// return. Dominated by fixed-base multi-exponentiation — this is the
/// paper's most time-consuming stage (76.1% of total execution time).
///
/// # Errors
///
/// Returns [`SetupError::CircuitTooLarge`] if the constraint count exceeds
/// the field's 2-adic FFT domain.
pub fn setup<E: Engine, R: Rng + ?Sized>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
) -> Result<ProvingKey<E>, SetupError> {
    let _g = trace::region_profile("setup");
    let domain =
        Radix2Domain::<E::Fr>::new(r1cs.num_constraints().max(2)).ok_or(
            SetupError::CircuitTooLarge {
                constraints: r1cs.num_constraints(),
            },
        )?;

    // Toxic waste; τ outside the domain, divisors non-zero.
    let tau = loop {
        let t = E::Fr::random(rng);
        if !domain.eval_vanishing(t).is_zero() {
            break t;
        }
    };
    let nonzero = |rng: &mut R| loop {
        let v = E::Fr::random(rng);
        if !v.is_zero() {
            break v;
        }
    };
    // Sample γ and δ together with their inverses, so invertibility is
    // established by construction instead of asserted after the fact.
    let invertible = |rng: &mut R| loop {
        let v = E::Fr::random(rng);
        if let Some(inv) = v.inverse() {
            break (v, inv);
        }
    };
    let (alpha, beta) = (nonzero(rng), nonzero(rng));
    let (gamma, gamma_inv) = invertible(rng);
    let (delta, delta_inv) = invertible(rng);

    // QAP evaluations at τ for every wire.
    let (u, v, w) = qap::evaluate_matrices_at(r1cs, &domain, tau);
    let num_public = r1cs.num_public_wires();

    // Scalar batches for the group queries.
    let ic_scalars: Vec<E::Fr> = (0..num_public)
        .map(|i| (beta * u[i] + alpha * v[i] + w[i]) * gamma_inv)
        .collect();
    let l_scalars: Vec<E::Fr> = (num_public..r1cs.num_wires())
        .map(|i| (beta * u[i] + alpha * v[i] + w[i]) * delta_inv)
        .collect();
    let z_tau = domain.eval_vanishing(tau);
    let mut h_scalars = Vec::with_capacity(domain.size());
    let mut tau_pow = E::Fr::one();
    for _ in 0..domain.size() {
        h_scalars.push(tau_pow * z_tau * delta_inv);
        tau_pow *= tau;
    }

    // Fixed-base tables for both generators.
    let g1 = Projective::<E::G1>::generator();
    let g2 = Projective::<E::G2>::generator();
    let t1 = FixedBaseTable::new(&g1);
    let t2 = FixedBaseTable::new(&g2);

    let a_query = t1.mul_batch(&u);
    let b_g1_query = t1.mul_batch(&v);
    let b_g2_query = t2.mul_batch(&v);
    let ic = t1.mul_batch(&ic_scalars);
    let l_query = t1.mul_batch(&l_scalars);
    let h_query = t1.mul_batch(&h_scalars);

    let vk = VerifyingKey {
        alpha_g1: t1.mul(&alpha).to_affine(),
        beta_g2: t2.mul(&beta).to_affine(),
        gamma_g2: t2.mul(&gamma).to_affine(),
        delta_g2: t2.mul(&delta).to_affine(),
        ic,
    };
    Ok(ProvingKey {
        vk,
        beta_g1: t1.mul(&beta).to_affine(),
        delta_g1: t1.mul(&delta).to_affine(),
        a_query,
        b_g1_query,
        b_g2_query,
        l_query,
        h_query,
        domain_size: domain.size(),
        num_public_wires: num_public,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;

    #[test]
    fn setup_produces_consistent_shapes() {
        let circuit = exponentiate::<zkperf_ff::bn254::Fr>(10);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let n = circuit.r1cs().num_wires();
        assert_eq!(pk.a_query.len(), n);
        assert_eq!(pk.b_g1_query.len(), n);
        assert_eq!(pk.b_g2_query.len(), n);
        assert_eq!(pk.vk.ic.len(), circuit.r1cs().num_public_wires());
        assert_eq!(
            pk.l_query.len(),
            n - circuit.r1cs().num_public_wires()
        );
        assert_eq!(pk.h_query.len(), pk.domain_size);
        assert_eq!(pk.domain_size, 16); // 10 constraints → 16-point domain
    }
}
