//! The `setup` stage: trusted parameter generation.

use rand::Rng;

use zkperf_circuit::R1cs;
use zkperf_ec::{Engine, FixedBaseTable, Projective};
use zkperf_ff::{BigUint, Field};
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_trace as trace;

/// Smallest scalar batch worth constructing on the pool.
const PAR_MIN_SCALARS: usize = 1 << 12;

/// Scalars per pool task when building the query batches.
const SCALAR_GRAIN: usize = 1 << 11;

use crate::key::{ProvingKey, VerifyingKey};
use crate::qap;

/// Errors from [`setup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The constraint count exceeds the scalar field's 2-adic domain.
    CircuitTooLarge {
        /// Constraints requested.
        constraints: usize,
    },
    /// The ambient [`zkperf_pool::CancelToken`] was cancelled or its
    /// deadline expired; setup was abandoned at a stage boundary.
    Cancelled,
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::CircuitTooLarge { constraints } => {
                write!(f, "circuit with {constraints} constraints exceeds the FFT domain")
            }
            SetupError::Cancelled => write!(f, "setup cancelled by caller or deadline"),
        }
    }
}

impl std::error::Error for SetupError {}

/// Runs the Groth16 trusted setup over `r1cs`, producing the proving and
/// verification keys.
///
/// The toxic waste `(τ, α, β, γ, δ)` is sampled from `rng` and dropped on
/// return. Dominated by fixed-base multi-exponentiation — this is the
/// paper's most time-consuming stage (76.1% of total execution time).
///
/// # Errors
///
/// Returns [`SetupError::CircuitTooLarge`] if the constraint count exceeds
/// the field's 2-adic FFT domain.
pub fn setup<E: Engine, R: Rng + ?Sized>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
) -> Result<ProvingKey<E>, SetupError> {
    // Under a memory budget the fixed-base passes run chunked through the
    // QuerySink machinery instead of one concatenated batch — identical
    // RNG draws and field values (the scalar phase below is shared), and
    // affine points are canonical per group element, so the key is
    // byte-identical either way. Instrumented runs stay on this body so
    // the characterization op stream is unchanged.
    if !trace::is_active() && pool::mem::budget().is_some() {
        return crate::stream::setup_budgeted(r1cs, rng);
    }
    let _g = trace::region_profile("setup");
    let scalars = setup_scalars::<E, R>(r1cs, rng)?;
    build_key_monolithic(r1cs, scalars)
}

/// Everything [`setup`] does before any group operation: domain
/// construction, toxic-waste sampling, and the per-query scalar batches.
/// Shared verbatim by the monolithic and streamed key builders so both
/// consume identical RNG draws and produce identical field values.
pub(crate) struct SetupScalars<E: Engine> {
    pub domain: Radix2Domain<E::Fr>,
    pub alpha: E::Fr,
    pub beta: E::Fr,
    pub gamma: E::Fr,
    pub delta: E::Fr,
    pub u: Vec<E::Fr>,
    pub v: Vec<E::Fr>,
    pub ic_scalars: Vec<E::Fr>,
    pub l_scalars: Vec<E::Fr>,
    pub h_scalars: Vec<E::Fr>,
    pub num_public: usize,
}

pub(crate) fn setup_scalars<E: Engine, R: Rng + ?Sized>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
) -> Result<SetupScalars<E>, SetupError> {
    let domain =
        Radix2Domain::<E::Fr>::new(r1cs.num_constraints().max(2)).ok_or(
            SetupError::CircuitTooLarge {
                constraints: r1cs.num_constraints(),
            },
        )?;

    // Toxic waste; τ outside the domain, divisors non-zero.
    let tau = loop {
        let t = E::Fr::random(rng);
        if !domain.eval_vanishing(t).is_zero() {
            break t;
        }
    };
    let nonzero = |rng: &mut R| loop {
        let v = E::Fr::random(rng);
        if !v.is_zero() {
            break v;
        }
    };
    // Sample γ and δ together with their inverses, so invertibility is
    // established by construction instead of asserted after the fact.
    let invertible = |rng: &mut R| loop {
        let v = E::Fr::random(rng);
        if let Some(inv) = v.inverse() {
            break (v, inv);
        }
    };
    let (alpha, beta) = (nonzero(rng), nonzero(rng));
    let (gamma, gamma_inv) = invertible(rng);
    let (delta, delta_inv) = invertible(rng);

    if pool::cancellation_pending() {
        return Err(SetupError::Cancelled);
    }

    // QAP evaluations at τ for every wire.
    let (u, v, w) = qap::evaluate_matrices_at(r1cs, &domain, tau);
    let num_public = r1cs.num_public_wires();

    // Scalar batches for the group queries. Each batch is an
    // index-addressed map, so uninstrumented multi-thread runs build them
    // on the pool; the h-power chain seeds each chunk with one
    // exponentiation, making chunks independent while computing the exact
    // same field values as the serial prefix.
    let use_pool = |n: usize| {
        !trace::is_active() && pool::current_threads() > 1 && n >= PAR_MIN_SCALARS
    };
    let ic_scalars: Vec<E::Fr> = if use_pool(num_public) {
        let mut out = vec![E::Fr::zero(); num_public];
        pool::parallel_fill(&mut out, SCALAR_GRAIN, |i| {
            (beta * u[i] + alpha * v[i] + w[i]) * gamma_inv
        });
        out
    } else {
        (0..num_public)
            .map(|i| (beta * u[i] + alpha * v[i] + w[i]) * gamma_inv)
            .collect()
    };
    let l_scalars: Vec<E::Fr> = if use_pool(r1cs.num_wires() - num_public) {
        let mut out = vec![E::Fr::zero(); r1cs.num_wires() - num_public];
        pool::parallel_fill(&mut out, SCALAR_GRAIN, |j| {
            let i = num_public + j;
            (beta * u[i] + alpha * v[i] + w[i]) * delta_inv
        });
        out
    } else {
        (num_public..r1cs.num_wires())
            .map(|i| (beta * u[i] + alpha * v[i] + w[i]) * delta_inv)
            .collect()
    };
    let z_tau = domain.eval_vanishing(tau);
    let mut h_scalars;
    if use_pool(domain.size()) {
        h_scalars = vec![E::Fr::zero(); domain.size()];
        pool::parallel_chunks_mut(&mut h_scalars, SCALAR_GRAIN, |ci, chunk| {
            let mut tau_pow = tau.pow(&BigUint::from_u64((ci * SCALAR_GRAIN) as u64));
            for slot in chunk.iter_mut() {
                *slot = tau_pow * z_tau * delta_inv;
                tau_pow *= tau;
            }
        });
    } else {
        h_scalars = Vec::with_capacity(domain.size());
        let mut tau_pow = E::Fr::one();
        for _ in 0..domain.size() {
            h_scalars.push(tau_pow * z_tau * delta_inv);
            tau_pow *= tau;
        }
    }

    if pool::cancellation_pending() {
        return Err(SetupError::Cancelled);
    }

    Ok(SetupScalars {
        domain,
        alpha,
        beta,
        gamma,
        delta,
        u,
        v,
        ic_scalars,
        l_scalars,
        h_scalars,
        num_public,
    })
}

/// The in-memory group-operation phase of [`setup`]: one concatenated
/// fixed-base batch per group.
fn build_key_monolithic<E: Engine>(
    r1cs: &R1cs<E::Fr>,
    scalars: SetupScalars<E>,
) -> Result<ProvingKey<E>, SetupError> {
    let SetupScalars {
        domain,
        alpha,
        beta,
        gamma,
        delta,
        u,
        v,
        ic_scalars,
        l_scalars,
        h_scalars,
        num_public,
    } = scalars;

    // One fixed-base window table per generator, each built once and
    // shared by every tau-power query vector. All G1 scalars ride a single
    // `mul_batch` pass (likewise for G2), so the window tables — and the
    // batch inversions inside the pass — amortize across the whole key,
    // and the table width is tuned to the combined batch size.
    let num_wires = r1cs.num_wires();
    let total_g1 =
        2 * num_wires + ic_scalars.len() + l_scalars.len() + h_scalars.len() + 3;
    let mut g1_scalars = Vec::with_capacity(total_g1);
    g1_scalars.extend_from_slice(&u);
    g1_scalars.extend_from_slice(&v);
    g1_scalars.extend_from_slice(&ic_scalars);
    g1_scalars.extend_from_slice(&l_scalars);
    g1_scalars.extend_from_slice(&h_scalars);
    g1_scalars.extend_from_slice(&[alpha, beta, delta]);
    let mut g2_scalars = Vec::with_capacity(num_wires + 3);
    g2_scalars.extend_from_slice(&v);
    g2_scalars.extend_from_slice(&[beta, gamma, delta]);

    // Size each window table by the scalars that actually cost work: the
    // QAP matrices are sparse, so (especially for G2, whose field ops are
    // several times pricier) the nonzero count can be orders of magnitude
    // below the batch length, and a table tuned to the raw length would
    // cost more to build than it saves.
    let nonzero = |s: &[E::Fr]| s.iter().filter(|v| !v.is_zero()).count();
    let t1 = FixedBaseTable::for_batch(&Projective::<E::G1>::generator(), nonzero(&g1_scalars));
    let t2 = FixedBaseTable::for_batch(&Projective::<E::G2>::generator(), nonzero(&g2_scalars));

    let g1_points = t1.mul_batch(&g1_scalars);
    // The batch ends with [alpha, beta, delta] by construction.
    let alpha_g1 = g1_points[g1_points.len() - 3];
    let beta_g1 = g1_points[g1_points.len() - 2];
    let delta_g1 = g1_points[g1_points.len() - 1];
    let mut g1_points = g1_points.into_iter();
    let a_query: Vec<_> = g1_points.by_ref().take(num_wires).collect();
    let b_g1_query: Vec<_> = g1_points.by_ref().take(num_wires).collect();
    let ic: Vec<_> = g1_points.by_ref().take(num_public).collect();
    let l_query: Vec<_> = g1_points.by_ref().take(r1cs.num_wires() - num_public).collect();
    let h_query: Vec<_> = g1_points.take(domain.size()).collect();

    if pool::cancellation_pending() {
        return Err(SetupError::Cancelled);
    }

    let g2_points = t2.mul_batch(&g2_scalars);
    // Likewise [beta, gamma, delta] close the G2 batch.
    let beta_g2 = g2_points[g2_points.len() - 3];
    let gamma_g2 = g2_points[g2_points.len() - 2];
    let delta_g2 = g2_points[g2_points.len() - 1];
    let b_g2_query: Vec<_> = g2_points.into_iter().take(num_wires).collect();

    let vk = VerifyingKey {
        alpha_g1,
        beta_g2,
        gamma_g2,
        delta_g2,
        ic,
    };
    Ok(ProvingKey {
        vk,
        beta_g1,
        delta_g1,
        a_query,
        b_g1_query,
        b_g2_query,
        l_query,
        h_query,
        domain_size: domain.size(),
        num_public_wires: num_public,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;

    #[test]
    fn setup_produces_consistent_shapes() {
        let circuit = exponentiate::<zkperf_ff::bn254::Fr>(10);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let n = circuit.r1cs().num_wires();
        assert_eq!(pk.a_query.len(), n);
        assert_eq!(pk.b_g1_query.len(), n);
        assert_eq!(pk.b_g2_query.len(), n);
        assert_eq!(pk.vk.ic.len(), circuit.r1cs().num_public_wires());
        assert_eq!(
            pk.l_query.len(),
            n - circuit.r1cs().num_public_wires()
        );
        assert_eq!(pk.h_query.len(), pk.domain_size);
        assert_eq!(pk.domain_size, 16); // 10 constraints → 16-point domain
    }
}
