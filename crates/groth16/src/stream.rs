//! Out-of-core key handling: the streaming faces of `setup` and `prove`.
//!
//! The proving key's query vectors are the prover's memory wall — at
//! 2^20 constraints they are hundreds of megabytes of affine points that
//! the in-memory path keeps fully resident. This module inverts that:
//! key material moves as fixed-size chunks between a [`QuerySink`]
//! (setup's output) and a [`QuerySource`] (prove's input), so the only
//! resident state is one chunk plus the scalar-side vectors.
//!
//! The traits live here (not in `zkperf-io`) because `zkperf-io` already
//! depends on this crate; its streamed zkey reader/writer implement them
//! over the checksummed v2 container format, while [`MemorySink`] and
//! [`ChunkedKey`] implement them over resident memory — the latter is
//! what the `ZKPERF_MEM_BUDGET` gates in [`crate::setup`] /
//! [`crate::prove`] route through.
//!
//! # Determinism
//!
//! Budgeted and unbudgeted paths produce byte-identical artifacts:
//!
//! * Scalar generation is shared code ([`crate::setup`]'s scalar phase),
//!   so RNG draws and field values match exactly.
//! * Fixed-base multiplication results are affine points, and the affine
//!   representative of a group element is unique — batching does not
//!   change bytes.
//! * The streaming MSM folds per-chunk window sums into the same group
//!   element the monolithic kernel computes, and proofs normalize through
//!   `batch_to_affine` before serialization.

use rand::Rng;

use zkperf_circuit::{R1cs, Witness};
use zkperf_ec::{msm, msm_stream, tuning, Affine, CurveParams, Engine, FixedBaseTable, Projective};
use zkperf_ff::Field;
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::key::{Proof, ProvingKey, VerifyingKey};
use crate::prove::ProveError;
use crate::qap;
use crate::setup::{setup_scalars, SetupError, SetupScalars};

/// A failure in the chunk transport (disk, checksum, truncation) as
/// opposed to the proving math. Carries the byte offset of the failing
/// chunk when the transport knows it, so the error surfaces as a typed
/// artifact error with a seekable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// Path of the backing artifact, when there is one.
    pub path: Option<String>,
    /// Byte offset of the failing chunk within the artifact, when known.
    pub offset: Option<u64>,
    /// What went wrong.
    pub detail: String,
}

impl StreamError {
    /// A transport-agnostic error with no location info.
    pub fn msg(detail: impl Into<String>) -> StreamError {
        StreamError { path: None, offset: None, detail: detail.into() }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(path) = &self.path {
            write!(f, "{path}: ")?;
        }
        write!(f, "{}", self.detail)?;
        if let Some(off) = self.offset {
            write!(f, " (at byte offset {off})")?;
        }
        Ok(())
    }
}

impl std::error::Error for StreamError {}

/// The wire-indexed G1 query vectors of a proving key, in their canonical
/// stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum G1Query {
    /// `[uᵢ(τ)]₁` — the A query.
    A,
    /// `[vᵢ(τ)]₁` — the B query mirrored into G1.
    BG1,
    /// `[(β·uᵢ + α·vᵢ + wᵢ)/δ]₁` over the private wires.
    L,
    /// `[τⁱ·z(τ)/δ]₁` over the domain.
    H,
}

/// All G1 queries in stream order.
pub const G1_QUERIES: [G1Query; 4] = [G1Query::A, G1Query::BG1, G1Query::L, G1Query::H];

/// The shape of a streamed key: enough to derive every query length and
/// chunk count without touching point data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Total wires (length of the A/B queries in both groups).
    pub num_wires: usize,
    /// Public wires (`ic` length; `L` covers the rest).
    pub num_public_wires: usize,
    /// Evaluation-domain size (`H` length).
    pub domain_size: usize,
    /// Points per chunk every query is split into (the final chunk of a
    /// query may be shorter).
    pub chunk_points: usize,
}

impl StreamHeader {
    /// Length of one G1 query vector.
    pub fn g1_len(&self, q: G1Query) -> usize {
        match q {
            G1Query::A | G1Query::BG1 => self.num_wires,
            G1Query::L => self.num_wires - self.num_public_wires,
            G1Query::H => self.domain_size,
        }
    }

    /// Length of the G2 query vector.
    pub fn g2_len(&self) -> usize {
        self.num_wires
    }

    /// Chunks a query of `len` points splits into.
    pub fn chunks_of(&self, len: usize) -> usize {
        len.div_ceil(self.chunk_points.max(1))
    }
}

/// The small fixed points of a proving key — everything that is not a
/// wire-indexed query vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedParts<E: Engine> {
    /// `[β]₁`.
    pub beta_g1: Affine<E::G1>,
    /// `[δ]₁`.
    pub delta_g1: Affine<E::G1>,
    /// The embedded verification key (including the short `ic` vector).
    pub vk: VerifyingKey<E>,
}

/// A fallible chunk iterator over one G1 query.
pub type G1Chunks<'a, E> =
    Box<dyn Iterator<Item = Result<Vec<Affine<<E as Engine>::G1>>, StreamError>> + 'a>;

/// A fallible chunk iterator over the G2 query.
pub type G2Chunks<'a, E> =
    Box<dyn Iterator<Item = Result<Vec<Affine<<E as Engine>::G2>>, StreamError>> + 'a>;

/// Read side of a chunked proving key. Implemented by the in-memory
/// [`ChunkedKey`] and by `zkperf-io`'s streamed zkey reader.
pub trait QuerySource<E: Engine> {
    /// The key's shape.
    fn header(&self) -> StreamHeader;
    /// The fixed (non-query) points.
    fn fixed(&self) -> Result<FixedParts<E>, StreamError>;
    /// Chunk iterator over one G1 query, in index order.
    fn g1_chunks(&self, q: G1Query) -> G1Chunks<'_, E>;
    /// Chunk iterator over the G2 query, in index order.
    fn g2_chunks(&self) -> G2Chunks<'_, E>;
}

/// Write side of a chunked proving key. Implemented by the in-memory
/// [`MemorySink`] and by `zkperf-io`'s streamed zkey writer.
pub trait QuerySink<E: Engine> {
    /// Announces the shape before any chunk; called exactly once.
    fn begin(&mut self, header: &StreamHeader) -> Result<(), StreamError>;
    /// Appends the next chunk of `q`, in index order.
    fn g1_chunk(&mut self, q: G1Query, pts: &[Affine<E::G1>]) -> Result<(), StreamError>;
    /// Appends the next chunk of the G2 query, in index order.
    fn g2_chunk(&mut self, pts: &[Affine<E::G2>]) -> Result<(), StreamError>;
    /// Delivers the fixed points and finalizes the artifact.
    fn finish(&mut self, fixed: &FixedParts<E>) -> Result<(), StreamError>;
}

/// Derives the chunk size (points per chunk) for a query of G1/G2 points
/// from the active memory budget; `None` when unbudgeted or when the
/// whole query fits one chunk anyway (so streaming would be pure
/// overhead). Instrumented runs never chunk: the characterization suite
/// pins the in-memory op stream.
fn budget_chunk<C: CurveParams>(n: usize) -> Option<usize> {
    if trace::is_active() {
        return None;
    }
    let budget = pool::mem::budget()?;
    let chunk = tuning::stream_chunk_points(
        budget,
        std::mem::size_of::<Affine<C>>(),
        std::mem::size_of::<C::Scalar>(),
    );
    (chunk < n).then_some(chunk)
}

/// `msm` with the budget gate: unbudgeted (or small) inputs take the
/// resident kernel, budgeted ones stream the bases chunk by chunk —
/// bounding the GLV/limb transient tables to one chunk's worth — and the
/// two produce the same group element.
pub(crate) fn msm_budgeted<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[C::Scalar],
) -> Projective<C> {
    match budget_chunk::<C>(bases.len()) {
        Some(chunk) => {
            let folded: Result<_, std::convert::Infallible> = msm_stream(
                bases.len(),
                bases.chunks(chunk).map(Ok),
                scalars,
            );
            match folded {
                Ok(v) => v,
                Err(e) => match e {},
            }
        }
        None => msm(bases, scalars),
    }
}

/// Errors from [`prove_streamed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamProveError {
    /// The proving math failed (same taxonomy as the resident prover).
    Prove(ProveError),
    /// The chunk transport failed.
    Source(StreamError),
}

impl std::fmt::Display for StreamProveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamProveError::Prove(e) => e.fmt(f),
            StreamProveError::Source(e) => write!(f, "streamed key source: {e}"),
        }
    }
}

impl std::error::Error for StreamProveError {}

impl From<ProveError> for StreamProveError {
    fn from(e: ProveError) -> StreamProveError {
        StreamProveError::Prove(e)
    }
}

impl From<StreamError> for StreamProveError {
    fn from(e: StreamError) -> StreamProveError {
        StreamProveError::Source(e)
    }
}

/// Errors from [`setup_streamed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSetupError {
    /// The setup math failed (same taxonomy as the resident setup).
    Setup(SetupError),
    /// The chunk transport failed.
    Sink(StreamError),
}

impl std::fmt::Display for StreamSetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamSetupError::Setup(e) => e.fmt(f),
            StreamSetupError::Sink(e) => write!(f, "streamed key sink: {e}"),
        }
    }
}

impl std::error::Error for StreamSetupError {}

impl From<SetupError> for StreamSetupError {
    fn from(e: SetupError) -> StreamSetupError {
        StreamSetupError::Setup(e)
    }
}

impl From<StreamError> for StreamSetupError {
    fn from(e: StreamError) -> StreamSetupError {
        StreamSetupError::Sink(e)
    }
}

/// Runs the Groth16 trusted setup with the key leaving through `sink`
/// chunk by chunk instead of materializing as a [`ProvingKey`].
///
/// Draws from `rng` in exactly the order [`crate::setup`] does and emits
/// exactly the points it would store (affine coordinates are canonical),
/// so a key streamed to disk and read back equals the resident one
/// byte for byte. Emission order: header, then the [`G1_QUERIES`] in
/// order, then the G2 query, then the fixed parts.
///
/// Returns the verification key (also embedded in the fixed parts).
pub fn setup_streamed<E: Engine, R: Rng + ?Sized, S: QuerySink<E>>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
    chunk_points: usize,
    sink: &mut S,
) -> Result<VerifyingKey<E>, StreamSetupError> {
    let _g = trace::region_profile("setup");
    let scalars = setup_scalars::<E, R>(r1cs, rng)?;
    let SetupScalars {
        domain,
        alpha,
        beta,
        gamma,
        delta,
        u,
        v,
        ic_scalars,
        l_scalars,
        h_scalars,
        num_public,
    } = scalars;
    let num_wires = r1cs.num_wires();
    let chunk_points = chunk_points.max(1);

    let header = StreamHeader {
        num_wires,
        num_public_wires: num_public,
        domain_size: domain.size(),
        chunk_points,
    };
    sink.begin(&header)?;

    // Same table widths as the monolithic batch: the combined nonzero
    // count per group ([α, β, δ] and [β, γ, δ] are nonzero by
    // construction). Widths only affect speed — affine values are
    // identical at any width — but keeping them equal keeps the two
    // paths' cost profiles comparable.
    let nonzero = |s: &[E::Fr]| s.iter().filter(|x| !x.is_zero()).count();
    let g1_nonzero = nonzero(&u)
        + nonzero(&v)
        + nonzero(&ic_scalars)
        + nonzero(&l_scalars)
        + nonzero(&h_scalars)
        + 3;
    let g2_nonzero = nonzero(&v) + 3;
    let t1 = FixedBaseTable::for_batch(&Projective::<E::G1>::generator(), g1_nonzero);
    let t2 = FixedBaseTable::for_batch(&Projective::<E::G2>::generator(), g2_nonzero);

    let emit_g1 = |sink: &mut S, q: G1Query, scalars: &[E::Fr]| -> Result<(), StreamSetupError> {
        for chunk in scalars.chunks(chunk_points) {
            if pool::cancellation_pending() {
                return Err(SetupError::Cancelled.into());
            }
            sink.g1_chunk(q, &t1.mul_batch(chunk))?;
        }
        Ok(())
    };
    emit_g1(sink, G1Query::A, &u)?;
    emit_g1(sink, G1Query::BG1, &v)?;
    emit_g1(sink, G1Query::L, &l_scalars)?;
    emit_g1(sink, G1Query::H, &h_scalars)?;

    for chunk in v.chunks(chunk_points) {
        if pool::cancellation_pending() {
            return Err(SetupError::Cancelled.into());
        }
        sink.g2_chunk(&t2.mul_batch(chunk))?;
    }

    let ic = t1.mul_batch(&ic_scalars);
    let g1_fixed = t1.mul_batch(&[alpha, beta, delta]);
    let g2_fixed = t2.mul_batch(&[beta, gamma, delta]);
    let vk = VerifyingKey {
        alpha_g1: g1_fixed[0],
        beta_g2: g2_fixed[0],
        gamma_g2: g2_fixed[1],
        delta_g2: g2_fixed[2],
        ic,
    };
    let fixed = FixedParts { beta_g1: g1_fixed[1], delta_g1: g1_fixed[2], vk: vk.clone() };
    sink.finish(&fixed)?;
    Ok(vk)
}

/// The budgeted in-memory setup behind [`crate::setup`]'s
/// `ZKPERF_MEM_BUDGET` gate: streams through a [`MemorySink`] with the
/// chunk size derived from the budget, bounding the fixed-base transient
/// working set to one chunk instead of the whole concatenated batch.
pub(crate) fn setup_budgeted<E: Engine, R: Rng + ?Sized>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
) -> Result<ProvingKey<E>, SetupError> {
    let budget = pool::mem::budget().unwrap_or(u64::MAX);
    let chunk = tuning::stream_chunk_points(
        budget,
        std::mem::size_of::<Affine<E::G1>>(),
        std::mem::size_of::<E::Fr>(),
    );
    let mut sink = MemorySink::<E>::new();
    match setup_streamed(r1cs, rng, chunk, &mut sink) {
        Ok(_) => {}
        Err(StreamSetupError::Setup(e)) => return Err(e),
        // MemorySink never fails; treat the impossible as cancellation
        // rather than panicking in a deny(unwrap) crate.
        Err(StreamSetupError::Sink(_)) => return Err(SetupError::Cancelled),
    }
    sink.into_proving_key().ok_or(SetupError::Cancelled)
}

/// Produces a Groth16 proof with the key arriving through `src` chunk by
/// chunk — the out-of-core prover. Byte-identical to [`crate::prove`] on
/// the same key material and RNG stream: all five query MSMs run through
/// the streaming fold, and the proof normalizes to affine form before
/// leaving.
pub fn prove_streamed<E: Engine, S: QuerySource<E>, R: Rng + ?Sized>(
    src: &S,
    r1cs: &R1cs<E::Fr>,
    witness: &Witness<E::Fr>,
    rng: &mut R,
) -> Result<Proof<E>, StreamProveError> {
    let _g = trace::region_profile("prove");
    let header = src.header();
    let w = witness.full();
    if w.len() != header.num_wires {
        return Err(ProveError::WitnessLengthMismatch {
            expected: header.num_wires,
            got: w.len(),
        }
        .into());
    }
    if r1cs.num_wires() != w.len() {
        return Err(ProveError::WitnessLengthMismatch {
            expected: r1cs.num_wires(),
            got: w.len(),
        }
        .into());
    }
    if header.num_public_wires > w.len() {
        return Err(ProveError::MalformedKey("public wires exceed witness length").into());
    }
    let domain = Radix2Domain::<E::Fr>::new(header.domain_size).ok_or(
        ProveError::InvalidDomain { size: header.domain_size },
    )?;
    if domain.size() < r1cs.num_constraints() {
        return Err(ProveError::DomainTooSmall {
            domain: domain.size(),
            constraints: r1cs.num_constraints(),
        }
        .into());
    }

    if pool::cancellation_pending() {
        return Err(ProveError::Cancelled.into());
    }

    let (a_ev, b_ev, c_ev) = qap::evaluate_constraints(r1cs, &domain, w);
    let h = qap::compute_h_coefficients(&domain, a_ev, b_ev, c_ev);

    if pool::cancellation_pending() {
        return Err(ProveError::Cancelled.into());
    }

    let (r, s) = (E::Fr::random(rng), E::Fr::random(rng));
    let fixed = src.fixed()?;

    let g1 = |q: G1Query, scalars: &[E::Fr]| -> Result<Projective<E::G1>, StreamError> {
        msm_stream(header.g1_len(q), src.g1_chunks(q), scalars)
    };
    let g_a = fixed.vk.alpha_g1.to_projective()
        + g1(G1Query::A, w)?
        + fixed.delta_g1.to_projective() * r;
    let g_b = fixed.vk.beta_g2.to_projective()
        + msm_stream(header.g2_len(), src.g2_chunks(), w)?
        + fixed.vk.delta_g2.to_projective() * s;
    let g_b1 = fixed.beta_g1.to_projective()
        + g1(G1Query::BG1, w)?
        + fixed.delta_g1.to_projective() * s;

    if pool::cancellation_pending() {
        return Err(ProveError::Cancelled.into());
    }

    let priv_witness = &w[header.num_public_wires..];
    let l_part = g1(G1Query::L, priv_witness)?;
    let h_part = g1(G1Query::H, &h)?;
    let g_c = l_part
        + h_part
        + g_a * s
        + g_b1 * r
        + (fixed.delta_g1.to_projective() * (r * s)).neg();

    let out = [g_a, g_c];
    let affine = Projective::batch_to_affine(&out);
    trace::alloc(std::mem::size_of::<Proof<E>>());
    Ok(Proof { a: affine[0], b: g_b.to_affine(), c: affine[1] })
}

/// [`QuerySource`] over a resident [`ProvingKey`]: serves slices of the
/// key's own vectors as chunks (no copies beyond the per-chunk `Vec` the
/// iterator contract requires are made — slices are wrapped, not cloned).
pub struct ChunkedKey<'a, E: Engine> {
    key: &'a ProvingKey<E>,
    chunk_points: usize,
}

impl<'a, E: Engine> ChunkedKey<'a, E> {
    /// Wraps `key`, splitting every query into `chunk_points`-sized
    /// chunks.
    pub fn new(key: &'a ProvingKey<E>, chunk_points: usize) -> ChunkedKey<'a, E> {
        ChunkedKey { key, chunk_points: chunk_points.max(1) }
    }

    fn g1_query(&self, q: G1Query) -> &'a [Affine<E::G1>] {
        match q {
            G1Query::A => &self.key.a_query,
            G1Query::BG1 => &self.key.b_g1_query,
            G1Query::L => &self.key.l_query,
            G1Query::H => &self.key.h_query,
        }
    }
}

impl<E: Engine> QuerySource<E> for ChunkedKey<'_, E> {
    fn header(&self) -> StreamHeader {
        StreamHeader {
            num_wires: self.key.a_query.len(),
            num_public_wires: self.key.num_public_wires,
            domain_size: self.key.domain_size,
            chunk_points: self.chunk_points,
        }
    }

    fn fixed(&self) -> Result<FixedParts<E>, StreamError> {
        Ok(FixedParts {
            beta_g1: self.key.beta_g1,
            delta_g1: self.key.delta_g1,
            vk: self.key.vk.clone(),
        })
    }

    fn g1_chunks(&self, q: G1Query) -> G1Chunks<'_, E> {
        Box::new(self.g1_query(q).chunks(self.chunk_points).map(|c| Ok(c.to_vec())))
    }

    fn g2_chunks(&self) -> G2Chunks<'_, E> {
        Box::new(self.key.b_g2_query.chunks(self.chunk_points).map(|c| Ok(c.to_vec())))
    }
}

/// [`QuerySink`] that reassembles the chunks into a resident
/// [`ProvingKey`] — the budgeted in-memory setup path, and the reference
/// sink for differential tests.
pub struct MemorySink<E: Engine> {
    header: Option<StreamHeader>,
    a: Vec<Affine<E::G1>>,
    b_g1: Vec<Affine<E::G1>>,
    l: Vec<Affine<E::G1>>,
    h: Vec<Affine<E::G1>>,
    b_g2: Vec<Affine<E::G2>>,
    fixed: Option<FixedParts<E>>,
}

impl<E: Engine> MemorySink<E> {
    /// An empty sink.
    pub fn new() -> MemorySink<E> {
        MemorySink {
            header: None,
            a: Vec::new(),
            b_g1: Vec::new(),
            l: Vec::new(),
            h: Vec::new(),
            b_g2: Vec::new(),
            fixed: None,
        }
    }

    /// The assembled key, once `finish` has delivered the fixed parts.
    pub fn into_proving_key(self) -> Option<ProvingKey<E>> {
        let header = self.header?;
        let fixed = self.fixed?;
        Some(ProvingKey {
            vk: fixed.vk,
            beta_g1: fixed.beta_g1,
            delta_g1: fixed.delta_g1,
            a_query: self.a,
            b_g1_query: self.b_g1,
            b_g2_query: self.b_g2,
            l_query: self.l,
            h_query: self.h,
            domain_size: header.domain_size,
            num_public_wires: header.num_public_wires,
        })
    }
}

impl<E: Engine> Default for MemorySink<E> {
    fn default() -> MemorySink<E> {
        MemorySink::new()
    }
}

impl<E: Engine> QuerySink<E> for MemorySink<E> {
    fn begin(&mut self, header: &StreamHeader) -> Result<(), StreamError> {
        self.header = Some(*header);
        self.a.reserve_exact(header.g1_len(G1Query::A));
        self.b_g1.reserve_exact(header.g1_len(G1Query::BG1));
        self.l.reserve_exact(header.g1_len(G1Query::L));
        self.h.reserve_exact(header.g1_len(G1Query::H));
        self.b_g2.reserve_exact(header.g2_len());
        Ok(())
    }

    fn g1_chunk(&mut self, q: G1Query, pts: &[Affine<E::G1>]) -> Result<(), StreamError> {
        match q {
            G1Query::A => self.a.extend_from_slice(pts),
            G1Query::BG1 => self.b_g1.extend_from_slice(pts),
            G1Query::L => self.l.extend_from_slice(pts),
            G1Query::H => self.h.extend_from_slice(pts),
        }
        Ok(())
    }

    fn g2_chunk(&mut self, pts: &[Affine<E::G2>]) -> Result<(), StreamError> {
        self.b_g2.extend_from_slice(pts);
        Ok(())
    }

    fn finish(&mut self, fixed: &FixedParts<E>) -> Result<(), StreamError> {
        self.fixed = Some(fixed.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::prove;
    use crate::setup::setup;
    use crate::verify::verify;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;
    use zkperf_pool::mem;

    fn fixture() -> (zkperf_circuit::Circuit<Fr>, ProvingKey<Bn254>, Witness<Fr>) {
        let circuit = exponentiate::<Fr>(40);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        (circuit, pk, w)
    }

    #[test]
    fn streamed_setup_reproduces_resident_key() {
        let circuit = exponentiate::<Fr>(25);
        let mut rng = zkperf_ff::test_rng();
        let resident = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        for chunk in [1usize, 7, 64, 1 << 20] {
            let mut rng = zkperf_ff::test_rng();
            let mut sink = MemorySink::<Bn254>::new();
            let vk =
                setup_streamed(circuit.r1cs(), &mut rng, chunk, &mut sink).unwrap();
            let streamed = sink.into_proving_key().unwrap();
            assert_eq!(streamed, resident, "chunk = {chunk}");
            assert_eq!(vk, resident.vk, "chunk = {chunk}");
        }
    }

    #[test]
    fn streamed_prove_reproduces_resident_proof() {
        let (circuit, pk, w) = fixture();
        let mut rng = zkperf_ff::test_rng();
        let reference = prove(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        for chunk in [1usize, 13, 1 << 20] {
            let mut rng = zkperf_ff::test_rng();
            let src = ChunkedKey::new(&pk, chunk);
            let streamed =
                prove_streamed(&src, circuit.r1cs(), &w, &mut rng).unwrap();
            assert_eq!(streamed, reference, "chunk = {chunk}");
        }
        assert!(verify::<Bn254>(&pk.vk, &reference, w.public()).unwrap());
    }

    #[test]
    fn budget_gate_keeps_setup_and_prove_byte_identical() {
        let (circuit, _, w) = fixture();
        mem::set_budget(None);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let mut rng = zkperf_ff::test_rng();
        let reference = prove(&pk, circuit.r1cs(), &w, &mut rng).unwrap();

        // Absurdly small budget: both stages must chunk and still match.
        mem::set_budget(Some(1));
        let mut rng = zkperf_ff::test_rng();
        let pk_budgeted = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let mut rng = zkperf_ff::test_rng();
        let proof_budgeted = prove(&pk_budgeted, circuit.r1cs(), &w, &mut rng).unwrap();
        mem::set_budget(None);

        assert_eq!(pk_budgeted, pk);
        assert_eq!(proof_budgeted, reference);
    }

    #[test]
    fn stream_errors_propagate_with_location() {
        struct FailingSource<'a>(ChunkedKey<'a, Bn254>);
        impl QuerySource<Bn254> for FailingSource<'_> {
            fn header(&self) -> StreamHeader {
                self.0.header()
            }
            fn fixed(&self) -> Result<FixedParts<Bn254>, StreamError> {
                self.0.fixed()
            }
            fn g1_chunks(&self, q: G1Query) -> G1Chunks<'_, Bn254> {
                if matches!(q, G1Query::H) {
                    Box::new(std::iter::once(Err(StreamError {
                        path: Some("pk.zkey".into()),
                        offset: Some(4096),
                        detail: "section checksum mismatch".into(),
                    })))
                } else {
                    self.0.g1_chunks(q)
                }
            }
            fn g2_chunks(&self) -> G2Chunks<'_, Bn254> {
                self.0.g2_chunks()
            }
        }
        let (circuit, pk, w) = fixture();
        let src = FailingSource(ChunkedKey::new(&pk, 8));
        let mut rng = zkperf_ff::test_rng();
        let err = prove_streamed(&src, circuit.r1cs(), &w, &mut rng).unwrap_err();
        match err {
            StreamProveError::Source(e) => {
                assert_eq!(e.offset, Some(4096));
                let msg = e.to_string();
                assert!(msg.contains("pk.zkey"), "{msg}");
                assert!(msg.contains("byte offset 4096"), "{msg}");
            }
            other => panic!("expected Source error, got {other:?}"),
        }
    }
}
