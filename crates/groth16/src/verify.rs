//! The `verifying` stage.

use zkperf_ec::{msm, Engine};
use zkperf_ff::Field;
use zkperf_trace as trace;

use crate::key::{Proof, VerifyingKey};

/// Errors from [`verify`] that are input-shape problems rather than an
/// invalid proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Wrong number of public witness values for this key.
    PublicWitnessLength {
        /// Values expected by the key's IC query.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The public witness must start with the constant 1.
    MissingOneWire,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::PublicWitnessLength { expected, got } => {
                write!(f, "public witness has {got} values, key expects {expected}")
            }
            VerifyError::MissingOneWire => {
                write!(f, "public witness does not start with the constant 1")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks `proof` against `vk` and the public witness
/// (`[1, outputs…, public inputs…]`).
///
/// Evaluates the Groth16 equation
/// `e(A, B) = e(α, β)·e(Σ xᵢ·ICᵢ, γ)·e(C, δ)` as a single product of four
/// Miller loops with one final exponentiation — three pairings' worth of
/// work independent of the circuit size, which is why the paper measures a
/// constant-time `verifying` stage.
///
/// # Errors
///
/// Returns [`VerifyError`] for malformed inputs; returns `Ok(false)` for a
/// well-formed but invalid proof.
pub fn verify<E: Engine>(
    vk: &VerifyingKey<E>,
    proof: &Proof<E>,
    public_witness: &[E::Fr],
) -> Result<bool, VerifyError> {
    let _g = trace::region_profile("verify");
    if public_witness.len() != vk.ic.len() {
        return Err(VerifyError::PublicWitnessLength {
            expected: vk.ic.len(),
            got: public_witness.len(),
        });
    }
    if public_witness.first().map(Field::is_one) != Some(true) {
        return Err(VerifyError::MissingOneWire);
    }
    // Cheap well-formedness checks on the proof points.
    if !(proof.a.is_on_curve() && proof.b.is_on_curve() && proof.c.is_on_curve()) {
        return Ok(false);
    }

    let vk_x = msm(&vk.ic, public_witness).to_affine();

    // e(A,B) · e(−vk_x, γ) · e(−C, δ) · e(−α, β) == 1
    let lhs = E::multi_pairing(
        &[proof.a, vk_x.neg(), proof.c.neg(), vk.alpha_g1.neg()],
        &[proof.b, vk.gamma_g2, vk.delta_g2, vk.beta_g2],
    );
    trace::branch(0x6001, lhs.is_one());
    Ok(lhs.is_one())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove::prove, setup::setup};
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::{Affine, Bn254};
    use zkperf_ff::bn254::{Fq, Fr};

    #[test]
    fn shape_errors_are_distinguished_from_invalid_proofs() {
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();

        assert_eq!(
            verify::<Bn254>(&pk.vk, &proof, &[Fr::from_u64(2)]),
            Err(VerifyError::PublicWitnessLength {
                expected: 3,
                got: 1
            })
        );
        let mut no_one = w.public().to_vec();
        no_one[0] = Fr::from_u64(2);
        assert_eq!(
            verify::<Bn254>(&pk.vk, &proof, &no_one),
            Err(VerifyError::MissingOneWire)
        );
        // Off-curve proof point → clean false.
        let mut bad = proof.clone();
        bad.a = Affine::new_unchecked(Fq::from_u64(1), Fq::from_u64(1));
        assert_eq!(verify::<Bn254>(&pk.vk, &bad, w.public()), Ok(false));
    }

    #[test]
    fn valid_proof_with_tampered_public_inputs_is_rejected() {
        // The proof itself stays untouched and valid; only the claimed
        // statement changes. Every non-constant public wire is tampered in
        // turn — each must flip the verdict to Ok(false), never Ok(true)
        // and never a shape error (the arity is still correct).
        let circuit = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert_eq!(verify::<Bn254>(&pk.vk, &proof, w.public()), Ok(true));

        for i in 1..w.public().len() {
            let mut tampered = w.public().to_vec();
            tampered[i] += Fr::one();
            assert_eq!(
                verify::<Bn254>(&pk.vk, &proof, &tampered),
                Ok(false),
                "tampered public wire {i} must invalidate the statement"
            );
        }
        // Swapping the (distinct) output and input wires is also a lie.
        let mut swapped = w.public().to_vec();
        swapped.swap(1, 2);
        assert_eq!(verify::<Bn254>(&pk.vk, &proof, &swapped), Ok(false));
    }
}
