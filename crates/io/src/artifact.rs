//! Path-aware artifact I/O: every zkperf file format read from or written
//! to a real path, with errors that always carry the offending path.
//!
//! The byte-level readers in [`crate::files`] work over any
//! `Read`/`Write` and report a bare [`FormatError`]; a serving system
//! needs more. When a proving daemon's artifact cache hits a truncated or
//! bit-flipped `.zkey`, the error must say *which file* is corrupt (so the
//! entry can be evicted and rebuilt) and *whether* the failure is
//! corruption (evict) or environment (report). [`ArtifactError`] carries
//! both, and [`ArtifactError::is_corruption`] encodes the classification.
//!
//! Writers here are atomic: the artifact is serialized to a `.tmp` sibling
//! and renamed into place, so a crashed or faulted write never leaves a
//! half-written container that later reads as corruption.

use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use zkperf_circuit::R1cs;
use zkperf_ec::{CurveParams, Engine};
use zkperf_ff::PrimeField;
use zkperf_groth16::{Proof, ProvingKey, VerifyingKey};

use crate::codec::FieldCodec;
use crate::files::{
    read_proof, read_r1cs, read_vkey, read_zkey, write_proof, write_r1cs, write_vkey, write_zkey,
};
use crate::format::{Container, FormatError};

/// A container read or write that failed, annotated with the file it was
/// reading or writing.
#[derive(Debug)]
pub struct ArtifactError {
    /// The file whose read/write failed.
    pub path: PathBuf,
    /// The underlying format- or I/O-level failure.
    pub error: FormatError,
}

impl ArtifactError {
    fn new(path: &Path, error: FormatError) -> Self {
        ArtifactError {
            path: path.to_path_buf(),
            error,
        }
    }

    /// True when the file exists but its *contents* are bad — checksum
    /// mismatch, truncation, bad magic/version, malformed payload — i.e.
    /// the cases where a cache should evict and rebuild the entry. False
    /// for environmental failures (file missing, permission denied),
    /// where rebuilding over the path would mask a real problem.
    pub fn is_corruption(&self) -> bool {
        fn classify(e: &FormatError) -> bool {
            match e {
                FormatError::Io(e) => e.kind() == io::ErrorKind::UnexpectedEof,
                FormatError::BadMagic { .. }
                | FormatError::BadVersion(_)
                | FormatError::MissingSection(_)
                | FormatError::ChecksumMismatch { .. }
                | FormatError::Corrupt(_) => true,
                // A located error classifies by what actually failed there.
                FormatError::AtOffset { inner, .. } => classify(inner),
            }
        }
        classify(&self.error)
    }

    /// True when the artifact simply does not exist (a cache miss, not a
    /// failure).
    pub fn is_missing(&self) -> bool {
        matches!(&self.error, FormatError::Io(e) if e.kind() == io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact {}: {}", self.path.display(), self.error)
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

fn open(path: &Path) -> Result<BufReader<fs::File>, ArtifactError> {
    fs::File::open(path)
        .map(BufReader::new)
        .map_err(|e| ArtifactError::new(path, FormatError::Io(e)))
}

/// Runs `write` against a temporary sibling of `path`, then renames it
/// into place — the write is all-or-nothing from any reader's view.
fn write_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<fs::File>) -> Result<(), FormatError>,
) -> Result<(), ArtifactError> {
    let tmp = path.with_extension("tmp");
    let result = (|| {
        let file = fs::File::create(&tmp).map_err(FormatError::Io)?;
        let mut w = BufWriter::new(file);
        write(&mut w)?;
        w.flush().map_err(FormatError::Io)?;
        fs::rename(&tmp, path).map_err(FormatError::Io)
    })();
    result.map_err(|e| {
        let _ = fs::remove_file(&tmp);
        ArtifactError::new(path, e)
    })
}

/// Reads a full container from `path`, verifying magic and checksums.
///
/// # Errors
///
/// [`ArtifactError`] carrying `path` on any failure, including a missing
/// file (distinguish with [`ArtifactError::is_missing`]).
pub fn read_container_file(path: &Path, magic: [u8; 4]) -> Result<Container, ArtifactError> {
    let mut r = open(path)?;
    Container::read_from(&mut r, magic).map_err(|e| ArtifactError::new(path, e))
}

/// Atomically writes a container to `path`.
///
/// # Errors
///
/// [`ArtifactError`] carrying `path` on any failure.
pub fn write_container_file(path: &Path, container: &Container) -> Result<(), ArtifactError> {
    write_atomic(path, |w| container.write_to(w))
}

macro_rules! path_io {
    ($(#[$meta:meta])* read $read_name:ident, $read_inner:ident -> $out:ty;
     write $write_name:ident, $write_inner:ident ($val:ty)) => {
        $(#[$meta])*
        ///
        /// # Errors
        ///
        /// [`ArtifactError`] carrying the path on any failure; use
        /// [`ArtifactError::is_corruption`] to decide evict-and-rebuild.
        pub fn $read_name<E: Engine>(path: &Path) -> Result<$out, ArtifactError>
        where
            <E::G1 as CurveParams>::Base: FieldCodec,
            <E::G2 as CurveParams>::Base: FieldCodec,
        {
            let mut r = open(path)?;
            run_read(path, |r| $read_inner::<E>(r), &mut r)
        }

        /// Atomically writes the artifact to `path` (see module docs).
        ///
        /// # Errors
        ///
        /// [`ArtifactError`] carrying the path on any failure.
        pub fn $write_name<E: Engine>(path: &Path, value: &$val) -> Result<(), ArtifactError>
        where
            <E::G1 as CurveParams>::Base: FieldCodec,
            <E::G2 as CurveParams>::Base: FieldCodec,
        {
            write_atomic(path, |w| $write_inner::<E>(w, value))
        }
    };
}

fn run_read<T, R: Read>(
    path: &Path,
    read: impl FnOnce(&mut R) -> Result<T, FormatError>,
    r: &mut R,
) -> Result<T, ArtifactError> {
    read(r).map_err(|e| ArtifactError::new(path, e))
}

/// Reads an `.r1cs` container from `path`.
///
/// # Errors
///
/// [`ArtifactError`] carrying the path on any failure; use
/// [`ArtifactError::is_corruption`] to decide evict-and-rebuild.
pub fn read_r1cs_file<F: PrimeField>(path: &Path) -> Result<R1cs<F>, ArtifactError> {
    let mut r = open(path)?;
    run_read(path, |r| read_r1cs::<F>(r), &mut r)
}

/// Atomically writes an `.r1cs` container to `path`.
///
/// # Errors
///
/// [`ArtifactError`] carrying the path on any failure.
pub fn write_r1cs_file<F: PrimeField>(path: &Path, r1cs: &R1cs<F>) -> Result<(), ArtifactError> {
    write_atomic(path, |w| write_r1cs::<F>(w, r1cs))
}

path_io! {
    /// Reads a `.zkey` proving-key container from `path`.
    read read_zkey_file, read_zkey -> ProvingKey<E>;
    write write_zkey_file, write_zkey (ProvingKey<E>)
}

path_io! {
    /// Reads a `.vkey` verification-key container from `path`.
    read read_vkey_file, read_vkey -> VerifyingKey<E>;
    write write_vkey_file, write_vkey (VerifyingKey<E>)
}

path_io! {
    /// Reads a `.proof` container from `path`.
    read read_proof_file, read_proof -> Proof<E>;
    write write_proof_file, write_proof (Proof<E>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;
    use zkperf_groth16::{prove, setup, verify};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zkperf-artifact-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_roundtrip_and_missing_classification() {
        let dir = tmp_dir("roundtrip");
        let circuit = exponentiate::<Fr>(6);
        let path = dir.join("c.r1cs");
        write_r1cs_file(&path, circuit.r1cs()).unwrap();
        let back: R1cs<Fr> = read_r1cs_file(&path).unwrap();
        assert_eq!(&back, circuit.r1cs());
        // No temp file left behind.
        assert!(!dir.join("c.tmp").exists());

        let missing = read_r1cs_file::<Fr>(&dir.join("nope.r1cs")).unwrap_err();
        assert!(missing.is_missing());
        assert!(!missing.is_corruption());
        assert!(missing.to_string().contains("nope.r1cs"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_round_trip_is_typed_with_the_offending_path() {
        let dir = tmp_dir("corrupt");
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let path = dir.join("c.zkey");
        write_zkey_file::<Bn254>(&path, &pk).unwrap();

        // Checksum mismatch: flip one payload bit.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = read_zkey_file::<Bn254>(&path).unwrap_err();
        assert!(err.is_corruption(), "checksum mismatch classifies as corruption");
        assert!(!err.is_missing());
        assert!(matches!(err.error, FormatError::ChecksumMismatch { .. }));
        assert_eq!(err.path, path);
        assert!(err.to_string().contains("c.zkey"));

        // Truncation: typed corruption too, never a bare io error string.
        bytes[last] ^= 0x40; // restore the bit
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        let err = read_zkey_file::<Bn254>(&path).unwrap_err();
        assert!(err.is_corruption(), "truncation classifies as corruption");
        assert_eq!(err.path, path);

        // Rebuilt artifact reads clean again and proves correctly.
        write_zkey_file::<Bn254>(&path, &pk).unwrap();
        let pk2 = read_zkey_file::<Bn254>(&path).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk2, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(verify::<Bn254>(&pk2.vk, &proof, w.public()).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn proof_and_vkey_path_io_roundtrip() {
        let dir = tmp_dir("proof");
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        let ppath = dir.join("a.proof");
        let vpath = dir.join("a.vkey");
        write_proof_file::<Bn254>(&ppath, &proof).unwrap();
        write_vkey_file::<Bn254>(&vpath, &pk.vk).unwrap();
        let proof2 = read_proof_file::<Bn254>(&ppath).unwrap();
        let vk2 = read_vkey_file::<Bn254>(&vpath).unwrap();
        assert!(verify::<Bn254>(&vk2, &proof2, w.public()).unwrap());

        // Wrong-magic cross-read is corruption, with the path attached.
        let err = read_proof_file::<Bn254>(&vpath).unwrap_err();
        assert!(err.is_corruption());
        assert!(err.to_string().contains("a.vkey"));
        let _ = fs::remove_dir_all(&dir);
    }
}
