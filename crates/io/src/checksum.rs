//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used for the
//! per-section integrity checksums in container format v2.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = vec![0x5au8; 257];
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut tampered = base.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
