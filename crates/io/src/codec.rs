//! Fixed-width encodings for field elements and curve points.

use zkperf_ec::{Affine, CurveParams};
use zkperf_ff::{BigUint, Field, PrimeField, QuadExt, QuadExtParams};


use crate::format::{Cursor, FormatError, Payload};

/// A coordinate or scalar field with a canonical byte encoding.
///
/// Implemented for the prime fields (little-endian limb dump, canonical
/// values only) and the quadratic extensions (c0 then c1).
pub trait FieldCodec: Field {
    /// Encoded width in bytes.
    fn encoded_len() -> usize;
    /// Appends the canonical encoding.
    fn encode(&self, out: &mut Payload);
    /// Reads and validates one element.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] on truncation or a non-canonical value.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, FormatError>;
}

pub(crate) fn encode_prime<F: PrimeField>(v: &F, out: &mut Payload) {
    for limb in v.to_biguint().to_limbs(F::NUM_LIMBS) {
        out.u64(limb);
    }
}

pub(crate) fn decode_prime<F: PrimeField>(cur: &mut Cursor<'_>) -> Result<F, FormatError> {
    let mut limbs = Vec::with_capacity(F::NUM_LIMBS);
    for _ in 0..F::NUM_LIMBS {
        limbs.push(cur.u64()?);
    }
    let value = BigUint::from_limbs(&limbs);
    if value >= F::modulus() {
        return Err(FormatError::Corrupt("non-canonical field element"));
    }
    Ok(F::from_biguint(&value))
}

impl<P: zkperf_ff::FpParams<N>, const N: usize> FieldCodec for zkperf_ff::Fp<P, N> {
    fn encoded_len() -> usize {
        N * 8
    }
    fn encode(&self, out: &mut Payload) {
        encode_prime(self, out);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, FormatError> {
        decode_prime(cur)
    }
}

impl<P: QuadExtParams> FieldCodec for QuadExt<P>
where
    P::Base: FieldCodec,
{
    fn encoded_len() -> usize {
        2 * P::Base::encoded_len()
    }
    fn encode(&self, out: &mut Payload) {
        self.c0.encode(out);
        self.c1.encode(out);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, FormatError> {
        let c0 = P::Base::decode(cur)?;
        let c1 = P::Base::decode(cur)?;
        Ok(QuadExt::new(c0, c1))
    }
}

/// Encodes an affine point: one flag byte (0 = infinity, 1 = coordinates)
/// followed by x and y when present.
pub(crate) fn encode_point<C: CurveParams>(p: &Affine<C>, out: &mut Payload)
where
    C::Base: FieldCodec,
{
    if p.infinity {
        out.bytes(&[0]);
    } else {
        out.bytes(&[1]);
        p.x.encode(out);
        p.y.encode(out);
    }
}

/// Decodes an affine point, enforcing curve membership.
pub(crate) fn decode_point<C: CurveParams>(cur: &mut Cursor<'_>) -> Result<Affine<C>, FormatError>
where
    C::Base: FieldCodec,
{
    let flag = cur.take(1)?[0];
    match flag {
        0 => Ok(Affine::identity()),
        1 => {
            let x = C::Base::decode(cur)?;
            let y = C::Base::decode(cur)?;
            let p = Affine::new_unchecked(x, y);
            if !p.is_on_curve() {
                return Err(FormatError::Corrupt("point not on curve"));
            }
            Ok(p)
        }
        _ => Err(FormatError::Corrupt("bad point flag")),
    }
}

/// Compressed G1-style encoding: a parity flag plus the x-coordinate
/// (half the bytes of the uncompressed form — the memory optimization the
/// paper's Key Takeaway 2 cites). Requires a prime-field coordinate.
pub fn encode_point_compressed<C: CurveParams>(p: &Affine<C>, out: &mut Payload)
where
    C::Base: PrimeField + FieldCodec,
{
    if p.infinity {
        out.bytes(&[0]);
        return;
    }
    let parity = if p.y.to_biguint().bit(0) { 3 } else { 2 };
    out.bytes(&[parity]);
    p.x.encode(out);
}

/// Decodes a compressed point, recomputing `y = √(x³ + b)` and selecting
/// the recorded parity; enforces curve membership by construction.
pub fn decode_point_compressed<C: CurveParams>(
    cur: &mut Cursor<'_>,
) -> Result<Affine<C>, FormatError>
where
    C::Base: PrimeField + FieldCodec,
{
    let flag = cur.take(1)?[0];
    match flag {
        0 => Ok(Affine::identity()),
        2 | 3 => {
            let x = C::Base::decode(cur)?;
            let rhs = x.square() * x + C::coeff_b();
            let y = rhs
                .sqrt()
                .ok_or(FormatError::Corrupt("x is not on the curve"))?;
            let want_odd = flag == 3;
            let y = if y.to_biguint().bit(0) == want_odd { y } else { -y };
            Ok(Affine::new_unchecked(x, y))
        }
        _ => Err(FormatError::Corrupt("bad compressed point flag")),
    }
}

pub(crate) fn encode_point_vec<C: CurveParams>(ps: &[Affine<C>], out: &mut Payload)
where
    C::Base: FieldCodec,
{
    out.u64(ps.len() as u64);
    for p in ps {
        encode_point(p, out);
    }
}

pub(crate) fn decode_point_vec<C: CurveParams>(
    cur: &mut Cursor<'_>,
) -> Result<Vec<Affine<C>>, FormatError>
where
    C::Base: FieldCodec,
{
    let n = cur.u64()? as usize;
    // Every encoded point occupies at least its one-byte flag, so a
    // count beyond the bytes remaining is corruption — and rejecting it
    // here keeps `with_capacity` from allocating gigabytes on a
    // tampered length prefix.
    if n > cur.remaining() {
        return Err(FormatError::Corrupt("point count exceeds section size"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_point(cur)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::bn254::{G1Projective, G2Projective};
    use zkperf_ff::bn254::{Fq2, Fr};

    #[test]
    fn prime_field_roundtrip_and_validation() {
        let mut rng = zkperf_ff::test_rng();
        for _ in 0..10 {
            let v = Fr::random(&mut rng);
            let mut p = Payload::default();
            v.encode(&mut p);
            assert_eq!(p.0.len(), Fr::encoded_len());
            let back = Fr::decode(&mut Cursor::new(&p.0)).unwrap();
            assert_eq!(back, v);
        }
        // A non-canonical value (the modulus itself) is rejected.
        let mut p = Payload::default();
        for limb in Fr::modulus().to_limbs(4) {
            p.u64(limb);
        }
        assert!(Fr::decode(&mut Cursor::new(&p.0)).is_err());
    }

    #[test]
    fn quadratic_extension_roundtrip() {
        let mut rng = zkperf_ff::test_rng();
        let v = Fq2::random(&mut rng);
        let mut p = Payload::default();
        v.encode(&mut p);
        let back = Fq2::decode(&mut Cursor::new(&p.0)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn points_roundtrip_and_reject_off_curve() {
        let mut rng = zkperf_ff::test_rng();
        let g1 = G1Projective::random(&mut rng).to_affine();
        let g2 = G2Projective::random(&mut rng).to_affine();
        let mut p = Payload::default();
        encode_point(&g1, &mut p);
        encode_point(&zkperf_ec::bn254::G1Affine::identity(), &mut p);
        encode_point(&g2, &mut p);
        let mut cur = Cursor::new(&p.0);
        assert_eq!(decode_point::<zkperf_ec::bn254::G1Params>(&mut cur).unwrap(), g1);
        assert!(
            decode_point::<zkperf_ec::bn254::G1Params>(&mut cur)
                .unwrap()
                .infinity
        );
        assert_eq!(decode_point::<zkperf_ec::bn254::G2Params>(&mut cur).unwrap(), g2);
        assert!(cur.finished());

        // Corrupt a coordinate: decoding must fail curve membership.
        let mut bad = Payload::default();
        encode_point(&g1, &mut bad);
        let len = bad.0.len();
        bad.0[len - 1] ^= 1;
        assert!(decode_point::<zkperf_ec::bn254::G1Params>(&mut Cursor::new(&bad.0)).is_err());
    }

    #[test]
    fn compressed_points_roundtrip_at_half_size() {
        let mut rng = zkperf_ff::test_rng();
        for _ in 0..8 {
            let p = G1Projective::random(&mut rng).to_affine();
            let mut full = Payload::default();
            encode_point(&p, &mut full);
            let mut small = Payload::default();
            encode_point_compressed(&p, &mut small);
            assert!(small.0.len() < full.0.len() / 2 + 8, "compression saves ~half");
            let back =
                decode_point_compressed::<zkperf_ec::bn254::G1Params>(&mut Cursor::new(&small.0))
                    .unwrap();
            assert_eq!(back, p);
            assert!(back.is_on_curve());
        }
        // Infinity and an x off the curve.
        let mut inf = Payload::default();
        encode_point_compressed(&zkperf_ec::bn254::G1Affine::identity(), &mut inf);
        assert!(
            decode_point_compressed::<zkperf_ec::bn254::G1Params>(&mut Cursor::new(&inf.0))
                .unwrap()
                .infinity
        );
        let mut bad = Payload::default();
        bad.bytes(&[2]);
        zkperf_ff::bn254::Fq::from_u64(5).encode(&mut bad); // x=5: 125+3 non-residue? validated below
        let r = decode_point_compressed::<zkperf_ec::bn254::G1Params>(&mut Cursor::new(&bad.0));
        if let Ok(p) = r {
            assert!(p.is_on_curve(), "if decoded, must be on curve");
        }
    }

    #[test]
    fn point_vectors_roundtrip() {
        let mut rng = zkperf_ff::test_rng();
        let pts: Vec<_> = (0..5)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut p = Payload::default();
        encode_point_vec(&pts, &mut p);
        let back = decode_point_vec::<zkperf_ec::bn254::G1Params>(&mut Cursor::new(&p.0)).unwrap();
        assert_eq!(back, pts);
    }
}
