//! The concrete file formats: `.r1cs`, `.wtns`, `.zkey`, `.vkey`, `.proof`.

use std::io::{Read, Write};

use zkperf_circuit::{Constraint, LinearCombination, R1cs, Variable};
use zkperf_ec::{CurveParams, Engine};
use zkperf_ff::PrimeField;
use zkperf_groth16::{Proof, ProvingKey, VerifyingKey};
use zkperf_trace as trace;

use crate::codec::{
    decode_point, decode_point_vec, decode_prime, encode_point, encode_point_vec, encode_prime,
    FieldCodec,
};
use crate::format::{Container, Cursor, FormatError, Payload};

const MAGIC_R1CS: [u8; 4] = *b"zkr1";
const MAGIC_WTNS: [u8; 4] = *b"zkwt";
const MAGIC_ZKEY: [u8; 4] = *b"zkpk";
const MAGIC_VKEY: [u8; 4] = *b"zkvk";
const MAGIC_PROOF: [u8; 4] = *b"zkpf";

const SEC_HEADER: u32 = 1;
const SEC_CONSTRAINTS: u32 = 2;
const SEC_VALUES: u32 = 3;
const SEC_G1: u32 = 4;
const SEC_G2: u32 = 5;

fn encode_lc<F: PrimeField>(lc: &LinearCombination<F>, out: &mut Payload) {
    out.u32(lc.len() as u32);
    for &(v, c) in lc.terms() {
        out.u32(v.0);
        encode_prime(&c, out);
    }
}

fn decode_lc<F: PrimeField>(cur: &mut Cursor<'_>) -> Result<LinearCombination<F>, FormatError> {
    let n = cur.u32()? as usize;
    // A term is at least a u32 wire index plus one coefficient limb, so
    // any count past remaining/12 cannot be satisfied by the bytes left;
    // the absolute cap additionally bounds well-formed-looking inputs.
    if n > (1 << 24) || n > cur.remaining() / 12 {
        return Err(FormatError::Corrupt("unreasonable term count"));
    }
    let mut lc = LinearCombination::zero();
    for _ in 0..n {
        let wire = cur.u32()?;
        let coeff = decode_prime(cur)?;
        lc.add_term(Variable(wire), coeff);
    }
    Ok(lc)
}

/// Writes a constraint system as a `.r1cs`-style container.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_r1cs<F: PrimeField>(w: &mut impl Write, r1cs: &R1cs<F>) -> Result<(), FormatError> {
    let _g = trace::region_profile("file_io");
    let mut header = Payload::default();
    header.u64(r1cs.num_wires() as u64);
    header.u64(r1cs.num_outputs() as u64);
    header.u64(r1cs.num_public_inputs() as u64);
    header.u64(r1cs.num_private_inputs() as u64);
    header.u64(r1cs.num_constraints() as u64);
    let mut body = Payload::default();
    for c in r1cs.constraints() {
        encode_lc(&c.a, &mut body);
        encode_lc(&c.b, &mut body);
        encode_lc(&c.c, &mut body);
    }
    let mut container = Container::new(MAGIC_R1CS);
    container.push_section(SEC_HEADER, header.0);
    container.push_section(SEC_CONSTRAINTS, body.0);
    container.write_to(w)
}

/// Reads a `.r1cs` container back into a validated [`R1cs`].
///
/// # Errors
///
/// [`FormatError`] on malformed input (including out-of-range wires, which
/// surface as a panic converted by the validating constructor — corrupt
/// counts are caught here first).
pub fn read_r1cs<F: PrimeField>(r: &mut impl Read) -> Result<R1cs<F>, FormatError> {
    let _g = trace::region_profile("file_io");
    let container = Container::read_from(r, MAGIC_R1CS)?;
    let mut h = Cursor::new(container.section(SEC_HEADER)?);
    let num_wires = h.u64()? as usize;
    let num_outputs = h.u64()? as usize;
    let num_public = h.u64()? as usize;
    let num_private = h.u64()? as usize;
    let num_constraints = h.u64()? as usize;
    if num_wires > (1 << 30) || num_constraints > (1 << 30) {
        return Err(FormatError::Corrupt("unreasonable r1cs dimensions"));
    }
    if 1 + num_outputs + num_public + num_private > num_wires {
        return Err(FormatError::Corrupt("wire layout exceeds wire count"));
    }
    let mut body = Cursor::new(container.section(SEC_CONSTRAINTS)?);
    // Three u32 length prefixes per constraint is the smallest possible
    // encoding; a count beyond that is a corrupt header, rejected before
    // the capacity reservation below can balloon.
    if num_constraints > body.remaining() / 12 {
        return Err(FormatError::Corrupt("constraint count exceeds section size"));
    }
    let mut constraints = Vec::with_capacity(num_constraints);
    for _ in 0..num_constraints {
        let a = decode_lc(&mut body)?;
        let b = decode_lc(&mut body)?;
        let c = decode_lc(&mut body)?;
        for lc in [&a, &b, &c] {
            if lc.terms().iter().any(|(v, _)| v.index() >= num_wires) {
                return Err(FormatError::Corrupt("constraint wire out of range"));
            }
        }
        constraints.push(Constraint { a, b, c });
    }
    if !body.finished() {
        return Err(FormatError::Corrupt("trailing constraint bytes"));
    }
    Ok(R1cs::from_parts(
        num_wires,
        num_outputs,
        num_public,
        num_private,
        constraints,
    ))
}

/// Writes a witness vector as a `.wtns`-style container.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_witness<F: PrimeField>(w: &mut impl Write, values: &[F]) -> Result<(), FormatError> {
    let _g = trace::region_profile("file_io");
    let mut body = Payload::default();
    body.u64(values.len() as u64);
    for v in values {
        encode_prime(v, &mut body);
    }
    let mut container = Container::new(MAGIC_WTNS);
    container.push_section(SEC_VALUES, body.0);
    container.write_to(w)
}

/// Reads a `.wtns` container.
///
/// # Errors
///
/// [`FormatError`] on malformed input.
pub fn read_witness<F: PrimeField>(r: &mut impl Read) -> Result<Vec<F>, FormatError> {
    let _g = trace::region_profile("file_io");
    let container = Container::read_from(r, MAGIC_WTNS)?;
    let mut body = Cursor::new(container.section(SEC_VALUES)?);
    let n = body.u64()? as usize;
    // Each witness value is at least one 8-byte limb; reject counts the
    // section cannot hold before reserving capacity for them.
    if n > (1 << 30) || n > body.remaining() / 8 {
        return Err(FormatError::Corrupt("unreasonable witness length"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_prime(&mut body)?);
    }
    if !body.finished() {
        return Err(FormatError::Corrupt("trailing witness bytes"));
    }
    Ok(out)
}

fn encode_vk<E: Engine>(vk: &VerifyingKey<E>) -> (Payload, Payload)
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let mut g1 = Payload::default();
    encode_point(&vk.alpha_g1, &mut g1);
    encode_point_vec(&vk.ic, &mut g1);
    let mut g2 = Payload::default();
    encode_point(&vk.beta_g2, &mut g2);
    encode_point(&vk.gamma_g2, &mut g2);
    encode_point(&vk.delta_g2, &mut g2);
    (g1, g2)
}

fn decode_vk<E: Engine>(g1: &[u8], g2: &[u8]) -> Result<VerifyingKey<E>, FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let mut c1 = Cursor::new(g1);
    let alpha_g1 = decode_point(&mut c1)?;
    let ic = decode_point_vec(&mut c1)?;
    let mut c2 = Cursor::new(g2);
    Ok(VerifyingKey {
        alpha_g1,
        ic,
        beta_g2: decode_point(&mut c2)?,
        gamma_g2: decode_point(&mut c2)?,
        delta_g2: decode_point(&mut c2)?,
    })
}

/// Writes a verification key as a `.vkey` container.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_vkey<E: Engine>(w: &mut impl Write, vk: &VerifyingKey<E>) -> Result<(), FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let (g1, g2) = encode_vk(vk);
    let mut container = Container::new(MAGIC_VKEY);
    container.push_section(SEC_G1, g1.0);
    container.push_section(SEC_G2, g2.0);
    container.write_to(w)
}

/// Reads a `.vkey` container.
///
/// # Errors
///
/// [`FormatError`] on malformed input (every point is curve-checked).
pub fn read_vkey<E: Engine>(r: &mut impl Read) -> Result<VerifyingKey<E>, FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let container = Container::read_from(r, MAGIC_VKEY)?;
    decode_vk::<E>(container.section(SEC_G1)?, container.section(SEC_G2)?)
}

/// Writes a proving key (including its embedded verification key) as a
/// `.zkey`-style container.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_zkey<E: Engine>(w: &mut impl Write, pk: &ProvingKey<E>) -> Result<(), FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let _g = trace::region_profile("file_io");
    let mut header = Payload::default();
    header.u64(pk.domain_size as u64);
    header.u64(pk.num_public_wires as u64);
    let mut g1 = Payload::default();
    encode_point(&pk.beta_g1, &mut g1);
    encode_point(&pk.delta_g1, &mut g1);
    encode_point_vec(&pk.a_query, &mut g1);
    encode_point_vec(&pk.b_g1_query, &mut g1);
    encode_point_vec(&pk.l_query, &mut g1);
    encode_point_vec(&pk.h_query, &mut g1);
    let mut g2 = Payload::default();
    encode_point_vec(&pk.b_g2_query, &mut g2);
    let (vk_g1, vk_g2) = encode_vk(&pk.vk);
    let mut container = Container::new(MAGIC_ZKEY);
    container.push_section(SEC_HEADER, header.0);
    container.push_section(SEC_G1, g1.0);
    container.push_section(SEC_G2, g2.0);
    container.push_section(SEC_G1 + 100, vk_g1.0);
    container.push_section(SEC_G2 + 100, vk_g2.0);
    container.write_to(w)
}

/// Reads a `.zkey` container.
///
/// # Errors
///
/// [`FormatError`] on malformed input (every point is curve-checked).
pub fn read_zkey<E: Engine>(r: &mut impl Read) -> Result<ProvingKey<E>, FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let _g = trace::region_profile("file_io");
    let container = Container::read_from(r, MAGIC_ZKEY)?;
    let mut h = Cursor::new(container.section(SEC_HEADER)?);
    let domain_size = h.u64()? as usize;
    let num_public_wires = h.u64()? as usize;
    // The prover trusts these header fields for domain construction and
    // witness slicing; a tampered value must die here as a format error.
    if domain_size == 0 || !domain_size.is_power_of_two() || domain_size > (1 << 30) {
        return Err(FormatError::Corrupt("invalid zkey domain size"));
    }
    if num_public_wires > (1 << 30) {
        return Err(FormatError::Corrupt("invalid zkey public wire count"));
    }
    let mut c1 = Cursor::new(container.section(SEC_G1)?);
    let beta_g1 = decode_point(&mut c1)?;
    let delta_g1 = decode_point(&mut c1)?;
    let a_query = decode_point_vec(&mut c1)?;
    let b_g1_query = decode_point_vec(&mut c1)?;
    let l_query = decode_point_vec(&mut c1)?;
    let h_query = decode_point_vec(&mut c1)?;
    let mut c2 = Cursor::new(container.section(SEC_G2)?);
    let b_g2_query = decode_point_vec(&mut c2)?;
    let vk = decode_vk::<E>(
        container.section(SEC_G1 + 100)?,
        container.section(SEC_G2 + 100)?,
    )?;
    if num_public_wires > a_query.len() {
        return Err(FormatError::Corrupt("public wires exceed a_query length"));
    }
    Ok(ProvingKey {
        vk,
        beta_g1,
        delta_g1,
        a_query,
        b_g1_query,
        b_g2_query,
        l_query,
        h_query,
        domain_size,
        num_public_wires,
    })
}

/// Writes a proof as a `.proof` container.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_proof<E: Engine>(w: &mut impl Write, proof: &Proof<E>) -> Result<(), FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let mut body = Payload::default();
    encode_point(&proof.a, &mut body);
    encode_point(&proof.c, &mut body);
    let mut g2 = Payload::default();
    encode_point(&proof.b, &mut g2);
    let mut container = Container::new(MAGIC_PROOF);
    container.push_section(SEC_G1, body.0);
    container.push_section(SEC_G2, g2.0);
    container.write_to(w)
}

/// Reads a `.proof` container (points are curve-checked).
///
/// # Errors
///
/// [`FormatError`] on malformed input.
pub fn read_proof<E: Engine>(r: &mut impl Read) -> Result<Proof<E>, FormatError>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    let container = Container::read_from(r, MAGIC_PROOF)?;
    let mut c1 = Cursor::new(container.section(SEC_G1)?);
    let a = decode_point(&mut c1)?;
    let c = decode_point(&mut c1)?;
    let mut c2 = Cursor::new(container.section(SEC_G2)?);
    let b = decode_point(&mut c2)?;
    Ok(Proof { a, b, c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;
    use zkperf_groth16::{prove, setup, verify};

    #[test]
    fn r1cs_roundtrip_preserves_satisfiability() {
        let circuit = exponentiate::<Fr>(8);
        let mut buf = Vec::new();
        write_r1cs(&mut buf, circuit.r1cs()).unwrap();
        let back: R1cs<Fr> = read_r1cs(&mut buf.as_slice()).unwrap();
        assert_eq!(&back, circuit.r1cs());
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        assert_eq!(back.check_satisfied(w.full()), Ok(()));
    }

    #[test]
    fn witness_roundtrip() {
        let circuit = exponentiate::<Fr>(5);
        let w = circuit.generate_witness(&[Fr::from_u64(4)], &[]).unwrap();
        let mut buf = Vec::new();
        write_witness(&mut buf, w.full()).unwrap();
        let back: Vec<Fr> = read_witness(&mut buf.as_slice()).unwrap();
        assert_eq!(back, w.full());
    }

    #[test]
    fn zkey_vkey_proof_roundtrip_and_verify() {
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &w, &mut rng).unwrap();

        let mut zkey = Vec::new();
        write_zkey(&mut zkey, &pk).unwrap();
        let pk2: ProvingKey<Bn254> = read_zkey(&mut zkey.as_slice()).unwrap();
        assert_eq!(pk2, pk);

        let mut vkey = Vec::new();
        write_vkey(&mut vkey, &pk.vk).unwrap();
        let vk2: VerifyingKey<Bn254> = read_vkey(&mut vkey.as_slice()).unwrap();
        let mut pbytes = Vec::new();
        write_proof(&mut pbytes, &proof).unwrap();
        let proof2: Proof<Bn254> = read_proof(&mut pbytes.as_slice()).unwrap();
        assert!(verify::<Bn254>(&vk2, &proof2, w.public()).unwrap());

        // A proof generated under the reloaded key verifies too.
        let proof3 = prove::<Bn254, _>(&pk2, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(verify::<Bn254>(&pk.vk, &proof3, w.public()).unwrap());
    }

    #[test]
    fn corrupt_files_are_rejected_not_misread() {
        let circuit = exponentiate::<Fr>(4);
        let mut buf = Vec::new();
        write_r1cs(&mut buf, circuit.r1cs()).unwrap();
        // Flip a byte inside the constraints section.
        let idx = buf.len() - 5;
        buf[idx] ^= 0xff;
        let result: Result<R1cs<Fr>, _> = read_r1cs(&mut buf.as_slice());
        // Either a decode error or a different-but-valid system; never a panic.
        if let Ok(sys) = result {
            let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
            let _ = sys.check_satisfied(w.full());
        }
        // Wrong magic for the format.
        assert!(matches!(
            read_witness::<Fr>(&mut buf.as_slice()),
            Err(FormatError::BadMagic { .. })
        ));
    }

    #[test]
    fn bls_curve_formats_roundtrip() {
        use zkperf_ec::Bls12_381;
        type Fr381 = zkperf_ff::bls12_381::Fr;
        let circuit = exponentiate::<Fr381>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bls12_381, _>(circuit.r1cs(), &mut rng).unwrap();
        let mut zkey = Vec::new();
        write_zkey(&mut zkey, &pk).unwrap();
        let pk2: ProvingKey<Bls12_381> = read_zkey(&mut zkey.as_slice()).unwrap();
        assert_eq!(pk2, pk);
    }
}
