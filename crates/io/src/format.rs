//! The sectioned binary container all zkperf file formats share.
//!
//! Layout (all integers little-endian, like the iden3 formats this
//! mirrors): a 4-byte magic, a `u32` version, a `u32` section count, then
//! per section a `u32` id, a `u64` byte length, a `u32` CRC32 of the
//! payload (format v2+), and the payload itself.
//!
//! Version 1 files (no per-section checksum) remain readable; writers
//! always emit version 2. A checksum mismatch surfaces as
//! [`FormatError::ChecksumMismatch`] before any payload is decoded, so
//! bit-level tampering is caught at the container layer rather than deep
//! inside a field or curve decoder.

use crate::checksum::crc32;
use std::io::{self, Read, Write};

/// Errors produced while reading a zkperf container.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match the expected file kind.
    BadMagic {
        /// Magic found in the file.
        found: [u8; 4],
        /// Magic the reader expected.
        expected: [u8; 4],
    },
    /// Unsupported container version.
    BadVersion(u32),
    /// A required section is missing.
    MissingSection(u32),
    /// A section's stored CRC32 does not match its payload.
    ChecksumMismatch {
        /// Section id whose payload failed verification.
        section: u32,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// A section payload was malformed.
    Corrupt(&'static str),
    /// A failure at a known byte offset within the file — the streamed
    /// reader path wraps its errors with the seekable location of the
    /// failing section so mid-stream corruption is diagnosable without
    /// re-reading the artifact.
    AtOffset {
        /// Byte offset (from the start of the file) of the failing
        /// section's payload.
        offset: u64,
        /// The underlying failure.
        inner: Box<FormatError>,
    },
}

impl FormatError {
    /// Wraps `self` with the byte offset where it was detected (idempotent:
    /// an already-located error keeps its original, innermost offset).
    pub fn at_offset(self, offset: u64) -> FormatError {
        match self {
            FormatError::AtOffset { .. } => self,
            other => FormatError::AtOffset {
                offset,
                inner: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:?}, expected {expected:?} (wrong file kind?)"
            ),
            FormatError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            FormatError::MissingSection(id) => write!(f, "missing required section {id}"),
            FormatError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section} checksum mismatch: stored {stored:#010x}, computed {computed:#010x} (file is corrupt or tampered)"
            ),
            FormatError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            FormatError::AtOffset { offset, inner } => {
                write!(f, "{inner} (at byte offset {offset})")
            }
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Container format version written by this crate (v2 adds per-section
/// CRC32 checksums).
pub const VERSION: u32 = 2;

/// Oldest container version this crate still reads.
pub const MIN_VERSION: u32 = 1;

/// Upper bound on sections per container; anything larger is treated as
/// corruption rather than an allocation request.
const MAX_SECTIONS: usize = 1024;

/// Upper bound on a single section payload (4 GiB mirrors the widest
/// artifact the paper sweep can produce, with margin).
const MAX_SECTION_LEN: u64 = 1 << 32;

/// An in-memory sectioned container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    magic: [u8; 4],
    sections: Vec<(u32, Vec<u8>)>,
}

impl Container {
    /// Starts an empty container with the given magic.
    pub fn new(magic: [u8; 4]) -> Self {
        Container {
            magic,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn push_section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// The payload of the first section with `id`.
    ///
    /// # Errors
    ///
    /// [`FormatError::MissingSection`] when absent.
    pub fn section(&self, id: u32) -> Result<&[u8], FormatError> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, p)| p.as_slice())
            .ok_or(FormatError::MissingSection(id))
    }

    /// Serializes the container.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), FormatError> {
        w.write_all(&self.magic)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (id, payload) in &self.sections {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(&crc32(payload).to_le_bytes())?;
            w.write_all(payload)?;
        }
        Ok(())
    }

    /// Parses a container, checking the magic and (for v2 files) every
    /// section checksum.
    ///
    /// # Errors
    ///
    /// [`FormatError`] on magic/version mismatch, truncated input, or a
    /// checksum failure.
    pub fn read_from(r: &mut impl Read, expected_magic: [u8; 4]) -> Result<Self, FormatError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != expected_magic {
            return Err(FormatError::BadMagic {
                found: magic,
                expected: expected_magic,
            });
        }
        let version = read_u32(r)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(FormatError::BadVersion(version));
        }
        let count = read_u32(r)? as usize;
        if count > MAX_SECTIONS {
            return Err(FormatError::Corrupt("unreasonable section count"));
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let id = read_u32(r)?;
            let len = read_u64(r)?;
            if len > MAX_SECTION_LEN {
                return Err(FormatError::Corrupt("unreasonable section length"));
            }
            let stored_crc = if version >= 2 { Some(read_u32(r)?) } else { None };
            let payload = read_payload(r, len as usize)?;
            if let Some(stored) = stored_crc {
                let computed = crc32(&payload);
                if stored != computed {
                    return Err(FormatError::ChecksumMismatch {
                        section: id,
                        stored,
                        computed,
                    });
                }
            }
            sections.push((id, payload));
        }
        Ok(Container { magic, sections })
    }
}

/// Reads exactly `len` bytes in bounded chunks, so a corrupt length
/// field on a short file fails fast instead of pre-allocating gigabytes.
fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, FormatError> {
    const CHUNK: usize = 64 * 1024;
    let mut payload = Vec::with_capacity(len.min(CHUNK));
    let mut buf = [0u8; CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        r.read_exact(&mut buf[..n])?;
        payload.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    Ok(payload)
}

pub(crate) fn read_u32(r: &mut impl Read) -> Result<u32, FormatError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> Result<u64, FormatError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A growable little-endian payload writer (section bodies are built with
/// it; it also appears in the [`crate::FieldCodec`] interface).
#[derive(Debug, Default)]
pub struct Payload(pub Vec<u8>);

impl Payload {
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

/// A cursor over a payload with bounds-checked primitive reads.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }
    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| FormatError::Corrupt("truncated section"))?;
        Ok(u32::from_le_bytes(b))
    }
    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| FormatError::Corrupt("truncated section"))?;
        Ok(u64::from_le_bytes(b))
    }
    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FormatError::Corrupt("length overflow"))?;
        if end > self.data.len() {
            return Err(FormatError::Corrupt("truncated section"));
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    /// Whether every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_roundtrip() {
        let mut c = Container::new(*b"test");
        c.push_section(1, vec![1, 2, 3]);
        c.push_section(7, vec![]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Container::read_from(&mut buf.as_slice(), *b"test").unwrap();
        assert_eq!(back, c);
        assert_eq!(back.section(1).unwrap(), &[1, 2, 3]);
        assert!(back.section(7).unwrap().is_empty());
        assert!(matches!(
            back.section(9),
            Err(FormatError::MissingSection(9))
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut c = Container::new(*b"aaaa");
        c.push_section(1, vec![5]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let err = Container::read_from(&mut buf.as_slice(), *b"bbbb").unwrap_err();
        assert!(matches!(err, FormatError::BadMagic { .. }));
    }

    #[test]
    fn truncation_is_an_error() {
        let mut c = Container::new(*b"test");
        c.push_section(1, vec![0u8; 100]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(Container::read_from(&mut buf.as_slice(), *b"test").is_err());
    }

    #[test]
    fn v1_files_without_checksums_still_read() {
        // Hand-assemble the version-1 layout: no per-section CRC.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"test");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version 1
        buf.extend_from_slice(&1u32.to_le_bytes()); // one section
        buf.extend_from_slice(&7u32.to_le_bytes()); // id
        buf.extend_from_slice(&3u64.to_le_bytes()); // len
        buf.extend_from_slice(&[9, 8, 7]);
        let c = Container::read_from(&mut buf.as_slice(), *b"test").unwrap();
        assert_eq!(c.section(7).unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"test");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Container::read_from(&mut buf.as_slice(), *b"test"),
            Err(FormatError::BadVersion(99))
        ));
    }

    #[test]
    fn payload_tampering_trips_the_checksum() {
        let mut c = Container::new(*b"test");
        c.push_section(3, (0u8..=255).collect());
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Flip one bit in the payload (the last byte of the file).
        let last = buf.len() - 1;
        buf[last] ^= 0x10;
        match Container::read_from(&mut buf.as_slice(), *b"test") {
            Err(FormatError::ChecksumMismatch { section: 3, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn huge_section_length_fails_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"test");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // id
        buf.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // absurd len
        buf.extend_from_slice(&0u32.to_le_bytes()); // crc
        assert!(Container::read_from(&mut buf.as_slice(), *b"test").is_err());
        // A merely-large (but in-cap) length against a short file must
        // error at the first missing chunk, not preallocate the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"test");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&((1u64 << 32) - 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(Container::read_from(&mut buf.as_slice(), *b"test").is_err());
    }

    #[test]
    fn cursor_bounds_checks() {
        let data = [1u8, 0, 0, 0, 9];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u32().unwrap(), 1);
        assert!(!c.finished());
        assert!(c.u32().is_err(), "only one byte left");
    }
}
