//! The sectioned binary container all zkperf file formats share.
//!
//! Layout (all integers little-endian, like the iden3 formats this
//! mirrors): a 4-byte magic, a `u32` version, a `u32` section count, then
//! per section a `u32` id, a `u64` byte length, and the payload.

use std::io::{self, Read, Write};

/// Errors produced while reading a zkperf container.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match the expected file kind.
    BadMagic {
        /// Magic found in the file.
        found: [u8; 4],
        /// Magic the reader expected.
        expected: [u8; 4],
    },
    /// Unsupported container version.
    BadVersion(u32),
    /// A required section is missing.
    MissingSection(u32),
    /// A section payload was malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:?}, expected {expected:?} (wrong file kind?)"
            ),
            FormatError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            FormatError::MissingSection(id) => write!(f, "missing required section {id}"),
            FormatError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Container format version written by this crate.
pub const VERSION: u32 = 1;

/// An in-memory sectioned container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    magic: [u8; 4],
    sections: Vec<(u32, Vec<u8>)>,
}

impl Container {
    /// Starts an empty container with the given magic.
    pub fn new(magic: [u8; 4]) -> Self {
        Container {
            magic,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn push_section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// The payload of the first section with `id`.
    ///
    /// # Errors
    ///
    /// [`FormatError::MissingSection`] when absent.
    pub fn section(&self, id: u32) -> Result<&[u8], FormatError> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, p)| p.as_slice())
            .ok_or(FormatError::MissingSection(id))
    }

    /// Serializes the container.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), FormatError> {
        w.write_all(&self.magic)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (id, payload) in &self.sections {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(payload)?;
        }
        Ok(())
    }

    /// Parses a container, checking the magic.
    ///
    /// # Errors
    ///
    /// [`FormatError`] on magic/version mismatch or truncated input.
    pub fn read_from(r: &mut impl Read, expected_magic: [u8; 4]) -> Result<Self, FormatError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != expected_magic {
            return Err(FormatError::BadMagic {
                found: magic,
                expected: expected_magic,
            });
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let count = read_u32(r)? as usize;
        if count > 1024 {
            return Err(FormatError::Corrupt("unreasonable section count"));
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let id = read_u32(r)?;
            let len = read_u64(r)? as usize;
            if len > (1 << 32) {
                return Err(FormatError::Corrupt("unreasonable section length"));
            }
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)?;
            sections.push((id, payload));
        }
        Ok(Container { magic, sections })
    }
}

pub(crate) fn read_u32(r: &mut impl Read) -> Result<u32, FormatError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> Result<u64, FormatError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A growable little-endian payload writer (section bodies are built with
/// it; it also appears in the [`crate::FieldCodec`] interface).
#[derive(Debug, Default)]
pub struct Payload(pub Vec<u8>);

impl Payload {
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

/// A cursor over a payload with bounds-checked primitive reads.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }
    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`FormatError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.data.len() {
            return Err(FormatError::Corrupt("truncated section"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    /// Whether every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_roundtrip() {
        let mut c = Container::new(*b"test");
        c.push_section(1, vec![1, 2, 3]);
        c.push_section(7, vec![]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Container::read_from(&mut buf.as_slice(), *b"test").unwrap();
        assert_eq!(back, c);
        assert_eq!(back.section(1).unwrap(), &[1, 2, 3]);
        assert!(back.section(7).unwrap().is_empty());
        assert!(matches!(
            back.section(9),
            Err(FormatError::MissingSection(9))
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut c = Container::new(*b"aaaa");
        c.push_section(1, vec![5]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let err = Container::read_from(&mut buf.as_slice(), *b"bbbb").unwrap_err();
        assert!(matches!(err, FormatError::BadMagic { .. }));
    }

    #[test]
    fn truncation_is_an_error() {
        let mut c = Container::new(*b"test");
        c.push_section(1, vec![0u8; 100]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(Container::read_from(&mut buf.as_slice(), *b"test").is_err());
    }

    #[test]
    fn cursor_bounds_checks() {
        let data = [1u8, 0, 0, 0, 9];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u32().unwrap(), 1);
        assert!(!c.finished());
        assert!(c.u32().is_err(), "only one byte left");
    }
}
