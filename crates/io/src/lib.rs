#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Sectioned binary file formats for the zkperf toolchain — the equivalents
//! of snarkjs/circom's `.r1cs`, `.wtns`, `.zkey` and proof files.
//!
//! Every reader validates its input: magics and versions are checked,
//! section payloads are bounds-checked, field elements must be canonical,
//! and every curve point is checked for curve membership, so corrupt or
//! adversarial files surface as [`FormatError`]s rather than bad crypto.
//!
//! # Examples
//!
//! ```
//! use zkperf_circuit::library::exponentiate;
//! use zkperf_ff::bn254::Fr;
//! use zkperf_io::{read_r1cs, write_r1cs};
//!
//! let circuit = exponentiate::<Fr>(4);
//! let mut bytes = Vec::new();
//! write_r1cs(&mut bytes, circuit.r1cs())?;
//! let back = read_r1cs::<Fr>(&mut bytes.as_slice())?;
//! assert_eq!(&back, circuit.r1cs());
//! # Ok::<(), zkperf_io::FormatError>(())
//! ```

pub mod checksum;
mod artifact;
mod codec;
mod files;
mod format;
mod stream;

pub use artifact::{
    read_container_file, read_proof_file, read_r1cs_file, read_vkey_file, read_zkey_file,
    write_container_file, write_proof_file, write_r1cs_file, write_vkey_file, write_zkey_file,
    ArtifactError,
};
pub use checksum::crc32;
pub use codec::{decode_point_compressed, encode_point_compressed, FieldCodec};
pub use files::{
    read_proof, read_r1cs, read_vkey, read_witness, read_zkey, write_proof, write_r1cs,
    write_vkey, write_witness, write_zkey,
};
pub use format::{Container, Cursor, FormatError, Payload, MIN_VERSION, VERSION};
pub use stream::{StreamedZkeyReader, StreamedZkeyWriter, MAGIC_ZKEY_STREAM};
