//! The streamed `.zkey`: a chunked, seekable proving-key container that
//! is never resident in full.
//!
//! Same wire conventions as every other zkperf artifact — the v2
//! sectioned container of [`crate::format`] (magic, version, section
//! count, then `(id, len, crc32, payload)` records) — but written
//! incrementally by [`StreamedZkeyWriter`] as setup emits chunks, and
//! read back by [`StreamedZkeyReader`] one chunk at a time with the
//! per-section CRC32 doubling as the per-chunk checksum. Each query
//! vector is split into `chunk_points`-sized chunks, one section per
//! chunk, so the reader's working set is a single chunk regardless of
//! key size.
//!
//! Section ids encode `(query tag << 24) | chunk index`; the section
//! count is fully determined by the header (query lengths + chunk size),
//! which is what lets the writer emit the count up front and stream the
//! rest with a plain sequential `Write`.
//!
//! Failures carry their location: a chunk that fails its checksum, comes
//! up short, or decodes to the wrong point count surfaces a
//! [`StreamError`] with the payload's byte offset (wrapped from
//! [`FormatError::AtOffset`]), so mid-stream corruption is reported as a
//! typed artifact error pointing at the exact section — never a panic or
//! a silent truncation.

use std::cell::RefCell;
use std::fs;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use zkperf_ec::{Affine, CurveParams, Engine};
use zkperf_groth16::{
    FixedParts, G1Chunks, G1Query, G2Chunks, QuerySink, QuerySource, StreamError, StreamHeader,
    VerifyingKey,
};
use zkperf_pool as pool;

use crate::artifact::ArtifactError;
use crate::checksum::crc32;
use crate::codec::{
    decode_point, decode_point_vec, encode_point, encode_point_vec, FieldCodec,
};
use crate::format::{read_u32, read_u64, Cursor, FormatError, Payload, MIN_VERSION, VERSION};

/// Magic of the streamed proving-key container.
pub const MAGIC_ZKEY_STREAM: [u8; 4] = *b"zkst";

/// Upper bound on one chunk section (a chunk is bounded by the streaming
/// planner, so anything near this is corruption).
const MAX_CHUNK_SECTION_LEN: u64 = 1 << 32;

/// Upper bound on total sections (≈ chunk count); 2^21 sections cover a
/// 2^30-point key at the minimum chunk size, with margin.
const MAX_STREAM_SECTIONS: usize = 1 << 21;

const TAG_HEADER: u32 = 0;
const TAG_A: u32 = 1;
const TAG_B_G1: u32 = 2;
const TAG_L: u32 = 3;
const TAG_H: u32 = 4;
const TAG_G2: u32 = 5;
const TAG_FIXED: u32 = 6;

fn g1_tag(q: G1Query) -> u32 {
    match q {
        G1Query::A => TAG_A,
        G1Query::BG1 => TAG_B_G1,
        G1Query::L => TAG_L,
        G1Query::H => TAG_H,
    }
}

fn sec_id(tag: u32, index: usize) -> u32 {
    (tag << 24) | index as u32
}

/// Lowers a located [`FormatError`] into the transport error the
/// `groth16` streaming traits carry.
fn stream_err(path: &Path, e: FormatError) -> StreamError {
    let (offset, inner) = match e {
        FormatError::AtOffset { offset, inner } => (Some(offset), *inner),
        other => (None, other),
    };
    StreamError {
        path: Some(path.display().to_string()),
        offset,
        detail: inner.to_string(),
    }
}

/// Points expected in chunk `index` of a query of `len` points.
fn chunk_len(len: usize, chunk_points: usize, index: usize) -> usize {
    let start = index * chunk_points;
    chunk_points.min(len.saturating_sub(start))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Incremental writer for the streamed `.zkey`; the [`QuerySink`]
/// `zkperf_groth16::setup_streamed` drives. Writes to a `.tmp` sibling
/// and renames into place on [`QuerySink::finish`], so a crashed setup
/// never leaves a half-written key that later reads as corruption.
pub struct StreamedZkeyWriter<E: Engine> {
    path: PathBuf,
    tmp: PathBuf,
    out: Option<BufWriter<fs::File>>,
    header: Option<StreamHeader>,
    emitted: [usize; 5], // chunks written per tag (A, BG1, L, H, G2)
    finished: bool,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Engine> StreamedZkeyWriter<E> {
    /// Opens the temporary sibling of `path` for writing.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] carrying `path` when the file cannot be created.
    pub fn create(path: impl Into<PathBuf>) -> Result<StreamedZkeyWriter<E>, ArtifactError> {
        let path = path.into();
        let tmp = path.with_extension("tmp");
        let file = fs::File::create(&tmp).map_err(|e| ArtifactError {
            path: path.clone(),
            error: FormatError::Io(e),
        })?;
        Ok(StreamedZkeyWriter {
            path,
            tmp,
            out: Some(BufWriter::new(file)),
            header: None,
            emitted: [0; 5],
            finished: false,
            _marker: std::marker::PhantomData,
        })
    }

    fn fail(&self, detail: impl Into<String>) -> StreamError {
        StreamError {
            path: Some(self.path.display().to_string()),
            offset: None,
            detail: detail.into(),
        }
    }

    fn io_err(&self, e: std::io::Error) -> StreamError {
        stream_err(&self.path, FormatError::Io(e))
    }

    fn writer(&mut self) -> Result<&mut BufWriter<fs::File>, StreamError> {
        match self.out.as_mut() {
            Some(w) => Ok(w),
            None => Err(StreamError {
                path: Some(self.path.display().to_string()),
                offset: None,
                detail: "write after finish".into(),
            }),
        }
    }

    fn write_section(&mut self, id: u32, payload: &[u8]) -> Result<(), StreamError> {
        let crc = crc32(payload);
        let len = payload.len() as u64;
        let path = self.path.display().to_string();
        let w = self.writer()?;
        let res = (|| {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&len.to_le_bytes())?;
            w.write_all(&crc.to_le_bytes())?;
            w.write_all(payload)
        })();
        res.map_err(|e| StreamError {
            path: Some(path),
            offset: None,
            detail: format!("i/o error: {e}"),
        })?;
        pool::mem::add_streamed_bytes(payload.len() as u64);
        Ok(())
    }

    /// The expected chunk emission for tag slot `slot` given the header.
    fn expected_chunks(header: &StreamHeader, slot: usize) -> usize {
        match slot {
            0 => header.chunks_of(header.g1_len(G1Query::A)),
            1 => header.chunks_of(header.g1_len(G1Query::BG1)),
            2 => header.chunks_of(header.g1_len(G1Query::L)),
            3 => header.chunks_of(header.g1_len(G1Query::H)),
            _ => header.chunks_of(header.g2_len()),
        }
    }

    fn push_chunk(&mut self, slot: usize, tag: u32, query_len: usize, got: usize, payload: &[u8]) -> Result<(), StreamError> {
        let header = match self.header {
            Some(h) => h,
            None => return Err(self.fail("chunk before begin")),
        };
        let index = self.emitted[slot];
        if index >= Self::expected_chunks(&header, slot) {
            return Err(self.fail(format!("too many chunks for tag {tag}")));
        }
        let expect = chunk_len(query_len, header.chunk_points, index);
        if got != expect {
            return Err(self.fail(format!(
                "chunk {index} of tag {tag} has {got} points, expected {expect}"
            )));
        }
        self.write_section(sec_id(tag, index), payload)?;
        self.emitted[slot] += 1;
        Ok(())
    }
}

impl<E: Engine> QuerySink<E> for StreamedZkeyWriter<E>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    fn begin(&mut self, header: &StreamHeader) -> Result<(), StreamError> {
        if self.header.is_some() {
            return Err(self.fail("begin called twice"));
        }
        if header.chunk_points == 0 {
            return Err(self.fail("zero chunk size"));
        }
        self.header = Some(*header);
        let total_sections = 2 // header + fixed
            + (0..5).map(|s| Self::expected_chunks(header, s)).sum::<usize>();
        let mut head = Payload::default();
        head.u64(header.num_wires as u64);
        head.u64(header.num_public_wires as u64);
        head.u64(header.domain_size as u64);
        head.u64(header.chunk_points as u64);
        let path = self.path.display().to_string();
        {
            let w = self.writer()?;
            let res = (|| {
                w.write_all(&MAGIC_ZKEY_STREAM)?;
                w.write_all(&VERSION.to_le_bytes())?;
                w.write_all(&(total_sections as u32).to_le_bytes())
            })();
            res.map_err(|e| StreamError {
                path: Some(path),
                offset: None,
                detail: format!("i/o error: {e}"),
            })?;
        }
        self.write_section(sec_id(TAG_HEADER, 0), &head.0)
    }

    fn g1_chunk(&mut self, q: G1Query, pts: &[Affine<E::G1>]) -> Result<(), StreamError> {
        let header = match self.header {
            Some(h) => h,
            None => return Err(self.fail("chunk before begin")),
        };
        let mut payload = Payload::default();
        encode_point_vec(pts, &mut payload);
        let slot = (g1_tag(q) - 1) as usize;
        self.push_chunk(slot, g1_tag(q), header.g1_len(q), pts.len(), &payload.0)
    }

    fn g2_chunk(&mut self, pts: &[Affine<E::G2>]) -> Result<(), StreamError> {
        let header = match self.header {
            Some(h) => h,
            None => return Err(self.fail("chunk before begin")),
        };
        let mut payload = Payload::default();
        encode_point_vec(pts, &mut payload);
        self.push_chunk(4, TAG_G2, header.g2_len(), pts.len(), &payload.0)
    }

    fn finish(&mut self, fixed: &FixedParts<E>) -> Result<(), StreamError> {
        let header = match self.header {
            Some(h) => h,
            None => return Err(self.fail("finish before begin")),
        };
        for slot in 0..5 {
            let want = Self::expected_chunks(&header, slot);
            if self.emitted[slot] != want {
                return Err(self.fail(format!(
                    "query slot {slot} incomplete: {} of {want} chunks",
                    self.emitted[slot]
                )));
            }
        }
        let mut payload = Payload::default();
        encode_point(&fixed.beta_g1, &mut payload);
        encode_point(&fixed.delta_g1, &mut payload);
        encode_point(&fixed.vk.alpha_g1, &mut payload);
        encode_point(&fixed.vk.beta_g2, &mut payload);
        encode_point(&fixed.vk.gamma_g2, &mut payload);
        encode_point(&fixed.vk.delta_g2, &mut payload);
        encode_point_vec(&fixed.vk.ic, &mut payload);
        self.write_section(sec_id(TAG_FIXED, 0), &payload.0)?;
        let mut w = match self.out.take() {
            Some(w) => w,
            None => return Err(self.fail("finish called twice")),
        };
        w.flush().map_err(|e| self.io_err(e))?;
        drop(w);
        fs::rename(&self.tmp, &self.path).map_err(|e| self.io_err(e))?;
        self.finished = true;
        Ok(())
    }
}

impl<E: Engine> Drop for StreamedZkeyWriter<E> {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One section's location in the file, from the open-time scan.
#[derive(Debug, Clone, Copy)]
struct SectionAt {
    /// Byte offset of the payload (after the 16-byte section header).
    offset: u64,
    len: u64,
    crc: u32,
}

/// Seekable chunk reader over a streamed `.zkey`; the [`QuerySource`]
/// `zkperf_groth16::prove_streamed` consumes.
///
/// Opening scans the section table once (seeking over payloads, reading
/// none of them) and decodes only the small header and fixed sections;
/// query chunks are read, checksum-verified, and decoded on demand as the
/// prover's chunk iterators advance, so peak residency is one chunk.
pub struct StreamedZkeyReader<E: Engine> {
    path: PathBuf,
    file: RefCell<fs::File>,
    header: StreamHeader,
    sections: std::collections::BTreeMap<u32, SectionAt>,
    fixed: FixedParts<E>,
}

impl<E: Engine> std::fmt::Debug for StreamedZkeyReader<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamedZkeyReader")
            .field("path", &self.path)
            .field("header", &self.header)
            .field("sections", &self.sections.len())
            .finish_non_exhaustive()
    }
}

impl<E: Engine> StreamedZkeyReader<E>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    /// Opens and indexes `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] carrying `path`: magic/version mismatch, a
    /// truncated or oversized section table, a missing section, or a
    /// corrupt header/fixed payload. Chunk payloads are *not* validated
    /// here — their checksums are verified as they stream.
    pub fn open(path: impl Into<PathBuf>) -> Result<StreamedZkeyReader<E>, ArtifactError> {
        let path = path.into();
        let wrap = |error: FormatError| ArtifactError { path: path.clone(), error };
        let mut file = fs::File::open(&path)
            .map_err(|e| wrap(FormatError::Io(e)))?;

        let mut magic = [0u8; 4];
        file.read_exact(&mut magic).map_err(|e| wrap(FormatError::Io(e)))?;
        if magic != MAGIC_ZKEY_STREAM {
            return Err(wrap(FormatError::BadMagic {
                found: magic,
                expected: MAGIC_ZKEY_STREAM,
            }));
        }
        let version = read_u32(&mut file).map_err(wrap)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(wrap(FormatError::BadVersion(version)));
        }
        let count = read_u32(&mut file).map_err(wrap)? as usize;
        if count > MAX_STREAM_SECTIONS {
            return Err(wrap(FormatError::Corrupt("unreasonable section count")));
        }

        // Scan the table: record (id → offset, len, crc), seek past every
        // payload. A zero-length or oversized section is typed corruption
        // located at its own header.
        let mut sections = std::collections::BTreeMap::new();
        let mut pos = 12u64; // magic + version + count
        for _ in 0..count {
            let sec_header_at = pos;
            let id = read_u32(&mut file).map_err(|e| wrap(e.at_offset(sec_header_at)))?;
            let len = read_u64(&mut file).map_err(|e| wrap(e.at_offset(sec_header_at)))?;
            let crc = read_u32(&mut file).map_err(|e| wrap(e.at_offset(sec_header_at)))?;
            let payload_at = pos + 16;
            if len > MAX_CHUNK_SECTION_LEN {
                return Err(wrap(
                    FormatError::Corrupt("unreasonable section length").at_offset(sec_header_at),
                ));
            }
            if len == 0 {
                return Err(wrap(
                    FormatError::Corrupt("zero-length section").at_offset(sec_header_at),
                ));
            }
            if sections.insert(id, SectionAt { offset: payload_at, len, crc }).is_some() {
                return Err(wrap(
                    FormatError::Corrupt("duplicate section id").at_offset(sec_header_at),
                ));
            }
            pos = payload_at + len;
            file.seek(SeekFrom::Start(pos)).map_err(|e| wrap(FormatError::Io(e)))?;
        }
        // The seek past the last payload succeeds even beyond EOF; probe
        // one byte so a truncated final section fails at open, typed.
        let end = file.seek(SeekFrom::End(0)).map_err(|e| wrap(FormatError::Io(e)))?;
        if end < pos {
            return Err(wrap(
                FormatError::Corrupt("truncated final section").at_offset(end),
            ));
        }

        let read_verified = |file: &mut fs::File, at: &SectionAt, what: u32| -> Result<Vec<u8>, FormatError> {
            file.seek(SeekFrom::Start(at.offset)).map_err(FormatError::Io)?;
            let mut buf = vec![0u8; at.len as usize];
            file.read_exact(&mut buf)
                .map_err(|e| FormatError::Io(e).at_offset(at.offset))?;
            let computed = crc32(&buf);
            if computed != at.crc {
                return Err(FormatError::ChecksumMismatch {
                    section: what,
                    stored: at.crc,
                    computed,
                }
                .at_offset(at.offset));
            }
            Ok(buf)
        };

        // Header section.
        let head_id = sec_id(TAG_HEADER, 0);
        let head_at = *sections
            .get(&head_id)
            .ok_or_else(|| wrap(FormatError::MissingSection(head_id)))?;
        let head = read_verified(&mut file, &head_at, head_id).map_err(&wrap)?;
        let mut cur = Cursor::new(&head);
        let header = (|| -> Result<StreamHeader, FormatError> {
            let num_wires = cur.u64()? as usize;
            let num_public_wires = cur.u64()? as usize;
            let domain_size = cur.u64()? as usize;
            let chunk_points = cur.u64()? as usize;
            if chunk_points == 0 {
                return Err(FormatError::Corrupt("zero chunk size"));
            }
            if num_public_wires > num_wires {
                return Err(FormatError::Corrupt("public wires exceed wires"));
            }
            if !domain_size.is_power_of_two() || domain_size > (1 << 30) {
                return Err(FormatError::Corrupt("bad domain size"));
            }
            Ok(StreamHeader { num_wires, num_public_wires, domain_size, chunk_points })
        })()
        .map_err(|e| wrap(e.at_offset(head_at.offset)))?;

        // Every expected chunk section must exist (a missing one would
        // otherwise silently truncate the query it belongs to).
        for q in zkperf_groth16::G1_QUERIES {
            let n = header.chunks_of(header.g1_len(q));
            for i in 0..n {
                let id = sec_id(g1_tag(q), i);
                if !sections.contains_key(&id) {
                    return Err(wrap(FormatError::MissingSection(id)));
                }
            }
        }
        for i in 0..header.chunks_of(header.g2_len()) {
            let id = sec_id(TAG_G2, i);
            if !sections.contains_key(&id) {
                return Err(wrap(FormatError::MissingSection(id)));
            }
        }

        // Fixed section.
        let fixed_id = sec_id(TAG_FIXED, 0);
        let fixed_at = *sections
            .get(&fixed_id)
            .ok_or_else(|| wrap(FormatError::MissingSection(fixed_id)))?;
        let raw = read_verified(&mut file, &fixed_at, fixed_id).map_err(&wrap)?;
        let mut cur = Cursor::new(&raw);
        let fixed = (|| -> Result<FixedParts<E>, FormatError> {
            let beta_g1 = decode_point::<E::G1>(&mut cur)?;
            let delta_g1 = decode_point::<E::G1>(&mut cur)?;
            let alpha_g1 = decode_point::<E::G1>(&mut cur)?;
            let beta_g2 = decode_point::<E::G2>(&mut cur)?;
            let gamma_g2 = decode_point::<E::G2>(&mut cur)?;
            let delta_g2 = decode_point::<E::G2>(&mut cur)?;
            let ic = decode_point_vec::<E::G1>(&mut cur)?;
            if !cur.finished() {
                return Err(FormatError::Corrupt("trailing bytes in fixed section"));
            }
            if ic.len() != header.num_public_wires {
                return Err(FormatError::Corrupt("ic length disagrees with header"));
            }
            Ok(FixedParts {
                beta_g1,
                delta_g1,
                vk: VerifyingKey { alpha_g1, beta_g2, gamma_g2, delta_g2, ic },
            })
        })()
        .map_err(|e| wrap(e.at_offset(fixed_at.offset)))?;

        Ok(StreamedZkeyReader {
            path,
            file: RefCell::new(file),
            header,
            sections,
            fixed,
        })
    }

    /// The indexed shape (also available through [`QuerySource`]).
    pub fn stream_header(&self) -> StreamHeader {
        self.header
    }

    /// Reads and checksum-verifies one chunk section's raw payload.
    fn read_chunk_section(&self, tag: u32, index: usize) -> Result<(Vec<u8>, u64), StreamError> {
        let id = sec_id(tag, index);
        let at = *self
            .sections
            .get(&id)
            .ok_or_else(|| stream_err(&self.path, FormatError::MissingSection(id)))?;
        let mut file = self.file.borrow_mut();
        let located = |e: FormatError| stream_err(&self.path, e.at_offset(at.offset));
        file.seek(SeekFrom::Start(at.offset)).map_err(|e| located(FormatError::Io(e)))?;
        let mut buf = vec![0u8; at.len as usize];
        file.read_exact(&mut buf).map_err(|e| located(FormatError::Io(e)))?;
        let computed = crc32(&buf);
        if computed != at.crc {
            return Err(located(FormatError::ChecksumMismatch {
                section: id,
                stored: at.crc,
                computed,
            }));
        }
        pool::mem::add_streamed_bytes(at.len);
        Ok((buf, at.offset))
    }

    fn g1_chunk(&self, q: G1Query, index: usize) -> Result<Vec<Affine<E::G1>>, StreamError> {
        let len = self.header.g1_len(q);
        let (buf, offset) = self.read_chunk_section(g1_tag(q), index)?;
        let located = |e: FormatError| stream_err(&self.path, e.at_offset(offset));
        let mut cur = Cursor::new(&buf);
        let pts = decode_point_vec::<E::G1>(&mut cur).map_err(located)?;
        let expect = chunk_len(len, self.header.chunk_points, index);
        if pts.len() != expect || !cur.finished() {
            return Err(located(FormatError::Corrupt("chunk point count mismatch")));
        }
        Ok(pts)
    }

    fn g2_chunk(&self, index: usize) -> Result<Vec<Affine<E::G2>>, StreamError> {
        let len = self.header.g2_len();
        let (buf, offset) = self.read_chunk_section(TAG_G2, index)?;
        let located = |e: FormatError| stream_err(&self.path, e.at_offset(offset));
        let mut cur = Cursor::new(&buf);
        let pts = decode_point_vec::<E::G2>(&mut cur).map_err(located)?;
        let expect = chunk_len(len, self.header.chunk_points, index);
        if pts.len() != expect || !cur.finished() {
            return Err(located(FormatError::Corrupt("chunk point count mismatch")));
        }
        Ok(pts)
    }
}

impl<E: Engine> QuerySource<E> for StreamedZkeyReader<E>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    fn header(&self) -> StreamHeader {
        self.header
    }

    fn fixed(&self) -> Result<FixedParts<E>, StreamError> {
        Ok(self.fixed.clone())
    }

    fn g1_chunks(&self, q: G1Query) -> G1Chunks<'_, E> {
        let n = self.header.chunks_of(self.header.g1_len(q));
        Box::new((0..n).map(move |i| self.g1_chunk(q, i)))
    }

    fn g2_chunks(&self) -> G2Chunks<'_, E> {
        let n = self.header.chunks_of(self.header.g2_len());
        Box::new((0..n).map(move |i| self.g2_chunk(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;
    use zkperf_groth16::{prove, prove_streamed, setup, setup_streamed, MemorySink};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zkperf-stream-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_fixture(dir: &Path, chunk: usize, constraints: usize) -> PathBuf {
        let circuit = exponentiate::<Fr>(constraints);
        let mut rng = zkperf_ff::test_rng();
        let path = dir.join(format!("k{chunk}.zks"));
        let mut w = StreamedZkeyWriter::<Bn254>::create(&path).unwrap();
        setup_streamed(circuit.r1cs(), &mut rng, chunk, &mut w).unwrap();
        path
    }

    #[test]
    fn roundtrip_prove_matches_resident_including_partial_final_chunk() {
        let dir = tmp_dir("roundtrip");
        let circuit = exponentiate::<Fr>(45); // 47 wires: not a chunk multiple
        let mut rng = zkperf_ff::test_rng();
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(5)], &[]).unwrap();
        let mut rng = zkperf_ff::test_rng();
        let reference = prove(&pk, circuit.r1cs(), &w, &mut rng).unwrap();

        for chunk in [1usize, 13, 1 << 12] {
            let path = write_fixture(&dir, chunk, 45);
            let reader = StreamedZkeyReader::<Bn254>::open(&path).unwrap();
            assert_eq!(reader.stream_header().chunk_points, chunk);
            let mut rng = zkperf_ff::test_rng();
            let streamed = prove_streamed(&reader, circuit.r1cs(), &w, &mut rng).unwrap();
            assert_eq!(streamed, reference, "chunk = {chunk}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_file_reassembles_to_the_resident_key() {
        let dir = tmp_dir("reassemble");
        let circuit = exponentiate::<Fr>(20);
        let mut rng = zkperf_ff::test_rng();
        let resident = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let path = write_fixture(&dir, 7, 20);
        let reader = StreamedZkeyReader::<Bn254>::open(&path).unwrap();

        // Drain the reader through a MemorySink — the key must reassemble
        // byte-identically.
        let mut sink = MemorySink::<Bn254>::new();
        use zkperf_groth16::{QuerySink, QuerySource, G1_QUERIES};
        sink.begin(&reader.header()).unwrap();
        for q in G1_QUERIES {
            for chunk in reader.g1_chunks(q) {
                sink.g1_chunk(q, &chunk.unwrap()).unwrap();
            }
        }
        for chunk in reader.g2_chunks() {
            sink.g2_chunk(&chunk.unwrap()).unwrap();
        }
        sink.finish(&reader.fixed().unwrap()).unwrap();
        assert_eq!(sink.into_proving_key().unwrap(), resident);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_stream_checksum_failure_is_typed_with_byte_offset() {
        let dir = tmp_dir("crc");
        let path = write_fixture(&dir, 5, 30);

        // Corrupt one byte inside the H query's second chunk payload.
        let reader = StreamedZkeyReader::<Bn254>::open(&path).unwrap();
        let at = reader.sections[&sec_id(TAG_H, 1)];
        drop(reader);
        let mut bytes = fs::read(&path).unwrap();
        bytes[at.offset as usize + 3] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        // Open succeeds (chunks are lazily verified)…
        let reader = StreamedZkeyReader::<Bn254>::open(&path).unwrap();
        // …the first chunk still reads clean…
        let mut chunks = reader.g1_chunks(G1Query::H);
        assert!(chunks.next().unwrap().is_ok());
        // …and the corrupt one surfaces typed, with the payload offset.
        let err = chunks.next().unwrap().unwrap_err();
        assert_eq!(err.offset, Some(at.offset));
        assert!(err.detail.contains("checksum mismatch"), "{}", err.detail);
        assert!(err.to_string().contains(&format!("byte offset {}", at.offset)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_section_is_typed_corruption_at_open() {
        let dir = tmp_dir("zero");
        let path = write_fixture(&dir, 9, 12);
        let reader = StreamedZkeyReader::<Bn254>::open(&path).unwrap();
        let at = reader.sections[&sec_id(TAG_A, 0)];
        drop(reader);
        let sec_header_at = at.offset as usize - 16;
        let mut bytes = fs::read(&path).unwrap();
        // Zero the section's length field (bytes 4..12 of its header) and
        // splice out its payload so the table stays aligned.
        bytes[sec_header_at + 4..sec_header_at + 12].fill(0);
        bytes.drain(at.offset as usize..at.offset as usize + at.len as usize);
        fs::write(&path, &bytes).unwrap();

        let err = StreamedZkeyReader::<Bn254>::open(&path).unwrap_err();
        assert!(err.is_corruption());
        let msg = err.to_string();
        assert!(msg.contains("zero-length section"), "{msg}");
        assert!(msg.contains(&format!("byte offset {sec_header_at}")), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_missing_sections_are_typed() {
        let dir = tmp_dir("trunc");
        let path = write_fixture(&dir, 11, 25);
        let full = fs::read(&path).unwrap();

        // Truncated mid-payload: typed corruption at open.
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let err = StreamedZkeyReader::<Bn254>::open(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");

        // Truncated section *count* (header claims more sections than
        // present): typed, not a panic.
        fs::write(&path, &full[..20]).unwrap();
        let err = StreamedZkeyReader::<Bn254>::open(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");

        // Wrong magic.
        let mut bad = full.clone();
        bad[0] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        let err = StreamedZkeyReader::<Bn254>::open(&path).unwrap_err();
        assert!(matches!(err.error, FormatError::BadMagic { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_enforces_chunk_contract_and_cleans_tmp() {
        let dir = tmp_dir("contract");
        let path = dir.join("bad.zks");
        {
            let mut w = StreamedZkeyWriter::<Bn254>::create(&path).unwrap();
            let header = StreamHeader {
                num_wires: 10,
                num_public_wires: 2,
                domain_size: 8,
                chunk_points: 4,
            };
            QuerySink::<Bn254>::begin(&mut w, &header).unwrap();
            // Wrong chunk length is rejected.
            let pts = vec![zkperf_ec::bn254::G1Affine::generator(); 3];
            let err = w.g1_chunk(G1Query::A, &pts).unwrap_err();
            assert!(err.detail.contains("expected 4"), "{}", err.detail);
            // Dropping without finish leaves no artifact…
        }
        assert!(!path.exists());
        // …and no temp file.
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
