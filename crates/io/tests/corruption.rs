//! Exhaustive single-byte corruption sweeps over the small artifacts.
//!
//! The robustness contract (DESIGN.md, "Failure model"): flipping any
//! single bit of any serialized artifact must surface a typed
//! [`FormatError`] from the reader — or, where the corrupt bytes still
//! parse, must never produce a *passing* verification. No input may
//! panic. Every read here runs under `catch_unwind` so a panic anywhere
//! in the decode path fails the test rather than aborting it.

use std::panic::{self, AssertUnwindSafe};

use rand::SeedableRng;
use zkperf_circuit::library::exponentiate;
use zkperf_ec::Bn254;
use zkperf_ff::bn254::Fr;
use zkperf_ff::Field;
use zkperf_groth16::{contribute, prove, setup, verify, Proof, VerifyingKey};
use zkperf_io::{
    read_proof, read_vkey, read_witness, write_proof, write_vkey, write_witness,
};

/// A tiny but complete pipeline: intact encodings of the three small
/// artifacts plus the decoded counterparts needed to cross-verify.
struct Fixture {
    wtns: Vec<u8>,
    vkey: Vec<u8>,
    proof: Vec<u8>,
    vk: VerifyingKey<Bn254>,
    pf: Proof<Bn254>,
    publics: Vec<Fr>,
}

fn fixture() -> Fixture {
    let circuit = exponentiate::<Fr>(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfacade);
    let mut pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
    contribute::<Bn254, _>(&mut pk, &mut rng);
    let witness = circuit
        .generate_witness(&[Fr::from_u64(3)], &[])
        .unwrap();
    let pf = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng).unwrap();
    assert!(
        verify::<Bn254>(&pk.vk, &pf, witness.public()).unwrap(),
        "the intact pipeline must verify before we corrupt it"
    );

    let mut wtns = Vec::new();
    let mut vkey = Vec::new();
    let mut proof = Vec::new();
    write_witness(&mut wtns, witness.full()).unwrap();
    write_vkey::<Bn254>(&mut vkey, &pk.vk).unwrap();
    write_proof::<Bn254>(&mut proof, &pf).unwrap();
    Fixture {
        wtns,
        vkey,
        proof,
        vk: pk.vk,
        pf,
        publics: witness.public().to_vec(),
    }
}

/// Runs `f` on every single-bit flip of `bytes` (all 8 bits of every
/// byte), catching panics. `f` returns `Err(why)` to flag a violation.
fn sweep_bit_flips(
    name: &str,
    bytes: &[u8],
    mut f: impl FnMut(&[u8]) -> Result<(), String>,
) {
    for offset in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut corrupt = bytes.to_vec();
            corrupt[offset] ^= 1 << bit;
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&corrupt)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(why)) => {
                    panic!("{name}: flip of byte {offset} bit {bit}: {why}")
                }
                Err(_) => panic!("{name}: flip of byte {offset} bit {bit} panicked"),
            }
        }
    }
}

/// Runs `f` on every proper prefix of `bytes`, catching panics.
fn sweep_truncations(
    name: &str,
    bytes: &[u8],
    mut f: impl FnMut(&[u8]) -> Result<(), String>,
) {
    for keep in 0..bytes.len() {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&bytes[..keep])));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(why)) => panic!("{name}: truncation to {keep} bytes: {why}"),
            Err(_) => panic!("{name}: truncation to {keep} bytes panicked"),
        }
    }
}

#[test]
fn every_witness_bit_flip_is_a_typed_error() {
    let fx = fixture();
    // The v2 container checksums its sections, so a single flipped bit
    // anywhere — header, payload or the checksum itself — must be caught.
    sweep_bit_flips("wtns", &fx.wtns, |bytes| {
        match read_witness::<Fr>(&mut &bytes[..]) {
            Err(_) => Ok(()),
            Ok(_) => Err("corrupt witness parsed cleanly".into()),
        }
    });
}

#[test]
fn every_vkey_bit_flip_errors_or_fails_verification() {
    let fx = fixture();
    sweep_bit_flips("vkey", &fx.vkey, |bytes| {
        match read_vkey::<Bn254>(&mut &bytes[..]) {
            Err(_) => Ok(()),
            // A clean parse of checksummed corrupt bytes would itself be
            // alarming; the hard line is that it must never *verify*.
            Ok(vk) => match verify::<Bn254>(&vk, &fx.pf, &fx.publics) {
                Ok(true) => Err("corrupt vkey verified the intact proof".into()),
                _ => Ok(()),
            },
        }
    });
}

#[test]
fn every_proof_bit_flip_errors_or_fails_verification() {
    let fx = fixture();
    sweep_bit_flips("proof", &fx.proof, |bytes| {
        match read_proof::<Bn254>(&mut &bytes[..]) {
            Err(_) => Ok(()),
            Ok(pf) => match verify::<Bn254>(&fx.vk, &pf, &fx.publics) {
                Ok(true) => Err("corrupt proof verified under the intact key".into()),
                _ => Ok(()),
            },
        }
    });
}

#[test]
fn every_truncation_is_a_typed_error() {
    let fx = fixture();
    for (name, bytes) in [
        ("wtns", &fx.wtns),
        ("vkey", &fx.vkey),
        ("proof", &fx.proof),
    ] {
        sweep_truncations(name, bytes, |prefix| {
            let failed = match name {
                "wtns" => read_witness::<Fr>(&mut &prefix[..]).is_err(),
                "vkey" => read_vkey::<Bn254>(&mut &prefix[..]).is_err(),
                _ => read_proof::<Bn254>(&mut &prefix[..]).is_err(),
            };
            if failed {
                Ok(())
            } else {
                Err("truncated artifact parsed cleanly".into())
            }
        });
    }
}
