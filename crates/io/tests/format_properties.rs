//! Property-based tests of the container format and file readers:
//! roundtrips under arbitrary payloads, and no panics on arbitrary bytes.

use proptest::prelude::*;

use zkperf_ff::bn254::Fr;
use zkperf_io::{read_proof, read_r1cs, read_vkey, read_witness, read_zkey, Container};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn container_roundtrips_arbitrary_sections(
        sections in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..200)),
            0..8,
        )
    ) {
        let mut c = Container::new(*b"prop");
        for (id, payload) in &sections {
            c.push_section(*id, payload.clone());
        }
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Container::read_from(&mut buf.as_slice(), *b"prop").unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn readers_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Every reader must fail gracefully (or, vanishingly unlikely,
        // parse) — never panic or loop.
        let _ = read_r1cs::<Fr>(&mut bytes.as_slice());
        let _ = read_witness::<Fr>(&mut bytes.as_slice());
        let _ = read_zkey::<zkperf_ec::Bn254>(&mut bytes.as_slice());
        let _ = read_vkey::<zkperf_ec::Bn254>(&mut bytes.as_slice());
        let _ = read_proof::<zkperf_ec::Bn254>(&mut bytes.as_slice());
    }

    #[test]
    fn readers_never_panic_on_truncated_valid_files(cut in 1usize..200) {
        let circuit = zkperf_circuit::library::exponentiate::<Fr>(4);
        let mut buf = Vec::new();
        zkperf_io::write_r1cs(&mut buf, circuit.r1cs()).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        buf.truncate(buf.len() - cut);
        prop_assert!(read_r1cs::<Fr>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn witness_files_roundtrip_random_values(
        limbs in proptest::collection::vec(any::<u64>(), 1..12)
    ) {
        use zkperf_ff::{BigUint, PrimeField};
        let values: Vec<Fr> = limbs
            .chunks(2)
            .map(|c| Fr::from_biguint(&BigUint::from_limbs(c)))
            .collect();
        let mut buf = Vec::new();
        zkperf_io::write_witness(&mut buf, &values).unwrap();
        let back = read_witness::<Fr>(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, values);
    }
}
