//! A gshare branch predictor with 2-bit saturating counters.

/// Branch predictor state.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `history_bits` bits of global history (the
    /// pattern table has `2^history_bits` two-bit counters).
    pub fn new(history_bits: u32) -> Self {
        assert!((1..=24).contains(&history_bits), "history bits out of range");
        BranchPredictor {
            table: vec![1; 1 << history_bits], // weakly not-taken
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Records the outcome of a branch at static site `site`; returns
    /// whether the predictor got it right.
    pub fn record(&mut self, site: u64, taken: bool) -> bool {
        let idx = ((site ^ self.history) & self.history_mask) as usize;
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        correct
    }

    /// Branches observed.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Branches mispredicted.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 when nothing was observed).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_branch() {
        let mut p = BranchPredictor::new(10);
        for _ in 0..1000 {
            p.record(42, true);
        }
        // After warmup the always-taken branch is predicted correctly.
        assert!(p.miss_rate() < 0.02, "rate {}", p.miss_rate());
    }

    #[test]
    fn learns_an_alternating_pattern() {
        let mut p = BranchPredictor::new(10);
        for i in 0..2000u32 {
            p.record(7, i % 2 == 0);
        }
        // gshare captures period-2 patterns through history.
        assert!(p.miss_rate() < 0.05, "rate {}", p.miss_rate());
    }

    #[test]
    fn random_branches_mispredict_heavily() {
        let mut p = BranchPredictor::new(12);
        let mut state = 0x12345678u64;
        for _ in 0..20000 {
            // xorshift pseudo-randomness.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            p.record(9, state & 1 == 1);
        }
        let rate = p.miss_rate();
        assert!(rate > 0.3, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn rejects_degenerate_history() {
        let _ = BranchPredictor::new(0);
    }
}
