//! Set-associative cache model with true-LRU replacement.

use crate::profile::CacheGeometry;

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in this cache.
    Hit,
    /// Missed; the line was filled.
    Miss,
}

/// One level of cache: tag arrays with per-set LRU ordering.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: usize,
    /// `ways[set]` is the tag list in MRU→LRU order.
    ways: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty (cold) cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        Cache {
            geometry,
            sets,
            ways: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accesses the line containing `addr`; fills it on a miss.
    pub fn access(&mut self, addr: usize) -> HitLevel {
        let line = (addr / self.geometry.line_bytes) as u64;
        let set = (line as usize) % self.sets;
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU.
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            self.hits += 1;
            HitLevel::Hit
        } else {
            ways.insert(0, line);
            if ways.len() > self.geometry.ways {
                ways.pop();
            }
            self.misses += 1;
            HitLevel::Miss
        }
    }

    /// Accesses every line the `bytes`-byte range touches; returns the
    /// number of missing lines.
    pub fn access_range(&mut self, addr: usize, bytes: usize) -> u64 {
        let first = addr / self.geometry.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.geometry.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if self.access(line * self.geometry.line_bytes) == HitLevel::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines = 256 B.
        Cache::new(CacheGeometry {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x0), HitLevel::Miss);
        assert_eq!(c.access(0x10), HitLevel::Hit, "same line");
        assert_eq!(c.access(0x40), HitLevel::Miss, "other set");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index: 0x0, 0x80, 0x100 map there.
        c.access(0x000); // line A
        c.access(0x080); // line B → set full (2 ways)
        c.access(0x000); // touch A → B becomes LRU
        c.access(0x100); // line C → evicts B
        assert_eq!(c.access(0x000), HitLevel::Hit, "A survived");
        assert_eq!(c.access(0x080), HitLevel::Miss, "B was evicted");
    }

    #[test]
    fn working_set_smaller_than_cache_always_hits_after_warmup() {
        let mut c = Cache::new(CacheGeometry {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
        });
        for pass in 0..3 {
            for addr in (0..2048).step_by(64) {
                let r = c.access(addr);
                if pass > 0 {
                    assert_eq!(r, HitLevel::Hit, "pass {pass} addr {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn access_range_counts_straddling_lines() {
        let mut c = tiny();
        // 100 bytes starting mid-line touches 3 lines.
        assert_eq!(c.access_range(0x20, 100), 3);
        assert_eq!(c.access_range(0x20, 100), 0, "warm now");
        assert_eq!(c.access_range(0x300, 0), 1, "zero-byte access touches one line");
    }
}
