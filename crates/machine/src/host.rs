//! Detection of the *host* machine's cache hierarchy.
//!
//! The simulator models the paper's three CPUs ([`CpuProfile`]), but the
//! kernels themselves run on whatever machine executes the binary. Cache-
//! aware tuning decisions (Pippenger window width, NTT blocking) must key
//! off the **host** hierarchy, never the simulated profile: the
//! characterization suite requires the op stream to be identical across
//! simulated CPUs, and the simulated geometry says nothing about where the
//! real buckets land.
//!
//! Linux exposes the hierarchy under
//! `/sys/devices/system/cpu/cpu0/cache/index*/`; the probe reads it once
//! per process and caches the result. When sysfs is absent (non-Linux,
//! containers with masked sysfs) the probe falls back to the paper's
//! mid-range machine (i5-11400: 512 KiB L2, 12 MiB LLC), which is a sane
//! default for the commodity parts the paper targets.

use std::sync::OnceLock;

use crate::profile::{CacheGeometry, CpuProfile};

/// The host's data-cache hierarchy, as relevant to kernel tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCaches {
    /// Unified (or data) per-core L2.
    pub l2: CacheGeometry,
    /// Last-level cache shared across cores.
    pub llc: CacheGeometry,
    /// `true` when the values came from sysfs, `false` on fallback.
    pub detected: bool,
}

/// Returns the host cache hierarchy, probing sysfs on first call and
/// caching the result for the lifetime of the process.
pub fn host_caches() -> &'static HostCaches {
    static CACHES: OnceLock<HostCaches> = OnceLock::new();
    CACHES.get_or_init(|| probe_sysfs().unwrap_or_else(fallback))
}

fn fallback() -> HostCaches {
    let p = CpuProfile::i5_11400();
    HostCaches {
        l2: p.l2,
        llc: p.llc,
        detected: false,
    }
}

/// Parses a sysfs cache size string: `"512K"`, `"12288K"`, `"2M"`, `"32768"`.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

fn read_trimmed(path: &std::path::Path) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

fn probe_sysfs() -> Option<HostCaches> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let mut levels: Vec<(u32, CacheGeometry)> = Vec::new();
    for entry in std::fs::read_dir(base).ok()? {
        let dir = match entry {
            Ok(e) => e.path(),
            Err(_) => continue,
        };
        if !dir
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("index"))
        {
            continue;
        }
        // Instruction caches never hold bucket or twiddle data.
        let kind = read_trimmed(&dir.join("type"))?;
        if kind != "Data" && kind != "Unified" {
            continue;
        }
        let level: u32 = read_trimmed(&dir.join("level"))?.parse().ok()?;
        let size_bytes = parse_size(&read_trimmed(&dir.join("size"))?)?;
        let ways = read_trimmed(&dir.join("ways_of_associativity"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(8);
        let line_bytes = read_trimmed(&dir.join("coherency_line_size"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        if size_bytes == 0 || line_bytes == 0 {
            continue;
        }
        levels.push((
            level,
            CacheGeometry {
                size_bytes,
                ways: ways.max(1),
                line_bytes,
            },
        ));
    }
    let l2 = levels.iter().find(|(lv, _)| *lv == 2).map(|&(_, g)| g)?;
    // The LLC is the deepest level; on two-level parts that is the L2 again.
    let llc = levels.iter().max_by_key(|(lv, _)| *lv).map(|&(_, g)| g)?;
    Some(HostCaches {
        l2,
        llc,
        detected: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_handles_suffixes() {
        assert_eq!(parse_size("512K"), Some(512 << 10));
        assert_eq!(parse_size("12M"), Some(12 << 20));
        assert_eq!(parse_size("32768"), Some(32768));
        assert_eq!(parse_size(" 48K\n"), Some(48 << 10));
        assert_eq!(parse_size("junk"), None);
    }

    #[test]
    fn host_caches_are_sane_and_stable() {
        let c = host_caches();
        // Whether detected or fallback, the geometry must be usable.
        assert!(c.l2.size_bytes >= 64 << 10, "L2 {} too small", c.l2.size_bytes);
        assert!(c.llc.size_bytes >= c.l2.size_bytes);
        assert!(c.l2.line_bytes >= 16);
        // Same pointer on every call: one probe per process.
        assert!(std::ptr::eq(c, host_caches()));
    }
}
