#![warn(missing_docs)]

//! A trace-driven CPU microarchitecture simulator — the zkperf substitute
//! for Intel VTune, Linux perf, and DynamoRIO.
//!
//! The instrumented ZKP crates emit their real execution events (micro-ops,
//! memory addresses, branch outcomes) through [`zkperf_trace`]; this crate
//! consumes them with [`MachineSim`], which models one of the paper's three
//! CPUs ([`CpuProfile`]) — set-associative L1I/L1D/L2/LLC caches, a gshare
//! branch predictor, an instruction-fetch model sensitive to the execution
//! environment ([`ExecEnv`]), a DRAM bandwidth window, and a first-order
//! top-down cycle account — and produces a [`MachineReport`] with the
//! paper's metrics (Fig. 4 top-down split, Table II MPKI, Table III
//! bandwidth, Fig. 5 loads/stores).

mod branch;
mod cache;
pub mod host;
mod profile;
mod report;
mod sim;

pub use branch::BranchPredictor;
pub use cache::{Cache, HitLevel};
pub use host::{host_caches, HostCaches};
pub use profile::{CacheGeometry, CoreConfig, CpuProfile, DramConfig, ExecEnv};
pub use report::{MachineReport, TopdownBreakdown};
pub use sim::{MachineSim, SharedSim};
