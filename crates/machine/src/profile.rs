//! Parametric CPU descriptions for the three machines in the paper's
//! Table I, extended with the microarchitectural parameters the simulator
//! needs (documented per field; values from public spec sheets).

use serde::Serialize;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets).
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0, "invalid cache geometry");
        // Non-power-of-two set counts (e.g. the i9's 36 MiB LLC) are
        // indexed by modulo, as sliced LLCs effectively do.
        sets
    }
}

/// DRAM subsystem parameters (paper Table I: type, channels, peak BW).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DramConfig {
    /// Number of populated channels.
    pub channels: usize,
    /// Peak bandwidth in GB/s.
    pub peak_gbps: f64,
    /// Round-trip miss-to-DRAM latency in core cycles.
    pub latency_cycles: u64,
}

/// Core counts and SMT, for the scalability model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CoreConfig {
    /// Performance cores.
    pub p_cores: usize,
    /// Efficiency cores (0 on the i7/i5).
    pub e_cores: usize,
    /// Total hardware threads with SMT enabled.
    pub smt_threads: usize,
}

/// A complete simulated CPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CpuProfile {
    /// Display name matching the paper ("i7-8650U", ...).
    pub name: &'static str,
    /// Micro-op issue/retire width per cycle.
    pub issue_width: u64,
    /// Core frequency in GHz (used only to convert cycles to seconds for
    /// bandwidth figures).
    pub freq_ghz: f64,
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache.
    pub l1d: CacheGeometry,
    /// Unified per-core L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache (paper Table I).
    pub llc: CacheGeometry,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// LLC hit latency in cycles.
    pub llc_latency: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Cores and threads.
    pub cores: CoreConfig,
    /// Pipeline flush penalty per branch mispredict, in cycles.
    pub flush_penalty: u64,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub mlp: f64,
    /// gshare history bits for the branch predictor.
    pub branch_history_bits: u32,
    /// Front-end bubble cycles per retired µop at `ExecEnv::Wasm`
    /// (scaled by [`ExecEnv::frontend_multiplier`]): captures decode/uop-cache
    /// strength. The i7's legacy decoder makes it the most front-end
    /// limited; the i9's wide front end hides most dispatch overhead.
    pub frontend_tax: f64,
}

const fn geometry(size_bytes: usize, ways: usize) -> CacheGeometry {
    CacheGeometry {
        size_bytes,
        ways,
        line_bytes: 64,
    }
}

impl CpuProfile {
    /// Intel i7-8650U (Kaby Lake-R): 4 P-cores, LPDDR3 ×2ch 34.1 GB/s,
    /// 8 MiB LLC, 4-wide.
    pub fn i7_8650u() -> CpuProfile {
        CpuProfile {
            name: "i7-8650U",
            issue_width: 4,
            freq_ghz: 4.2,
            l1i: geometry(32 << 10, 8),
            l1d: geometry(32 << 10, 8),
            l2: geometry(256 << 10, 4),
            llc: geometry(8 << 20, 16),
            l2_latency: 12,
            llc_latency: 42,
            dram: DramConfig {
                channels: 2,
                peak_gbps: 34.1,
                latency_cycles: 280,
            },
            cores: CoreConfig {
                p_cores: 4,
                e_cores: 0,
                smt_threads: 8,
            },
            flush_penalty: 16,
            mlp: 4.0,
            branch_history_bits: 12,
            frontend_tax: 0.32,
        }
    }

    /// Intel i5-11400 (Rocket Lake): 6 P-cores, DDR4 ×1ch 17.0 GB/s,
    /// 12 MiB LLC, 5-wide.
    pub fn i5_11400() -> CpuProfile {
        CpuProfile {
            name: "i5-11400",
            issue_width: 5,
            freq_ghz: 4.4,
            l1i: geometry(32 << 10, 8),
            l1d: geometry(48 << 10, 12),
            l2: geometry(512 << 10, 8),
            llc: geometry(12 << 20, 12),
            l2_latency: 13,
            llc_latency: 48,
            dram: DramConfig {
                channels: 1,
                peak_gbps: 17.0,
                latency_cycles: 310,
            },
            cores: CoreConfig {
                p_cores: 6,
                e_cores: 0,
                smt_threads: 12,
            },
            flush_penalty: 17,
            mlp: 5.0,
            branch_history_bits: 13,
            frontend_tax: 0.16,
        }
    }

    /// Intel i9-13900K (Raptor Lake): 8P + 16E cores, DDR5 ×4ch 89.6 GB/s,
    /// 36 MiB LLC, 6-wide.
    pub fn i9_13900k() -> CpuProfile {
        CpuProfile {
            name: "i9-13900K",
            issue_width: 6,
            freq_ghz: 5.8,
            l1i: geometry(32 << 10, 8),
            l1d: geometry(48 << 10, 12),
            l2: geometry(2 << 20, 16),
            llc: geometry(36 << 20, 12),
            l2_latency: 15,
            llc_latency: 56,
            dram: DramConfig {
                channels: 4,
                peak_gbps: 89.6,
                latency_cycles: 330,
            },
            cores: CoreConfig {
                p_cores: 8,
                e_cores: 16,
                smt_threads: 32,
            },
            flush_penalty: 18,
            mlp: 8.0,
            branch_history_bits: 14,
            frontend_tax: 0.05,
        }
    }

    /// The three CPUs of the paper's experimental setup, in Table I order.
    pub fn paper_cpus() -> Vec<CpuProfile> {
        vec![Self::i7_8650u(), Self::i5_11400(), Self::i9_13900k()]
    }
}

/// How a protocol stage executes. The tier scales the CPU's front-end tax
/// and sets the instruction-side code footprint, which is what pushes the
/// paper's witness/verifying stages into the front-end-bound category
/// while the wasm-kernel stages (setup/proving) stay core/memory bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExecEnv {
    /// Ahead-of-time compiled native code (circom).
    Native,
    /// JIT-compiled wasm hot loops (snarkjs setup/proving run inside
    /// wasmcurves kernels): moderate dispatch overhead.
    Wasm,
    /// JS-level interpretation (snarkjs witness/verify orchestration):
    /// heavy dispatch and inline-cache traffic.
    Interpreted,
}

impl ExecEnv {
    /// Multiplier applied to the CPU's per-µop front-end tax.
    pub fn frontend_multiplier(self) -> f64 {
        match self {
            ExecEnv::Native => 0.1,
            ExecEnv::Wasm => 1.0,
            ExecEnv::Interpreted => 6.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_values_are_reflected() {
        let cpus = CpuProfile::paper_cpus();
        assert_eq!(cpus.len(), 3);
        assert_eq!(cpus[0].llc.size_bytes, 8 << 20);
        assert_eq!(cpus[1].llc.size_bytes, 12 << 20);
        assert_eq!(cpus[2].llc.size_bytes, 36 << 20);
        assert_eq!(cpus[0].dram.peak_gbps, 34.1);
        assert_eq!(cpus[1].dram.peak_gbps, 17.0);
        assert_eq!(cpus[2].dram.peak_gbps, 89.6);
        assert_eq!(cpus[2].cores.e_cores, 16);
        assert_eq!(cpus[2].cores.smt_threads, 32);
    }

    #[test]
    fn cache_geometry_sets() {
        let g = geometry(32 << 10, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(CpuProfile::i9_13900k().llc.sets(), 49152);
    }
}
