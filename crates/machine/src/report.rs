//! The simulator's output: raw counters plus the paper's derived metrics.

use serde::{Deserialize, Serialize};

/// Top-down pipeline-slot breakdown (percentages summing to ~100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopdownBreakdown {
    /// Slots lost to instruction supply (fetch/decode/dispatch).
    pub frontend_bound: f64,
    /// Slots lost to mispredicted work being flushed.
    pub bad_speculation: f64,
    /// Slots lost waiting on execution resources and memory.
    pub backend_bound: f64,
    /// Slots that retired useful micro-ops.
    pub retiring: f64,
}

impl TopdownBreakdown {
    /// The dominant category's name, as the paper's Fig. 4 discussion uses.
    pub fn dominant(&self) -> &'static str {
        let pairs = [
            ("frontend", self.frontend_bound),
            ("bad_speculation", self.bad_speculation),
            ("backend", self.backend_bound),
            ("retiring", self.retiring),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }
}

/// Everything one simulated run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineReport {
    /// CPU the run was simulated on.
    pub cpu: String,
    /// Retired compute micro-ops.
    pub compute_uops: u64,
    /// Retired control micro-ops.
    pub control_uops: u64,
    /// Retired data micro-ops.
    pub data_uops: u64,
    /// Load operations issued.
    pub loads: u64,
    /// Store operations issued.
    pub stores: u64,
    /// L1D line misses.
    pub l1d_misses: u64,
    /// L2 line misses (data side).
    pub l2_misses: u64,
    /// LLC line misses (data side, loads + stores).
    pub llc_misses: u64,
    /// LLC line misses caused by loads only (the MPKI numerator).
    pub llc_load_misses: u64,
    /// L1I line misses.
    pub l1i_misses: u64,
    /// Conditional branches observed.
    pub branches: u64,
    /// Branches mispredicted by the gshare model.
    pub mispredicts: u64,
    /// Bytes transferred to/from DRAM.
    pub dram_bytes: u64,
    /// Minor page faults (first touch of a page).
    pub page_faults: u64,
    /// Cycles retiring micro-ops.
    pub cycles_retiring: f64,
    /// Cycles of front-end stall.
    pub cycles_frontend: f64,
    /// Cycles lost to flushes.
    pub cycles_bad_spec: f64,
    /// Cycles of back-end (memory/resource) stall.
    pub cycles_backend: f64,
    /// Peak DRAM bandwidth over any accounting window, GB/s.
    pub peak_dram_gbps: f64,
    /// Core frequency used for time conversion, GHz.
    pub freq_ghz: f64,
}

impl MachineReport {
    /// Total retired micro-ops (the MPKI denominator).
    pub fn total_uops(&self) -> u64 {
        self.compute_uops + self.control_uops + self.data_uops
    }

    /// Total modeled cycles.
    pub fn total_cycles(&self) -> f64 {
        self.cycles_retiring + self.cycles_frontend + self.cycles_bad_spec + self.cycles_backend
    }

    /// Modeled wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles() / (self.freq_ghz * 1e9)
    }

    /// LLC load misses per kilo-instruction (paper Table II).
    pub fn llc_load_mpki(&self) -> f64 {
        let total = self.total_uops();
        if total == 0 {
            return 0.0;
        }
        1000.0 * self.llc_load_misses as f64 / total as f64
    }

    /// Average DRAM bandwidth over the whole run, GB/s.
    pub fn avg_dram_gbps(&self) -> f64 {
        let secs = self.seconds();
        if secs == 0.0 {
            return 0.0;
        }
        self.dram_bytes as f64 / secs / 1e9
    }

    /// The top-down percentage split (paper Fig. 4).
    pub fn topdown(&self) -> TopdownBreakdown {
        let total = self.total_cycles();
        if total == 0.0 {
            return TopdownBreakdown {
                frontend_bound: 0.0,
                bad_speculation: 0.0,
                backend_bound: 0.0,
                retiring: 100.0,
            };
        }
        TopdownBreakdown {
            frontend_bound: 100.0 * self.cycles_frontend / total,
            bad_speculation: 100.0 * self.cycles_bad_spec / total,
            backend_bound: 100.0 * self.cycles_backend / total,
            retiring: 100.0 * self.cycles_retiring / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MachineReport {
        MachineReport {
            cpu: "test".into(),
            compute_uops: 600,
            control_uops: 200,
            data_uops: 200,
            loads: 100,
            stores: 50,
            l1d_misses: 20,
            l2_misses: 10,
            llc_misses: 5,
            llc_load_misses: 4,
            l1i_misses: 1,
            branches: 100,
            mispredicts: 10,
            dram_bytes: 320,
            page_faults: 2,
            cycles_retiring: 250.0,
            cycles_frontend: 100.0,
            cycles_bad_spec: 150.0,
            cycles_backend: 500.0,
            peak_dram_gbps: 12.5,
            freq_ghz: 4.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert_eq!(r.total_uops(), 1000);
        assert_eq!(r.total_cycles(), 1000.0);
        assert_eq!(r.llc_load_mpki(), 4.0);
        assert!((r.seconds() - 1000.0 / 4e9).abs() < 1e-12);
        let td = r.topdown();
        assert_eq!(td.retiring, 25.0);
        assert_eq!(td.frontend_bound, 10.0);
        assert_eq!(td.bad_speculation, 15.0);
        assert_eq!(td.backend_bound, 50.0);
        assert_eq!(td.dominant(), "backend");
        let sum = td.retiring + td.frontend_bound + td.bad_speculation + td.backend_bound;
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let mut r = sample();
        r.compute_uops = 0;
        r.control_uops = 0;
        r.data_uops = 0;
        assert_eq!(r.llc_load_mpki(), 0.0);
        r.cycles_retiring = 0.0;
        r.cycles_frontend = 0.0;
        r.cycles_bad_spec = 0.0;
        r.cycles_backend = 0.0;
        assert_eq!(r.topdown().retiring, 100.0);
        assert_eq!(r.avg_dram_gbps(), 0.0);
    }
}
