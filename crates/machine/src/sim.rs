//! The trace-driven microarchitecture simulator.
//!
//! Implements [`EventSink`]: installed into a `zkperf_trace::Session`, it
//! observes the real event stream of an instrumented ZKP run and models a
//! target CPU — cache hierarchy, gshare branch prediction, instruction
//! fetch, and a first-order cycle account split into the four top-down
//! categories. This is the suite's substitute for VTune/perf/DynamoRIO
//! (see DESIGN.md §2).

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use zkperf_trace::{EventSink, FunctionId, OpClass};

use crate::branch::BranchPredictor;
use crate::cache::Cache;
use crate::profile::{CpuProfile, ExecEnv};
use crate::report::MachineReport;

/// Synthetic code-space base so instruction fetches never alias data.
const CODE_SPACE_BASE: usize = 1 << 46;
/// Synthetic heap-metadata region touched by allocator events.
const HEAP_META_BASE: usize = (1 << 46) + (1 << 40);
/// Per-region code footprint for natively compiled stages.
const NATIVE_FOOTPRINT: usize = 16 << 10;
/// Code footprint of the interpreter/runtime for interpreted stages: the
/// dispatch loop, inline caches and JIT stubs sweep a much larger I-side
/// working set, which is the mechanism behind snarkjs' front-end boundness.
const INTERPRETED_FOOTPRINT: usize = 768 << 10;
/// Extra hard-to-predict indirect dispatch branch every N retired µops when
/// interpreted.
const DISPATCH_BRANCH_EVERY: u64 = 24;
/// Bandwidth accounting window, in cycles.
const WINDOW_CYCLES: f64 = 500_000.0;
/// Kernel cycles charged per minor page fault (first touch of a page).
const PAGE_FAULT_CYCLES: f64 = 1200.0;
/// Page size for the first-touch model.
const PAGE_BYTES: usize = 4096;
/// Effective memory-level parallelism when the hardware prefetcher locks
/// onto a sequential miss stream (zkey/witness streaming phases).
const STREAM_MLP: f64 = 24.0;
/// Sequential miss streams tracked simultaneously (real L2 prefetchers
/// track 16-32; memcpy needs at least 2 for its src/dst pair).
const PREFETCH_STREAMS: usize = 4;
/// Back-end dependency-stall cycles per retired compute µop: the long
/// multiply chains of big-integer kernels keep ports busy well below the
/// issue width.
const CORE_STALL_PER_COMPUTE_UOP: f64 = 0.5;

/// The simulator state (one protocol-stage run on one CPU).
#[derive(Debug)]
pub struct MachineSim {
    profile: CpuProfile,
    env: ExecEnv,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    bp: BranchPredictor,

    compute_uops: u64,
    control_uops: u64,
    data_uops: u64,
    loads: u64,
    stores: u64,
    llc_load_misses: u64,
    llc_data_misses: u64,
    l2_data_misses: u64,
    l1d_misses: u64,
    branches: u64,
    mispredicts: u64,
    dram_bytes: u64,

    cycles_retiring: f64,
    cycles_frontend: f64,
    cycles_bad_spec: f64,
    cycles_backend: f64,

    region_stack: Vec<FunctionId>,
    code_cursor: usize,
    dispatch_counter: u64,
    dispatch_lfsr: u64,

    window_start_cycles: f64,
    window_dram_bytes: u64,
    peak_window_bytes_per_cycle: f64,
    alloc_cursor: usize,
    touched_pages: HashSet<usize>,
    page_faults: u64,
    miss_streams: [usize; PREFETCH_STREAMS],
    next_stream_slot: usize,
    /// Minimum cycles one 64-byte line can take at the DRAM pin bandwidth.
    dram_line_floor_cycles: f64,
}

impl MachineSim {
    /// Builds a cold simulator for `profile` running code in `env`.
    pub fn new(profile: CpuProfile, env: ExecEnv) -> Self {
        let floor_cycles = 64.0 * profile.freq_ghz / profile.dram.peak_gbps;
        MachineSim {
            l1i: Cache::new(profile.l1i),
            l1d: Cache::new(profile.l1d),
            l2: Cache::new(profile.l2),
            llc: Cache::new(profile.llc),
            bp: BranchPredictor::new(profile.branch_history_bits),
            profile,
            env,
            compute_uops: 0,
            control_uops: 0,
            data_uops: 0,
            loads: 0,
            stores: 0,
            llc_load_misses: 0,
            llc_data_misses: 0,
            l2_data_misses: 0,
            l1d_misses: 0,
            branches: 0,
            mispredicts: 0,
            dram_bytes: 0,
            cycles_retiring: 0.0,
            cycles_frontend: 0.0,
            cycles_bad_spec: 0.0,
            cycles_backend: 0.0,
            region_stack: Vec::new(),
            code_cursor: 0,
            dispatch_counter: 0,
            dispatch_lfsr: 0xace1_2468_9bdf_1357,
            window_start_cycles: 0.0,
            window_dram_bytes: 0,
            peak_window_bytes_per_cycle: 0.0,
            alloc_cursor: 0,
            touched_pages: HashSet::new(),
            page_faults: 0,
            miss_streams: [usize::MAX - 1; PREFETCH_STREAMS],
            next_stream_slot: 0,
            dram_line_floor_cycles: floor_cycles,
        }
    }

    /// Wraps the simulator for use as a tracing sink while keeping a handle
    /// to read it back after the session:
    ///
    /// ```
    /// use zkperf_machine::{CpuProfile, ExecEnv, MachineSim};
    /// use zkperf_trace as trace;
    ///
    /// let (sink, handle) = MachineSim::new(CpuProfile::i7_8650u(), ExecEnv::Native).shared();
    /// let session = trace::Session::begin_with_sink(Box::new(sink));
    /// trace::compute(100);
    /// drop(session.finish());
    /// let report = handle.borrow().report();
    /// assert_eq!(report.compute_uops, 100);
    /// ```
    pub fn shared(self) -> (SharedSim, Rc<RefCell<MachineSim>>) {
        let rc = Rc::new(RefCell::new(self));
        (SharedSim(Rc::clone(&rc)), rc)
    }

    fn total_cycles(&self) -> f64 {
        self.cycles_retiring + self.cycles_frontend + self.cycles_bad_spec + self.cycles_backend
    }

    fn add_dram_line(&mut self) {
        self.dram_bytes += 64;
        self.window_dram_bytes += 64;
    }

    fn roll_window(&mut self) {
        let now = self.total_cycles();
        if now - self.window_start_cycles >= WINDOW_CYCLES {
            let rate = self.window_dram_bytes as f64 / (now - self.window_start_cycles);
            if rate > self.peak_window_bytes_per_cycle {
                self.peak_window_bytes_per_cycle = rate;
            }
            self.window_start_cycles = now;
            self.window_dram_bytes = 0;
        }
    }

    /// Walks a data access through the hierarchy, charging back-end stall
    /// cycles and DRAM traffic.
    fn data_access(&mut self, addr: usize, bytes: u32, is_load: bool) {
        if is_load {
            self.loads += 1;
        } else {
            self.stores += 1;
        }
        // Minor page fault on the first touch of each page (the paper's
        // Table IV lists the page-fault exception handler as a hot
        // function; it fires on demand-zero pages of freshly allocated
        // witness vectors and key sections).
        if self.touched_pages.insert(addr / PAGE_BYTES) {
            self.page_faults += 1;
            self.cycles_backend += PAGE_FAULT_CYCLES;
        }
        let l1_misses = self.l1d.access_range(addr, bytes as usize);
        if l1_misses == 0 {
            return;
        }
        self.l1d_misses += l1_misses;
        let mut stall = 0.0;
        for line in 0..l1_misses {
            let line_addr = (addr & !63) + (line as usize) * 64;
            if self.l2.access(line_addr) == crate::cache::HitLevel::Hit {
                stall += self.profile.l2_latency as f64;
            } else {
                self.l2_data_misses += 1;
                if self.llc.access(line_addr) == crate::cache::HitLevel::Hit {
                    stall += self.profile.llc_latency as f64;
                } else {
                    self.llc_data_misses += 1;
                    if is_load {
                        self.llc_load_misses += 1;
                    }
                    // Sequential miss streams engage the prefetcher: the
                    // effective MLP rises and the cost floor becomes the
                    // DRAM pin bandwidth; pointer-chasing misses pay the
                    // full latency divided by the core's ordinary MLP.
                    // Several concurrent streams are tracked so that e.g. a
                    // copy's source and destination both prefetch.
                    let this_line = line_addr / 64;
                    let mut streamed = false;
                    for s in self.miss_streams.iter_mut() {
                        if this_line == s.wrapping_add(1) {
                            *s = this_line;
                            streamed = true;
                            break;
                        }
                    }
                    if !streamed {
                        self.miss_streams[self.next_stream_slot] = this_line;
                        self.next_stream_slot =
                            (self.next_stream_slot + 1) % PREFETCH_STREAMS;
                    }
                    let mlp = if streamed { STREAM_MLP } else { self.profile.mlp };
                    stall += (self.profile.dram.latency_cycles as f64 / mlp)
                        .max(self.dram_line_floor_cycles)
                        * self.profile.mlp; // re-scaled below with the others
                    self.add_dram_line();
                }
            }
        }
        self.cycles_backend += stall / self.profile.mlp;
        self.roll_window();
    }

    fn ifetch(&mut self, fetch_bytes: usize) {
        let (base, footprint) = match (self.region_stack.last(), self.env) {
            (Some(id), ExecEnv::Native) => (
                CODE_SPACE_BASE + id.index() * NATIVE_FOOTPRINT * 4,
                NATIVE_FOOTPRINT,
            ),
            (None, ExecEnv::Native) => (CODE_SPACE_BASE, NATIVE_FOOTPRINT),
            // JIT-compiled wasm kernels are tight loops that live in the
            // L1I/uop cache; only the JS-level stages sweep the full
            // runtime footprint.
            (_, ExecEnv::Wasm) => (CODE_SPACE_BASE, 12 << 10),
            // All interpreted regions share the runtime's large footprint.
            (_, ExecEnv::Interpreted) => (CODE_SPACE_BASE, INTERPRETED_FOOTPRINT),
        };
        self.code_cursor = (self.code_cursor + fetch_bytes) % footprint;
        let addr = base + self.code_cursor;
        if self.l1i.access(addr) == crate::cache::HitLevel::Miss {
            // I-side misses stall the front end for an L2 round trip.
            self.cycles_frontend += self.profile.l2_latency as f64;
        }
    }

    /// Extracts the finished report.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            cpu: self.profile.name.to_string(),
            compute_uops: self.compute_uops,
            control_uops: self.control_uops,
            data_uops: self.data_uops,
            loads: self.loads,
            stores: self.stores,
            l1d_misses: self.l1d_misses,
            l2_misses: self.l2_data_misses,
            llc_misses: self.llc_data_misses,
            llc_load_misses: self.llc_load_misses,
            l1i_misses: self.l1i.misses(),
            branches: self.branches,
            mispredicts: self.mispredicts,
            dram_bytes: self.dram_bytes,
            cycles_retiring: self.cycles_retiring,
            cycles_frontend: self.cycles_frontend,
            cycles_bad_spec: self.cycles_bad_spec,
            cycles_backend: self.cycles_backend,
            page_faults: self.page_faults,
            peak_dram_gbps: {
                // bytes/cycle → GB/s at the core frequency; include the
                // still-open window in case it is the densest one.
                let now = self.total_cycles();
                let open = if now > self.window_start_cycles {
                    self.window_dram_bytes as f64 / (now - self.window_start_cycles)
                } else {
                    0.0
                };
                self.peak_window_bytes_per_cycle.max(open) * self.profile.freq_ghz
            },
            freq_ghz: self.profile.freq_ghz,
        }
    }
}

impl EventSink for MachineSim {
    fn retire(&mut self, class: OpClass, uops: u32) {
        match class {
            OpClass::Compute => self.compute_uops += u64::from(uops),
            OpClass::Control => self.control_uops += u64::from(uops),
            OpClass::Data => self.data_uops += u64::from(uops),
        }
        let u = f64::from(uops);
        self.cycles_retiring += u / self.profile.issue_width as f64;
        if class == OpClass::Compute {
            self.cycles_backend += u * CORE_STALL_PER_COMPUTE_UOP;
        }
        self.ifetch(uops as usize * 4);
        self.cycles_frontend +=
            u * self.profile.frontend_tax * self.env.frontend_multiplier();
        if self.env != ExecEnv::Native {
            // Periodic dispatch branch; mostly regular (the runtime loops
            // over the same bytecode), occasionally surprising.
            self.dispatch_counter += u64::from(uops);
            while self.dispatch_counter >= DISPATCH_BRANCH_EVERY {
                self.dispatch_counter -= DISPATCH_BRANCH_EVERY;
                self.dispatch_lfsr = self.dispatch_lfsr.wrapping_add(0x9e37_79b9);
                self.branch(0x7777, !self.dispatch_lfsr.is_multiple_of(11));
            }
        }
    }

    fn load(&mut self, addr: usize, bytes: u32) {
        self.data_access(addr, bytes, true);
    }

    fn store(&mut self, addr: usize, bytes: u32) {
        self.data_access(addr, bytes, false);
    }

    fn branch(&mut self, site: u64, taken: bool) {
        self.branches += 1;
        if !self.bp.record(site, taken) {
            self.mispredicts += 1;
            self.cycles_bad_spec += self.profile.flush_penalty as f64;
        }
    }

    fn alloc(&mut self, bytes: usize) {
        // Allocator metadata touches: free-list probe + header write.
        let meta = HEAP_META_BASE + (self.alloc_cursor % (1 << 16));
        self.alloc_cursor += 128 + (bytes & 0xfff);
        self.data_access(meta, 16, true);
        self.data_access(meta, 16, false);
    }

    fn memcpy(&mut self, dst: usize, src: usize, bytes: usize) {
        // Stream both buffers through the hierarchy line by line.
        let lines = bytes.div_ceil(64).max(1);
        for i in 0..lines {
            self.data_access(src + i * 64, 8, true);
            self.data_access(dst + i * 64, 8, false);
        }
    }

    fn enter_region(&mut self, id: FunctionId) {
        self.region_stack.push(id);
        // A call transfers control: costs a front-end redirect.
        self.cycles_frontend += 1.0;
    }

    fn exit_region(&mut self) {
        self.region_stack.pop();
    }
}

/// A cloneable [`EventSink`] handle onto a shared [`MachineSim`], so the
/// simulator can be recovered after `Session::finish`.
#[derive(Debug)]
pub struct SharedSim(Rc<RefCell<MachineSim>>);

impl EventSink for SharedSim {
    fn retire(&mut self, class: OpClass, uops: u32) {
        self.0.borrow_mut().retire(class, uops);
    }
    fn load(&mut self, addr: usize, bytes: u32) {
        self.0.borrow_mut().load(addr, bytes);
    }
    fn store(&mut self, addr: usize, bytes: u32) {
        self.0.borrow_mut().store(addr, bytes);
    }
    fn branch(&mut self, site: u64, taken: bool) {
        self.0.borrow_mut().branch(site, taken);
    }
    fn alloc(&mut self, bytes: usize) {
        self.0.borrow_mut().alloc(bytes);
    }
    fn memcpy(&mut self, dst: usize, src: usize, bytes: usize) {
        self.0.borrow_mut().memcpy(dst, src, bytes);
    }
    fn enter_region(&mut self, id: FunctionId) {
        self.0.borrow_mut().enter_region(id);
    }
    fn exit_region(&mut self) {
        self.0.borrow_mut().exit_region();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(env: ExecEnv) -> MachineSim {
        MachineSim::new(CpuProfile::i7_8650u(), env)
    }

    #[test]
    fn retire_accumulates_and_costs_cycles() {
        let mut s = sim(ExecEnv::Native);
        s.retire(OpClass::Compute, 40);
        s.retire(OpClass::Data, 8);
        let r = s.report();
        assert_eq!(r.compute_uops, 40);
        assert_eq!(r.data_uops, 8);
        assert!((r.cycles_retiring - 12.0).abs() < 1e-9, "48 uops / width 4");
    }

    #[test]
    fn repeated_loads_hit_after_warmup() {
        let mut s = sim(ExecEnv::Native);
        s.load(0x1000, 32);
        let cold = s.report();
        assert_eq!(cold.l1d_misses, 1);
        assert_eq!(cold.llc_misses, 1);
        assert_eq!(cold.dram_bytes, 64);
        s.load(0x1000, 32);
        let warm = s.report();
        assert_eq!(warm.l1d_misses, 1, "second access hits L1");
    }

    #[test]
    fn streaming_a_large_buffer_misses_llc() {
        let mut s = sim(ExecEnv::Native);
        // Stream 32 MiB (4× the i7's LLC) twice: second pass still misses.
        let total = 32 << 20;
        for pass in 0..2 {
            for addr in (0..total).step_by(64) {
                s.load(addr, 8);
            }
            let misses = s.report().llc_misses;
            let accesses = ((pass + 1) * total / 64) as u64;
            assert!(
                misses > accesses * 9 / 10,
                "pass {pass}: {misses} misses of {accesses}"
            );
        }
        let r = s.report();
        assert_eq!(r.llc_load_misses, r.llc_misses, "all misses were loads");
        assert!(r.dram_bytes as usize > 32 << 20, "most lines came from DRAM");
    }

    #[test]
    fn interpreted_env_is_more_frontend_bound() {
        let run = |env| {
            let mut s = sim(env);
            for i in 0..200_000u64 {
                s.retire(OpClass::Compute, 4);
                s.branch(1, i % 7 == 0);
            }
            s.report().topdown().frontend_bound
        };
        let native = run(ExecEnv::Native);
        let interp = run(ExecEnv::Interpreted);
        assert!(
            interp > native + 10.0,
            "interpreted {interp:.1}% vs native {native:.1}%"
        );
    }

    #[test]
    fn mispredicts_charge_bad_speculation() {
        let mut s = sim(ExecEnv::Native);
        let mut state = 0x9e3779b9u64;
        for _ in 0..50_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            s.branch(3, state & 1 == 1);
        }
        let r = s.report();
        assert!(r.mispredicts > 10_000);
        assert!(r.cycles_bad_spec > 0.0);
    }

    #[test]
    fn memcpy_streams_both_buffers() {
        let mut s = sim(ExecEnv::Native);
        s.memcpy(0x10_0000, 0x20_0000, 4096);
        let r = s.report();
        assert_eq!(r.loads, 64);
        assert_eq!(r.stores, 64);
        assert_eq!(r.dram_bytes, 128 * 64);
    }

    #[test]
    fn shared_handle_recovers_state_after_session() {
        use zkperf_trace as trace;
        let (sink, handle) = sim(ExecEnv::Native).shared();
        let session = trace::Session::begin_with_sink(Box::new(sink));
        trace::compute(10);
        trace::load(0x4000, 8);
        drop(session.finish());
        let r = handle.borrow().report();
        assert_eq!(r.compute_uops, 10);
        assert_eq!(r.loads, 1);
    }

    #[test]
    fn bigger_llc_misses_less_on_medium_working_set() {
        // 16 MiB working set: thrashes the i7's 8 MiB LLC, fits the i9's 36 MiB.
        let run = |profile: CpuProfile| {
            let mut s = MachineSim::new(profile, ExecEnv::Native);
            for _ in 0..3 {
                for addr in (0..16 << 20).step_by(64) {
                    s.load(addr, 8);
                }
            }
            s.report().llc_misses
        };
        let small = run(CpuProfile::i7_8650u());
        let big = run(CpuProfile::i9_13900k());
        assert!(
            big * 2 < small,
            "i9 ({big}) should miss far less than i7 ({small})"
        );
    }
}
