//! Property-based tests of the microarchitecture models: cache inclusion
//! of behaviour under permutation, predictor bounds, and top-down
//! consistency under random event streams.

use proptest::prelude::*;

use zkperf_machine::{BranchPredictor, Cache, CacheGeometry, CpuProfile, ExecEnv, MachineSim};
use zkperf_trace::{EventSink, OpClass};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        addrs in proptest::collection::vec(0usize..1 << 20, 1..500)
    ) {
        let mut c = Cache::new(CacheGeometry { size_bytes: 8 << 10, ways: 4, line_bytes: 64 });
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    #[test]
    fn repeating_a_small_working_set_converges_to_hits(
        lines in proptest::collection::vec(0usize..32, 1..32)
    ) {
        // 32 distinct lines fit easily in a 16 KiB cache: after a warm pass
        // every access hits.
        let mut c = Cache::new(CacheGeometry { size_bytes: 16 << 10, ways: 8, line_bytes: 64 });
        for &l in &lines {
            c.access(l * 64);
        }
        let warm_misses = c.misses();
        for _ in 0..3 {
            for &l in &lines {
                c.access(l * 64);
            }
        }
        prop_assert_eq!(c.misses(), warm_misses, "no new misses after warmup");
    }

    #[test]
    fn predictor_miss_rate_is_bounded(
        outcomes in proptest::collection::vec(any::<bool>(), 10..2000)
    ) {
        let mut p = BranchPredictor::new(10);
        for &t in &outcomes {
            p.record(17, t);
        }
        prop_assert_eq!(p.predictions(), outcomes.len() as u64);
        prop_assert!(p.mispredictions() <= p.predictions());
        prop_assert!((0.0..=1.0).contains(&p.miss_rate()));
    }

    #[test]
    fn topdown_fractions_always_sum_to_100(
        events in proptest::collection::vec(
            prop_oneof![
                (0u32..100).prop_map(|u| (0u8, u as usize)),   // retire compute
                (0usize..1 << 24).prop_map(|a| (1u8, a)),       // load
                (0usize..1 << 24).prop_map(|a| (2u8, a)),       // store
                any::<bool>().prop_map(|t| (3u8, t as usize)),  // branch
            ],
            1..400,
        ),
        interpreted in any::<bool>(),
    ) {
        let env = if interpreted { ExecEnv::Interpreted } else { ExecEnv::Native };
        let mut sim = MachineSim::new(CpuProfile::i5_11400(), env);
        for (kind, val) in events {
            match kind {
                0 => sim.retire(OpClass::Compute, val as u32),
                1 => sim.load(val, 8),
                2 => sim.store(val, 8),
                _ => sim.branch(9, val == 1),
            }
        }
        let r = sim.report();
        let td = r.topdown();
        let sum = td.frontend_bound + td.bad_speculation + td.backend_bound + td.retiring;
        prop_assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(td.frontend_bound >= 0.0 && td.backend_bound >= 0.0);
        prop_assert!(r.llc_load_mpki() >= 0.0);
    }

    #[test]
    fn dram_bytes_are_line_multiples(addrs in proptest::collection::vec(0usize..1 << 28, 1..300)) {
        let mut sim = MachineSim::new(CpuProfile::i7_8650u(), ExecEnv::Native);
        for &a in &addrs {
            sim.load(a, 32);
        }
        let r = sim.report();
        prop_assert_eq!(r.dram_bytes % 64, 0);
        prop_assert!(r.llc_load_misses <= r.llc_misses);
        prop_assert!(r.llc_misses <= r.l2_misses);
        prop_assert!(r.l2_misses <= r.l1d_misses);
    }
}
