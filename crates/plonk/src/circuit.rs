//! PLONK arithmetization: selector vectors and the copy-constraint
//! permutation, derived from a compiled `zkperf-circuit` circuit.

use zkperf_ff::PrimeField;
use zkperf_poly::Radix2Domain;
use zkperf_trace as trace;

use zkperf_circuit::{LinearCombination, R1cs};

/// Why a circuit could not be arithmetized for PLONK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithmetizeError {
    /// A constraint side had more than one wire term; this PLONK front end
    /// supports the single-wire-per-slot gate form the benchmark circuits
    /// use (each R1CS row `cₐ·wₐ × c_b·w_b = c_c·w_c`).
    UnsupportedConstraint {
        /// Index of the offending R1CS row.
        row: usize,
    },
    /// The padded gate count exceeds the field's FFT domain.
    TooManyGates {
        /// Gates requested.
        gates: usize,
    },
}

impl std::fmt::Display for ArithmetizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithmetizeError::UnsupportedConstraint { row } => {
                write!(f, "constraint {row} is not in single-wire gate form")
            }
            ArithmetizeError::TooManyGates { gates } => {
                write!(f, "{gates} gates exceed the FFT domain")
            }
        }
    }
}

impl std::error::Error for ArithmetizeError {}

/// One wire reference per gate slot.
pub(crate) type WireId = usize;

/// A PLONK circuit: selector columns, per-gate wire assignments, and the
/// copy-constraint permutation, all sized to a power-of-two domain.
///
/// Gate equation (per row `i`):
/// `q_L·a + q_R·b + q_O·c + q_M·a·b + q_C + PI(i) = 0`.
#[derive(Debug, Clone)]
pub struct PlonkCircuit<F: PrimeField> {
    /// Domain size (padded number of gates).
    pub n: usize,
    /// Left-input selector.
    pub q_l: Vec<F>,
    /// Right-input selector.
    pub q_r: Vec<F>,
    /// Output selector.
    pub q_o: Vec<F>,
    /// Multiplication selector.
    pub q_m: Vec<F>,
    /// Constant selector.
    pub q_c: Vec<F>,
    /// Wire id feeding each gate's a/b/c slot.
    pub wires: [Vec<WireId>; 3],
    /// σ as encoded field values per column (k_col·ω^row of the linked slot).
    pub sigma: [Vec<F>; 3],
    /// Rows carrying public inputs (gate `q_L = 1` pinning wire = input).
    pub public_rows: Vec<usize>,
    /// Total wires in the underlying witness vector.
    pub num_wires: usize,
    /// The coset labels (k₀ = 1, k₁, k₂) used by the permutation encoding.
    pub coset_ks: [F; 3],
}

fn single_term<F: PrimeField>(
    lc: &LinearCombination<F>,
    row: usize,
) -> Result<(WireId, F), ArithmetizeError> {
    match lc.terms() {
        [] => Ok((0, F::zero())), // the constant-one wire with coefficient 0
        [(v, c)] => Ok((v.index(), *c)),
        _ => Err(ArithmetizeError::UnsupportedConstraint { row }),
    }
}

impl<F: PrimeField> PlonkCircuit<F> {
    /// Arithmetizes an R1CS whose rows are in single-wire form
    /// (`cₐwₐ · c_b w_b = c_c w_c`): each row becomes one multiplication
    /// gate, and each public wire gets one input-pinning gate.
    ///
    /// # Errors
    ///
    /// [`ArithmetizeError::UnsupportedConstraint`] for multi-term rows,
    /// [`ArithmetizeError::TooManyGates`] past the FFT limit.
    pub fn from_r1cs(r1cs: &R1cs<F>) -> Result<Self, ArithmetizeError> {
        let _g = trace::region_profile("plonk_arithmetize");
        let num_public = r1cs.num_public_wires();
        let raw_gates = r1cs.num_constraints() + num_public;
        let n = raw_gates.next_power_of_two().max(4);
        if Radix2Domain::<F>::new(4 * n).is_none() {
            return Err(ArithmetizeError::TooManyGates { gates: raw_gates });
        }

        let zero = vec![F::zero(); n];
        let mut q_l = zero.clone();
        let q_r = zero.clone();
        let mut q_o = zero.clone();
        let mut q_m = zero.clone();
        let q_c = zero.clone();
        let mut wires = [vec![0usize; n], vec![0usize; n], vec![0usize; n]];
        let mut public_rows = Vec::with_capacity(num_public);

        // Public-input rows first: q_L·a + PI = 0 pins wire a to the input.
        for (row, wire) in (0..num_public).enumerate() {
            q_l[row] = F::one();
            wires[0][row] = wire;
            // Unused slots alias the a-wire so the copy constraint is
            // trivially satisfied.
            wires[1][row] = wire;
            wires[2][row] = wire;
            public_rows.push(row);
        }

        // One multiplication gate per R1CS row:
        // (cₐwₐ)(c_b w_b) = c_c w_c  ⇒  q_M = cₐc_b, q_O = −c_c.
        for (i, cst) in r1cs.constraints().iter().enumerate() {
            let row = num_public + i;
            let (wa, ca) = single_term(&cst.a, i)?;
            let (wb, cb) = single_term(&cst.b, i)?;
            let (wc, cc) = single_term(&cst.c, i)?;
            q_m[row] = ca * cb;
            q_o[row] = -cc;
            wires[0][row] = wa;
            wires[1][row] = wb;
            wires[2][row] = wc;
            trace::control(2);
        }
        // Padding rows: all-zero selectors, wires alias wire 0 (the
        // constant-one wire, present in every witness).

        // Copy-constraint permutation: cycle the positions of each wire.
        let domain = Radix2Domain::<F>::new(n).expect("checked above");
        let ks = Self::coset_labels(&domain);
        let encode = |col: usize, row: usize| ks[col] * domain.element(row);
        let mut positions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); r1cs.num_wires()];
        for col in 0..3 {
            for row in 0..n {
                positions[wires[col][row]].push((col, row));
            }
        }
        let mut sigma = [zero.clone(), zero.clone(), zero];
        for cycle in &positions {
            for (i, &(col, row)) in cycle.iter().enumerate() {
                let (ncol, nrow) = cycle[(i + 1) % cycle.len()];
                sigma[col][row] = encode(ncol, nrow);
            }
        }

        Ok(PlonkCircuit {
            n,
            q_l,
            q_r,
            q_o,
            q_m,
            q_c,
            wires,
            sigma,
            public_rows,
            num_wires: r1cs.num_wires(),
            coset_ks: ks,
        })
    }

    /// Picks coset labels `1, k₁, k₂` such that `H`, `k₁H`, `k₂H` are
    /// pairwise disjoint (kᵢⁿ ≠ 1 and (k₁/k₂)ⁿ ≠ 1).
    fn coset_labels(domain: &Radix2Domain<F>) -> [F; 3] {
        let n = domain.size() as u64;
        let in_h = |v: F| v.pow(&zkperf_ff::BigUint::from_u64(n)).is_one();
        let mut candidates = (2u64..).map(F::from_u64);
        let k1 = candidates
            .by_ref()
            .find(|&k| !in_h(k))
            .expect("non-coset element exists");
        let k2 = candidates
            .find(|&k| {
                !in_h(k) && !in_h(k * k1.inverse().expect("k1 != 0"))
            })
            .expect("second coset exists");
        [F::one(), k1, k2]
    }

    /// Gate-slot values `(a, b, c)` columns drawn from a full R1CS witness.
    pub fn wire_columns(&self, witness: &[F]) -> [Vec<F>; 3] {
        let col = |c: usize| -> Vec<F> {
            self.wires[c].iter().map(|&w| witness[w]).collect()
        };
        [col(0), col(1), col(2)]
    }

    /// Public-input values (from the witness prefix) in row order.
    pub fn public_values(&self, witness: &[F]) -> Vec<F> {
        self.public_rows.iter().map(|&r| witness[r]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::Field;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn exponentiate_arithmetizes() {
        let circuit = exponentiate::<Fr>(6);
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        // 6 constraints + 3 public wires (1, y, x) = 9 gates → n = 16.
        assert_eq!(plonk.n, 16);
        assert_eq!(plonk.public_rows.len(), 3);
        // Gate equation holds row-by-row on a real witness.
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let cols = plonk.wire_columns(w.full());
        let pi = plonk.public_values(w.full());
        // `row` indexes three wire columns and five selector columns at
        // once; a zipped iterator would only obscure that.
        #[allow(clippy::needless_range_loop)]
        for row in 0..plonk.n {
            let (a, b, c) = (cols[0][row], cols[1][row], cols[2][row]);
            let mut acc = plonk.q_l[row] * a
                + plonk.q_r[row] * b
                + plonk.q_o[row] * c
                + plonk.q_m[row] * a * b
                + plonk.q_c[row];
            if let Some(idx) = plonk.public_rows.iter().position(|&r| r == row) {
                acc -= pi[idx];
            }
            assert!(acc.is_zero(), "gate {row} violated");
        }
    }

    #[test]
    fn sigma_is_a_permutation_of_encoded_positions() {
        let circuit = exponentiate::<Fr>(4);
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        let domain = Radix2Domain::<Fr>::new(plonk.n).unwrap();
        let mut all: Vec<Fr> = Vec::new();
        let mut images: Vec<Fr> = Vec::new();
        for col in 0..3 {
            for row in 0..plonk.n {
                all.push(plonk.coset_ks[col] * domain.element(row));
                images.push(plonk.sigma[col][row]);
            }
        }
        all.sort();
        images.sort();
        assert_eq!(all, images, "σ permutes the 3n encoded slots");
    }

    #[test]
    fn multi_term_constraints_are_rejected() {
        // x + y = z uses a multi-term LC: (x + y)·1 = z.
        let src = "circuit s { public input x; private input y; output z = x + y; }";
        let circuit = zkperf_circuit::lang::compile::<Fr>(src).unwrap();
        let err = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap_err();
        assert!(matches!(err, ArithmetizeError::UnsupportedConstraint { .. }));
    }
}
