//! PLONK arithmetization: selector vectors and the copy-constraint
//! permutation, derived from a compiled `zkperf-circuit` circuit.

use zkperf_ff::PrimeField;
use zkperf_poly::Radix2Domain;
use zkperf_trace as trace;

use zkperf_circuit::{LinearCombination, R1cs};

/// Why a circuit could not be arithmetized for PLONK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithmetizeError {
    /// The padded gate count exceeds the field's FFT domain.
    TooManyGates {
        /// Gates requested.
        gates: usize,
    },
}

impl std::fmt::Display for ArithmetizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithmetizeError::TooManyGates { gates } => {
                write!(f, "{gates} gates exceed the FFT domain")
            }
        }
    }
}

impl std::error::Error for ArithmetizeError {}

/// One wire reference per gate slot.
pub(crate) type WireId = usize;

/// A PLONK circuit: selector columns, per-gate wire assignments, and the
/// copy-constraint permutation, all sized to a power-of-two domain.
///
/// Gate equation (per row `i`):
/// `q_L·a + q_R·b + q_O·c + q_M·a·b + q_C + PI(i) = 0`.
#[derive(Debug, Clone)]
pub struct PlonkCircuit<F: PrimeField> {
    /// Domain size (padded number of gates).
    pub n: usize,
    /// Left-input selector.
    pub q_l: Vec<F>,
    /// Right-input selector.
    pub q_r: Vec<F>,
    /// Output selector.
    pub q_o: Vec<F>,
    /// Multiplication selector.
    pub q_m: Vec<F>,
    /// Constant selector.
    pub q_c: Vec<F>,
    /// Wire id feeding each gate's a/b/c slot.
    pub wires: [Vec<WireId>; 3],
    /// σ as encoded field values per column (k_col·ω^row of the linked slot).
    pub sigma: [Vec<F>; 3],
    /// Rows carrying public inputs (gate `q_L = 1` pinning wire = input).
    pub public_rows: Vec<usize>,
    /// Wires in the witness the caller supplies (the R1CS wire count).
    pub num_base_wires: usize,
    /// Total wires in the permutation argument: base wires plus the
    /// auxiliary wires introduced when multi-term linear combinations are
    /// lowered to addition-gate chains.
    pub num_wires: usize,
    /// Defining pair of each auxiliary wire, in evaluation order: aux
    /// wire `num_base_wires + i` equals `c₀·w₀ + c₁·w₁` over earlier
    /// wires (base or auxiliary).
    pub aux_defs: Vec<[(WireId, F); 2]>,
    /// The coset labels (k₀ = 1, k₁, k₂) used by the permutation encoding.
    pub coset_ks: [F; 3],
}

/// Growable gate lists used while lowering an R1CS, before the domain
/// size is known.
struct GateBuilder<F: PrimeField> {
    q_l: Vec<F>,
    q_r: Vec<F>,
    q_o: Vec<F>,
    q_m: Vec<F>,
    wires: [Vec<WireId>; 3],
    num_base_wires: usize,
    aux_defs: Vec<[(WireId, F); 2]>,
}

impl<F: PrimeField> GateBuilder<F> {
    fn push_gate(&mut self, q: [F; 4], w: [WireId; 3]) {
        self.q_l.push(q[0]);
        self.q_r.push(q[1]);
        self.q_o.push(q[2]);
        self.q_m.push(q[3]);
        for (col, wire) in self.wires.iter_mut().zip(w) {
            col.push(wire);
        }
    }

    /// Reduces a linear combination to a single `(wire, coefficient)`
    /// pair. Zero- and one-term combinations are free; a k-term
    /// combination spends k−1 addition gates (`q_L·wₐ + q_R·w_b − aux = 0`),
    /// each defining a fresh auxiliary wire that carries the running sum.
    fn lower(&mut self, lc: &LinearCombination<F>) -> (WireId, F) {
        match lc.terms() {
            [] => (0, F::zero()), // the constant-one wire with coefficient 0
            [(v, c)] => (v.index(), *c),
            terms => {
                let (mut acc_w, mut acc_c) = (terms[0].0.index(), terms[0].1);
                for (v, c) in &terms[1..] {
                    let aux = self.num_base_wires + self.aux_defs.len();
                    self.aux_defs.push([(acc_w, acc_c), (v.index(), *c)]);
                    self.push_gate(
                        [acc_c, *c, -F::one(), F::zero()],
                        [acc_w, v.index(), aux],
                    );
                    acc_w = aux;
                    acc_c = F::one();
                }
                (acc_w, acc_c)
            }
        }
    }
}

impl<F: PrimeField> PlonkCircuit<F> {
    /// Arithmetizes an R1CS row `A·B = C` (each side an arbitrary linear
    /// combination): multi-term sides are first lowered to a single
    /// auxiliary wire through a chain of addition gates, then the row
    /// becomes one multiplication gate
    /// (`cₐwₐ · c_b w_b = c_c w_c  ⇒  q_M = cₐc_b, q_O = −c_c`). Each
    /// public wire additionally gets one input-pinning gate.
    ///
    /// # Errors
    ///
    /// [`ArithmetizeError::TooManyGates`] when the lowered gate count
    /// exceeds the field's FFT domain.
    pub fn from_r1cs(r1cs: &R1cs<F>) -> Result<Self, ArithmetizeError> {
        let _g = trace::region_profile("plonk_arithmetize");
        let num_public = r1cs.num_public_wires();

        let mut gb = GateBuilder {
            q_l: Vec::new(),
            q_r: Vec::new(),
            q_o: Vec::new(),
            q_m: Vec::new(),
            wires: [Vec::new(), Vec::new(), Vec::new()],
            num_base_wires: r1cs.num_wires(),
            aux_defs: Vec::new(),
        };

        // Public-input rows first: q_L·a + PI = 0 pins wire a to the input.
        // Unused slots alias the a-wire so the copy constraint is
        // trivially satisfied.
        for wire in 0..num_public {
            gb.push_gate(
                [F::one(), F::zero(), F::zero(), F::zero()],
                [wire, wire, wire],
            );
        }
        let public_rows: Vec<usize> = (0..num_public).collect();

        // One multiplication gate per R1CS row, preceded by the addition
        // gates its sides require.
        for cst in r1cs.constraints() {
            let (wa, ca) = gb.lower(&cst.a);
            let (wb, cb) = gb.lower(&cst.b);
            let (wc, cc) = gb.lower(&cst.c);
            gb.push_gate([F::zero(), F::zero(), -cc, ca * cb], [wa, wb, wc]);
            trace::control(2);
        }

        let raw_gates = gb.q_l.len();
        let n = raw_gates.next_power_of_two().max(4);
        if Radix2Domain::<F>::new(4 * n).is_none() {
            return Err(ArithmetizeError::TooManyGates { gates: raw_gates });
        }

        // Padding rows: all-zero selectors, wires alias wire 0 (the
        // constant-one wire, present in every witness).
        let GateBuilder {
            mut q_l,
            mut q_r,
            mut q_o,
            mut q_m,
            mut wires,
            num_base_wires,
            aux_defs,
        } = gb;
        q_l.resize(n, F::zero());
        q_r.resize(n, F::zero());
        q_o.resize(n, F::zero());
        q_m.resize(n, F::zero());
        let q_c = vec![F::zero(); n];
        for col in wires.iter_mut() {
            col.resize(n, 0);
        }

        // Copy-constraint permutation: cycle the positions of each wire.
        let num_wires = num_base_wires + aux_defs.len();
        let domain = Radix2Domain::<F>::new(n).expect("checked above");
        let ks = Self::coset_labels(&domain);
        let encode = |col: usize, row: usize| ks[col] * domain.element(row);
        let mut positions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_wires];
        for col in 0..3 {
            for row in 0..n {
                positions[wires[col][row]].push((col, row));
            }
        }
        let zero = vec![F::zero(); n];
        let mut sigma = [zero.clone(), zero.clone(), zero];
        for cycle in &positions {
            for (i, &(col, row)) in cycle.iter().enumerate() {
                let (ncol, nrow) = cycle[(i + 1) % cycle.len()];
                sigma[col][row] = encode(ncol, nrow);
            }
        }

        Ok(PlonkCircuit {
            n,
            q_l,
            q_r,
            q_o,
            q_m,
            q_c,
            wires,
            sigma,
            public_rows,
            num_base_wires,
            num_wires,
            aux_defs,
            coset_ks: ks,
        })
    }

    /// Extends a base R1CS witness with the auxiliary-wire values, in
    /// definition order.
    pub fn extend_witness(&self, witness: &[F]) -> Vec<F> {
        let mut full = Vec::with_capacity(self.num_wires);
        full.extend_from_slice(witness);
        for def in &self.aux_defs {
            let v = def.iter().fold(F::zero(), |acc, &(w, c)| acc + c * full[w]);
            full.push(v);
        }
        full
    }

    /// Picks coset labels `1, k₁, k₂` such that `H`, `k₁H`, `k₂H` are
    /// pairwise disjoint (kᵢⁿ ≠ 1 and (k₁/k₂)ⁿ ≠ 1).
    fn coset_labels(domain: &Radix2Domain<F>) -> [F; 3] {
        let n = domain.size() as u64;
        let in_h = |v: F| v.pow(&zkperf_ff::BigUint::from_u64(n)).is_one();
        let mut candidates = (2u64..).map(F::from_u64);
        let k1 = candidates
            .by_ref()
            .find(|&k| !in_h(k))
            .expect("non-coset element exists");
        let k2 = candidates
            .find(|&k| {
                !in_h(k) && !in_h(k * k1.inverse().expect("k1 != 0"))
            })
            .expect("second coset exists");
        [F::one(), k1, k2]
    }

    /// Gate-slot values `(a, b, c)` columns drawn from a full R1CS
    /// witness (auxiliary wires are computed here).
    pub fn wire_columns(&self, witness: &[F]) -> [Vec<F>; 3] {
        let full = self.extend_witness(witness);
        let col = |c: usize| -> Vec<F> {
            self.wires[c].iter().map(|&w| full[w]).collect()
        };
        [col(0), col(1), col(2)]
    }

    /// Public-input values (from the witness prefix) in row order.
    pub fn public_values(&self, witness: &[F]) -> Vec<F> {
        self.public_rows.iter().map(|&r| witness[r]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::Field;
    use zkperf_circuit::library::exponentiate;
    use zkperf_ff::bn254::Fr;

    #[test]
    fn exponentiate_arithmetizes() {
        let circuit = exponentiate::<Fr>(6);
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        // 6 constraints + 3 public wires (1, y, x) = 9 gates → n = 16.
        assert_eq!(plonk.n, 16);
        assert_eq!(plonk.public_rows.len(), 3);
        // Gate equation holds row-by-row on a real witness.
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let cols = plonk.wire_columns(w.full());
        let pi = plonk.public_values(w.full());
        // `row` indexes three wire columns and five selector columns at
        // once; a zipped iterator would only obscure that.
        #[allow(clippy::needless_range_loop)]
        for row in 0..plonk.n {
            let (a, b, c) = (cols[0][row], cols[1][row], cols[2][row]);
            let mut acc = plonk.q_l[row] * a
                + plonk.q_r[row] * b
                + plonk.q_o[row] * c
                + plonk.q_m[row] * a * b
                + plonk.q_c[row];
            if let Some(idx) = plonk.public_rows.iter().position(|&r| r == row) {
                acc -= pi[idx];
            }
            assert!(acc.is_zero(), "gate {row} violated");
        }
    }

    #[test]
    fn sigma_is_a_permutation_of_encoded_positions() {
        let circuit = exponentiate::<Fr>(4);
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        let domain = Radix2Domain::<Fr>::new(plonk.n).unwrap();
        let mut all: Vec<Fr> = Vec::new();
        let mut images: Vec<Fr> = Vec::new();
        for col in 0..3 {
            for row in 0..plonk.n {
                all.push(plonk.coset_ks[col] * domain.element(row));
                images.push(plonk.sigma[col][row]);
            }
        }
        all.sort();
        images.sort();
        assert_eq!(all, images, "σ permutes the 3n encoded slots");
    }

    /// Every gate must hold on the extended witness; shared with the
    /// multi-term lowering test below.
    #[allow(clippy::needless_range_loop)] // row indexes 8 parallel vectors
    fn assert_gates_hold(plonk: &PlonkCircuit<Fr>, witness: &[Fr]) {
        let cols = plonk.wire_columns(witness);
        let pi = plonk.public_values(witness);
        for row in 0..plonk.n {
            let (a, b, c) = (cols[0][row], cols[1][row], cols[2][row]);
            let mut acc = plonk.q_l[row] * a
                + plonk.q_r[row] * b
                + plonk.q_o[row] * c
                + plonk.q_m[row] * a * b
                + plonk.q_c[row];
            if let Some(idx) = plonk.public_rows.iter().position(|&r| r == row) {
                acc -= pi[idx];
            }
            assert!(acc.is_zero(), "gate {row} violated");
        }
    }

    #[test]
    fn multi_term_constraints_are_lowered_to_addition_chains() {
        // x + y = z uses a multi-term LC: (x + y)·1 = z. The lowering
        // spends one addition gate and one auxiliary wire on it.
        let src = "circuit s { public input x; private input y; output z = x + y; }";
        let circuit = zkperf_circuit::lang::compile::<Fr>(src).unwrap();
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        assert!(!plonk.aux_defs.is_empty(), "no auxiliary wires introduced");
        assert_eq!(plonk.num_wires, plonk.num_base_wires + plonk.aux_defs.len());
        let w = circuit
            .generate_witness(&[Fr::from_u64(3)], &[Fr::from_u64(4)])
            .unwrap();
        assert_gates_hold(&plonk, w.full());
        // The extended witness carries the running sums after the base
        // wires.
        let full = plonk.extend_witness(w.full());
        assert_eq!(full.len(), plonk.num_wires);
        assert_eq!(&full[..w.full().len()], w.full());
    }

    #[test]
    fn poseidon_circuit_arithmetizes_and_gates_hold() {
        // The Poseidon gadget's MDS rows are the heaviest multi-term LCs
        // in the library; the lowering must keep every gate satisfied.
        let circuit = zkperf_circuit::library::merkle_membership_poseidon::<Fr>(2);
        let path = [(Fr::from_u64(11), true), (Fr::from_u64(12), false)];
        let (inputs, _root) =
            zkperf_circuit::library::merkle_path_inputs_poseidon(Fr::from_u64(7), &path);
        let w = circuit.generate_witness(&[], &inputs).unwrap();
        let plonk = PlonkCircuit::from_r1cs(circuit.r1cs()).unwrap();
        assert!(!plonk.aux_defs.is_empty());
        assert_gates_hold(&plonk, w.full());
    }
}
