//! KZG polynomial commitments over a pairing engine.

use std::sync::OnceLock;

use rand::Rng;

use zkperf_ec::{msm, Affine, Engine, FixedBaseTable, Projective};
use zkperf_ff::Field;
use zkperf_poly::DensePolynomial;
use zkperf_trace as trace;

/// A structured reference string `([τⁱ]₁ for i ≤ degree, [1]₂, [τ]₂)`.
#[derive(Debug, Clone)]
pub struct Srs<E: Engine> {
    /// G1 powers of τ.
    pub g1_powers: Vec<Affine<E::G1>>,
    /// `[1]₂`.
    pub g2: Affine<E::G2>,
    /// `[τ]₂`.
    pub g2_tau: Affine<E::G2>,
    /// Lazily cached line coefficients for the two fixed G2 points — every
    /// opening check pairs against exactly these, so the Miller-loop lines
    /// are computed once per SRS.
    prepared_g2: OnceLock<(E::G2Prepared, E::G2Prepared)>,
}

/// A commitment to a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commitment<E: Engine>(pub Affine<E::G1>);

/// An opening witness `[q(τ)]₁` for `q = (p − p(z))/(x − z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpeningProof<E: Engine>(pub Affine<E::G1>);

impl<E: Engine> Srs<E> {
    /// Samples a fresh SRS supporting polynomials up to `max_degree`.
    ///
    /// τ is drawn from `rng` and dropped (trusted setup).
    pub fn generate<R: Rng + ?Sized>(max_degree: usize, rng: &mut R) -> Self {
        let _g = trace::region_profile("kzg_srs");
        let tau = loop {
            let t = E::Fr::random(rng);
            if !t.is_zero() {
                break t;
            }
        };
        let mut scalars = Vec::with_capacity(max_degree + 1);
        let mut acc = E::Fr::one();
        for _ in 0..=max_degree {
            scalars.push(acc);
            acc *= tau;
        }
        let table = FixedBaseTable::new(&Projective::<E::G1>::generator());
        let g1_powers = table.mul_batch(&scalars);
        let g2gen = Projective::<E::G2>::generator();
        Srs {
            g1_powers,
            g2: g2gen.to_affine(),
            g2_tau: (g2gen * tau).to_affine(),
            prepared_g2: OnceLock::new(),
        }
    }

    fn prepared_g2(&self) -> &(E::G2Prepared, E::G2Prepared) {
        self.prepared_g2
            .get_or_init(|| (E::prepare_g2(&self.g2), E::prepare_g2(&self.g2_tau)))
    }

    /// Highest committable degree.
    pub fn max_degree(&self) -> usize {
        self.g1_powers.len() - 1
    }

    /// Commits to `p` as `[p(τ)]₁`.
    ///
    /// # Panics
    ///
    /// Panics if `p.degree()` exceeds the SRS.
    pub fn commit(&self, p: &DensePolynomial<E::Fr>) -> Commitment<E> {
        let _g = trace::region_profile("kzg_commit");
        assert!(
            p.is_zero() || p.degree() <= self.max_degree(),
            "polynomial degree {} exceeds SRS degree {}",
            p.degree(),
            self.max_degree()
        );
        Commitment(msm(&self.g1_powers[..p.coeffs().len().max(1)], p.coeffs()).to_affine())
    }

    /// Opens `p` at `z`: returns `(p(z), [q(τ)]₁)`.
    pub fn open(&self, p: &DensePolynomial<E::Fr>, z: E::Fr) -> (E::Fr, OpeningProof<E>) {
        let _g = trace::region_profile("kzg_open");
        let y = p.evaluate(z);
        // q = (p − y) / (x − z), exact by construction.
        let shifted = p - &DensePolynomial::new(vec![y]);
        let divisor = DensePolynomial::new(vec![-z, E::Fr::one()]);
        let (q, rem) = shifted.divide(&divisor);
        debug_assert!(rem.is_zero(), "division must be exact at an evaluation");
        (y, OpeningProof(self.commit(&q).0))
    }

    /// Verifies that `commitment` opens to `value` at `z`:
    /// `e(C − y·G₁, G₂) = e(W, [τ]₂ − z·G₂)`.
    pub fn verify_opening(
        &self,
        commitment: &Commitment<E>,
        z: E::Fr,
        value: E::Fr,
        proof: &OpeningProof<E>,
    ) -> bool {
        let g1 = Projective::<E::G1>::generator();
        // The check e(C − yG, G₂) = e(W, [τ−z]₂) rearranged so both G2
        // inputs are the fixed SRS points: e(C − yG + zW, G₂) · e(−W, [τ]₂)
        // == 1. This moves the per-check scalar multiplication from G2 to
        // G1 and lets the pairing consume the SRS's cached line
        // coefficients.
        let acc =
            commitment.0.to_projective() + (g1 * value).neg() + proof.0.to_projective() * z;
        let (g2_lines, g2_tau_lines) = self.prepared_g2();
        E::multi_pairing_prepared(
            &[acc.to_affine(), proof.0.neg()],
            &[g2_lines, g2_tau_lines],
        )
        .is_one()
    }

    /// Verifies a ν-batched opening of several `(commitment, value)` pairs
    /// at the same point `z` with one pairing check.
    pub fn verify_batched_opening(
        &self,
        items: &[(Commitment<E>, E::Fr)],
        z: E::Fr,
        nu: E::Fr,
        proof: &OpeningProof<E>,
    ) -> bool {
        let mut combined = Projective::<E::G1>::identity();
        let mut combined_value = E::Fr::zero();
        let mut power = E::Fr::one();
        for (c, y) in items {
            combined += c.0.to_projective() * power;
            combined_value += *y * power;
            power *= nu;
        }
        self.verify_opening(&Commitment(combined.to_affine()), z, combined_value, proof)
    }

    /// Produces the ν-batched opening witness matching
    /// [`verify_batched_opening`](Self::verify_batched_opening).
    pub fn open_batched(
        &self,
        polys: &[&DensePolynomial<E::Fr>],
        z: E::Fr,
        nu: E::Fr,
    ) -> (Vec<E::Fr>, OpeningProof<E>) {
        let values: Vec<E::Fr> = polys.iter().map(|p| p.evaluate(z)).collect();
        let mut combined = DensePolynomial::zero();
        let mut power = E::Fr::one();
        for p in polys {
            let scaled =
                DensePolynomial::new(p.coeffs().iter().map(|&c| c * power).collect());
            combined = &combined + &scaled;
            power *= nu;
        }
        let (_, proof) = self.open(&combined, z);
        (values, proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;

    fn srs(deg: usize) -> Srs<Bn254> {
        let mut rng = zkperf_ff::test_rng();
        Srs::generate(deg, &mut rng)
    }

    fn poly(cs: &[u64]) -> DensePolynomial<Fr> {
        DensePolynomial::new(cs.iter().map(|&c| Fr::from_u64(c)).collect())
    }

    #[test]
    fn open_verify_roundtrip() {
        let srs = srs(8);
        let p = poly(&[5, 0, 3, 1]); // 5 + 3x² + x³
        let c = srs.commit(&p);
        let z = Fr::from_u64(7);
        let (y, w) = srs.open(&p, z);
        assert_eq!(y, p.evaluate(z));
        assert!(srs.verify_opening(&c, z, y, &w));
        // A wrong value fails.
        assert!(!srs.verify_opening(&c, z, y + Fr::one(), &w));
        // A wrong point fails.
        assert!(!srs.verify_opening(&c, z + Fr::one(), y, &w));
    }

    #[test]
    fn commitment_is_binding_across_polynomials() {
        let srs = srs(8);
        let c1 = srs.commit(&poly(&[1, 2, 3]));
        let c2 = srs.commit(&poly(&[1, 2, 4]));
        assert_ne!(c1, c2);
        // Zero polynomial commits to the identity.
        assert!(srs.commit(&DensePolynomial::zero()).0.infinity);
    }

    #[test]
    fn batched_opening_verifies_and_rejects_corruption() {
        let srs = srs(8);
        let polys = [poly(&[1, 1]), poly(&[9, 0, 2]), poly(&[4])];
        let refs: Vec<&DensePolynomial<Fr>> = polys.iter().collect();
        let commits: Vec<Commitment<Bn254>> =
            polys.iter().map(|p| srs.commit(p)).collect();
        let z = Fr::from_u64(11);
        let nu = Fr::from_u64(33);
        let (values, proof) = srs.open_batched(&refs, z, nu);
        let items: Vec<(Commitment<Bn254>, Fr)> =
            commits.iter().copied().zip(values.iter().copied()).collect();
        assert!(srs.verify_batched_opening(&items, z, nu, &proof));
        let mut bad = items.clone();
        bad[1].1 += Fr::one();
        assert!(!srs.verify_batched_opening(&bad, z, nu, &proof));
        // Different nu breaks the binding between proof and batch.
        assert!(!srs.verify_batched_opening(&items, z, nu + Fr::one(), &proof));
    }

    #[test]
    #[should_panic(expected = "exceeds SRS")]
    fn oversized_polynomial_is_rejected() {
        let srs = srs(2);
        let _ = srs.commit(&poly(&[1, 2, 3, 4]));
    }
}
