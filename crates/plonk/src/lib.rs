#![warn(missing_docs)]

//! A KZG-based PLONK proving system over the zkperf substrate.
//!
//! snarkjs — the toolchain the paper profiles — supports two proving
//! schemes, Groth16 and PlonK, and the paper notes PlonK proving runs about
//! twice as slow. This crate provides the PlonK side of that comparison:
//! KZG polynomial commitments on the suite's own pairing stack, PLONK
//! arithmetization of the benchmark circuits, and the full prover/verifier
//! (see `protocol` module docs for the variant details).
//!
//! # Examples
//!
//! ```
//! use zkperf_circuit::library::exponentiate;
//! use zkperf_ec::Bn254;
//! use zkperf_ff::{bn254::Fr, Field};
//! use zkperf_plonk::{plonk_prove, plonk_setup, plonk_verify};
//!
//! let circuit = exponentiate::<Fr>(8);
//! let mut rng = zkperf_ff::test_rng();
//! let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
//! let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[])?;
//! let proof = plonk_prove(&pk, witness.full())?;
//! assert!(plonk_verify(pk.vk(), &proof, witness.public()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod circuit;
mod kzg;
mod protocol;
mod transcript;

pub use circuit::{ArithmetizeError, PlonkCircuit};
pub use kzg::{Commitment, OpeningProof, Srs};
pub use protocol::{
    plonk_prove, plonk_setup, plonk_verify, PlonkError, PlonkProof, PlonkProverKey,
    PlonkVerifyingKey,
};
pub use transcript::Transcript;

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::{exponentiate, multiplier_chain};
    use zkperf_ec::Bn254;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn exponentiate_end_to_end() {
        let circuit = exponentiate::<Fr>(10);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
        let proof = plonk_prove(&pk, w.full()).unwrap();
        assert!(plonk_verify(pk.vk(), &proof, w.public()));
    }

    #[test]
    fn ambient_cancellation_stops_setup_and_prove() {
        let circuit = exponentiate::<Fr>(10);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();

        let token = zkperf_pool::CancelToken::new();
        token.cancel();
        let _scope = token.enter();
        assert!(matches!(
            plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng),
            Err(PlonkError::Cancelled)
        ));
        assert!(matches!(plonk_prove(&pk, w.full()), Err(PlonkError::Cancelled)));
        drop(_scope);
        // Outside the scope the prover runs normally again.
        assert!(plonk_prove(&pk, w.full()).is_ok());
    }

    #[test]
    fn wrong_public_inputs_are_rejected() {
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = plonk_prove(&pk, w.full()).unwrap();
        assert!(plonk_verify(pk.vk(), &proof, w.public()));
        let mut wrong = w.public().to_vec();
        wrong[1] += Fr::one(); // claim a different output
        assert!(!plonk_verify(pk.vk(), &proof, &wrong));
        // Wrong arity is also rejected.
        assert!(!plonk_verify(pk.vk(), &proof, &wrong[..2]));
    }

    #[test]
    fn corrupted_proofs_are_rejected() {
        let circuit = exponentiate::<Fr>(6);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let proof = plonk_prove(&pk, w.full()).unwrap();

        let mut bad = proof.clone();
        bad.evals_zeta[0] += Fr::one();
        assert!(!plonk_verify(pk.vk(), &bad, w.public()));

        let mut bad = proof.clone();
        bad.z_omega_eval += Fr::one();
        assert!(!plonk_verify(pk.vk(), &bad, w.public()));

        let mut bad = proof.clone();
        bad.t_commit = bad.z_commit;
        assert!(!plonk_verify(pk.vk(), &bad, w.public()));

        let mut bad = proof.clone();
        std::mem::swap(&mut bad.w_zeta, &mut bad.w_zeta_omega);
        assert!(!plonk_verify(pk.vk(), &bad, w.public()));
    }

    #[test]
    fn unsatisfying_witness_cannot_prove() {
        // Tamper with the witness: the grand product no longer closes and
        // the quotient is not a polynomial, so verification fails.
        let circuit = exponentiate::<Fr>(4);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        let mut tampered = w.full().to_vec();
        let last = tampered.len() - 1;
        tampered[last] += Fr::one();
        // Proving may internally debug-assert in dev; in release it yields
        // a proof the verifier rejects.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plonk_prove(&pk, &tampered)
        }));
        if let Ok(Ok(proof)) = result {
            assert!(!plonk_verify(pk.vk(), &proof, w.public()));
        }
    }

    #[test]
    fn private_inputs_stay_private() {
        let circuit = multiplier_chain::<Fr>(3);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let f = Fr::from_u64;
        let w = circuit.generate_witness(&[], &[f(2), f(3), f(7)]).unwrap();
        let proof = plonk_prove(&pk, w.full()).unwrap();
        assert!(plonk_verify(pk.vk(), &proof, &[f(1), f(42)]));
        assert!(!plonk_verify(pk.vk(), &proof, &[f(1), f(43)]));
    }

    #[test]
    fn witness_length_mismatch_is_an_error() {
        let c1 = exponentiate::<Fr>(4);
        let c2 = exponentiate::<Fr>(8);
        let mut rng = zkperf_ff::test_rng();
        let pk = plonk_setup::<Bn254, _>(c1.r1cs(), &mut rng).unwrap();
        let w2 = c2.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
        assert!(matches!(
            plonk_prove(&pk, w2.full()),
            Err(PlonkError::WitnessLength { .. })
        ));
    }
}
