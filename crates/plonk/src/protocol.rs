//! The PLONK protocol: setup, prove, verify.
//!
//! This is the "unlinearized" KZG-PLONK variant: the prover opens every
//! committed polynomial (wires, permutation accumulator, selectors, σ
//! columns, quotient) at the evaluation challenge and the verifier checks
//! the quotient identity numerically, rather than through the linearization
//! polynomial of the original paper. Proofs carry a few more field elements
//! but the algebra is identical, and the prover cost profile — the thing
//! this suite measures — matches vanilla PLONK: one more wire commitment
//! and several more FFT passes than Groth16, which is exactly why the paper
//! reports PlonK proving at about twice the Groth16 time. Blinding factors
//! are omitted (this suite characterizes performance, not deployments);
//! soundness is unaffected.

use rand::Rng;

use zkperf_circuit::R1cs;
use zkperf_ec::Engine;
use zkperf_ff::{BigUint, Field, PrimeField};
use zkperf_poly::{DensePolynomial, Radix2Domain};
use zkperf_trace as trace;

use crate::circuit::{ArithmetizeError, PlonkCircuit};
use crate::kzg::{Commitment, OpeningProof, Srs};
use crate::transcript::Transcript;

/// Polynomials opened at ζ, in transcript order.
const OPENED_AT_ZETA: usize = 13;

/// The prover's key material.
#[derive(Debug, Clone)]
pub struct PlonkProverKey<E: Engine> {
    circuit: PlonkCircuit<E::Fr>,
    srs: Srs<E>,
    vk: PlonkVerifyingKey<E>,
}

/// The verifier's key material.
#[derive(Debug, Clone)]
pub struct PlonkVerifyingKey<E: Engine> {
    /// Domain size.
    pub n: usize,
    /// Commitments to `q_L, q_R, q_O, q_M, q_C`.
    pub q_commits: [Commitment<E>; 5],
    /// Commitments to `S_σ1, S_σ2, S_σ3`.
    pub sigma_commits: [Commitment<E>; 3],
    /// Coset labels of the permutation encoding.
    pub coset_ks: [E::Fr; 3],
    /// Rows carrying public inputs.
    pub public_rows: Vec<usize>,
    /// `[1]₂` and `[τ]₂` plus the G1 powers needed for verification.
    pub srs: Srs<E>,
}

/// A PLONK proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlonkProof<E: Engine> {
    /// Commitments `[a], [b], [c]` to the wire polynomials.
    pub wire_commits: [Commitment<E>; 3],
    /// Commitment `[z]` to the permutation accumulator.
    pub z_commit: Commitment<E>,
    /// Commitment `[t]` to the quotient polynomial.
    pub t_commit: Commitment<E>,
    /// Evaluations at ζ, in protocol order:
    /// `a, b, c, z, s₁, s₂, s₃, q_L, q_R, q_O, q_M, q_C, t`.
    pub evals_zeta: [E::Fr; OPENED_AT_ZETA],
    /// `z(ζω)`.
    pub z_omega_eval: E::Fr,
    /// Batched opening witness at ζ.
    pub w_zeta: OpeningProof<E>,
    /// Opening witness for `z` at ζω.
    pub w_zeta_omega: OpeningProof<E>,
}

/// Errors from [`plonk_setup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlonkError {
    /// Arithmetization failed.
    Arithmetize(ArithmetizeError),
    /// Witness length does not match the circuit.
    WitnessLength {
        /// Wires expected.
        expected: usize,
        /// Wires supplied.
        got: usize,
    },
    /// The ambient [`zkperf_pool::CancelToken`] was cancelled or its
    /// deadline expired; the operation was abandoned at a round boundary.
    Cancelled,
}

impl std::fmt::Display for PlonkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlonkError::Arithmetize(e) => write!(f, "arithmetization failed: {e}"),
            PlonkError::WitnessLength { expected, got } => {
                write!(f, "witness has {got} wires, circuit expects {expected}")
            }
            PlonkError::Cancelled => write!(f, "plonk operation cancelled by caller or deadline"),
        }
    }
}

impl std::error::Error for PlonkError {}

impl From<ArithmetizeError> for PlonkError {
    fn from(e: ArithmetizeError) -> Self {
        PlonkError::Arithmetize(e)
    }
}

fn interpolate<F: PrimeField>(domain: &Radix2Domain<F>, evals: &[F]) -> DensePolynomial<F> {
    DensePolynomial::interpolate(domain, evals)
}

/// Montgomery batch inversion (one field inversion for the whole slice).
fn batch_inverse<F: PrimeField>(values: &[F]) -> Vec<F> {
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::one();
    for &v in values {
        prefix.push(acc);
        acc *= v;
    }
    let mut inv = acc.inverse().expect("no zero among divisors");
    let mut out = vec![F::zero(); values.len()];
    for i in (0..values.len()).rev() {
        out[i] = prefix[i] * inv;
        inv *= values[i];
    }
    out
}

/// Runs the PLONK setup over `r1cs`: arithmetizes, samples an SRS of size
/// `4n`, and commits the preprocessed polynomials.
///
/// # Errors
///
/// Returns [`PlonkError::Arithmetize`] for circuits outside the supported
/// gate form or too large for the field's FFT domain.
pub fn plonk_setup<E: Engine, R: Rng + ?Sized>(
    r1cs: &R1cs<E::Fr>,
    rng: &mut R,
) -> Result<PlonkProverKey<E>, PlonkError> {
    let _g = trace::region_profile("plonk_setup");
    let circuit = PlonkCircuit::from_r1cs(r1cs)?;
    if zkperf_pool::cancellation_pending() {
        return Err(PlonkError::Cancelled);
    }
    let n = circuit.n;
    let srs = Srs::<E>::generate(4 * n + 8, rng);
    let domain = Radix2Domain::<E::Fr>::new(n).expect("checked by arithmetization");

    let commit_evals = |evals: &[E::Fr]| srs.commit(&interpolate(&domain, evals));
    let q_commits = [
        commit_evals(&circuit.q_l),
        commit_evals(&circuit.q_r),
        commit_evals(&circuit.q_o),
        commit_evals(&circuit.q_m),
        commit_evals(&circuit.q_c),
    ];
    let sigma_commits = [
        commit_evals(&circuit.sigma[0]),
        commit_evals(&circuit.sigma[1]),
        commit_evals(&circuit.sigma[2]),
    ];
    let vk = PlonkVerifyingKey {
        n,
        q_commits,
        sigma_commits,
        coset_ks: circuit.coset_ks,
        public_rows: circuit.public_rows.clone(),
        srs: srs.clone(),
    };
    Ok(PlonkProverKey { circuit, srs, vk })
}

impl<E: Engine> PlonkProverKey<E> {
    /// The embedded verification key.
    pub fn vk(&self) -> &PlonkVerifyingKey<E> {
        &self.vk
    }
}

fn absorb_vk<E: Engine>(t: &mut Transcript<E::Fr>, vk: &PlonkVerifyingKey<E>)
where
    <E::G1 as zkperf_ec::CurveParams>::Base: PrimeField,
{
    t.absorb(E::Fr::from_u64(vk.n as u64));
    for c in vk.q_commits.iter().chain(vk.sigma_commits.iter()) {
        t.absorb_point(&c.0);
    }
}

/// Produces a PLONK proof for the full R1CS `witness`.
///
/// # Errors
///
/// Returns [`PlonkError::WitnessLength`] when the witness was generated
/// for a different circuit.
pub fn plonk_prove<E: Engine>(
    pk: &PlonkProverKey<E>,
    witness: &[E::Fr],
) -> Result<PlonkProof<E>, PlonkError>
where
    <E::G1 as zkperf_ec::CurveParams>::Base: PrimeField,
{
    let _g = trace::region_profile("plonk_prove");
    let circuit = &pk.circuit;
    if witness.len() != circuit.num_base_wires {
        return Err(PlonkError::WitnessLength {
            expected: circuit.num_base_wires,
            got: witness.len(),
        });
    }
    let n = circuit.n;
    let domain = Radix2Domain::<E::Fr>::new(n).expect("valid by construction");
    let omega = domain.group_gen();
    let [k0, k1, k2] = circuit.coset_ks;

    let cols = circuit.wire_columns(witness);
    let pi_values = circuit.public_values(witness);
    let mut pi_evals = vec![E::Fr::zero(); n];
    for (&row, &v) in circuit.public_rows.iter().zip(&pi_values) {
        pi_evals[row] = -v;
    }

    // Round 1: wire polynomials.
    let a_poly = interpolate(&domain, &cols[0]);
    let b_poly = interpolate(&domain, &cols[1]);
    let c_poly = interpolate(&domain, &cols[2]);
    let wire_commits = [
        pk.srs.commit(&a_poly),
        pk.srs.commit(&b_poly),
        pk.srs.commit(&c_poly),
    ];

    let mut transcript = Transcript::<E::Fr>::new(0x504c_4f4e); // "PLON"
    absorb_vk::<E>(&mut transcript, &pk.vk);
    for v in &pi_values {
        transcript.absorb(*v);
    }
    for c in &wire_commits {
        transcript.absorb_point(&c.0);
    }
    let beta = transcript.challenge();
    let gamma = transcript.challenge();

    if zkperf_pool::cancellation_pending() {
        return Err(PlonkError::Cancelled);
    }

    // Round 2: permutation accumulator z.
    let mut z_evals = Vec::with_capacity(n);
    let mut acc = E::Fr::one();
    let mut denominators = Vec::with_capacity(n);
    let mut numerators = Vec::with_capacity(n);
    // `i` indexes three witness columns, three sigma columns and the
    // domain at once; a zipped iterator would only obscure that.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let x = domain.element(i);
        let num = (cols[0][i] + beta * k0 * x + gamma)
            * (cols[1][i] + beta * k1 * x + gamma)
            * (cols[2][i] + beta * k2 * x + gamma);
        let den = (cols[0][i] + beta * circuit.sigma[0][i] + gamma)
            * (cols[1][i] + beta * circuit.sigma[1][i] + gamma)
            * (cols[2][i] + beta * circuit.sigma[2][i] + gamma);
        numerators.push(num);
        denominators.push(den);
    }
    let inv_dens = batch_inverse(&denominators);
    for i in 0..n {
        z_evals.push(acc);
        acc *= numerators[i] * inv_dens[i];
    }
    debug_assert!(acc.is_one(), "permutation grand product closes");
    let z_poly = interpolate(&domain, &z_evals);
    let z_commit = pk.srs.commit(&z_poly);
    transcript.absorb_point(&z_commit.0);
    let alpha = transcript.challenge();

    if zkperf_pool::cancellation_pending() {
        return Err(PlonkError::Cancelled);
    }

    // Round 3: quotient t = (gate + α·perm₁ + α²·perm₂) / Z_H on a 4n coset.
    let domain4 = Radix2Domain::<E::Fr>::new(4 * n).expect("checked at setup");
    let coset_eval = |p: &DensePolynomial<E::Fr>| -> Vec<E::Fr> {
        let mut buf = p.coeffs().to_vec();
        buf.resize(domain4.size(), E::Fr::zero());
        domain4.coset_fft_in_place(&mut buf);
        buf
    };
    let shift_omega = |p: &DensePolynomial<E::Fr>| -> DensePolynomial<E::Fr> {
        let mut pow = E::Fr::one();
        DensePolynomial::new(
            p.coeffs()
                .iter()
                .map(|&c| {
                    let v = c * pow;
                    pow *= omega;
                    v
                })
                .collect(),
        )
    };

    let selector_polys: Vec<DensePolynomial<E::Fr>> = [
        &circuit.q_l,
        &circuit.q_r,
        &circuit.q_o,
        &circuit.q_m,
        &circuit.q_c,
    ]
    .iter()
    .map(|e| interpolate(&domain, e))
    .collect();
    let sigma_polys: Vec<DensePolynomial<E::Fr>> = circuit
        .sigma
        .iter()
        .map(|e| interpolate(&domain, e))
        .collect();
    let pi_poly = interpolate(&domain, &pi_evals);
    let mut l1_evals = vec![E::Fr::zero(); n];
    l1_evals[0] = E::Fr::one();
    let l1_poly = interpolate(&domain, &l1_evals);

    let (a4, b4, c4) = (coset_eval(&a_poly), coset_eval(&b_poly), coset_eval(&c_poly));
    let z4 = coset_eval(&z_poly);
    let zw4 = coset_eval(&shift_omega(&z_poly));
    let q4: Vec<Vec<E::Fr>> = selector_polys.iter().map(coset_eval).collect();
    let s4: Vec<Vec<E::Fr>> = sigma_polys.iter().map(coset_eval).collect();
    let pi4 = coset_eval(&pi_poly);
    let l14 = coset_eval(&l1_poly);

    // Z_H and the identity polynomial on the coset.
    let m = domain4.size();
    let g = domain4.coset_shift();
    let gn = g.pow(&BigUint::from_u64(n as u64));
    let w4n = domain4.group_gen().pow(&BigUint::from_u64(n as u64));
    let mut zh_vals = Vec::with_capacity(m);
    let mut xs = Vec::with_capacity(m);
    let mut wn_pow = E::Fr::one();
    let mut x = g;
    for _ in 0..m {
        zh_vals.push(gn * wn_pow - E::Fr::one());
        xs.push(x);
        wn_pow *= w4n;
        x *= domain4.group_gen();
    }
    let zh_inv = batch_inverse(&zh_vals);

    let mut t_evals = Vec::with_capacity(m);
    let alpha2 = alpha.square();
    for j in 0..m {
        let gate = q4[0][j] * a4[j]
            + q4[1][j] * b4[j]
            + q4[2][j] * c4[j]
            + q4[3][j] * a4[j] * b4[j]
            + q4[4][j]
            + pi4[j];
        let perm1 = z4[j]
            * (a4[j] + beta * k0 * xs[j] + gamma)
            * (b4[j] + beta * k1 * xs[j] + gamma)
            * (c4[j] + beta * k2 * xs[j] + gamma)
            - zw4[j]
                * (a4[j] + beta * s4[0][j] + gamma)
                * (b4[j] + beta * s4[1][j] + gamma)
                * (c4[j] + beta * s4[2][j] + gamma);
        let perm2 = (z4[j] - E::Fr::one()) * l14[j];
        t_evals.push((gate + alpha * perm1 + alpha2 * perm2) * zh_inv[j]);
    }
    let mut t_coeffs = t_evals;
    domain4.coset_ifft_in_place(&mut t_coeffs);
    let t_poly = DensePolynomial::new(t_coeffs);
    let t_commit = pk.srs.commit(&t_poly);
    transcript.absorb_point(&t_commit.0);
    let zeta = transcript.challenge();

    // Round 4: evaluations.
    let opened: Vec<&DensePolynomial<E::Fr>> = vec![
        &a_poly,
        &b_poly,
        &c_poly,
        &z_poly,
        &sigma_polys[0],
        &sigma_polys[1],
        &sigma_polys[2],
        &selector_polys[0],
        &selector_polys[1],
        &selector_polys[2],
        &selector_polys[3],
        &selector_polys[4],
        &t_poly,
    ];
    let mut evals_zeta = [E::Fr::zero(); OPENED_AT_ZETA];
    for (slot, p) in evals_zeta.iter_mut().zip(&opened) {
        *slot = p.evaluate(zeta);
    }
    let z_omega_eval = z_poly.evaluate(zeta * omega);
    for v in evals_zeta.iter().chain(std::iter::once(&z_omega_eval)) {
        transcript.absorb(*v);
    }
    let nu = transcript.challenge();

    // Round 5: opening witnesses.
    let (_, w_zeta) = pk.srs.open_batched(&opened, zeta, nu);
    let (_, w_zeta_omega) = pk.srs.open(&z_poly, zeta * omega);

    Ok(PlonkProof {
        wire_commits,
        z_commit,
        t_commit,
        evals_zeta,
        z_omega_eval,
        w_zeta,
        w_zeta_omega,
    })
}

/// Verifies a PLONK proof against the public-input values (the circuit's
/// public witness prefix `[1, outputs…, public inputs…]`).
pub fn plonk_verify<E: Engine>(
    vk: &PlonkVerifyingKey<E>,
    proof: &PlonkProof<E>,
    public_values: &[E::Fr],
) -> bool
where
    <E::G1 as zkperf_ec::CurveParams>::Base: PrimeField,
{
    let _g = trace::region_profile("plonk_verify");
    if public_values.len() != vk.public_rows.len() {
        return false;
    }
    let n = vk.n;
    let domain = Radix2Domain::<E::Fr>::new(n).expect("vk domain is valid");
    let omega = domain.group_gen();
    let [k0, k1, k2] = vk.coset_ks;

    // Replay the transcript.
    let mut transcript = Transcript::<E::Fr>::new(0x504c_4f4e);
    absorb_vk::<E>(&mut transcript, vk);
    for v in public_values {
        transcript.absorb(*v);
    }
    for c in &proof.wire_commits {
        transcript.absorb_point(&c.0);
    }
    let beta = transcript.challenge();
    let gamma = transcript.challenge();
    transcript.absorb_point(&proof.z_commit.0);
    let alpha = transcript.challenge();
    transcript.absorb_point(&proof.t_commit.0);
    let zeta = transcript.challenge();
    for v in proof
        .evals_zeta
        .iter()
        .chain(std::iter::once(&proof.z_omega_eval))
    {
        transcript.absorb(*v);
    }
    let nu = transcript.challenge();

    let [a, b, c, z, s1, s2, s3, ql, qr, qo, qm, qc, t] = proof.evals_zeta;

    // Z_H(ζ), L₁(ζ) and PI(ζ).
    let zeta_n = zeta.pow(&BigUint::from_u64(n as u64));
    let zh = zeta_n - E::Fr::one();
    if zh.is_zero() {
        return false; // ζ landed in the domain (negligible probability)
    }
    let n_inv = E::Fr::from_u64(n as u64).inverse().expect("n < p");
    let lagrange_at = |row: usize| -> E::Fr {
        let w_i = domain.element(row);
        w_i * n_inv * zh * (zeta - w_i).inverse().expect("zeta not in domain")
    };
    let l1 = lagrange_at(0);
    let mut pi = E::Fr::zero();
    for (&row, &v) in vk.public_rows.iter().zip(public_values) {
        pi += -v * lagrange_at(row);
    }

    // The quotient identity at ζ.
    let gate = ql * a + qr * b + qo * c + qm * a * b + qc + pi;
    let perm1 = z
        * (a + beta * k0 * zeta + gamma)
        * (b + beta * k1 * zeta + gamma)
        * (c + beta * k2 * zeta + gamma)
        - proof.z_omega_eval
            * (a + beta * s1 + gamma)
            * (b + beta * s2 + gamma)
            * (c + beta * s3 + gamma);
    let perm2 = (z - E::Fr::one()) * l1;
    if gate + alpha * perm1 + alpha.square() * perm2 != t * zh {
        return false;
    }

    // KZG checks: the 13 openings at ζ (batched) and z at ζω.
    let commitments = [
        proof.wire_commits[0],
        proof.wire_commits[1],
        proof.wire_commits[2],
        proof.z_commit,
        vk.sigma_commits[0],
        vk.sigma_commits[1],
        vk.sigma_commits[2],
        vk.q_commits[0],
        vk.q_commits[1],
        vk.q_commits[2],
        vk.q_commits[3],
        vk.q_commits[4],
        proof.t_commit,
    ];
    let items: Vec<(Commitment<E>, E::Fr)> = commitments
        .iter()
        .copied()
        .zip(proof.evals_zeta.iter().copied())
        .collect();
    if !vk
        .srs
        .verify_batched_opening(&items, zeta, nu, &proof.w_zeta)
    {
        return false;
    }
    vk.srs.verify_opening(
        &proof.z_commit,
        zeta * omega,
        proof.z_omega_eval,
        &proof.w_zeta_omega,
    )
}
