//! A Fiat-Shamir transcript over the scalar field.
//!
//! Challenges are derived with an arithmetic sponge built on the same
//! MiMC-style permutation the circuit library uses. This binds every
//! commitment and evaluation into each challenge, which is what the
//! protocol's soundness argument needs; it is **not** a vetted
//! cryptographic hash and, like the rest of the suite, exists for workload
//! characterization rather than production deployment.

use zkperf_ec::{Affine, CurveParams};
use zkperf_ff::PrimeField;

/// The running Fiat-Shamir state.
#[derive(Debug, Clone)]
pub struct Transcript<F> {
    state: F,
}

fn permute<F: PrimeField>(mut t: F) -> F {
    for i in 0..8u64 {
        let base = t + F::from_u64(0x9e37_79b9 ^ (i * 0x85eb_ca6b));
        t = base.square().square() * base;
    }
    t
}

impl<F: PrimeField> Transcript<F> {
    /// Starts a transcript bound to a protocol label.
    pub fn new(label: u64) -> Self {
        Transcript {
            state: permute(F::from_u64(label)),
        }
    }

    /// Absorbs one field element.
    pub fn absorb(&mut self, v: F) {
        self.state = permute(self.state + v);
    }

    /// Absorbs a curve point (both coordinates, mapped through the scalar
    /// field by canonical reduction; infinity absorbs a marker).
    pub fn absorb_point<C>(&mut self, p: &Affine<C>)
    where
        C: CurveParams<Scalar = F>,
        C::Base: PrimeField,
    {
        if p.infinity {
            self.absorb(F::from_u64(0xdead));
            return;
        }
        self.absorb(F::from_biguint(&p.x.to_biguint()));
        self.absorb(F::from_biguint(&p.y.to_biguint()));
    }

    /// Squeezes the next challenge (never zero).
    pub fn challenge(&mut self) -> F {
        self.state = permute(self.state + F::one());
        if self.state.is_zero() {
            self.state = F::one();
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn challenges_depend_on_absorbed_data() {
        let mut a = Transcript::<Fr>::new(1);
        let mut b = Transcript::<Fr>::new(1);
        a.absorb(Fr::from_u64(5));
        b.absorb(Fr::from_u64(6));
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn identical_transcripts_agree() {
        let mut a = Transcript::<Fr>::new(7);
        let mut b = Transcript::<Fr>::new(7);
        for v in [3u64, 1, 4, 1, 5] {
            a.absorb(Fr::from_u64(v));
            b.absorb(Fr::from_u64(v));
        }
        assert_eq!(a.challenge(), b.challenge());
        assert_eq!(a.challenge(), b.challenge(), "stream stays in sync");
    }

    #[test]
    fn point_absorption_differs_from_infinity() {
        use zkperf_ec::bn254::G1Projective;
        let mut a = Transcript::<Fr>::new(2);
        let mut b = Transcript::<Fr>::new(2);
        a.absorb_point(&G1Projective::generator().to_affine());
        b.absorb_point(&zkperf_ec::bn254::G1Affine::identity());
        assert_ne!(a.challenge(), b.challenge());
    }
}
