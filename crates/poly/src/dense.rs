//! Dense univariate polynomials over a prime field.

use std::fmt;

use zkperf_ff::{Field, PrimeField};

use crate::domain::Radix2Domain;

/// A dense polynomial `c₀ + c₁x + …`, with no trailing zero coefficients.
///
/// # Examples
///
/// ```
/// use zkperf_poly::DensePolynomial;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// // (x + 1)(x + 2) = x² + 3x + 2
/// let a = DensePolynomial::new(vec![Fr::from_u64(1), Fr::from_u64(1)]);
/// let b = DensePolynomial::new(vec![Fr::from_u64(2), Fr::from_u64(1)]);
/// let c = a.mul(&b);
/// assert_eq!(c.evaluate(Fr::from_u64(10)), Fr::from_u64(132));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DensePolynomial<F: PrimeField> {
    coeffs: Vec<F>,
}

impl<F: PrimeField> DensePolynomial<F> {
    /// Constructs from coefficients (low degree first), trimming zeros.
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(Field::is_zero) {
            coeffs.pop();
        }
        DensePolynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        DensePolynomial { coeffs: Vec::new() }
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficients, low degree first (empty for zero).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Degree; zero polynomial reports 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: F) -> F {
        let mut acc = F::zero();
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Interpolates the polynomial taking the given values over `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `evals.len()` differs from the domain size.
    pub fn interpolate(domain: &Radix2Domain<F>, evals: &[F]) -> Self {
        let mut buf = evals.to_vec();
        domain.ifft_in_place(&mut buf);
        Self::new(buf)
    }

    /// Product via NTT (falls back to schoolbook for tiny inputs).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let result_len = self.coeffs.len() + other.coeffs.len() - 1;
        if result_len <= 16 {
            let mut out = vec![F::zero(); result_len];
            for (i, &a) in self.coeffs.iter().enumerate() {
                for (j, &b) in other.coeffs.iter().enumerate() {
                    out[i + j] += a * b;
                }
            }
            return Self::new(out);
        }
        let domain =
            Radix2Domain::<F>::new(result_len).expect("product degree within 2-adic range");
        let mut a = self.coeffs.clone();
        a.resize(domain.size(), F::zero());
        let mut b = other.coeffs.clone();
        b.resize(domain.size(), F::zero());
        domain.fft_in_place(&mut a);
        domain.fft_in_place(&mut b);
        for (x, y) in a.iter_mut().zip(&b) {
            *x *= *y;
        }
        domain.ifft_in_place(&mut a);
        Self::new(a)
    }

    /// Long division by `divisor`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divide(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.degree() < divisor.degree() || self.is_zero() {
            return (Self::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dlead_inv = divisor
            .coeffs
            .last()
            .expect("non-zero divisor")
            .inverse()
            .expect("leading coefficient non-zero");
        let dd = divisor.coeffs.len();
        let mut quo = vec![F::zero(); rem.len() - dd + 1];
        for i in (0..quo.len()).rev() {
            let c = rem[i + dd - 1] * dlead_inv;
            quo[i] = c;
            if c.is_zero() {
                continue;
            }
            for (j, &d) in divisor.coeffs.iter().enumerate() {
                let t = rem[i + j];
                rem[i + j] = t - c * d;
            }
        }
        (Self::new(quo), Self::new(rem))
    }
}

impl<F: PrimeField> std::ops::Add<&DensePolynomial<F>> for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn add(self, rhs: &DensePolynomial<F>) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or_else(F::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(F::zero);
            out.push(a + b);
        }
        DensePolynomial::new(out)
    }
}

impl<F: PrimeField> std::ops::Sub<&DensePolynomial<F>> for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn sub(self, rhs: &DensePolynomial<F>) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or_else(F::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(F::zero);
            out.push(a - b);
        }
        DensePolynomial::new(out)
    }
}

impl<F: PrimeField> fmt::Display for DensePolynomial<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| match i {
                0 => format!("{c}"),
                1 => format!("{c}*x"),
                _ => format!("{c}*x^{i}"),
            })
            .collect();
        f.write_str(&terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;

    fn poly(cs: &[u64]) -> DensePolynomial<Fr> {
        DensePolynomial::new(cs.iter().map(|&c| Fr::from_u64(c)).collect())
    }

    #[test]
    fn trims_trailing_zeros() {
        let p = DensePolynomial::new(vec![Fr::from_u64(1), Fr::zero(), Fr::zero()]);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.coeffs().len(), 1);
        assert!(DensePolynomial::new(vec![Fr::zero()]).is_zero());
    }

    #[test]
    fn evaluate_horner() {
        let p = poly(&[2, 3, 1]); // x² + 3x + 2
        assert_eq!(p.evaluate(Fr::from_u64(0)), Fr::from_u64(2));
        assert_eq!(p.evaluate(Fr::from_u64(4)), Fr::from_u64(30));
        assert_eq!(DensePolynomial::<Fr>::zero().evaluate(Fr::from_u64(9)), Fr::zero());
    }

    #[test]
    fn mul_small_and_fft_agree() {
        let mut rng = zkperf_ff::test_rng();
        let a = DensePolynomial::new((0..9).map(|_| Fr::random(&mut rng)).collect());
        let b = DensePolynomial::new((0..13).map(|_| Fr::random(&mut rng)).collect());
        // degree 20 product forces the FFT path; verify against schoolbook.
        let fast = a.mul(&b);
        let mut slow = vec![Fr::zero(); 21];
        for (i, &x) in a.coeffs().iter().enumerate() {
            for (j, &y) in b.coeffs().iter().enumerate() {
                slow[i + j] += x * y;
            }
        }
        assert_eq!(fast, DensePolynomial::new(slow));
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let a = poly(&[1, 2, 3]);
        assert!(a.mul(&DensePolynomial::zero()).is_zero());
    }

    #[test]
    fn division_reconstructs() {
        let mut rng = zkperf_ff::test_rng();
        let a = DensePolynomial::new((0..17).map(|_| Fr::random(&mut rng)).collect());
        let d = DensePolynomial::new((0..5).map(|_| Fr::random(&mut rng)).collect());
        let (q, r) = a.divide(&d);
        assert!(r.degree() < d.degree() || r.is_zero());
        assert_eq!(&q.mul(&d) + &r, a);
    }

    #[test]
    fn division_by_larger_degree() {
        let a = poly(&[1, 2]);
        let d = poly(&[1, 2, 3]);
        let (q, r) = a.divide(&d);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn interpolate_matches_evaluations() {
        let mut rng = zkperf_ff::test_rng();
        let domain = Radix2Domain::<Fr>::new(8).unwrap();
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let p = DensePolynomial::interpolate(&domain, &evals);
        for (i, &e) in evals.iter().enumerate() {
            assert_eq!(p.evaluate(domain.element(i)), e);
        }
    }

    #[test]
    fn display_formats_terms() {
        assert_eq!(poly(&[2, 0, 1]).to_string(), "2 + 1*x^2");
        assert_eq!(DensePolynomial::<Fr>::zero().to_string(), "0");
    }
}
