//! Radix-2 multiplicative evaluation domains and the in-place NTT.

use zkperf_ff::{batch_inverse, BigUint, PrimeField};
use zkperf_pool as pool;
use zkperf_trace as trace;

/// Smallest `log₂(size)` worth transforming on the pool; smaller domains
/// finish before the fan-out would pay for itself.
const PAR_MIN_FFT_LOG: u32 = 12;

/// Elements per pool task for a buffer of `n` elements: coarse enough to
/// amortize task dispatch, fine enough that even the smallest parallel
/// domain splits into several tasks. A pure function of `n` — never of
/// the thread count — per the deterministic-decomposition rule.
fn task_elems(n: usize) -> usize {
    (n / 8).clamp(1 << 10, 1 << 13)
}

/// Largest `log₂(size)` for which the domain precomputes its twiddle
/// tables at construction. Domains at or above [`FOUR_STEP_MIN_LOG`] run
/// the blocked four-step layout, whose row transforms read the cached
/// tables of the two √n-sized sub-domains instead — precomputing a
/// full-size table there would only burn memory. Domains between the two
/// thresholds do not exist (the caps are adjacent); an instrumented
/// (trace-active) large transform falls back to the flat pass with
/// incremental twiddles.
const MAX_CACHED_TWIDDLE_LOG: u32 = 17;

/// Smallest `log₂(size)` routed through the cache-blocked four-step NTT.
/// Below this the strided butterfly passes stay close enough to cache for
/// the flat radix-2 transform with cached twiddles to win; above it the
/// late passes stride across the whole buffer and thrash, so decomposing
/// into √n×√n row transforms — each cache-resident — is faster despite
/// three extra transposes.
const FOUR_STEP_MIN_LOG: u32 = 18;

/// Smallest `log₂(size)` at which a memory budget can spill the four-step
/// transform back to the flat in-place pass. Below this the scratch is a
/// few megabytes at most and never worth giving up the blocked layout.
const SPILL_MIN_LOG: u32 = 20;

/// Whether a domain of `size = 2^log_size` elements of `elem_bytes` each
/// should abandon the four-step layout under `budget`.
///
/// The four-step transform buys its cache locality with a full-size
/// scratch buffer (`size · elem_bytes`, allocated per transform). Under
/// `ZKPERF_MEM_BUDGET`, once that scratch would claim more than a quarter
/// of the budget on a domain of 2^20 points or larger, the transform
/// takes the flat in-place radix-2 pass with incremental twiddles instead
/// — O(1) scratch, and bit-identical output (the four-step path is pinned
/// to the flat one by the characterization oracles).
fn spill_to_flat(log_size: u32, size: usize, elem_bytes: usize, budget: Option<u64>) -> bool {
    if log_size < SPILL_MIN_LOG {
        return false;
    }
    match budget {
        Some(budget) => (size as u64).saturating_mul(elem_bytes as u64) > budget / 4,
        None => false,
    }
}

/// A multiplicative subgroup of size `2^log_size` with its NTT machinery.
///
/// Groth16 uses one domain per circuit: polynomials are interpolated over
/// the domain, and the quotient `h = (a·b − c)/z` is computed on a coset so
/// the vanishing polynomial `z` is invertible at every evaluation point.
///
/// # Examples
///
/// ```
/// use zkperf_poly::Radix2Domain;
/// use zkperf_ff::{Field, bn254::Fr};
///
/// let domain = Radix2Domain::<Fr>::new(4).unwrap();
/// let mut values: Vec<Fr> = (0..4).map(Fr::from_u64).collect();
/// let coeffs = values.clone();
/// domain.fft_in_place(&mut values);
/// domain.ifft_in_place(&mut values);
/// assert_eq!(values, coeffs);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Radix2Domain<F: PrimeField> {
    size: usize,
    log_size: u32,
    omega: F,
    omega_inv: F,
    size_inv: F,
    coset_shift: F,
    coset_shift_inv: F,
    /// `ω^(2^j)` for `j = 0..log_size`: the square chain behind
    /// [`element`](Self::element)'s allocation-free exponentiation.
    omega_pow2: Vec<F>,
    /// Bit-reversal-friendly forward twiddles `ω^j` for `j < size/2`, or
    /// empty above [`MAX_CACHED_TWIDDLE_LOG`].
    twiddles: Vec<F>,
    /// Inverse twiddles `ω^{−j}` for `j < size/2`, or empty when uncached.
    inv_twiddles: Vec<F>,
    /// The `(n1, n2)` sub-domains (`n1·n2 = size`, `n1 ≤ n2`) backing the
    /// four-step transform; present only for `log_size ≥ FOUR_STEP_MIN_LOG`.
    four_step: Option<Box<(Radix2Domain<F>, Radix2Domain<F>)>>,
}

impl<F: PrimeField> Radix2Domain<F> {
    /// Builds the smallest domain of size `≥ min_size`.
    ///
    /// Returns `None` when the required size exceeds the field's two-adic
    /// subgroup (`2^28` for BN254, `2^32` for BLS12-381).
    pub fn new(min_size: usize) -> Option<Self> {
        let size = min_size.max(1).next_power_of_two();
        let log_size = size.trailing_zeros();
        let omega = F::root_of_unity_pow2(log_size)?;
        let omega_inv = omega.inverse().expect("root of unity is non-zero");
        let size_inv = F::from_u64(size as u64)
            .inverse()
            .expect("domain size < p");
        // Pick a small coset shift outside the subgroup, i.e. one at which
        // the vanishing polynomial x^size − 1 does not vanish.
        let mut shift_candidate = 5u64;
        let coset_shift = loop {
            let g = F::from_u64(shift_candidate);
            if g.pow(&BigUint::from_u64(size as u64)) != F::one() || size == 1 {
                break g;
            }
            shift_candidate += 2;
        };
        let coset_shift_inv = coset_shift.inverse().expect("shift non-zero");
        let mut omega_pow2 = Vec::with_capacity(log_size as usize);
        let mut w = omega;
        for _ in 0..log_size {
            omega_pow2.push(w);
            w = w.square();
        }
        let (twiddles, inv_twiddles) = if (1..=MAX_CACHED_TWIDDLE_LOG).contains(&log_size) {
            (
                Self::power_table(omega, size / 2),
                Self::power_table(omega_inv, size / 2),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let four_step = if log_size >= FOUR_STEP_MIN_LOG {
            let log1 = log_size / 2;
            let sub1 = Self::new(1usize << log1)?;
            let sub2 = Self::new(1usize << (log_size - log1))?;
            Some(Box::new((sub1, sub2)))
        } else {
            None
        };
        Some(Radix2Domain {
            size,
            log_size,
            omega,
            omega_inv,
            size_inv,
            coset_shift,
            coset_shift_inv,
            omega_pow2,
            twiddles,
            inv_twiddles,
            four_step,
        })
    }

    /// `[1, g, g², …, g^(len−1)]` by incremental multiplication.
    fn power_table(g: F, len: usize) -> Vec<F> {
        let mut table = Vec::with_capacity(len);
        let mut acc = F::one();
        for _ in 0..len {
            table.push(acc);
            acc *= g;
        }
        table
    }

    /// Number of evaluation points.
    pub fn size(&self) -> usize {
        self.size
    }

    /// `log₂` of the size.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// The domain generator ω of order `size`.
    pub fn group_gen(&self) -> F {
        self.omega
    }

    /// The coset shift `g` used by [`coset_fft_in_place`](Self::coset_fft_in_place).
    pub fn coset_shift(&self) -> F {
        self.coset_shift
    }

    /// The `i`-th domain element `ω^i`.
    ///
    /// Served from the cached twiddle table when present (`ω^(n/2) = −1`
    /// folds the upper half), otherwise assembled from the `ω^(2^j)`
    /// square chain — either way, no big-integer exponentiation.
    pub fn element(&self, i: usize) -> F {
        let i = i % self.size;
        if i == 0 {
            return F::one();
        }
        let half = self.size / 2;
        if !self.twiddles.is_empty() {
            return if i < half {
                self.twiddles[i]
            } else {
                -self.twiddles[i - half]
            };
        }
        let mut acc = F::one();
        let mut rem = i;
        let mut bit = 0usize;
        while rem != 0 {
            if rem & 1 == 1 {
                acc *= self.omega_pow2[bit];
            }
            rem >>= 1;
            bit += 1;
        }
        acc
    }

    /// Evaluates the vanishing polynomial `z(x) = x^size − 1` at `x` with
    /// `log₂(size)` squarings.
    pub fn eval_vanishing(&self, x: F) -> F {
        let mut acc = x;
        for _ in 0..self.log_size {
            acc = acc.square();
        }
        acc - F::one()
    }

    /// In-place NTT: coefficients → evaluations over the domain.
    ///
    /// Domains of `2^18` points and up run the cache-blocked four-step
    /// layout; smaller ones the flat radix-2 passes. Both compute the
    /// exact same field elements, so the choice is invisible to callers.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn fft_in_place(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        if self.use_four_step() {
            self.four_step_any_size(values, false);
        } else {
            self.transform(values, &self.twiddles, self.omega);
        }
    }

    /// In-place inverse NTT: evaluations → coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn ifft_in_place(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        if self.use_four_step() {
            self.four_step_any_size(values, true);
        } else {
            self.transform(values, &self.inv_twiddles, self.omega_inv);
        }
        self.scale_by_size_inv(values);
    }

    /// True when transforms should take the blocked four-step path: only
    /// on domains large enough to have sub-domains, and never while a
    /// trace session is live (the characterization suite pins the flat
    /// serial op stream).
    fn use_four_step(&self) -> bool {
        self.four_step.is_some()
            && !trace::is_active()
            && !spill_to_flat(self.log_size, self.size, std::mem::size_of::<F>(), pool::mem::budget())
    }

    /// The final `1/n` scaling of an inverse transform.
    fn scale_by_size_inv(&self, values: &mut [F]) {
        if Self::use_pool(values.len()) {
            pool::parallel_chunks_mut(values, task_elems(self.size), |_, chunk| {
                for v in chunk.iter_mut() {
                    *v *= self.size_inv;
                }
            });
            return;
        }
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    /// NTT over the coset `g·H`: scales by powers of `g`, then transforms.
    pub fn coset_fft_in_place(&self, values: &mut [F]) {
        Self::distribute_powers(values, self.coset_shift);
        self.fft_in_place(values);
    }

    /// Inverse NTT over the coset `g·H`.
    pub fn coset_ifft_in_place(&self, values: &mut [F]) {
        self.ifft_in_place(values);
        Self::distribute_powers(values, self.coset_shift_inv);
    }

    fn distribute_powers(values: &mut [F], g: F) {
        if Self::use_pool(values.len()) {
            // Each chunk seeds its own power run with one exponentiation;
            // the products are the exact same field values the serial
            // prefix computes, so results are bit-identical.
            let grain = task_elems(values.len());
            pool::parallel_chunks_mut(values, grain, |ci, chunk| {
                let mut pow = g.pow(&BigUint::from_u64((ci * grain) as u64));
                for v in chunk.iter_mut() {
                    *v *= pow;
                    pow *= g;
                }
            });
            return;
        }
        let mut pow = F::one();
        for v in values.iter_mut() {
            *v *= pow;
            pow *= g;
        }
    }

    /// True when this transform should fan out across the pool: never
    /// while a trace session is live (the characterization suite must see
    /// the serial op stream), never on a 1-thread pool, and never below
    /// [`PAR_MIN_FFT_LOG`].
    fn use_pool(n: usize) -> bool {
        !trace::is_active() && pool::current_threads() > 1 && n >= (1 << PAR_MIN_FFT_LOG)
    }

    /// Iterative decimation-in-time NTT (bit-reversal permutation followed
    /// by log n butterfly passes).
    ///
    /// When `twiddles` is non-empty it holds `ω^j` for `j < n/2` and each
    /// butterfly reads its twiddle with a strided lookup — one multiplication
    /// per butterfly instead of two. Domains past the cache cap pass an
    /// empty table and fall back to incremental twiddle updates.
    fn transform(&self, values: &mut [F], twiddles: &[F], omega: F) {
        assert_eq!(
            values.len(),
            self.size,
            "buffer length must equal the domain size"
        );
        let n = self.size;
        if n == 1 {
            return;
        }
        if Self::use_pool(n) {
            self.transform_parallel(values, twiddles, omega);
            return;
        }
        self.transform_serial(values, twiddles, omega);
    }

    /// Serial body of [`transform`](Self::transform). Also the row kernel
    /// of the four-step path, whose fan-out happens at the row level — the
    /// per-row transform must not re-enter the pool.
    fn transform_serial(&self, values: &mut [F], twiddles: &[F], omega: F) {
        let n = self.size;
        debug_assert_eq!(values.len(), n);
        // Bit-reversal permutation.
        let shift = usize::BITS - self.log_size;
        for i in 0..n {
            let j = i.reverse_bits() >> shift;
            if i < j {
                values.swap(i, j);
                trace::data_move(2);
            }
        }
        // Butterfly passes.
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            if !twiddles.is_empty() {
                let mut start = 0;
                while start < n {
                    for k in 0..half {
                        let t = values[start + k + half] * twiddles[k * stride];
                        let u = values[start + k];
                        values[start + k] = u + t;
                        values[start + k + half] = u - t;
                        trace::control(1);
                    }
                    start += len;
                }
            } else {
                // w_len = ω^(n/len)
                let w_len = {
                    let mut w = omega;
                    let mut k = stride;
                    while k > 1 {
                        w = w.square();
                        k /= 2;
                    }
                    w
                };
                let mut start = 0;
                while start < n {
                    let mut w = F::one();
                    for k in 0..half {
                        let t = values[start + k + half] * w;
                        let u = values[start + k];
                        values[start + k] = u + t;
                        values[start + k + half] = u - t;
                        w *= w_len;
                        trace::control(1);
                    }
                    start += len;
                }
            }
            len *= 2;
        }
    }

    /// Layer-parallel variant of [`transform`](Self::transform): identical
    /// butterfly network, with each pass's independent work fanned out
    /// across the pool.
    ///
    /// Early passes (many small blocks) group whole blocks into tasks;
    /// late passes (few blocks larger than a task) split each block's
    /// butterfly range at `half`, pairing lower/upper sub-slices so every
    /// task owns disjoint data. Both decompositions depend only on `n`,
    /// and every butterfly computes the same field values as the serial
    /// pass (cached twiddles are shared lookups; uncached chunks seed
    /// their twiddle run with one exponentiation), so the output is
    /// bit-identical at any thread count.
    fn transform_parallel(&self, values: &mut [F], twiddles: &[F], omega: F) {
        let n = self.size;
        // Bit-reversal stays serial: the transpositions cross chunk
        // boundaries and the pass is a small slice of total work.
        let shift = usize::BITS - self.log_size;
        for i in 0..n {
            let j = i.reverse_bits() >> shift;
            if i < j {
                values.swap(i, j);
            }
        }
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            // w_len = ω^(n/len), used only on the uncached-twiddle path.
            let w_len = if twiddles.is_empty() {
                let mut w = omega;
                let mut k = stride;
                while k > 1 {
                    w = w.square();
                    k /= 2;
                }
                w
            } else {
                F::one()
            };
            if len <= task_elems(n) {
                // Many small blocks: group whole blocks per task.
                let blocks_per_task = (task_elems(n) / len).max(1);
                pool::parallel_chunks_mut(values, len * blocks_per_task, |_, span| {
                    for block in span.chunks_mut(len) {
                        let (lo, hi) = block.split_at_mut(half);
                        Self::butterflies(lo, hi, 0, stride, twiddles, F::one(), w_len);
                    }
                });
            } else {
                // Few large blocks: split each block's butterfly range.
                for block in values.chunks_mut(len) {
                    let (lo, hi) = block.split_at_mut(half);
                    let grain = task_elems(n);
                    let mut pairs: Vec<(&mut [F], &mut [F])> = lo
                        .chunks_mut(grain)
                        .zip(hi.chunks_mut(grain))
                        .collect();
                    pool::parallel_for_each_mut(&mut pairs, |pi, (lc, hc)| {
                        let k0 = pi * grain;
                        let w0 = if twiddles.is_empty() {
                            omega.pow(&BigUint::from_u64((stride * k0) as u64))
                        } else {
                            F::one()
                        };
                        Self::butterflies(lc, hc, k0, stride, twiddles, w0, w_len);
                    });
                }
            }
            len *= 2;
        }
    }

    /// One run of butterflies pairing `lo[k] ↔ hi[k]` for the butterfly
    /// indices `k0..k0+lo.len()` of a pass with twiddle stride `stride`.
    /// With cached `twiddles` each butterfly looks its factor up; without,
    /// the factor starts at `w0 = w_len^k0` and advances incrementally.
    fn butterflies(
        lo: &mut [F],
        hi: &mut [F],
        k0: usize,
        stride: usize,
        twiddles: &[F],
        w0: F,
        w_len: F,
    ) {
        if !twiddles.is_empty() {
            for (k, (u_slot, t_slot)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let t = *t_slot * twiddles[(k0 + k) * stride];
                let u = *u_slot;
                *u_slot = u + t;
                *t_slot = u - t;
            }
        } else {
            let mut w = w0;
            for (u_slot, t_slot) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = *t_slot * w;
                let u = *u_slot;
                *u_slot = u + t;
                *t_slot = u - t;
                w *= w_len;
            }
        }
    }

    /// Dispatches to the four-step body, building throwaway sub-domains
    /// when the forced entry points are used below [`FOUR_STEP_MIN_LOG`].
    fn four_step_any_size(&self, values: &mut [F], inverse: bool) {
        if self.log_size < 2 {
            // No n1·n2 split exists below four points; the flat transform
            // is the same computation.
            let (tw, om) = if inverse {
                (&self.inv_twiddles, self.omega_inv)
            } else {
                (&self.twiddles, self.omega)
            };
            self.transform(values, tw, om);
            return;
        }
        match self.four_step.as_deref() {
            Some((sub1, sub2)) => self.four_step_with(values, sub1, sub2, inverse),
            None => {
                let log1 = self.log_size / 2;
                let sub1 = Self::new(1usize << log1).expect("sub-domain of a valid domain");
                let sub2 = Self::new(1usize << (self.log_size - log1))
                    .expect("sub-domain of a valid domain");
                self.four_step_with(values, &sub1, &sub2, inverse);
            }
        }
    }

    /// Cache-blocked four-step (Bailey) NTT.
    ///
    /// Writing indices as `j = j1 + n1·j2` and `k = k2 + n2·k1` turns the
    /// size-`n` DFT into `n1` row DFTs of length `n2`, a twiddle by
    /// `ω^(j1·k2)`, and `n2` row DFTs of length `n1`:
    ///
    /// `X[k2 + n2·k1] = Σ_{j1} ω^(j1·k2) (ω^{n2})^{j1·k1}
    ///                  Σ_{j2} x[j1 + n1·j2] (ω^{n1})^{j2·k2}`
    ///
    /// Each row is contiguous and cache-resident, so the only passes that
    /// touch the full buffer are three tiled transposes. `ω^{n1}` and
    /// `ω^{n2}` are exactly the sub-domains' generators (both come from
    /// the same two-adic square chain), and field arithmetic is exact, so
    /// the output is bit-identical to the flat radix-2 transform — at any
    /// thread count, since every task owns an index-addressed slice and
    /// per-row twiddle seeds are computed by exponentiation, never carried
    /// across rows.
    fn four_step_with(&self, values: &mut [F], sub1: &Self, sub2: &Self, inverse: bool) {
        assert_eq!(
            values.len(),
            self.size,
            "buffer length must equal the domain size"
        );
        let n = self.size;
        let (n1, n2) = (sub1.size, sub2.size);
        debug_assert_eq!(n1 * n2, n);
        let omega = if inverse { self.omega_inv } else { self.omega };
        let (tw1, om1) = if inverse {
            (&sub1.inv_twiddles, sub1.omega_inv)
        } else {
            (&sub1.twiddles, sub1.omega)
        };
        let (tw2, om2) = if inverse {
            (&sub2.inv_twiddles, sub2.omega_inv)
        } else {
            (&sub2.twiddles, sub2.omega)
        };
        let mut scratch = vec![F::zero(); n];

        // Step 1: gather the n1 decimated sequences x[j1], x[j1+n1], …
        // into contiguous rows: scratch[j1·n2 + j2] = values[j2·n1 + j1].
        Self::transpose_into(values, &mut scratch, n2, n1);

        // Steps 2–3: length-n2 NTT on every row, then the inter-pass
        // twiddle ω^(j1·k2), advanced incrementally from the per-row seed
        // ω^j1 (row j1 = 0 needs no multiply, nor does column k2 = 0).
        let rows_per_task = (task_elems(n) / n2).max(1);
        pool::parallel_chunks_mut(&mut scratch, rows_per_task * n2, |ci, span| {
            for (r, row) in span.chunks_mut(n2).enumerate() {
                let j1 = ci * rows_per_task + r;
                sub2.transform_serial(row, tw2, om2);
                if j1 > 0 {
                    let w_step = omega.pow(&BigUint::from_u64(j1 as u64));
                    let mut w = w_step;
                    for v in row.iter_mut().skip(1) {
                        *v *= w;
                        w *= w_step;
                    }
                }
            }
        });

        // Step 4: transpose so each k2 column becomes a contiguous row:
        // values[k2·n1 + j1] = scratch[j1·n2 + k2].
        Self::transpose_into(&scratch, values, n1, n2);

        // Step 5: length-n1 NTT on every row.
        let rows_per_task = (task_elems(n) / n1).max(1);
        pool::parallel_chunks_mut(values, rows_per_task * n1, |_, span| {
            for row in span.chunks_mut(n1) {
                sub1.transform_serial(row, tw1, om1);
            }
        });

        // Step 6: the result of row k2 holds X[k2 + n2·k1] at slot k1 —
        // one last transpose into natural order, then copy back.
        Self::transpose_into(values, &mut scratch, n2, n1);
        let grain = task_elems(n);
        pool::parallel_chunks_mut(values, grain, |ci, chunk| {
            chunk.copy_from_slice(&scratch[ci * grain..ci * grain + chunk.len()]);
        });
    }

    /// Tiled out-of-place transpose: reads `src` as a row-major
    /// `src_rows × src_cols` matrix and writes its transpose into `dst`.
    /// 16×16-element tiles keep the strided reads within a handful of
    /// cache lines while the writes stream; tasks own disjoint bands of
    /// destination rows, so the decomposition is deterministic.
    fn transpose_into(src: &[F], dst: &mut [F], src_rows: usize, src_cols: usize) {
        debug_assert_eq!(src.len(), src_rows * src_cols);
        debug_assert_eq!(dst.len(), src.len());
        const TILE: usize = 16;
        pool::parallel_chunks_mut(dst, TILE * src_rows, |ci, band| {
            let c0 = ci * TILE;
            for r0 in (0..src_rows).step_by(TILE) {
                let r_hi = (r0 + TILE).min(src_rows);
                for (dc, drow) in band.chunks_mut(src_rows).enumerate() {
                    let c = c0 + dc;
                    for r in r0..r_hi {
                        drow[r] = src[r * src_cols + c];
                    }
                }
            }
        });
    }

    /// In-place NTT through the flat radix-2 passes regardless of domain
    /// size.
    ///
    /// Reference leg for the four-step crossover tests; production callers
    /// should use [`fft_in_place`](Self::fft_in_place), which picks the
    /// faster layout automatically.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn fft_in_place_radix2(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        self.transform(values, &self.twiddles, self.omega);
    }

    /// Inverse counterpart of [`fft_in_place_radix2`](Self::fft_in_place_radix2).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn ifft_in_place_radix2(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        self.transform(values, &self.inv_twiddles, self.omega_inv);
        self.scale_by_size_inv(values);
    }

    /// In-place NTT through the cache-blocked four-step layout regardless
    /// of domain size (domains below four points fall back to the flat
    /// transform — no row/column split exists).
    ///
    /// Lets tests and oracles exercise the blocked path at sizes small
    /// enough to cross-check cheaply; production callers should use
    /// [`fft_in_place`](Self::fft_in_place).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn fft_in_place_four_step(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        self.four_step_any_size(values, false);
    }

    /// Inverse counterpart of [`fft_in_place_four_step`](Self::fft_in_place_four_step).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != size`.
    pub fn ifft_in_place_four_step(&self, values: &mut [F]) {
        let _g = trace::region_profile("fft");
        self.four_step_any_size(values, true);
        self.scale_by_size_inv(values);
    }

    /// Evaluates all Lagrange basis polynomials of the domain at `x`,
    /// returning `Lᵢ(x)` for `i = 0..size`.
    ///
    /// Used by the Groth16 setup to evaluate the QAP matrices at τ.
    pub fn lagrange_coefficients_at(&self, x: F) -> Vec<F> {
        // L_i(x) = (z(x) / size) · ω^i / (x − ω^i); if x is in the domain the
        // vector is an indicator.
        let z = self.eval_vanishing(x);
        let mut out = Vec::with_capacity(self.size);
        if z.is_zero() {
            let mut elem = F::one();
            for _ in 0..self.size {
                out.push(if elem == x { F::one() } else { F::zero() });
                elem *= self.omega;
            }
            return out;
        }
        // out[i] starts as x − ω^i; one shared batch inversion replaces
        // `size` independent field inversions.
        let mut elem = F::one();
        for _ in 0..self.size {
            out.push(x - elem);
            elem *= self.omega;
        }
        batch_inverse(&mut out);
        // num walks zn·ω^i incrementally alongside the inverted denominators.
        let mut num = z * self.size_inv;
        for v in out.iter_mut() {
            *v *= num;
            num *= self.omega;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    fn naive_evals(coeffs: &[Fr], domain: &Radix2Domain<Fr>) -> Vec<Fr> {
        (0..domain.size())
            .map(|i| {
                let x = domain.element(i);
                let mut acc = Fr::zero();
                let mut xp = Fr::one();
                for &c in coeffs {
                    acc += c * xp;
                    xp *= x;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn sizes_round_up_to_powers_of_two() {
        assert_eq!(Radix2Domain::<Fr>::new(1).unwrap().size(), 1);
        assert_eq!(Radix2Domain::<Fr>::new(3).unwrap().size(), 4);
        assert_eq!(Radix2Domain::<Fr>::new(1025).unwrap().size(), 2048);
        // BN254 Fr supports at most 2^28.
        assert!(Radix2Domain::<Fr>::new(1 << 28).is_some());
        assert!(Radix2Domain::<Fr>::new((1 << 28) + 1).is_none());
    }

    #[test]
    fn omega_has_exact_order() {
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let w = d.group_gen();
        assert!(w.pow(&BigUint::from_u64(8)).is_one());
        assert!(!w.pow(&BigUint::from_u64(4)).is_one());
    }

    #[test]
    fn fft_matches_naive_evaluation() {
        let mut rng = zkperf_ff::test_rng();
        let d = Radix2Domain::<Fr>::new(16).unwrap();
        let coeffs: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
        let mut values = coeffs.clone();
        d.fft_in_place(&mut values);
        assert_eq!(values, naive_evals(&coeffs, &d));
    }

    #[test]
    fn fft_ifft_roundtrip_all_sizes() {
        let mut rng = zkperf_ff::test_rng();
        for log in 0..8 {
            let d = Radix2Domain::<Fr>::new(1 << log).unwrap();
            let coeffs: Vec<Fr> = (0..d.size()).map(|_| Fr::random(&mut rng)).collect();
            let mut buf = coeffs.clone();
            d.fft_in_place(&mut buf);
            d.ifft_in_place(&mut buf);
            assert_eq!(buf, coeffs, "size 2^{log}");
        }
    }

    #[test]
    fn size_zero_request_rounds_up_to_the_trivial_domain() {
        // new(0): next_power_of_two(0) = 1, so the trivial domain — the
        // degenerate boundary a caller hits with an empty constraint set.
        let d = Radix2Domain::<Fr>::new(0).unwrap();
        assert_eq!(d.size(), 1);
        assert_eq!(d.log_size(), 0);
    }

    #[test]
    fn trivial_domain_transforms_are_the_identity() {
        // On H = {1} every transform is the identity map and ω = 1; the
        // butterfly network is empty, so this exercises pure setup/teardown.
        let d = Radix2Domain::<Fr>::new(1).unwrap();
        assert!(d.group_gen().is_one());
        assert_eq!(d.element(0), Fr::one());
        let x = Fr::from_u64(7);
        let mut buf = vec![x];
        d.fft_in_place(&mut buf);
        assert_eq!(buf, vec![x]);
        d.ifft_in_place(&mut buf);
        assert_eq!(buf, vec![x]);
        d.coset_fft_in_place(&mut buf);
        d.coset_ifft_in_place(&mut buf);
        assert_eq!(buf, vec![x]);
        // Z_H(y) = y − 1 and the single Lagrange basis is the constant 1.
        assert!(d.eval_vanishing(Fr::one()).is_zero());
        assert_eq!(d.eval_vanishing(x), x - Fr::one());
        assert_eq!(d.lagrange_coefficients_at(x), vec![Fr::one()]);
    }

    #[test]
    fn two_point_domain_is_a_single_butterfly() {
        // Size 2: ω = −1 and the FFT is (a+b, a−b) — small enough to pin
        // against the closed form rather than another FFT.
        let d = Radix2Domain::<Fr>::new(2).unwrap();
        assert_eq!(d.group_gen(), -Fr::one());
        let (a, b) = (Fr::from_u64(3), Fr::from_u64(5));
        let mut buf = vec![a, b];
        d.fft_in_place(&mut buf);
        assert_eq!(buf, vec![a + b, a - b]);
        d.ifft_in_place(&mut buf);
        assert_eq!(buf, vec![a, b]);
    }

    #[test]
    fn all_zero_input_stays_zero_through_every_transform() {
        for log in [0u32, 1, 5] {
            let d = Radix2Domain::<Fr>::new(1 << log).unwrap();
            let zeros = vec![Fr::zero(); d.size()];
            let mut buf = zeros.clone();
            d.fft_in_place(&mut buf);
            assert_eq!(buf, zeros, "fft, size 2^{log}");
            d.coset_fft_in_place(&mut buf);
            assert_eq!(buf, zeros, "coset fft, size 2^{log}");
            d.ifft_in_place(&mut buf);
            assert_eq!(buf, zeros, "ifft, size 2^{log}");
        }
    }

    #[test]
    fn coset_roundtrip_and_distinctness() {
        let mut rng = zkperf_ff::test_rng();
        let d = Radix2Domain::<Fr>::new(32).unwrap();
        let coeffs: Vec<Fr> = (0..32).map(|_| Fr::random(&mut rng)).collect();
        let mut buf = coeffs.clone();
        d.coset_fft_in_place(&mut buf);
        let mut plain = coeffs.clone();
        d.fft_in_place(&mut plain);
        assert_ne!(buf, plain, "coset evaluations differ from subgroup ones");
        d.coset_ifft_in_place(&mut buf);
        assert_eq!(buf, coeffs);
    }

    #[test]
    fn vanishing_polynomial_vanishes_on_domain_only() {
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        for i in 0..8 {
            assert!(d.eval_vanishing(d.element(i)).is_zero());
        }
        assert!(!d.eval_vanishing(d.coset_shift()).is_zero());
    }

    #[test]
    fn lagrange_coefficients_interpolate() {
        let mut rng = zkperf_ff::test_rng();
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let x = Fr::random(&mut rng);
        let lag = d.lagrange_coefficients_at(x);
        let via_lagrange: Fr = lag.iter().zip(&evals).map(|(l, e)| *l * *e).sum();
        // Reference: interpolate coefficients with IFFT then evaluate.
        let mut coeffs = evals.clone();
        d.ifft_in_place(&mut coeffs);
        let mut acc = Fr::zero();
        let mut xp = Fr::one();
        for c in &coeffs {
            acc += *c * xp;
            xp *= x;
        }
        assert_eq!(via_lagrange, acc);
    }

    #[test]
    fn lagrange_at_domain_point_is_indicator() {
        let d = Radix2Domain::<Fr>::new(4).unwrap();
        let lag = d.lagrange_coefficients_at(d.element(2));
        for (i, l) in lag.iter().enumerate() {
            if i == 2 {
                assert!(l.is_one());
            } else {
                assert!(l.is_zero());
            }
        }
    }

    #[test]
    fn parallel_transforms_are_bit_identical_to_serial() {
        let mut rng = zkperf_ff::test_rng();
        let d = Radix2Domain::<Fr>::new(1 << PAR_MIN_FFT_LOG).unwrap();
        let coeffs: Vec<Fr> = (0..d.size()).map(|_| Fr::random(&mut rng)).collect();

        let run = |threads: usize| {
            zkperf_pool::set_threads(threads);
            let mut fwd = coeffs.clone();
            d.fft_in_place(&mut fwd);
            let mut coset = coeffs.clone();
            d.coset_fft_in_place(&mut coset);
            let mut round = fwd.clone();
            d.ifft_in_place(&mut round);
            zkperf_pool::set_threads(1);
            (fwd, coset, round)
        };
        let (fwd1, coset1, round1) = run(1);
        let (fwd4, coset4, round4) = run(4);
        assert_eq!(fwd1, fwd4);
        assert_eq!(coset1, coset4);
        assert_eq!(round1, round4);
        assert_eq!(round1, coeffs);
    }

    #[test]
    fn parallel_uncached_twiddle_path_matches_serial() {
        // Domains past the twiddle-cache cap exercise the pow-seeded
        // incremental twiddle path. Build a small domain and blank its
        // caches to reach that branch without a 2^21-point transform.
        let mut rng = zkperf_ff::test_rng();
        let mut d = Radix2Domain::<Fr>::new(1 << PAR_MIN_FFT_LOG).unwrap();
        d.twiddles = Vec::new();
        d.inv_twiddles = Vec::new();
        let coeffs: Vec<Fr> = (0..d.size()).map(|_| Fr::random(&mut rng)).collect();

        zkperf_pool::set_threads(1);
        let mut serial = coeffs.clone();
        d.fft_in_place(&mut serial);
        zkperf_pool::set_threads(4);
        let mut parallel = coeffs.clone();
        d.fft_in_place(&mut parallel);
        let mut round = parallel.clone();
        d.ifft_in_place(&mut round);
        zkperf_pool::set_threads(1);
        assert_eq!(serial, parallel);
        assert_eq!(round, coeffs);
    }

    #[test]
    fn budget_spills_large_transforms_to_the_flat_pass() {
        // Below the spill floor the blocked layout is kept at any budget.
        assert!(!spill_to_flat(18, 1 << 18, 32, Some(1)));
        // Unbudgeted large domains keep it too.
        assert!(!spill_to_flat(20, 1 << 20, 32, None));
        // A 2^20 domain of 32-byte elements carries a 32 MiB scratch:
        // budgets under 128 MiB spill to the flat pass, larger ones don't.
        assert!(spill_to_flat(20, 1 << 20, 32, Some(64 << 20)));
        assert!(!spill_to_flat(20, 1 << 20, 32, Some(256 << 20)));
    }

    #[test]
    fn four_step_matches_radix2_at_forced_sizes() {
        // Below FOUR_STEP_MIN_LOG the blocked path is never chosen
        // automatically, but the forced entry points exercise the same
        // code with throwaway sub-domains — cheap cross-checks of the
        // index algebra at odd and even log sizes (n1 ≠ n2 and n1 = n2).
        let mut rng = zkperf_ff::test_rng();
        for log in [0u32, 1, 2, 3, 5, 6, 10] {
            let d = Radix2Domain::<Fr>::new(1 << log).unwrap();
            let coeffs: Vec<Fr> = (0..d.size()).map(|_| Fr::random(&mut rng)).collect();

            let mut flat = coeffs.clone();
            d.fft_in_place_radix2(&mut flat);
            let mut blocked = coeffs.clone();
            d.fft_in_place_four_step(&mut blocked);
            assert_eq!(flat, blocked, "forward, size 2^{log}");

            d.ifft_in_place_four_step(&mut blocked);
            assert_eq!(blocked, coeffs, "round-trip, size 2^{log}");

            let mut inv_flat = flat.clone();
            d.ifft_in_place_radix2(&mut inv_flat);
            let mut inv_blocked = flat;
            d.ifft_in_place_four_step(&mut inv_blocked);
            assert_eq!(inv_flat, inv_blocked, "inverse, size 2^{log}");
        }
    }

    #[test]
    fn four_step_is_bit_identical_across_thread_counts() {
        let mut rng = zkperf_ff::test_rng();
        let d = Radix2Domain::<Fr>::new(1 << 10).unwrap();
        let coeffs: Vec<Fr> = (0..d.size()).map(|_| Fr::random(&mut rng)).collect();
        let run = |threads: usize| {
            zkperf_pool::set_threads(threads);
            let mut buf = coeffs.clone();
            d.fft_in_place_four_step(&mut buf);
            zkperf_pool::set_threads(1);
            buf
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn large_domains_carry_four_step_subdomains() {
        // 2^18 is the crossover: the domain skips the flat twiddle cache
        // and instead carries √n sub-domains whose generators are exact
        // powers of ω — ω^{n1} and ω^{n2} from the same square chain.
        let d = Radix2Domain::<Fr>::new(1 << FOUR_STEP_MIN_LOG).unwrap();
        assert!(d.twiddles.is_empty());
        let (sub1, sub2) = d.four_step.as_deref().expect("sub-domains present");
        assert_eq!(sub1.size() * sub2.size(), d.size());
        assert_eq!(sub1.omega, d.omega.pow(&BigUint::from_u64(sub2.size() as u64)));
        assert_eq!(sub2.omega, d.omega.pow(&BigUint::from_u64(sub1.size() as u64)));
        // Small domains keep the flat cached-twiddle layout.
        let small = Radix2Domain::<Fr>::new(1 << 10).unwrap();
        assert!(small.four_step.is_none());
        assert!(!small.twiddles.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn four_step_rejects_wrong_length() {
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let mut buf = vec![Fr::zero(); 4];
        d.fft_in_place_four_step(&mut buf);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn fft_rejects_wrong_length() {
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let mut buf = vec![Fr::zero(); 4];
        d.fft_in_place(&mut buf);
    }
}
