#![warn(missing_docs)]

//! Polynomial arithmetic for the zkperf suite: radix-2 NTT evaluation
//! domains and dense univariate polynomials over the scalar fields.
//!
//! Groth16 uses these to move between coefficient and evaluation form when
//! computing the quotient polynomial `h(x) = (a(x)·b(x) − c(x))/z(x)`.
//!
//! # Examples
//!
//! ```
//! use zkperf_poly::{DensePolynomial, Radix2Domain};
//! use zkperf_ff::{Field, bn254::Fr};
//!
//! let domain = Radix2Domain::<Fr>::new(8).unwrap();
//! let evals: Vec<Fr> = (0..8).map(Fr::from_u64).collect();
//! let p = DensePolynomial::interpolate(&domain, &evals);
//! assert_eq!(p.evaluate(domain.element(3)), Fr::from_u64(3));
//! ```

mod dense;
mod domain;

pub use dense::DensePolynomial;
pub use domain::Radix2Domain;
