//! A dependency-free work-stealing thread pool with *deterministic* task
//! decomposition.
//!
//! Every parallel primitive in this crate follows one rule: **the
//! decomposition of work into tasks, and the order results are combined,
//! depend only on the input size — never on the thread count or on
//! scheduling**. Each task writes to slots addressed by its task index, so
//! running the same input on 1, 2, or 64 threads produces bit-identical
//! output. This is what lets the proof system above this crate promise
//! byte-identical proofs at any `ZKPERF_THREADS` setting.
//!
//! # Execution model
//!
//! A process-wide pool of worker threads is spawned lazily on first use,
//! sized from the `ZKPERF_THREADS` environment variable (falling back to
//! [`std::thread::available_parallelism`]). A call to [`parallel_for`]
//! publishes a *job* — a borrowed closure plus an atomic index cursor — to
//! a shared registry. Idle workers steal the newest published job (LIFO,
//! so nested jobs drain before their parents' siblings) and claim task
//! indices from its cursor with a `fetch_add`; the **calling thread
//! participates too**, claiming indices in the same loop, which makes
//! nested `parallel_for` calls deadlock-free: a caller never blocks while
//! its own job still has unclaimed work.
//!
//! # Panic isolation
//!
//! Each task body runs under [`std::panic::catch_unwind`]. The first
//! captured payload is re-raised *on the calling thread* after all sibling
//! tasks complete, so a panic inside a pool task behaves exactly like a
//! panic in serial code: it unwinds the caller, not the process, and the
//! resilience layer's `catch_unwind`-based runners convert it into a typed
//! stage error.
//!
//! # Chaos hooks
//!
//! [`chaos_arm_panic_after`] arms a one-shot countdown, scoped to jobs
//! submitted by the arming thread. Tasks that call [`chaos_checkpoint`]
//! tick the countdown; the tick that drains it panics with
//! [`CHAOS_PANIC_MSG`]. Because the panic is raised *inside* the task
//! body, a task that wraps its work in `catch_unwind` can convert the
//! injected fault into a typed error — the fault-injection hook used by
//! the chaos-mode sweeps to prove worker panics never abort the process.
//!
//! # Cooperative cancellation and deadlines
//!
//! A [`CancelToken`] carries an explicit cancel flag plus an optional
//! absolute deadline. Installing it with [`CancelToken::enter`] makes it
//! the thread's ambient cancellation scope; jobs published to the pool
//! from inside that scope re-install the token in every task, so
//! [`cancellation_pending`] answers correctly on whichever thread the work
//! landed. Cancellation is strictly cooperative — kernels poll at their
//! own boundaries and surface a typed error — which keeps the
//! deterministic-decomposition guarantee intact: a job either completes
//! bit-identically or fails as a value, never half-writes.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod mem;

/// Every zkperf binary allocates through the tracking shim so
/// [`mem::peak_live_bytes`] is an exact high-water mark; registration
/// lives here because the whole workspace links `zkperf-pool`.
#[global_allocator]
static GLOBAL_ALLOCATOR: mem::TrackingAllocator = mem::TrackingAllocator;

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Upper bound on the pool size; oversubscription beyond this is clamped.
const MAX_THREADS: usize = 64;

/// Locks a mutex, ignoring poisoning. Task panics are confined by
/// `catch_unwind` before any pool lock is taken, so a poisoned lock can
/// only mean a panic in the pool's own bookkeeping — recovering the guard
/// is strictly better than cascading the abort.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One published batch of tasks: a type-erased borrowed closure plus the
/// claim cursor and completion bookkeeping.
struct Job {
    /// The task body. Points into the stack frame of the `parallel_for`
    /// caller; see the safety argument on [`parallel_for`] for why workers
    /// never dereference it after that frame returns.
    task: *const (dyn Fn(usize) + Sync + 'static),
    /// Total number of task indices in `0..count`.
    count: usize,
    /// Next unclaimed task index. Claimed with `fetch_add`; values at or
    /// beyond `count` mean the job is fully claimed.
    next: AtomicUsize,
    /// Number of *worker* threads that have joined (the caller is always
    /// a participant and is not counted). Capped so `set_threads(n)`
    /// limits per-job concurrency even when more workers are alive.
    joined: AtomicUsize,
    /// Maximum workers allowed to join this job.
    max_workers: usize,
    /// Completed-task count, paired with `done_cv` for the caller's wait.
    done: Mutex<usize>,
    /// Notified when `done` reaches `count`.
    done_cv: Condvar,
    /// First captured panic payload from any task, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Optional chaos countdown: the task execution that decrements this
    /// from 1 to 0 panics deliberately.
    chaos: Option<Arc<AtomicI64>>,
    /// Cancellation scope of the submitting thread, re-installed inside
    /// every task so [`cancellation_pending`] works across the pool.
    cancel: Option<Arc<CancelState>>,
}

// SAFETY: `task` is only dereferenced while the publishing caller is
// blocked inside `parallel_for` (all dereferences happen between claim and
// completion, and the caller waits for `done == count` before returning),
// and the closure itself is `Sync`, so sharing the pointer across threads
// is sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Registry shared between workers and callers.
struct Shared {
    /// Published jobs with unclaimed work, newest last.
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Notified when a job is published.
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Target concurrency including the calling thread.
    threads: AtomicUsize,
    /// Worker threads spawned so far (grows monotonically, never shrinks;
    /// `threads` caps how many may join any one job).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Chaos countdown armed on this thread; attached to jobs it submits.
    static LOCAL_CHAOS: RefCell<Option<Arc<AtomicI64>>> = const { RefCell::new(None) };
    /// The chaos countdown of the job whose task is currently executing on
    /// this thread (if any); read by [`chaos_checkpoint`].
    static CURRENT_CHAOS: RefCell<Option<Arc<AtomicI64>>> = const { RefCell::new(None) };
    /// The cancellation token governing work on this thread: installed by
    /// [`CancelToken::enter`] on submitting threads and re-installed inside
    /// pool tasks of jobs those threads publish, so a kernel can poll
    /// [`cancellation_pending`] no matter which thread its code landed on.
    static CURRENT_CANCEL: RefCell<Option<Arc<CancelState>>> = const { RefCell::new(None) };
}

/// Shared state behind a [`CancelToken`].
#[derive(Debug)]
struct CancelState {
    cancelled: AtomicBool,
    /// Absolute deadline; `None` means the token only cancels explicitly.
    deadline: Option<Instant>,
}

impl CancelState {
    fn pending(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A cooperative cancellation token with an optional absolute deadline.
///
/// Cancellation is *observed*, never imposed: the pool never kills a task.
/// Long-running kernels and stage boundaries poll
/// [`cancellation_pending`] and convert a pending cancellation into their
/// own typed error, so a cancelled proof job unwinds through ordinary
/// `Result` paths with every invariant intact.
///
/// Install a token for a region of work with [`CancelToken::enter`]; jobs
/// published to the pool from inside that region carry the token, making
/// deadline-aware task spawning transparent to the kernels.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use zkperf_pool::{cancellation_pending, CancelToken};
///
/// let token = CancelToken::with_timeout(Duration::from_secs(60));
/// let _scope = token.enter();
/// assert!(!cancellation_pending());
/// token.cancel();
/// assert!(cancellation_pending());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally reports cancellation once `deadline`
    /// passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token whose deadline is `budget` from now.
    #[must_use]
    pub fn with_timeout(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation. Idempotent; takes effect at the next poll.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.state.pending()
    }

    /// Time left until the deadline (`None` without one; zero once past).
    pub fn remaining(&self) -> Option<Duration> {
        self.state
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Installs this token as the calling thread's ambient cancellation
    /// scope until the guard drops. Scopes nest; the innermost wins.
    #[must_use]
    pub fn enter(&self) -> CancelScope {
        let prev = CURRENT_CANCEL.with(|c| c.replace(Some(Arc::clone(&self.state))));
        CancelScope { prev }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for an ambient cancellation scope (see [`CancelToken::enter`]).
pub struct CancelScope {
    prev: Option<Arc<CancelState>>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT_CANCEL.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Guard installing a job's cancel token as the executing thread's ambient
/// one for the duration of a task (the worker-side counterpart of
/// [`CancelToken::enter`]).
struct TaskCancelScope {
    prev: Option<Arc<CancelState>>,
}

impl TaskCancelScope {
    fn enter(cancel: Option<Arc<CancelState>>) -> Self {
        let prev = CURRENT_CANCEL.with(|c| c.replace(cancel));
        TaskCancelScope { prev }
    }
}

impl Drop for TaskCancelScope {
    fn drop(&mut self) {
        CURRENT_CANCEL.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Whether the ambient cancellation scope (if any) wants work to stop:
/// explicitly cancelled, or past its deadline. A no-op `false` outside any
/// scope, so kernels can poll unconditionally at their natural boundaries.
pub fn cancellation_pending() -> bool {
    CURRENT_CANCEL.with(|c| c.borrow().as_ref().is_some_and(|s| s.pending()))
}

fn ambient_cancel() -> Option<Arc<CancelState>> {
    CURRENT_CANCEL.with(|c| c.borrow().clone())
}

/// RAII guard installing a job's chaos countdown as this thread's ambient
/// one for the duration of a task, restoring the previous value on drop
/// (tasks nest when a worker participates in a job submitted from inside
/// another task).
struct ChaosScope {
    prev: Option<Arc<AtomicI64>>,
}

impl ChaosScope {
    fn enter(chaos: Option<Arc<AtomicI64>>) -> Self {
        let prev = CURRENT_CHAOS.with(|c| c.replace(chaos));
        ChaosScope { prev }
    }
}

impl Drop for ChaosScope {
    fn drop(&mut self) {
        CURRENT_CHAOS.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Message carried by deliberately injected pool-task panics, so the layers
/// above can distinguish chaos faults from organic ones.
pub const CHAOS_PANIC_MSG: &str = "chaos: injected pool task panic";

fn env_threads() -> usize {
    match std::env::var("ZKPERF_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let p = Pool {
            shared: Arc::new(Shared {
                jobs: Mutex::new(Vec::new()),
                work_cv: Condvar::new(),
            }),
            threads: AtomicUsize::new(1),
            spawned: Mutex::new(0),
        };
        p.resize(env_threads());
        p
    })
}

impl Pool {
    /// Sets the target thread count, spawning workers as needed. Workers
    /// are never torn down; a lowered count just stops them from joining
    /// new jobs.
    fn resize(&self, threads: usize) {
        let threads = threads.clamp(1, MAX_THREADS);
        self.threads.store(threads, Ordering::Relaxed);
        let wanted_workers = threads - 1;
        let mut spawned = lock_ignore_poison(&self.spawned);
        while *spawned < wanted_workers {
            let shared = Arc::clone(&self.shared);
            let name = format!("zkperf-pool-{}", *spawned);
            // Spawn failure (resource exhaustion) degrades to fewer
            // workers; the caller-participation model still makes progress.
            if thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
                .is_err()
            {
                break;
            }
            *spawned += 1;
        }
    }
}

/// Picks the newest published job this worker may join, consuming a join
/// slot. Fully-claimed jobs are pruned from the registry as a side effect.
fn pick_job(jobs: &mut Vec<Arc<Job>>) -> Option<Arc<Job>> {
    jobs.retain(|j| j.next.load(Ordering::Relaxed) < j.count);
    for job in jobs.iter().rev() {
        let joined = job
            .joined
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |j| {
                (j < job.max_workers).then_some(j + 1)
            });
        if joined.is_ok() {
            return Some(Arc::clone(job));
        }
    }
    None
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = lock_ignore_poison(&shared.jobs);
            loop {
                if let Some(job) = pick_job(&mut jobs) {
                    break job;
                }
                jobs = shared
                    .work_cv
                    .wait(jobs)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_tasks(&job);
    }
}

/// Claims and executes task indices from `job` until the cursor is
/// exhausted, capturing the first panic.
fn run_tasks(job: &Job) {
    loop {
        let idx = job.next.fetch_add(1, Ordering::Relaxed);
        if idx >= job.count {
            break;
        }
        // SAFETY: idx < count, so the publishing caller is still blocked in
        // `parallel_for` waiting for this task to complete; the closure it
        // borrows is alive.
        let task = unsafe { &*job.task };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _scope = ChaosScope::enter(job.chaos.clone());
            let _cancel = TaskCancelScope::enter(job.cancel.clone());
            task(idx);
        }));
        if let Err(payload) = result {
            let mut slot = lock_ignore_poison(&job.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = lock_ignore_poison(&job.done);
        *done += 1;
        if *done == job.count {
            job.done_cv.notify_all();
        }
    }
}

/// Ticks the ambient chaos countdown (the one attached to the job whose
/// task is currently running on this thread); the tick that drains it
/// panics with [`CHAOS_PANIC_MSG`]. A no-op when no fault is armed, so
/// production task bodies can call it unconditionally as their
/// fault-injection point.
pub fn chaos_checkpoint() {
    let chaos = CURRENT_CHAOS.with(|c| c.borrow().clone());
    if let Some(c) = chaos {
        if c.fetch_sub(1, Ordering::Relaxed) == 1 {
            panic!("{CHAOS_PANIC_MSG}");
        }
    }
}

/// Current target concurrency (including the calling thread). `1` means
/// every parallel primitive degrades to a plain serial loop.
pub fn current_threads() -> usize {
    pool().threads.load(Ordering::Relaxed)
}

/// Sets the pool's target concurrency (clamped to `1..=64`), spawning
/// workers on demand. Intended for tests and benchmark harnesses; normal
/// runs size the pool once from `ZKPERF_THREADS` at first use.
pub fn set_threads(threads: usize) {
    pool().resize(threads);
}

/// Arms a one-shot chaos fault: among tasks of jobs submitted *by this
/// thread* after arming, the `n`-th call to [`chaos_checkpoint`]
/// (1-based, counted across those jobs in execution order) panics with
/// [`CHAOS_PANIC_MSG`]. Disarm with [`chaos_disarm`]. Used by chaos-mode
/// tests to prove worker panics surface as typed errors instead of
/// aborting the process.
pub fn chaos_arm_panic_after(n: u64) {
    let n = i64::try_from(n.max(1)).unwrap_or(i64::MAX);
    LOCAL_CHAOS.with(|c| *c.borrow_mut() = Some(Arc::new(AtomicI64::new(n))));
}

/// Disarms a pending [`chaos_arm_panic_after`] fault on this thread.
pub fn chaos_disarm() {
    LOCAL_CHAOS.with(|c| *c.borrow_mut() = None);
}

fn local_chaos() -> Option<Arc<AtomicI64>> {
    LOCAL_CHAOS.with(|c| c.borrow().clone())
}

/// Runs `task(i)` for every `i in 0..count`, spreading the indices across
/// the pool. Blocks until all tasks complete. Task indices are claimed
/// dynamically, so **tasks must be independent**; every task sees the same
/// `&task` closure, so shared state must be `Sync`.
///
/// Determinism: which thread runs which index is scheduling-dependent, but
/// the index set itself is fixed, so closures that write only to
/// index-addressed slots produce identical results at any thread count.
///
/// Panics in tasks are re-raised on the calling thread after all sibling
/// tasks finish (first panic wins).
///
/// Tasks should be coarse (microseconds or more): each claim costs an
/// atomic RMW plus a completion-count lock. For fine-grained loops over
/// large arrays, use [`parallel_chunks_mut`] or [`parallel_fill`], which
/// group elements into chunks first.
pub fn parallel_for<F: Fn(usize) + Sync>(count: usize, task: F) {
    if count == 0 {
        return;
    }
    let p = pool();
    let threads = p.threads.load(Ordering::Relaxed);
    let chaos = local_chaos();
    if threads <= 1 || count == 1 {
        // Serial fast path: same semantics (including the ambient chaos
        // scope and panic propagation — a panic here unwinds the caller
        // directly).
        let _scope = ChaosScope::enter(chaos);
        for i in 0..count {
            task(i);
        }
        return;
    }

    // Erase the closure's lifetime so workers can hold the pointer.
    //
    // SAFETY (lifetime): this function does not return until `done ==
    // count`. A worker can only dereference `task` for an index it claimed
    // with `idx < count`, and each such claim is followed by a `done`
    // increment — so every dereference happens before the final increment
    // that releases this frame. Claims at or past `count` never touch the
    // pointer.
    let local: *const (dyn Fn(usize) + Sync) = &task;
    #[allow(clippy::missing_transmute_annotations)]
    let erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(local) };
    let job = Arc::new(Job {
        task: erased,
        count,
        next: AtomicUsize::new(0),
        joined: AtomicUsize::new(0),
        max_workers: threads - 1,
        done: Mutex::new(0),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
        chaos,
        cancel: ambient_cancel(),
    });

    {
        let mut jobs = lock_ignore_poison(&p.shared.jobs);
        jobs.push(Arc::clone(&job));
        p.shared.work_cv.notify_all();
    }

    // The caller participates, so nested parallel_for calls always make
    // progress even when every worker is busy elsewhere.
    run_tasks(&job);

    let mut done = lock_ignore_poison(&job.done);
    while *done < count {
        done = job
            .done_cv
            .wait(done)
            .unwrap_or_else(PoisonError::into_inner);
    }
    drop(done);

    let payload = lock_ignore_poison(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Pointer wrapper that lets disjoint-range writes cross the closure's
/// `Sync` bound. Safety is established at each use site: tasks index
/// non-overlapping ranges.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field access) so closures capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise
    /// capture the raw `*mut T` field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `body(chunk_index, chunk)` for each in
/// parallel. The chunk boundaries depend only on `data.len()` and
/// `chunk_len`, never on the thread count — the deterministic-decomposition
/// rule.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(chunks, |ci| {
        let start = ci * chunk_len;
        let n = chunk_len.min(len - start);
        // SAFETY: chunks cover disjoint index ranges of `data`, each task
        // runs exactly one chunk, and `data` outlives the parallel_for
        // call (which blocks until all tasks complete).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), n) };
        body(ci, chunk);
    });
}

/// Runs `body(i, &mut items[i])` for every element in parallel, giving
/// each task exclusive access to its element.
pub fn parallel_for_each_mut<T, F>(items: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    parallel_chunks_mut(items, 1, |i, chunk| {
        if let Some(item) = chunk.first_mut() {
            body(i, item);
        }
    });
}

/// Fills `out[i] = f(i)` for every index, parallelized over chunks of
/// `grain` consecutive indices. The chunking depends only on `out.len()`
/// and `grain`.
pub fn parallel_fill<T, F>(out: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let grain = grain.max(1);
    parallel_chunks_mut(out, grain, |ci, chunk| {
        let start = ci * grain;
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + j);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that mutate the global thread count.
    static THREAD_KNOB: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = lock_ignore_poison(&THREAD_KNOB);
        set_threads(n);
        let out = f();
        set_threads(1);
        out
    }

    #[test]
    fn one_thread_degrades_to_serial() {
        with_threads(1, || {
            // On a 1-thread pool the body runs inline on the caller: the
            // thread-id observed by every task is the caller's.
            let caller = std::thread::current().id();
            let hits = AtomicUsize::new(0);
            parallel_for(17, |_| {
                assert_eq!(std::thread::current().id(), caller);
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 17);
        });
    }

    #[test]
    fn empty_input_is_a_no_op() {
        with_threads(4, || {
            parallel_for(0, |_| panic!("must not run"));
            let mut empty: [u64; 0] = [];
            parallel_chunks_mut(&mut empty, 8, |_, _| panic!("must not run"));
            parallel_fill(&mut empty, 8, |_| panic!("must not run"));
        });
    }

    #[test]
    fn nested_parallel_for_completes() {
        with_threads(4, || {
            let total = AtomicU64::new(0);
            parallel_for(8, |i| {
                parallel_for(8, |j| {
                    total.fetch_add((i * 8 + j) as u64, Ordering::Relaxed);
                });
            });
            assert_eq!(total.into_inner(), (0..64).sum::<u64>());
        });
    }

    #[test]
    fn oversubscription_is_clamped_and_correct() {
        // Far more threads than cores (and past the clamp).
        with_threads(1000, || {
            assert_eq!(current_threads(), 64);
            let mut out = vec![0u64; 10_000];
            parallel_fill(&mut out, 37, |i| (i as u64).wrapping_mul(2_654_435_761));
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64).wrapping_mul(2_654_435_761));
            }
        });
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut out = vec![0u64; 4096];
                parallel_fill(&mut out, 64, |i| (i as u64).wrapping_mul(0x9e37_79b9));
                out
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }

    #[test]
    fn task_panic_unwinds_caller_not_process() {
        with_threads(4, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(32, |i| {
                    if i == 13 {
                        panic!("boom at 13");
                    }
                });
            }));
            let payload = result.expect_err("panic must propagate to the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("boom at 13"));
            // The pool is still usable afterwards.
            let hits = AtomicUsize::new(0);
            parallel_for(8, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 8);
        });
    }

    #[test]
    fn chaos_countdown_fires_once_at_a_checkpoint() {
        with_threads(2, || {
            chaos_arm_panic_after(5);
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(16, |_| chaos_checkpoint());
            }));
            chaos_disarm();
            let payload = result.expect_err("chaos fault must fire");
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("chaos"));
            // One-shot: the next job runs clean.
            parallel_for(16, |_| chaos_checkpoint());
        });
    }

    #[test]
    fn chaos_fault_inside_task_catch_unwind_is_typed_not_fatal() {
        // The pattern the sweep runner uses: each task wraps its body in
        // catch_unwind and converts the injected panic into a value.
        with_threads(2, || {
            chaos_arm_panic_after(3);
            let faults = AtomicUsize::new(0);
            parallel_for(8, |_| {
                if catch_unwind(AssertUnwindSafe(chaos_checkpoint)).is_err() {
                    faults.fetch_add(1, Ordering::Relaxed);
                }
            });
            chaos_disarm();
            assert_eq!(faults.into_inner(), 1);
        });
    }

    #[test]
    fn checkpoint_without_armed_fault_is_noop() {
        with_threads(2, || {
            chaos_checkpoint(); // outside any task
            parallel_for(4, |_| chaos_checkpoint());
        });
    }

    #[test]
    fn cancellation_is_ambient_and_scoped() {
        assert!(!cancellation_pending(), "no scope installed");
        let token = CancelToken::new();
        {
            let _scope = token.enter();
            assert!(!cancellation_pending());
            token.cancel();
            assert!(cancellation_pending());
        }
        // Scope dropped: the cancelled token no longer governs this thread.
        assert!(!cancellation_pending());
    }

    #[test]
    fn deadline_tokens_trip_after_expiry() {
        let token = CancelToken::with_timeout(Duration::from_millis(5));
        assert!(token.remaining().is_some());
        thread::sleep(Duration::from_millis(10));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
        // A generous deadline does not trip.
        let patient = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!patient.is_cancelled());
    }

    #[test]
    fn cancel_scope_propagates_into_pool_tasks() {
        with_threads(4, || {
            let token = CancelToken::new();
            token.cancel();
            let _scope = token.enter();
            let seen = AtomicUsize::new(0);
            parallel_for(32, |_| {
                if cancellation_pending() {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            });
            // Every task observed the submitting thread's cancellation,
            // regardless of which thread ran it.
            assert_eq!(seen.into_inner(), 32);
        });
    }

    #[test]
    fn nested_scopes_innermost_wins() {
        let outer = CancelToken::new();
        outer.cancel();
        let _o = outer.enter();
        assert!(cancellation_pending());
        {
            let inner = CancelToken::new();
            let _i = inner.enter();
            assert!(!cancellation_pending(), "inner scope shadows outer");
        }
        assert!(cancellation_pending(), "outer scope restored");
    }

    #[test]
    fn for_each_mut_gives_exclusive_access() {
        with_threads(4, || {
            let mut items: Vec<Vec<u32>> = (0..40).map(|i| vec![i]).collect();
            parallel_for_each_mut(&mut items, |i, item| {
                item.push(i as u32 * 2);
            });
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item, &vec![i as u32, i as u32 * 2]);
            }
        });
    }
}
