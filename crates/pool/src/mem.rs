//! The process-wide memory accountant behind out-of-core proving.
//!
//! Three independent meters live here:
//!
//! * **Heap high-water mark.** [`TrackingAllocator`] wraps the system
//!   allocator and maintains the live heap byte count plus its peak since
//!   the last [`reset_peak`]. It is installed as the `#[global_allocator]`
//!   of every zkperf binary (registration lives in this crate because
//!   everything links `zkperf-pool`), so [`peak_live_bytes`] is an exact
//!   allocation high-water mark, not a sampled estimate. Overhead is two
//!   relaxed atomic updates per allocation.
//! * **Streamed bytes.** Chunked readers/writers call
//!   [`add_streamed_bytes`] for every chunk that crosses the process
//!   boundary, giving benches and the serving report a bandwidth axis to
//!   put next to the latency one.
//! * **The budget knob.** [`budget`] parses `ZKPERF_MEM_BUDGET` once
//!   (plain bytes or a `K`/`M`/`G` suffix, powers of 1024). Budget-aware
//!   stages — streaming MSM chunk sizing, the four-step NTT spill — treat
//!   `None` as "stay on the in-memory fast path". [`set_budget`]
//!   overrides the environment for tests and tools.
//!
//! The budget never *changes values*: every consumer picks between
//! execution strategies that produce identical results (the streaming MSM
//! folds to the same group elements, the flat NTT is pinned bit-identical
//! to the four-step one), so proofs stay byte-identical at any budget.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Live heap bytes allocated through the tracking allocator.
static LIVE: AtomicUsize = AtomicUsize::new(0);

/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Total bytes moved through chunked streaming I/O.
static STREAMED: AtomicU64 = AtomicU64::new(0);

/// The active budget in bytes; `u64::MAX` means "unset".
static BUDGET: AtomicU64 = AtomicU64::new(u64::MAX);

/// Whether [`BUDGET`] has been initialized (from env or [`set_budget`]).
static BUDGET_INIT: AtomicBool = AtomicBool::new(false);

/// A `#[global_allocator]` shim over [`System`] that meters live and peak
/// heap bytes. Registered once, in this crate's root.
pub struct TrackingAllocator;

impl TrackingAllocator {
    #[inline]
    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: defers entirely to `System` for the actual memory management;
// the bookkeeping is side-effect-only atomics.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// Currently live heap bytes (allocations minus frees since process
/// start), as seen by the tracking allocator.
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed) as u64
}

/// The allocation high-water mark since the last [`reset_peak`].
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed) as u64
}

/// Restarts the peak meter at the current live level, so per-stage peaks
/// can be measured back to back.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Records `n` bytes moved through a streaming reader/writer.
pub fn add_streamed_bytes(n: u64) {
    STREAMED.fetch_add(n, Ordering::Relaxed);
}

/// Total bytes streamed since process start (monotone; snapshot before
/// and after a stage to attribute a delta).
pub fn streamed_bytes() -> u64 {
    STREAMED.load(Ordering::Relaxed)
}

/// Parses a budget string: plain bytes, or a `K`/`M`/`G` suffix
/// (case-insensitive, powers of 1024). Returns `None` on malformed input.
pub fn parse_budget(raw: &str) -> Option<u64> {
    let s = raw.trim();
    if s.is_empty() {
        return None;
    }
    let (digits, shift) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'K' => (&s[..s.len() - 1], 10),
        b'M' => (&s[..s.len() - 1], 20),
        b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let value: u64 = digits.trim().parse().ok()?;
    value.checked_shl(shift)
}

/// The active memory budget in bytes, or `None` for "unbudgeted" (the
/// in-memory fast paths). Initialized from `ZKPERF_MEM_BUDGET` on first
/// call; a malformed or zero value counts as unset (with a warning).
pub fn budget() -> Option<u64> {
    if !BUDGET_INIT.load(Ordering::Acquire) {
        let parsed = match std::env::var("ZKPERF_MEM_BUDGET") {
            Ok(raw) => match parse_budget(&raw) {
                Some(0) | None => {
                    eprintln!(
                        "zkperf: ignoring ZKPERF_MEM_BUDGET={raw:?} \
                         (expected bytes with optional K/M/G suffix)"
                    );
                    u64::MAX
                }
                Some(b) => b,
            },
            Err(_) => u64::MAX,
        };
        // A concurrent set_budget wins: only install the env value if no
        // explicit budget has landed in the meantime.
        if BUDGET_INIT
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            BUDGET.store(parsed, Ordering::Release);
        }
    }
    match BUDGET.load(Ordering::Acquire) {
        u64::MAX => None,
        b => Some(b),
    }
}

/// Overrides the budget for the rest of the process (tests and tools);
/// `None` restores the unbudgeted fast path.
pub fn set_budget(bytes: Option<u64>) {
    BUDGET.store(bytes.unwrap_or(u64::MAX), Ordering::Release);
    BUDGET_INIT.store(true, Ordering::Release);
}

/// The OS-reported peak resident set size (`VmHWM` from
/// `/proc/self/status`), in bytes. `None` off Linux or if the field is
/// missing. This is the whole-process number the operator pays for;
/// [`peak_live_bytes`] is the allocator's view of the same pressure.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_tracks_live_and_peak() {
        reset_peak();
        let before = live_bytes();
        let buf = vec![0u8; 1 << 20];
        assert!(live_bytes() >= before + (1 << 20));
        assert!(peak_live_bytes() >= before + (1 << 20));
        drop(buf);
        assert!(live_bytes() < before + (1 << 20));
        // The peak survives the free until reset.
        assert!(peak_live_bytes() >= before + (1 << 20));
        reset_peak();
        assert!(peak_live_bytes() < before + (1 << 20));
    }

    #[test]
    fn parse_budget_suffixes() {
        assert_eq!(parse_budget("1024"), Some(1024));
        assert_eq!(parse_budget("64K"), Some(64 << 10));
        assert_eq!(parse_budget("32m"), Some(32 << 20));
        assert_eq!(parse_budget(" 2G "), Some(2 << 30));
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("abc"), None);
        assert_eq!(parse_budget("12X"), None);
        assert_eq!(parse_budget("-5"), None);
    }

    #[test]
    fn set_budget_roundtrip() {
        set_budget(Some(123));
        assert_eq!(budget(), Some(123));
        set_budget(None);
        assert_eq!(budget(), None);
    }

    #[test]
    fn streamed_counter_is_monotone() {
        let before = streamed_bytes();
        add_streamed_bytes(4096);
        assert_eq!(streamed_bytes(), before + 4096);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}
