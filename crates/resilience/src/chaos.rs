//! The `ZKPERF_CHAOS` environment knob.
//!
//! * unset, empty, `0`, or `off` — chaos disabled (the default).
//! * a decimal `u64` — chaos armed with that seed.
//! * any other string — chaos armed with a seed hashed from the string.
//!
//! When armed, pipeline components that opt in (the sweep runner, the
//! `chaos` binary) derive per-target [`FaultPlan`]s from the seed and
//! inject faults at stage boundaries. Everything stays deterministic:
//! the same seed injects the same faults.

use crate::fault::FaultPlan;

/// Parsed state of the `ZKPERF_CHAOS` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// No fault injection.
    Off,
    /// Fault injection armed with this seed.
    Seeded(u64),
}

impl ChaosMode {
    /// Parses a raw knob value (see module docs for the grammar).
    pub fn parse(raw: &str) -> ChaosMode {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == "0" || trimmed.eq_ignore_ascii_case("off") {
            return ChaosMode::Off;
        }
        if let Ok(seed) = trimmed.parse::<u64>() {
            return ChaosMode::Seeded(seed);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in trimmed.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        ChaosMode::Seeded(h | 1)
    }

    /// The plan for a named injection target, or `None` when off.
    pub fn plan_for(&self, label: &str) -> Option<FaultPlan> {
        match *self {
            ChaosMode::Off => None,
            ChaosMode::Seeded(seed) => Some(FaultPlan::from_seed(seed).derive(label)),
        }
    }

    /// Whether injection is armed.
    pub fn is_armed(&self) -> bool {
        matches!(self, ChaosMode::Seeded(_))
    }
}

/// Reads `ZKPERF_CHAOS` from the environment.
///
/// Read fresh on each call (it is cheap), so tests can set and unset the
/// knob without process-global caching surprises.
pub fn chaos_mode() -> ChaosMode {
    match std::env::var("ZKPERF_CHAOS") {
        Ok(raw) => ChaosMode::parse(&raw),
        Err(_) => ChaosMode::Off,
    }
}

/// Arms the thread pool's one-shot panic injector from `mode`, choosing
/// which upcoming pool-task checkpoint panics deterministically from the
/// seed (label `"pool"`). Returns the 1-based checkpoint index, or `None`
/// when chaos is off. Callers disarm with [`zkperf_pool::chaos_disarm`]
/// once the protected region ends.
pub fn arm_pool_chaos_with(mode: ChaosMode) -> Option<u64> {
    let mut plan = mode.plan_for("pool")?;
    // Bound the countdown so the fault lands inside even a small sweep.
    let nth = plan.pick(16).unwrap_or(0) as u64 + 1;
    zkperf_pool::chaos_arm_panic_after(nth);
    Some(nth)
}

/// [`arm_pool_chaos_with`] driven by the ambient `ZKPERF_CHAOS` knob.
pub fn arm_pool_chaos() -> Option<u64> {
    arm_pool_chaos_with(chaos_mode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        assert_eq!(ChaosMode::parse(""), ChaosMode::Off);
        assert_eq!(ChaosMode::parse("  "), ChaosMode::Off);
        assert_eq!(ChaosMode::parse("0"), ChaosMode::Off);
        assert_eq!(ChaosMode::parse("off"), ChaosMode::Off);
        assert_eq!(ChaosMode::parse("OFF"), ChaosMode::Off);
        assert_eq!(ChaosMode::parse("17"), ChaosMode::Seeded(17));
        assert!(ChaosMode::parse("banana").is_armed());
        assert_eq!(ChaosMode::parse("banana"), ChaosMode::parse("banana"));
        assert_ne!(ChaosMode::parse("banana"), ChaosMode::parse("mango"));
    }

    #[test]
    fn pool_chaos_arms_only_when_seeded() {
        assert_eq!(arm_pool_chaos_with(ChaosMode::Off), None);
        let nth = arm_pool_chaos_with(ChaosMode::Seeded(7)).unwrap();
        assert!((1..=16).contains(&nth));
        // Same seed, same checkpoint: deterministic injection.
        let again = arm_pool_chaos_with(ChaosMode::Seeded(7)).unwrap();
        assert_eq!(nth, again);
        zkperf_pool::chaos_disarm();
    }

    #[test]
    fn plans_are_per_label() {
        let mode = ChaosMode::Seeded(99);
        let mut a = mode.plan_for("proof").unwrap();
        let mut b = mode.plan_for("vkey").unwrap();
        assert_ne!(
            (0..4).map(|_| a.pick(1 << 20)).collect::<Vec<_>>(),
            (0..4).map(|_| b.pick(1 << 20)).collect::<Vec<_>>()
        );
        assert!(ChaosMode::Off.plan_for("proof").is_none());
    }
}
