//! Deterministic fault planning and injection.
//!
//! A [`FaultPlan`] is a seeded stream of fault choices: every decision it
//! makes is a pure function of the seed, so a failing chaos run can be
//! replayed exactly by re-running with the printed seed.

use std::io::{self, Read, Write};

/// One concrete fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` (0..8) of the byte at `offset`.
    BitFlip { offset: usize, bit: u8 },
    /// Drop every byte past `keep`.
    Truncate { keep: usize },
    /// Reader reports end-of-file after `after` bytes.
    ShortRead { after: usize },
    /// Reader returns an I/O error after `after` bytes.
    FailRead { after: usize },
    /// Writer accepts only `after` bytes, then writes zero-length.
    ShortWrite { after: usize },
    /// Writer returns an I/O error after `after` bytes.
    FailWrite { after: usize },
    /// A pipeline stage boundary reports a forced error.
    StageError,
}

impl FaultKind {
    /// Applies an artifact-shape fault (`BitFlip`/`Truncate`) to a byte
    /// buffer. I/O and stage faults do not modify buffers and are
    /// ignored here.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            FaultKind::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= 1 << (bit & 7);
                }
            }
            FaultKind::Truncate { keep } => bytes.truncate(keep),
            _ => {}
        }
    }
}

/// Seeded source of fault decisions (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed this plan was built from, for replay messages.
    pub seed: u64,
    state: u64,
}

impl FaultPlan {
    /// Builds a plan whose entire decision stream is determined by
    /// `seed`.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlan { seed, state: seed }
    }

    /// Derives an independent plan for a named target, so corrupting
    /// "proof" and "vkey" artifacts under one seed uses uncorrelated
    /// streams.
    pub fn derive(&self, label: &str) -> FaultPlan {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        FaultPlan::from_seed(h)
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws a value in `0..bound` (`None` when `bound` is zero).
    pub fn pick(&mut self, bound: usize) -> Option<usize> {
        if bound == 0 {
            None
        } else {
            Some((self.next() % bound as u64) as usize)
        }
    }

    /// Chooses a single-bit flip somewhere inside a `len`-byte artifact.
    pub fn bit_flip(&mut self, len: usize) -> Option<FaultKind> {
        let offset = self.pick(len)?;
        let bit = (self.next() % 8) as u8;
        Some(FaultKind::BitFlip { offset, bit })
    }

    /// Chooses a truncation point strictly inside a `len`-byte artifact.
    pub fn truncation(&mut self, len: usize) -> Option<FaultKind> {
        Some(FaultKind::Truncate {
            keep: self.pick(len)?,
        })
    }

    /// Chooses an I/O fault with a budget somewhere inside `len` bytes.
    pub fn io_fault(&mut self, len: usize) -> Option<FaultKind> {
        let after = self.pick(len.max(1))?;
        Some(match self.next() % 4 {
            0 => FaultKind::ShortRead { after },
            1 => FaultKind::FailRead { after },
            2 => FaultKind::ShortWrite { after },
            _ => FaultKind::FailWrite { after },
        })
    }

    /// Returns true with probability `num / den` (used for sparse
    /// stage-boundary injection).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.next() % den < num
    }
}

/// `Read` layer that stops early or errors after a byte budget.
pub struct FaultyReader<R> {
    inner: R,
    remaining: usize,
    fail: bool,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the behavior of `fault`; non-read faults make
    /// a transparent wrapper.
    pub fn new(inner: R, fault: FaultKind) -> Self {
        let (remaining, fail) = match fault {
            FaultKind::ShortRead { after } => (after, false),
            FaultKind::FailRead { after } => (after, true),
            _ => (usize::MAX, false),
        };
        FaultyReader {
            inner,
            remaining,
            fail,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return if self.fail {
                Err(io::Error::other("injected read fault"))
            } else {
                Ok(0)
            };
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

/// `Write` layer that stops early or errors after a byte budget.
pub struct FaultyWriter<W> {
    inner: W,
    remaining: usize,
    fail: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with the behavior of `fault`; non-write faults make
    /// a transparent wrapper.
    pub fn new(inner: W, fault: FaultKind) -> Self {
        let (remaining, fail) = match fault {
            FaultKind::ShortWrite { after } => (after, false),
            FaultKind::FailWrite { after } => (after, true),
            _ => (usize::MAX, false),
        };
        FaultyWriter {
            inner,
            remaining,
            fail,
        }
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return if self.fail {
                Err(io::Error::other("injected write fault"))
            } else {
                // `write_all` turns a zero-length write into
                // `ErrorKind::WriteZero`, which is exactly the failure
                // we want callers to surface.
                Ok(0)
            };
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.write(&buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_derived_streams_differ() {
        let mut a = FaultPlan::from_seed(7);
        let mut b = FaultPlan::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.bit_flip(100), b.bit_flip(100));
        }
        let mut da = FaultPlan::from_seed(7).derive("proof");
        let mut db = FaultPlan::from_seed(7).derive("vkey");
        let fa: Vec<_> = (0..8).map(|_| da.bit_flip(1000)).collect();
        let fb: Vec<_> = (0..8).map(|_| db.bit_flip(1000)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn bit_flip_roundtrips_and_truncate_shrinks() {
        let mut bytes = vec![0u8; 16];
        let fault = FaultKind::BitFlip { offset: 5, bit: 3 };
        fault.apply(&mut bytes);
        assert_eq!(bytes[5], 1 << 3);
        fault.apply(&mut bytes);
        assert!(bytes.iter().all(|&b| b == 0));
        FaultKind::Truncate { keep: 4 }.apply(&mut bytes);
        assert_eq!(bytes.len(), 4);
        // Out-of-range flips are no-ops, not panics.
        FaultKind::BitFlip { offset: 99, bit: 0 }.apply(&mut bytes);
    }

    #[test]
    fn faulty_reader_stops_or_errors() {
        let data = vec![0xabu8; 64];
        let mut short = FaultyReader::new(data.as_slice(), FaultKind::ShortRead { after: 10 });
        let mut out = Vec::new();
        short.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 10);

        let mut failing = FaultyReader::new(data.as_slice(), FaultKind::FailRead { after: 10 });
        let mut out = Vec::new();
        assert!(failing.read_to_end(&mut out).is_err());
    }

    #[test]
    fn faulty_writer_stops_or_errors() {
        let mut sink = Vec::new();
        let mut short = FaultyWriter::new(&mut sink, FaultKind::ShortWrite { after: 10 });
        let err = short.write_all(&[1u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(sink.len(), 10);

        let mut sink = Vec::new();
        let mut failing = FaultyWriter::new(&mut sink, FaultKind::FailWrite { after: 3 });
        assert!(failing.write_all(&[1u8; 64]).is_err());
        assert_eq!(sink.len(), 3);
    }
}
