//! Fault injection and resilient execution for the zkperf pipeline.
//!
//! Three pieces live here:
//!
//! * [`fault`] — a deterministic, seeded [`fault::FaultPlan`] describing
//!   artifact corruptions (bit flips, truncations) and I/O faults
//!   (short or failing reads/writes), plus wrapping [`std::io::Read`] /
//!   [`std::io::Write`] layers that inject them.
//! * [`runner`] — bounded retry with backoff, per-attempt timeouts, and
//!   quarantine for persistently failing work items.
//! * [`chaos`] — the `ZKPERF_CHAOS` environment knob that arms
//!   stage-boundary fault injection in the pipeline itself.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod fault;
pub mod runner;

pub use chaos::{arm_pool_chaos, arm_pool_chaos_with, chaos_mode, ChaosMode};
pub use fault::{FaultKind, FaultPlan, FaultyReader, FaultyWriter};
pub use runner::{run_with_retry, Quarantine, RetryPolicy, RunOutcome};
